#include "cli_util.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "core/policy_registry.hh"
#include "fleet/dispatcher_registry.hh"
#include "hazards/hazard_registry.hh"
#include "loadgen/trace_registry.hh"
#include "migration/migration_registry.hh"
#include "platform/platform_registry.hh"
#include "telemetry/telemetry_registry.hh"
#include "workloads/workload_registry.hh"

namespace hipster
{

void
CliParser::usage(int code) const
{
    std::FILE *out = code == 0 ? stdout : stderr;
    std::fprintf(out, "usage: %s %s", argv[0], usageText.c_str());
    std::exit(code);
}

const char *
CliParser::need(int &i) const
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "error: option %s needs a value\n",
                     argv[i]);
        usage(1);
    }
    return argv[++i];
}

void
CliParser::unknown(const std::string &arg) const
{
    std::fprintf(stderr, "error: unknown option: %s\n", arg.c_str());
    usage(1);
}

bool
CliParser::handleListFlag(const std::string &arg) const
{
    std::string catalog;
    if (arg == "--list-workloads")
        catalog = WorkloadRegistry::instance().catalogText();
    else if (arg == "--list-platforms")
        catalog = PlatformRegistry::instance().catalogText();
    else if (arg == "--list-policies")
        catalog = PolicyRegistry::instance().catalogText();
    else if (arg == "--list-traces")
        catalog = TraceRegistry::instance().catalogText();
    else if (arg == "--list-hazards")
        catalog = HazardRegistry::instance().catalogText();
    else if (arg == "--list-migrations")
        catalog = MigrationRegistry::instance().catalogText();
    else if (arg == "--list-dispatchers")
        catalog = DispatcherRegistry::instance().catalogText();
    else if (arg == "--list-telemetry")
        catalog = TelemetryRegistry::instance().catalogText();
    else
        return false;
    std::fputs(catalog.c_str(), stdout);
    std::exit(0);
}

int
runCli(const std::function<int()> &body)
{
    try {
        return body();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}

} // namespace hipster
