/**
 * @file
 * Shared option-parsing plumbing for the hipster_* CLIs: the
 * `--list-*` catalog flags, the missing-value / unknown-option
 * errors, and the FatalError-to-exit-code wrapper all live here once
 * instead of three times, so every binary reports parse problems the
 * same way and picks up new spec axes (e.g. --list-telemetry) from
 * one place.
 */

#ifndef HIPSTER_TOOLS_CLI_UTIL_HH
#define HIPSTER_TOOLS_CLI_UTIL_HH

#include <functional>
#include <string>

namespace hipster
{

/** Option-parsing helpers bound to one argv + usage text. */
struct CliParser
{
    int argc = 0;
    char **argv = nullptr;

    /** Usage body printed after "usage: <argv0> "; the caller keeps
     * full control of its option synopsis. */
    std::string usageText;

    /** Print the usage text and exit with `code` (stdout for --help,
     * stderr for parse errors). */
    [[noreturn]] void usage(int code) const;

    /** The value following option argv[i], advancing i; a uniform
     * "option X needs a value" error + usage exit(1) when absent. */
    const char *need(int &i) const;

    /** Uniform unknown-option error + usage exit(1). */
    [[noreturn]] void unknown(const std::string &arg) const;

    /**
     * Handle the shared `--list-*` catalog flags (workloads,
     * platforms, policies, traces, hazards, migrations, dispatchers,
     * telemetry): print the registry catalog and exit 0. Returns
     * false when `arg` is not a list flag.
     */
    bool handleListFlag(const std::string &arg) const;
};

/** Run a CLI body with uniform error reporting: FatalError prints
 * "error: <what>" on stderr and exits 1. */
int runCli(const std::function<int()> &body);

} // namespace hipster

#endif // HIPSTER_TOOLS_CLI_UTIL_HH
