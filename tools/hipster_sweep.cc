/**
 * @file
 * hipster_sweep — parallel multi-seed sweep campaigns over the
 * registered workloads, platforms, load traces and policies, with
 * deterministic aggregation (mean / stddev / 95% CI per cell). The
 * aggregates are bitwise-identical for any --jobs value: per-run
 * seeds are derived from the master seed at expansion time and cells
 * are reduced in a fixed order.
 *
 *   hipster_sweep --policy hipster --seeds 8 --jobs 4
 *   hipster_sweep --policy all --workloads memcached,websearch \
 *                 --seeds 5 --agg-csv table3.csv
 *   hipster_sweep --workloads memcached:qos=300us \
 *                 --platforms "juno;juno:big=4,little=8" \
 *                 --traces mmpp:0.2,0.9,45 \
 *                 --policies hipster-in:bucket=8 --seeds 3 --jobs 4
 *
 * Every axis is a registry spec list; each spec is its own sweep
 * cell, so parameter ablations along any axis are ordinary
 * campaigns. Legacy tuning flags (--bucket/--learning) are gone:
 * write policy specs instead (hipster-in:bucket=8,learn=600).
 *
 * Options:
 *   --policy   <p1;p2;...>|all  policy specs to sweep (default
 *                               hipster-in; "all" = the Table 3 list;
 *                               --policies is an alias), e.g.
 *                               hipster-in:bucket=8,learn=600
 *   --list-policies             print the policy catalog and exit
 *   --workload <w1,w2,...>      workload specs (default memcached;
 *                               --workloads is an alias), e.g.
 *                               memcached:qos=300us,stall=0.5
 *   --list-workloads            print the workload catalog and exit
 *   --platform <p1,p2,...>      platform specs (default juno;
 *                               --platforms is an alias), e.g.
 *                               juno:big=4,little=8 or hetero
 *   --list-platforms            print the platform catalog and exit
 *   --traces   <t1,t2,...>      trace specs (default diurnal;
 *                               --trace is an alias), e.g.
 *                               mmpp:0.2,0.9,45
 *   --list-traces               print the trace catalog and exit
 *   --hazards  <h1,h2,...>      hazard specs (default none;
 *                               --hazard is an alias), e.g.
 *                               hazard:thermal:tdp_cap=0.7 or
 *                               hazard:thermal+interference
 *   --list-hazards              print the hazard catalog and exit
 *   --migration <spec>          migration spec; single-node sweeps
 *                               accept only "none" (moving work
 *                               needs a fleet — see hipster_fleet)
 *   --list-migrations           print the migration catalog and exit
 *   --telemetry <spec>          telemetry spec applied to every run
 *                               (default none), e.g.
 *                               telemetry:jsonl:path=trace.jsonl
 *                               (file paths gain a .runNNNN tag per
 *                               job) or telemetry:counters (shared)
 *   --list-telemetry            print the telemetry catalog and exit
 *   --seeds    <n>              repetitions per cell (default 5)
 *   --jobs     <n>              worker threads (default: hardware)
 *   --master-seed <n>           seed all run seeds derive from (default 1)
 *   --duration <seconds>        run length (default: workload diurnal)
 *   --scale    <f>              duration scale factor (default 1.0)
 *   --csv      <path>           per-run CSV dump
 *   --agg-csv  <path>           per-cell aggregate CSV dump
 *   --quiet                     suppress per-run progress lines
 *
 * In every spec list, ';' always separates and ',' separates only
 * before a registered name, so in-spec key=value/argument commas
 * survive.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "cli_util.hh"
#include "common/csv.hh"
#include "common/thread_pool.hh"
#include "core/policy_registry.hh"
#include "experiments/sweep.hh"
#include "hazards/hazard_registry.hh"
#include "loadgen/trace_registry.hh"
#include "migration/migration_registry.hh"
#include "platform/platform_registry.hh"
#include "telemetry/telemetry_registry.hh"
#include "workloads/workload_registry.hh"

namespace
{

using namespace hipster;

struct CliOptions
{
    SweepSpec spec;
    std::string migration = "none";
    std::size_t jobs = ThreadPool::defaultJobs();
    std::string csvPath;
    std::string aggCsvPath;
    bool quiet = false;
};

const char *kUsage =
    "[--policy <p1;p2;...>|all] [--list-policies]\n"
    "          [--workload <w1,...>] [--list-workloads]\n"
    "          [--platform <p1,...>] [--list-platforms]\n"
    "          [--traces <t1,...>] [--list-traces]\n"
    "          [--hazards <h1,...>] [--list-hazards]\n"
    "          [--migration <spec>] [--list-migrations]\n"
    "          [--telemetry <spec>] [--list-telemetry]\n"
    "          [--seeds <n>]\n"
    "          [--jobs <n>] [--master-seed <n>] [--duration <s>]\n"
    "          [--scale <f>] [--csv <path>] [--agg-csv <path>]\n"
    "          [--quiet]\n"
    "every axis uses its registry spec grammar, e.g.\n"
    "  --workloads memcached:qos=300us,stall=0.5\n"
    "  --platforms juno:big=4,little=8\n"
    "  --traces    mmpp:0.2,0.9,45\n"
    "  --policies  hipster-in:bucket=8,learn=600\n"
    "  --hazards   'none;hazard:thermal+interference'\n"
    "  --telemetry telemetry:jsonl:path=trace.jsonl\n"
    "see --list-workloads / --list-platforms / --list-traces /\n"
    "--list-policies / --list-hazards / --list-telemetry for the\n"
    "catalogs\n";

CliOptions
parse(int argc, char **argv)
{
    CliOptions options;
    options.spec.seeds = 5;
    // The CLI only reports summaries/aggregates; don't hold every
    // run's interval series for large campaigns.
    options.spec.keepSeries = false;
    const CliParser cli{argc, argv, kUsage};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (cli.handleListFlag(arg)) {
            // Unreachable: handleListFlag exits when it matches.
        } else if (arg == "--policy" || arg == "--policies") {
            // Spec-aware splitting: key=value commas inside a spec
            // (hipster-in:bucket=8,learn=600) survive, ';' always
            // separates.
            const std::string value = cli.need(i);
            options.spec.policies = value == "all"
                                        ? tablePolicyNames()
                                        : splitPolicyList(value);
        } else if (arg == "--workload" || arg == "--workloads") {
            options.spec.workloads = splitWorkloadList(cli.need(i));
        } else if (arg == "--platform" || arg == "--platforms") {
            options.spec.platforms = splitPlatformList(cli.need(i));
        } else if (arg == "--trace" || arg == "--traces") {
            // Spec-aware splitting: argument commas inside a spec
            // (mmpp:0.2,0.9,45) survive, ';' always separates.
            options.spec.traces = splitTraceList(cli.need(i));
        } else if (arg == "--hazard" || arg == "--hazards") {
            // Spec-aware splitting: key=value commas inside a spec
            // (hazard:thermal:tdp_cap=0.8,tau=30s) survive, ';'
            // always separates.
            options.spec.hazards = splitHazardList(cli.need(i));
        } else if (arg == "--migration") {
            options.migration = cli.need(i);
        } else if (arg == "--telemetry") {
            options.spec.telemetry = cli.need(i);
        } else if (arg == "--seeds") {
            options.spec.seeds =
                std::strtoull(cli.need(i), nullptr, 10);
        } else if (arg == "--jobs") {
            options.jobs = std::strtoull(cli.need(i), nullptr, 10);
        } else if (arg == "--master-seed") {
            options.spec.masterSeed =
                std::strtoull(cli.need(i), nullptr, 10);
        } else if (arg == "--duration") {
            options.spec.duration = std::atof(cli.need(i));
        } else if (arg == "--scale") {
            options.spec.durationScale = std::atof(cli.need(i));
        } else if (arg == "--csv") {
            options.csvPath = cli.need(i);
        } else if (arg == "--agg-csv") {
            options.aggCsvPath = cli.need(i);
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            cli.usage(0);
        } else {
            cli.unknown(arg);
        }
    }
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions options = parse(argc, argv);
    return runCli([&]() -> int {
        // Migration moves work BETWEEN nodes, so a single-node sweep
        // has nowhere to send it: validate against the catalog, then
        // insist on none (use hipster_fleet for mixed-ISA fleets).
        validateMigrationSpec(options.migration);
        if (!isNoneMigration(options.migration))
            fatal("--migration ", options.migration,
                  ": single-node sweeps cannot migrate work; use "
                  "hipster_fleet for mixed-ISA fleets");
        SweepEngine engine(options.spec);
        const std::size_t total = engine.expandJobs().size();
        std::printf("sweep: %zu runs (%zu workloads x %zu platforms x "
                    "%zu traces x %zu policies x %zu hazards x "
                    "%zu seeds), %zu jobs\n",
                    total, options.spec.workloads.size(),
                    options.spec.platforms.size(),
                    options.spec.traces.size(),
                    options.spec.policies.size(),
                    options.spec.hazards.size(), options.spec.seeds,
                    options.jobs);

        std::size_t done = 0;
        const auto results = engine.run(
            options.jobs, [&](const SweepRun &run) {
                ++done;
                if (options.quiet)
                    return;
                std::printf(
                    "  [%3zu/%zu] %s/%s/%s/%s seed[%zu]=%llu  "
                    "QoS %.1f%%  energy %.0f J\n",
                    done, total, run.job.workload.c_str(),
                    run.job.platform.c_str(), run.job.trace.c_str(),
                    run.job.policy.c_str(), run.job.seedIndex,
                    static_cast<unsigned long long>(run.job.seed),
                    run.result.summary.qosGuarantee * 100.0,
                    run.result.summary.energy);
            });

        std::printf("\n");
        printAggregateTable(std::cout, results);

        if (!options.csvPath.empty()) {
            CsvWriter csv(options.csvPath);
            writeRunsCsv(csv, results);
        }
        if (!options.aggCsvPath.empty()) {
            CsvWriter csv(options.aggCsvPath);
            writeAggregateCsv(csv, results);
        }
        // Telemetry-armed campaigns report where traces went; off
        // campaigns keep the historical byte layout.
        const TelemetryConfig &telemetry = engine.telemetryConfig();
        if (engine.sharedTelemetrySink()) {
            const std::string text =
                engine.sharedTelemetrySink()->summaryText();
            if (!text.empty())
                std::printf("\n%s\n", text.c_str());
        } else if (!telemetry.isNone()) {
            std::printf("\ntelemetry: %zu per-run %s traces at %s "
                        "(.runNNNN suffix)\n",
                        total, telemetry.sink.c_str(),
                        telemetry.path.c_str());
        }
        return 0;
    });
}
