/**
 * @file
 * hipster_sweep — parallel multi-seed sweep campaigns over the
 * built-in policies, workloads and load traces, with deterministic
 * aggregation (mean / stddev / 95% CI per cell). The aggregates are
 * bitwise-identical for any --jobs value: per-run seeds are derived
 * from the master seed at expansion time and cells are reduced in a
 * fixed order.
 *
 *   hipster_sweep --policy hipster --seeds 8 --jobs 4
 *   hipster_sweep --policy all --workload memcached,websearch \
 *                 --seeds 5 --agg-csv table3.csv
 *   hipster_sweep --policies "hipster-in:bucket=5;hipster-in:bucket=8" \
 *                 --workload memcached --seeds 10 --csv runs.csv
 *
 * Options:
 *   --policy   <p1;p2;...>|all  policy specs to sweep (default
 *                               hipster-in; "all" = the Table 3 list;
 *                               --policies is an alias). Specs use
 *                               the registry grammar — bare names or
 *                               parameterized, e.g.
 *                               hipster-in:bucket=8,learn=600 or
 *                               octopus-man:up=0.85,down=0.6 — so
 *                               parameter ablations are ordinary
 *                               sweep axes. ';' always separates; ','
 *                               separates only before a policy name,
 *                               keeping key=value commas intact.
 *   --list-policies             print the policy catalog (schemas,
 *                               defaults, aliases) and exit
 *   --workload <w1,w2,...>      memcached|websearch (default memcached)
 *   --traces   <t1,t2,...>      trace specs from the registry grammar
 *                               (diurnal, mmpp:0.2,0.9,45,
 *                               flashcrowd:..., sine:..., replay:<csv>,
 *                               with |-composed transforms; default
 *                               diurnal; --trace is an alias; ';' also
 *                               separates specs)
 *   --list-traces               print the trace catalog and exit
 *   --seeds    <n>              repetitions per cell (default 5)
 *   --jobs     <n>              worker threads (default: hardware)
 *   --master-seed <n>           seed all run seeds derive from (default 1)
 *   --duration <seconds>        run length (default: workload diurnal)
 *   --scale    <f>              duration scale factor (default 1.0)
 *   --learning <seconds>        Hipster learning phase override
 *   --bucket   <percent>        Hipster bucket width override
 *   --csv      <path>           per-run CSV dump
 *   --agg-csv  <path>           per-cell aggregate CSV dump
 *   --quiet                     suppress per-run progress lines
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/thread_pool.hh"
#include "core/policy_registry.hh"
#include "experiments/sweep.hh"
#include "loadgen/trace_registry.hh"

namespace
{

using namespace hipster;

struct CliOptions
{
    SweepSpec spec;
    std::size_t jobs = ThreadPool::defaultJobs();
    std::string csvPath;
    std::string aggCsvPath;
    bool quiet = false;
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::printf(
        "usage: %s [--policy <p1;p2;...>|all] [--list-policies]\n"
        "          [--workload <w1,...>]\n"
        "          [--traces <t1,...>] [--list-traces] [--seeds <n>]\n"
        "          [--jobs <n>] [--master-seed <n>] [--duration <s>]\n"
        "          [--scale <f>] [--learning <s>] [--bucket <pct>]\n"
        "          [--csv <path>] [--agg-csv <path>] [--quiet]\n"
        "policies use the registry spec grammar (e.g.\n"
        "hipster-in:bucket=8,learn=600); see --list-policies\n"
        "traces use the registry spec grammar; see --list-traces\n",
        argv0);
    std::exit(code);
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(list.substr(pos));
            break;
        }
        out.push_back(list.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions options;
    options.spec.seeds = 5;
    // The CLI only reports summaries/aggregates; don't hold every
    // run's interval series for large campaigns.
    options.spec.keepSeries = false;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0], 1);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--policy" || arg == "--policies") {
            // Spec-aware splitting: key=value commas inside a spec
            // (hipster-in:bucket=8,learn=600) survive, ';' always
            // separates.
            const std::string value = need(i);
            options.spec.policies = value == "all"
                                        ? tablePolicyNames()
                                        : splitPolicyList(value);
        } else if (arg == "--list-policies") {
            std::fputs(
                PolicyRegistry::instance().catalogText().c_str(),
                stdout);
            std::exit(0);
        } else if (arg == "--workload") {
            options.spec.workloads = splitList(need(i));
        } else if (arg == "--trace" || arg == "--traces") {
            // Spec-aware splitting: argument commas inside a spec
            // (mmpp:0.2,0.9,45) survive, ';' always separates.
            options.spec.traces = splitTraceList(need(i));
        } else if (arg == "--list-traces") {
            std::fputs(
                TraceRegistry::instance().catalogText().c_str(),
                stdout);
            std::exit(0);
        } else if (arg == "--seeds") {
            options.spec.seeds = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--jobs") {
            options.jobs = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--master-seed") {
            options.spec.masterSeed =
                std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--duration") {
            options.spec.duration = std::atof(need(i));
        } else if (arg == "--scale") {
            options.spec.durationScale = std::atof(need(i));
        } else if (arg == "--learning") {
            options.spec.learningPhase = std::atof(need(i));
        } else if (arg == "--bucket") {
            options.spec.bucketPercent = std::atof(need(i));
        } else if (arg == "--csv") {
            options.csvPath = need(i);
        } else if (arg == "--agg-csv") {
            options.aggCsvPath = need(i);
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0], 1);
        }
    }
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions options = parse(argc, argv);
    try {
        SweepEngine engine(options.spec);
        const std::size_t total = engine.expandJobs().size();
        std::printf("sweep: %zu runs (%zu workloads x %zu traces x %zu "
                    "policies x %zu seeds), %zu jobs\n",
                    total, options.spec.workloads.size(),
                    options.spec.traces.size(),
                    options.spec.policies.size(), options.spec.seeds,
                    options.jobs);

        std::size_t done = 0;
        const auto results = engine.run(
            options.jobs, [&](const SweepRun &run) {
                ++done;
                if (options.quiet)
                    return;
                std::printf(
                    "  [%3zu/%zu] %s/%s/%s seed[%zu]=%llu  "
                    "QoS %.1f%%  energy %.0f J\n",
                    done, total, run.job.workload.c_str(),
                    run.job.trace.c_str(), run.job.policy.c_str(),
                    run.job.seedIndex,
                    static_cast<unsigned long long>(run.job.seed),
                    run.result.summary.qosGuarantee * 100.0,
                    run.result.summary.energy);
            });

        std::printf("\n");
        printAggregateTable(std::cout, results);

        if (!options.csvPath.empty()) {
            CsvWriter csv(options.csvPath);
            writeRunsCsv(csv, results);
        }
        if (!options.aggCsvPath.empty()) {
            CsvWriter csv(options.aggCsvPath);
            writeAggregateCsv(csv, results);
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
