/**
 * @file
 * Golden-pin generator: runs the bitwise re-pin scenario matrix (a
 * fixed set of ExperimentSpec runs plus a jobs=1 vs jobs=4 sweep)
 * and prints `tests/experiments/golden_pins.inc` to stdout — exact
 * hex-float summary values, an FNV-1a fingerprint over every raw
 * bit of every interval of each run, and the sweep CSVs verbatim.
 *
 * The committed .inc pins the simulator's observable behaviour
 * byte-for-byte: any hot-loop optimization (event queue, arrival
 * generation, metrics accumulation) must leave all of it unchanged.
 * Regenerate only on an *intentional* behaviour change:
 *
 *   ./build/tools/hipster_repin > tests/experiments/golden_pins.inc
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/logging.hh"
#include "experiments/experiment_spec.hh"
#include "experiments/sweep.hh"
#include "fleet/fleet.hh"

namespace
{

using namespace hipster;

constexpr Seconds kDuration = 240.0;
constexpr std::uint64_t kSeed = 1234;

/** The pinned scenario matrix: every policy family on the diurnal
 * day, the bursty/flash-crowd stimuli, a closed-loop workload, and a
 * parameterized platform. */
struct PinScenario
{
    const char *workload;
    const char *platform;
    const char *trace;
    const char *policy;
};

const PinScenario kScenarios[] = {
    {"memcached", "juno", "diurnal", "hipster-in:bucket=8,learn=90"},
    {"memcached", "juno", "diurnal", "heuristic"},
    {"memcached", "juno", "diurnal", "octopus-man"},
    {"memcached", "juno", "diurnal", "static-big"},
    {"memcached", "juno", "mmpp:0.2,0.9,45",
     "hipster-in:bucket=8,learn=90"},
    {"memcached", "juno", "mmpp:0.2,0.9,45", "static-big"},
    {"memcached", "juno", "flashcrowd:0.2,0.9,120,30,60",
     "hipster-in:bucket=8,learn=90"},
    {"memcached", "juno", "flashcrowd:0.2,0.9,120,30,60", "static-big"},
    {"websearch", "juno", "diurnal", "hipster-in:learn=90"},
    {"memcached", "juno:big=4,little=8", "diurnal",
     "hipster-in:learn=90"},
};

/** The pinned fleet: the default 4-node mixed board set from
 * tools/hipster_fleet, run under every built-in dispatcher. */
constexpr const char *kFleetNodes =
    "juno@hipster-in;juno:big=4,little=8@hipster-in;"
    "hetero:big=2,little=8@hipster-in;"
    "hetero:big=6,little=6@hipster-in";

const char *const kFleetDispatchers[] = {
    "dispatch:round-robin",
    "dispatch:least-loaded",
    "dispatch:power-aware",
    "dispatch:cp",
};

/** The pinned hazard matrix: one scenario per stochastic hazard
 * family at node level (thermal under the flash crowd, DVFS lag and
 * interference on the diurnal day). nodefail is pinned at fleet
 * level below, where down nodes actually reroute load. */
struct HazardPinScenario
{
    const char *workload;
    const char *platform;
    const char *trace;
    const char *policy;
    const char *hazard;
};

const HazardPinScenario kHazardScenarios[] = {
    {"memcached", "juno", "flashcrowd:0.2,0.9,120,30,60",
     "hipster-in:bucket=8,learn=90",
     "hazard:thermal:tdp_cap=0.6,tau=20s"},
    {"memcached", "juno", "diurnal", "hipster-in:bucket=8,learn=90",
     "hazard:dvfs-lag:latency=20ms,drop=0.05"},
    {"memcached", "juno", "diurnal", "hipster-in:bucket=8,learn=90",
     "hazard:interference:burst=2,on=30s,off=60s"},
};

/** The pinned fleet hazard: node failures over the default 4-node
 * fleet, forcing the dispatcher to reroute around down nodes. */
constexpr const char *kHazardFleetDispatcher = "dispatch:least-loaded";
constexpr const char *kHazardFleetHazard =
    "hazard:nodefail:mtbf=120s,mttr=30s";

/** The pinned mixed-ISA fleet: two arm64 Juno boards plus two
 * riscv64 Monte Cimone boards, run with and without work migration.
 * migrate:none must reproduce the stateless re-routing loop byte
 * for byte; migrate:hexo pins the montecimone service/power model,
 * the migration engine's transit bookkeeping, and the cost-gated
 * cp-migrate planner. */
constexpr const char *kMigrationFleetNodes =
    "juno@hipster-in;juno:big=4,little=8@hipster-in;"
    "montecimone@hipster-in;montecimone:u74=8@hipster-in";

struct MigrationPinScenario
{
    const char *dispatcher;
    const char *migration;
};

const MigrationPinScenario kMigrationScenarios[] = {
    {"dispatch:cp", "none"},
    {"dispatch:cp-migrate", "migrate:hexo"},
};

/** FNV-1a over raw bytes. */
std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t hash)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t
hashDouble(double value, std::uint64_t hash)
{
    std::uint64_t bits;
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv1a(&bits, sizeof(bits), hash);
}

std::uint64_t
hashU64(std::uint64_t value, std::uint64_t hash)
{
    return fnv1a(&value, sizeof(value), hash);
}

/**
 * Bitwise fingerprint of a whole interval series: every field of
 * every IntervalMetrics, in interval order. Must stay in sync with
 * the copy in tests/experiments/test_golden_repin.cc.
 */
template <typename Series>
std::uint64_t
seriesFingerprint(const Series &series)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < series.size(); ++i) {
        const IntervalMetrics m = series[i];
        h = hashDouble(m.begin, h);
        h = hashDouble(m.end, h);
        h = hashDouble(m.offeredLoad, h);
        h = hashDouble(m.offeredRate, h);
        h = hashU64(static_cast<std::uint64_t>(m.loadBucket), h);
        h = hashDouble(m.tailLatency, h);
        h = hashDouble(m.qosTarget, h);
        h = hashDouble(m.throughput, h);
        h = hashDouble(m.power, h);
        h = hashDouble(m.energy, h);
        h = hashDouble(m.batchBigIps, h);
        h = hashDouble(m.batchSmallIps, h);
        h = hashU64(m.batchPresent ? 1 : 0, h);
        h = hashU64(m.ipsValid ? 1 : 0, h);
        h = hashU64(m.config.nBig, h);
        h = hashU64(m.config.nSmall, h);
        h = hashDouble(m.config.bigFreq, h);
        h = hashDouble(m.config.smallFreq, h);
        h = hashU64(m.migrations, h);
        h = hashU64(m.dvfsTransitions, h);
        h = hashDouble(m.lcUtilization, h);
        h = hashU64(m.dropped, h);
    }
    return h;
}

ExperimentResult
runScenario(const PinScenario &s)
{
    ExperimentSpec spec;
    spec.workload = s.workload;
    spec.platform = s.platform;
    spec.trace = s.trace;
    spec.policy = s.policy;
    spec.duration = kDuration;
    spec.seed = kSeed;
    return spec.run();
}

SweepSpec
pinSweepSpec()
{
    SweepSpec spec;
    spec.workloads = {"memcached:qos=8ms", "websearch"};
    spec.platforms = {"juno"};
    spec.traces = {"diurnal", "mmpp:0.2,0.9,45"};
    spec.policies = {"hipster"};
    spec.seeds = 2;
    spec.masterSeed = 7;
    spec.duration = 60.0;
    return spec;
}

std::string
runsCsv(const SweepResults &results)
{
    std::ostringstream out;
    CsvWriter csv(out);
    writeRunsCsv(csv, results);
    return out.str();
}

std::string
aggregateCsv(const SweepResults &results)
{
    std::ostringstream out;
    CsvWriter csv(out);
    writeAggregateCsv(csv, results);
    return out.str();
}

} // namespace

int
main()
{
    using namespace hipster;

    std::printf("// Generated by tools/hipster_repin — do not edit.\n");
    std::printf("// Regenerate (only on an intentional behaviour "
                "change):\n");
    std::printf("//   ./build/tools/hipster_repin > "
                "tests/experiments/golden_pins.inc\n");
    std::printf("// clang-format off\n");
    std::printf("constexpr Seconds kPinDuration = %a; // %.17g\n",
                kDuration, kDuration);
    std::printf("constexpr std::uint64_t kPinSeed = %" PRIu64 "ULL;\n",
                kSeed);
    std::printf("\nconst ScenarioPin kScenarioPins[] = {\n");
    for (const PinScenario &s : kScenarios) {
        const ExperimentResult result = runScenario(s);
        const RunSummary &sum = result.summary;
        std::printf("    {\"%s\", \"%s\", \"%s\", \"%s\",\n", s.workload,
                    s.platform, s.trace, s.policy);
        std::printf("     %a, %a,\n", sum.qosGuarantee, sum.qosTardiness);
        std::printf("     %a, %a, %a,\n", sum.energy, sum.meanPower,
                    sum.meanThroughput);
        std::printf("     %" PRIu64 "ULL, %" PRIu64 "ULL, %" PRIu64
                    "ULL, %zuULL,\n",
                    result.migrations, result.dvfsTransitions,
                    sum.dropped, sum.intervals);
        std::printf("     0x%016" PRIx64 "ULL},\n",
                    seriesFingerprint(result.series));
        std::fprintf(stderr,
                     "pinned %-10s %-20s %-30s %-30s QoS %.3f E %.1f\n",
                     s.workload, s.platform, s.trace, s.policy,
                     sum.qosGuarantee, sum.energy);
    }
    std::printf("};\n");

    // The fleet pin: the default 4-node mixed fleet under every
    // built-in dispatcher, fingerprinting the aggregated fleet
    // series with the same per-interval hash.
    std::printf("\nconst char kFleetPinNodes[] =\n    \"%s\";\n",
                kFleetNodes);
    std::printf("\nconst FleetPin kFleetPins[] = {\n");
    for (const char *dispatcher : kFleetDispatchers) {
        FleetSpec fleet;
        fleet.nodes = parseFleetNodes(kFleetNodes);
        fleet.workload = "memcached";
        fleet.trace = "diurnal";
        fleet.dispatcher = dispatcher;
        fleet.duration = kDuration;
        fleet.seed = kSeed;
        const FleetResult result = runFleet(fleet);
        const FleetSummary &sum = result.summary;
        std::printf("    {\"%s\",\n", dispatcher);
        std::printf("     %a, %a, %a,\n", sum.fleet.qosGuarantee,
                    sum.fleet.energy, sum.fleet.meanPower);
        std::printf("     %a, %a, %zuULL,\n", sum.fleetCapacity,
                    sum.strandedCapacity, result.fleetSeries.size());
        std::printf("     0x%016" PRIx64 "ULL},\n",
                    seriesFingerprint(result.fleetSeries));
        std::fprintf(stderr,
                     "pinned fleet %-24s QoS %.3f E %.1f stranded %.3f\n",
                     dispatcher, sum.fleet.qosGuarantee, sum.fleet.energy,
                     sum.strandedCapacity);
    }
    std::printf("};\n");

    // The hazard pins: every stochastic hazard family pinned bitwise
    // — seed-derived event streams must stay reproducible across any
    // refactor, exactly like the hazard-free scenarios above.
    std::printf("\nconst HazardPin kHazardPins[] = {\n");
    for (const HazardPinScenario &s : kHazardScenarios) {
        ExperimentSpec spec;
        spec.workload = s.workload;
        spec.platform = s.platform;
        spec.trace = s.trace;
        spec.policy = s.policy;
        spec.hazard = s.hazard;
        spec.duration = kDuration;
        spec.seed = kSeed;
        const ExperimentResult result = spec.run();
        const RunSummary &sum = result.summary;
        std::printf("    {\"%s\", \"%s\", \"%s\", \"%s\",\n     \"%s\",\n",
                    s.workload, s.platform, s.trace, s.policy, s.hazard);
        std::printf("     %a, %a,\n", sum.qosGuarantee, sum.qosTardiness);
        std::printf("     %a, %a, %a,\n", sum.energy, sum.meanPower,
                    sum.meanThroughput);
        std::printf("     %" PRIu64 "ULL, %" PRIu64 "ULL, %" PRIu64
                    "ULL, %zuULL,\n",
                    result.migrations, result.dvfsTransitions,
                    sum.dropped, sum.intervals);
        std::printf("     0x%016" PRIx64 "ULL},\n",
                    seriesFingerprint(result.series));
        std::fprintf(stderr,
                     "pinned hazard %-42s %-30s QoS %.3f E %.1f\n",
                     s.hazard, s.trace, sum.qosGuarantee, sum.energy);
    }
    std::printf("};\n");

    {
        FleetSpec fleet;
        fleet.nodes = parseFleetNodes(kFleetNodes);
        fleet.workload = "memcached";
        fleet.trace = "diurnal";
        fleet.dispatcher = kHazardFleetDispatcher;
        fleet.hazard = kHazardFleetHazard;
        fleet.duration = kDuration;
        fleet.seed = kSeed;
        const FleetResult result = runFleet(fleet);
        const FleetSummary &sum = result.summary;
        std::printf("\nconst HazardFleetPin kHazardFleetPin =\n");
        std::printf("    {\"%s\", \"%s\",\n", kHazardFleetDispatcher,
                    kHazardFleetHazard);
        std::printf("     %a, %a, %a,\n", sum.fleet.qosGuarantee,
                    sum.fleet.energy, sum.fleet.meanPower);
        std::printf("     %a, %a, %zuULL,\n", sum.fleetCapacity,
                    sum.strandedCapacity, result.fleetSeries.size());
        std::printf("     0x%016" PRIx64 "ULL};\n",
                    seriesFingerprint(result.fleetSeries));
        std::fprintf(stderr,
                     "pinned fleet hazard %-36s QoS %.3f E %.1f\n",
                     kHazardFleetHazard, sum.fleet.qosGuarantee,
                     sum.fleet.energy);
    }

    // The mixed-ISA migration pins: printed summaries, migration
    // totals, and the same per-interval fingerprint over the
    // aggregated fleet series.
    std::printf("\nconst char kMigrationFleetPinNodes[] =\n    \"%s\";\n",
                kMigrationFleetNodes);
    std::printf("\nconst MigrationFleetPin kMigrationFleetPins[] = {\n");
    for (const MigrationPinScenario &s : kMigrationScenarios) {
        FleetSpec fleet;
        fleet.nodes = parseFleetNodes(kMigrationFleetNodes);
        fleet.workload = "memcached";
        fleet.trace = "diurnal";
        fleet.dispatcher = s.dispatcher;
        fleet.migration = s.migration;
        fleet.duration = kDuration;
        fleet.seed = kSeed;
        const FleetResult result = runFleet(fleet);
        const FleetSummary &sum = result.summary;
        std::printf("    {\"%s\", \"%s\",\n", s.dispatcher, s.migration);
        std::printf("     %a, %a, %a,\n", sum.fleet.qosGuarantee,
                    sum.fleet.energy, sum.fleet.meanPower);
        std::printf("     %a, %a, %zuULL,\n", sum.fleetCapacity,
                    sum.strandedCapacity, result.fleetSeries.size());
        std::printf("     %" PRIu64 "ULL, %a, %a,\n",
                    sum.migration.moves, sum.migration.energy,
                    sum.migration.transitLoad);
        std::printf("     0x%016" PRIx64 "ULL},\n",
                    seriesFingerprint(result.fleetSeries));
        std::fprintf(stderr,
                     "pinned migration fleet %-20s %-14s QoS %.3f "
                     "E %.1f moves %" PRIu64 "\n",
                     s.dispatcher, s.migration, sum.fleet.qosGuarantee,
                     sum.fleet.energy, sum.migration.moves);
    }
    std::printf("};\n");

    // The sweep pin: jobs=1 and jobs=4 must agree before anything is
    // written, and the CSVs are pinned verbatim.
    const SweepEngine engine(pinSweepSpec());
    const SweepResults serial = engine.run(1);
    const SweepResults parallel = engine.run(4);
    const std::string runs1 = runsCsv(serial);
    const std::string runs4 = runsCsv(parallel);
    const std::string agg1 = aggregateCsv(serial);
    const std::string agg4 = aggregateCsv(parallel);
    if (runs1 != runs4 || agg1 != agg4)
        fatal("hipster_repin: jobs=1 vs jobs=4 sweep CSVs differ; "
              "refusing to pin a nondeterministic campaign");

    std::printf("\nconst char kSweepRunsCsvPin[] =\n    R\"PIN(%s)PIN\";\n",
                runs1.c_str());
    std::printf(
        "\nconst char kSweepAggregateCsvPin[] =\n    R\"PIN(%s)PIN\";\n",
        agg1.c_str());
    std::printf("// clang-format on\n");
    std::fprintf(stderr, "pinned sweep campaign (%zu runs, %zu cells)\n",
                 serial.runs.size(), serial.cells.size());
    return 0;
}
