/**
 * @file
 * hipster_trace — offline analysis of JSONL telemetry traces
 * produced by --telemetry telemetry:jsonl:path=... runs.
 *
 *   hipster_trace summarize trace.jsonl
 *   hipster_trace filter trace.jsonl --only decision+hazard --node 2
 *   hipster_trace filter trace.jsonl --from 100 --to 200 --out cut.jsonl
 *   hipster_trace diff a.jsonl b.jsonl
 *
 * Subcommands:
 *   summarize <trace>   per-node decision counts, chosen-config
 *                       histogram, DVFS/hazard activity with hazard
 *                       windows, dispatcher shares, phase-time
 *                       breakdown and perf-counter status
 *   filter <trace>      re-emit matching events as JSONL
 *     --only <t1+t2>    keep only these event types (header and
 *                       phase_profile always pass)
 *     --node <n>        keep one node's events (-1 = untagged only)
 *     --from <k>        keep intervals >= k
 *     --to <k>          keep intervals <= k
 *     --out <path>      write to a file instead of stdout
 *   diff <a> <b>        compare two traces event-by-event (headers
 *                       and wall-clock phase profiles are skipped);
 *                       silent + exit 0 when equivalent, report +
 *                       exit 1 when not
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli_util.hh"
#include "common/logging.hh"
#include "telemetry/sinks.hh"
#include "telemetry/trace_analysis.hh"
#include "telemetry/trace_io.hh"

namespace
{

using namespace hipster;

const char *kUsage =
    "<subcommand> ...\n"
    "  summarize <trace.jsonl>\n"
    "  filter <trace.jsonl> [--only t1+t2] [--node n] [--from k]\n"
    "         [--to k] [--out <path>]\n"
    "  diff <a.jsonl> <b.jsonl>\n"
    "traces are the JSONL files written by --telemetry\n"
    "telemetry:jsonl:path=...; event types: header, decision, dvfs,\n"
    "hazard, migration, dispatch, phase_profile\n";

/** Parse a '+'-joined event-type list into a bitmask. */
std::uint32_t
parseTypeList(const std::string &value)
{
    std::uint32_t mask = 0;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t plus = value.find('+', start);
        const std::string name =
            value.substr(start, plus == std::string::npos
                                    ? std::string::npos
                                    : plus - start);
        TelemetryEventType type;
        if (!parseTelemetryEventType(name, type)) {
            std::string known;
            for (std::size_t i = 0; i < kTelemetryEventTypes; ++i) {
                if (i > 0)
                    known += ", ";
                known += telemetryEventTypeName(
                    static_cast<TelemetryEventType>(i));
            }
            fatal("--only: unknown event type '", name,
                  "'; event types: ", known);
        }
        mask |= 1u << static_cast<unsigned>(type);
        if (plus == std::string::npos)
            break;
        start = plus + 1;
    }
    // Headers and phase profiles ride along, mirroring the only=
    // spec key: a filtered trace keeps its provenance and profile.
    mask |= 1u << static_cast<unsigned>(TelemetryEventType::Header);
    mask |=
        1u << static_cast<unsigned>(TelemetryEventType::PhaseProfile);
    return mask;
}

int
runSummarize(const std::string &path)
{
    const std::vector<TelemetryEvent> events = readTraceFile(path);
    const TraceSummary summary = summarizeTrace(events);
    std::fputs(renderTraceSummary(summary).c_str(), stdout);
    return 0;
}

int
runFilter(const CliParser &cli, int argc, char **argv)
{
    std::string path;
    std::string outPath;
    TraceFilter filter;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--only") {
            filter.typeMask = parseTypeList(cli.need(i));
        } else if (arg == "--node") {
            filter.node =
                static_cast<int>(std::strtol(cli.need(i), nullptr, 10));
        } else if (arg == "--from") {
            filter.minInterval =
                std::strtoull(cli.need(i), nullptr, 10);
        } else if (arg == "--to") {
            filter.maxInterval =
                std::strtoull(cli.need(i), nullptr, 10);
        } else if (arg == "--out") {
            outPath = cli.need(i);
        } else if (!arg.empty() && arg[0] == '-') {
            cli.unknown(arg);
        } else if (path.empty()) {
            path = arg;
        } else {
            cli.unknown(arg);
        }
    }
    if (path.empty())
        fatal("filter: no trace file given");

    const std::vector<TelemetryEvent> events = readTraceFile(path);
    const std::vector<TelemetryEvent> kept =
        filterTrace(events, filter);
    std::FILE *out = stdout;
    if (!outPath.empty()) {
        out = std::fopen(outPath.c_str(), "w");
        if (!out)
            fatal("telemetry: cannot open filter output path '",
                  outPath, "' for writing");
    }
    for (const TelemetryEvent &event : kept) {
        const std::string line = telemetryEventToJson(event);
        std::fwrite(line.data(), 1, line.size(), out);
        std::fputc('\n', out);
    }
    if (out != stdout)
        std::fclose(out);
    std::fprintf(stderr, "filter: kept %zu of %zu events\n",
                 kept.size(), events.size());
    return 0;
}

int
runDiff(const std::string &pathA, const std::string &pathB)
{
    const std::string report =
        diffTraces(readTraceFile(pathA), readTraceFile(pathB));
    if (report.empty()) {
        std::printf("traces are equivalent (headers and phase "
                    "profiles ignored)\n");
        return 0;
    }
    std::fputs(report.c_str(), stdout);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliParser cli{argc, argv, kUsage};
    return runCli([&]() -> int {
        if (argc < 2)
            cli.usage(1);
        const std::string sub = argv[1];
        if (sub == "--help" || sub == "-h")
            cli.usage(0);
        if (sub == "summarize") {
            if (argc != 3)
                cli.usage(1);
            return runSummarize(argv[2]);
        }
        if (sub == "filter")
            return runFilter(cli, argc, argv);
        if (sub == "diff") {
            if (argc != 4)
                cli.usage(1);
            return runDiff(argv[2], argv[3]);
        }
        std::fprintf(stderr, "error: unknown subcommand: %s\n",
                     sub.c_str());
        cli.usage(1);
    });
}
