/**
 * @file
 * hipster_fleet — multi-node fleet campaigns: one offered-load
 * stream sharded across N heterogeneous nodes by a front-end
 * dispatcher, each node running its own Hipster/baseline manager.
 * The dispatcher axis sweeps like any registry axis, the aggregation
 * is the standard sweep reduction over the fleet-level series, and
 * jobs=1 vs jobs=N campaigns are bitwise-identical.
 *
 *   hipster_fleet --dispatchers "dispatch:round-robin;dispatch:cp" \
 *                 --seeds 3 --jobs 4
 *   hipster_fleet --nodes "juno@hipster-in;hetero:big=2,little=8@hipster-in" \
 *                 --traces diurnal --duration 240 --csv fleet.csv
 *
 * Options:
 *   --nodes <n1;n2;...>      ';'-separated platform[@policy] node
 *                            bindings (default: a 4-node mixed
 *                            juno + hetero fleet). Platform and
 *                            policy use their registry grammars,
 *                            e.g. montecimone:u74=8@hipster-in
 *   --list-platforms         print the platform catalog and exit
 *   --dispatchers <d1;...>   dispatcher specs to sweep (default:
 *                            all built-ins; --dispatcher is an
 *                            alias), e.g. dispatch:cp:quanta=128
 *   --list-dispatchers       print the dispatcher catalog and exit
 *   --migrations <m1;...>    migration specs to sweep (default
 *                            none; --migration is an alias), e.g.
 *                            migrate:hexo:ckpt=64,xisa=2
 *   --list-migrations        print the migration catalog and exit
 *   --workload <w>           workload spec shared by all nodes
 *                            (default memcached)
 *   --traces <t1,...>        fleet trace specs (default diurnal;
 *                            --trace is an alias)
 *   --hazards <h1,...>       hazard specs applied per node (default
 *                            none; --hazard is an alias), e.g.
 *                            hazard:nodefail:mtbf=300s,mttr=45s
 *   --list-hazards           print the hazard catalog and exit
 *   --duration <seconds>     run length (default: workload diurnal)
 *   --scale <f>              duration scale factor (default 1.0)
 *   --seeds <n>              repetitions per cell (default 3)
 *   --master-seed <n>        master seed (default 1)
 *   --jobs <n>               worker threads (default: hardware)
 *   --csv <path>             per-run CSV dump
 *   --agg-csv <path>         per-cell aggregate CSV dump
 *   --quiet                  suppress per-run progress lines
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/thread_pool.hh"
#include "fleet/dispatcher_registry.hh"
#include "fleet/fleet_sweep.hh"
#include "hazards/hazard_registry.hh"
#include "loadgen/trace_registry.hh"
#include "migration/migration_registry.hh"
#include "platform/platform_registry.hh"

namespace
{

using namespace hipster;

/** The default 4-node mixed juno + hetero: fleet. */
const char *kDefaultNodes =
    "juno@hipster-in;"
    "juno:big=4,little=8@hipster-in;"
    "hetero:big=2,little=8@hipster-in;"
    "hetero:big=6,little=6@hipster-in";

struct CliOptions
{
    FleetSweepSpec spec;
    std::size_t jobs = ThreadPool::defaultJobs();
    std::string csvPath;
    std::string aggCsvPath;
    bool quiet = false;
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::printf(
        "usage: %s [--nodes <n1;n2;...>] [--list-platforms]\n"
        "          [--dispatchers <d1;...>] [--list-dispatchers]\n"
        "          [--workload <w>] [--traces <t1,...>]\n"
        "          [--hazards <h1,...>] [--list-hazards]\n"
        "          [--migrations <m1;...>] [--list-migrations]\n"
        "          [--duration <s>] [--scale <f>]\n"
        "          [--seeds <n>] [--master-seed <n>] [--jobs <n>]\n"
        "          [--csv <path>] [--agg-csv <path>] [--quiet]\n"
        "nodes are platform[@policy] bindings, ';'-separated, e.g.\n"
        "  --nodes \"juno@hipster-in;montecimone:u74=8@hipster-in\"\n"
        "dispatchers use the dispatch: grammar, e.g.\n"
        "  --dispatchers \"dispatch:round-robin;dispatch:cp:quanta=128\"\n"
        "hazards use the hazard: grammar, e.g.\n"
        "  --hazards \"none;hazard:nodefail:mtbf=300s,mttr=45s\"\n"
        "migrations use the migrate: grammar, e.g.\n"
        "  --migrations \"none;migrate:hexo:ckpt=64\"\n"
        "see --list-platforms / --list-dispatchers / --list-hazards /\n"
        "--list-migrations for the catalogs\n",
        argv0);
    std::exit(code);
}

std::vector<std::string>
allDispatcherLabels()
{
    std::vector<std::string> labels;
    for (const DispatcherInfo &e :
         DispatcherRegistry::instance().entries())
        labels.push_back(canonicalDispatcherLabel(e.name));
    return labels;
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions options;
    options.spec.base.nodes = parseFleetNodes(kDefaultNodes);
    options.spec.dispatchers = allDispatcherLabels();
    options.spec.seeds = 3;
    options.spec.keepSeries = false;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0], 1);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--nodes") {
            options.spec.base.nodes = parseFleetNodes(need(i));
        } else if (arg == "--list-platforms") {
            std::fputs(
                PlatformRegistry::instance().catalogText().c_str(),
                stdout);
            std::exit(0);
        } else if (arg == "--dispatcher" || arg == "--dispatchers") {
            options.spec.dispatchers = splitDispatcherList(need(i));
        } else if (arg == "--list-dispatchers") {
            std::fputs(
                DispatcherRegistry::instance().catalogText().c_str(),
                stdout);
            std::exit(0);
        } else if (arg == "--workload") {
            options.spec.base.workload = need(i);
        } else if (arg == "--trace" || arg == "--traces") {
            options.spec.traces = splitTraceList(need(i));
        } else if (arg == "--hazard" || arg == "--hazards") {
            options.spec.hazards = splitHazardList(need(i));
        } else if (arg == "--list-hazards") {
            std::fputs(
                HazardRegistry::instance().catalogText().c_str(),
                stdout);
            std::exit(0);
        } else if (arg == "--migration" || arg == "--migrations") {
            options.spec.migrations = splitMigrationList(need(i));
        } else if (arg == "--list-migrations") {
            std::fputs(
                MigrationRegistry::instance().catalogText().c_str(),
                stdout);
            std::exit(0);
        } else if (arg == "--duration") {
            options.spec.base.duration = std::atof(need(i));
        } else if (arg == "--scale") {
            options.spec.base.durationScale = std::atof(need(i));
        } else if (arg == "--seeds") {
            options.spec.seeds = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--master-seed") {
            options.spec.masterSeed =
                std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--jobs") {
            options.jobs = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--csv") {
            options.csvPath = need(i);
        } else if (arg == "--agg-csv") {
            options.aggCsvPath = need(i);
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0], 1);
        }
    }
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const CliOptions options = parse(argc, argv);
        const std::size_t total = options.spec.dispatchers.size() *
                                  options.spec.migrations.size() *
                                  options.spec.traces.size() *
                                  options.spec.hazards.size() *
                                  options.spec.seeds;
        std::printf(
            "fleet: %zu nodes, %zu runs (%zu dispatchers x %zu "
            "migrations x %zu traces x %zu hazards x %zu seeds), "
            "%zu jobs\n",
            options.spec.base.nodes.size(), total,
            options.spec.dispatchers.size(),
            options.spec.migrations.size(), options.spec.traces.size(),
            options.spec.hazards.size(), options.spec.seeds,
            options.jobs);
        for (const FleetNodeSpec &node : options.spec.base.nodes)
            std::printf("  node %s\n", node.label().c_str());

        std::size_t done = 0;
        const FleetSweepResults results = runFleetSweep(
            options.spec, options.jobs, [&](const SweepRun &run) {
                ++done;
                if (options.quiet)
                    return;
                std::printf(
                    "  [%3zu/%zu] %s/%s seed[%zu]=%llu  QoS %.1f%%  "
                    "energy %.0f J\n",
                    done, total, run.job.trace.c_str(),
                    run.job.policy.c_str(), run.job.seedIndex,
                    static_cast<unsigned long long>(run.job.seed),
                    run.result.summary.qosGuarantee * 100.0,
                    run.result.summary.energy);
            });

        std::printf("\n");
        printAggregateTable(std::cout, results.sweep);
        std::printf("\nstranded capacity (mean fraction of fleet "
                    "capacity powered but unrouted):\n");
        for (const std::string &dispatcher : options.spec.dispatchers) {
            for (const std::string &trace : options.spec.traces) {
                const double stranded =
                    results.meanStranded(dispatcher, trace);
                std::printf("  %-40s %-24s %.4f\n",
                            canonicalDispatcherLabel(dispatcher).c_str(),
                            trace.c_str(), stranded);
            }
        }

        if (!options.csvPath.empty()) {
            CsvWriter csv(options.csvPath);
            writeRunsCsv(csv, results.sweep);
        }
        if (!options.aggCsvPath.empty()) {
            CsvWriter csv(options.aggCsvPath);
            writeAggregateCsv(csv, results.sweep);
        }
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
