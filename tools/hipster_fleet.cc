/**
 * @file
 * hipster_fleet — multi-node fleet campaigns: one offered-load
 * stream sharded across N heterogeneous nodes by a front-end
 * dispatcher, each node running its own Hipster/baseline manager.
 * The dispatcher axis sweeps like any registry axis, the aggregation
 * is the standard sweep reduction over the fleet-level series, and
 * jobs=1 vs jobs=N campaigns are bitwise-identical.
 *
 *   hipster_fleet --dispatchers "dispatch:round-robin;dispatch:cp" \
 *                 --seeds 3 --jobs 4
 *   hipster_fleet --nodes "juno@hipster-in;hetero:big=2,little=8@hipster-in" \
 *                 --traces diurnal --duration 240 --csv fleet.csv
 *
 * Options:
 *   --nodes <n1;n2;...>      ';'-separated platform[@policy] node
 *                            bindings (default: a 4-node mixed
 *                            juno + hetero fleet). Platform and
 *                            policy use their registry grammars,
 *                            e.g. montecimone:u74=8@hipster-in
 *   --list-platforms         print the platform catalog and exit
 *   --dispatchers <d1;...>   dispatcher specs to sweep (default:
 *                            all built-ins; --dispatcher is an
 *                            alias), e.g. dispatch:cp:quanta=128
 *   --list-dispatchers       print the dispatcher catalog and exit
 *   --migrations <m1;...>    migration specs to sweep (default
 *                            none; --migration is an alias), e.g.
 *                            migrate:hexo:ckpt=64,xisa=2
 *   --list-migrations        print the migration catalog and exit
 *   --workload <w>           workload spec shared by all nodes
 *                            (default memcached)
 *   --traces <t1,...>        fleet trace specs (default diurnal;
 *                            --trace is an alias)
 *   --hazards <h1,...>       hazard specs applied per node (default
 *                            none; --hazard is an alias), e.g.
 *                            hazard:nodefail:mtbf=300s,mttr=45s
 *   --list-hazards           print the hazard catalog and exit
 *   --telemetry <spec>       telemetry spec applied to every fleet
 *                            run (default none), e.g.
 *                            telemetry:jsonl:path=fleet.jsonl (file
 *                            paths gain a .runNNNN tag per job)
 *   --list-telemetry         print the telemetry catalog and exit
 *   --duration <seconds>     run length (default: workload diurnal)
 *   --scale <f>              duration scale factor (default 1.0)
 *   --seeds <n>              repetitions per cell (default 3)
 *   --master-seed <n>        master seed (default 1)
 *   --jobs <n>               worker threads (default: hardware)
 *   --csv <path>             per-run CSV dump
 *   --agg-csv <path>         per-cell aggregate CSV dump
 *   --quiet                  suppress per-run progress lines
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cli_util.hh"
#include "common/csv.hh"
#include "common/thread_pool.hh"
#include "fleet/dispatcher_registry.hh"
#include "fleet/fleet_sweep.hh"
#include "hazards/hazard_registry.hh"
#include "loadgen/trace_registry.hh"
#include "migration/migration_registry.hh"
#include "telemetry/telemetry_registry.hh"

namespace
{

using namespace hipster;

/** The default 4-node mixed juno + hetero: fleet. */
const char *kDefaultNodes =
    "juno@hipster-in;"
    "juno:big=4,little=8@hipster-in;"
    "hetero:big=2,little=8@hipster-in;"
    "hetero:big=6,little=6@hipster-in";

struct CliOptions
{
    FleetSweepSpec spec;
    std::size_t jobs = ThreadPool::defaultJobs();
    std::string csvPath;
    std::string aggCsvPath;
    bool quiet = false;
};

const char *kUsage =
    "[--nodes <n1;n2;...>] [--list-platforms]\n"
    "          [--dispatchers <d1;...>] [--list-dispatchers]\n"
    "          [--workload <w>] [--traces <t1,...>]\n"
    "          [--hazards <h1,...>] [--list-hazards]\n"
    "          [--migrations <m1;...>] [--list-migrations]\n"
    "          [--telemetry <spec>] [--list-telemetry]\n"
    "          [--duration <s>] [--scale <f>]\n"
    "          [--seeds <n>] [--master-seed <n>] [--jobs <n>]\n"
    "          [--csv <path>] [--agg-csv <path>] [--quiet]\n"
    "nodes are platform[@policy] bindings, ';'-separated, e.g.\n"
    "  --nodes \"juno@hipster-in;montecimone:u74=8@hipster-in\"\n"
    "dispatchers use the dispatch: grammar, e.g.\n"
    "  --dispatchers \"dispatch:round-robin;dispatch:cp:quanta=128\"\n"
    "hazards use the hazard: grammar, e.g.\n"
    "  --hazards \"none;hazard:nodefail:mtbf=300s,mttr=45s\"\n"
    "migrations use the migrate: grammar, e.g.\n"
    "  --migrations \"none;migrate:hexo:ckpt=64\"\n"
    "telemetry uses the telemetry: grammar, e.g.\n"
    "  --telemetry telemetry:jsonl:path=fleet.jsonl\n"
    "see --list-platforms / --list-dispatchers / --list-hazards /\n"
    "--list-migrations / --list-telemetry for the catalogs\n";

std::vector<std::string>
allDispatcherLabels()
{
    std::vector<std::string> labels;
    for (const DispatcherInfo &e :
         DispatcherRegistry::instance().entries())
        labels.push_back(canonicalDispatcherLabel(e.name));
    return labels;
}

CliOptions
parse(int argc, char **argv)
{
    CliOptions options;
    options.spec.base.nodes = parseFleetNodes(kDefaultNodes);
    options.spec.dispatchers = allDispatcherLabels();
    options.spec.seeds = 3;
    options.spec.keepSeries = false;
    const CliParser cli{argc, argv, kUsage};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (cli.handleListFlag(arg)) {
            // Unreachable: handleListFlag exits when it matches.
        } else if (arg == "--nodes") {
            options.spec.base.nodes = parseFleetNodes(cli.need(i));
        } else if (arg == "--dispatcher" || arg == "--dispatchers") {
            options.spec.dispatchers =
                splitDispatcherList(cli.need(i));
        } else if (arg == "--workload") {
            options.spec.base.workload = cli.need(i);
        } else if (arg == "--trace" || arg == "--traces") {
            options.spec.traces = splitTraceList(cli.need(i));
        } else if (arg == "--hazard" || arg == "--hazards") {
            options.spec.hazards = splitHazardList(cli.need(i));
        } else if (arg == "--migration" || arg == "--migrations") {
            options.spec.migrations = splitMigrationList(cli.need(i));
        } else if (arg == "--telemetry") {
            options.spec.telemetry = cli.need(i);
        } else if (arg == "--duration") {
            options.spec.base.duration = std::atof(cli.need(i));
        } else if (arg == "--scale") {
            options.spec.base.durationScale = std::atof(cli.need(i));
        } else if (arg == "--seeds") {
            options.spec.seeds =
                std::strtoull(cli.need(i), nullptr, 10);
        } else if (arg == "--master-seed") {
            options.spec.masterSeed =
                std::strtoull(cli.need(i), nullptr, 10);
        } else if (arg == "--jobs") {
            options.jobs = std::strtoull(cli.need(i), nullptr, 10);
        } else if (arg == "--csv") {
            options.csvPath = cli.need(i);
        } else if (arg == "--agg-csv") {
            options.aggCsvPath = cli.need(i);
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            cli.usage(0);
        } else {
            cli.unknown(arg);
        }
    }
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    return runCli([&]() -> int {
        const CliOptions options = parse(argc, argv);
        const std::size_t total = options.spec.dispatchers.size() *
                                  options.spec.migrations.size() *
                                  options.spec.traces.size() *
                                  options.spec.hazards.size() *
                                  options.spec.seeds;
        std::printf(
            "fleet: %zu nodes, %zu runs (%zu dispatchers x %zu "
            "migrations x %zu traces x %zu hazards x %zu seeds), "
            "%zu jobs\n",
            options.spec.base.nodes.size(), total,
            options.spec.dispatchers.size(),
            options.spec.migrations.size(), options.spec.traces.size(),
            options.spec.hazards.size(), options.spec.seeds,
            options.jobs);
        for (const FleetNodeSpec &node : options.spec.base.nodes)
            std::printf("  node %s\n", node.label().c_str());

        std::size_t done = 0;
        const FleetSweepResults results = runFleetSweep(
            options.spec, options.jobs, [&](const SweepRun &run) {
                ++done;
                if (options.quiet)
                    return;
                std::printf(
                    "  [%3zu/%zu] %s/%s seed[%zu]=%llu  QoS %.1f%%  "
                    "energy %.0f J\n",
                    done, total, run.job.trace.c_str(),
                    run.job.policy.c_str(), run.job.seedIndex,
                    static_cast<unsigned long long>(run.job.seed),
                    run.result.summary.qosGuarantee * 100.0,
                    run.result.summary.energy);
            });

        std::printf("\n");
        printAggregateTable(std::cout, results.sweep);
        std::printf("\nstranded capacity (mean fraction of fleet "
                    "capacity powered but unrouted):\n");
        for (const std::string &dispatcher : options.spec.dispatchers) {
            for (const std::string &trace : options.spec.traces) {
                const double stranded =
                    results.meanStranded(dispatcher, trace);
                std::printf("  %-40s %-24s %.4f\n",
                            canonicalDispatcherLabel(dispatcher).c_str(),
                            trace.c_str(), stranded);
            }
        }

        if (!options.csvPath.empty()) {
            CsvWriter csv(options.csvPath);
            writeRunsCsv(csv, results.sweep);
        }
        if (!options.aggCsvPath.empty()) {
            CsvWriter csv(options.aggCsvPath);
            writeAggregateCsv(csv, results.sweep);
        }
        // Telemetry-armed campaigns report where traces went; off
        // campaigns keep the historical byte layout.
        const TelemetryConfig telemetry =
            parseTelemetryConfig(options.spec.telemetry);
        if (results.telemetrySink) {
            const std::string text =
                results.telemetrySink->summaryText();
            if (!text.empty())
                std::printf("\n%s\n", text.c_str());
        } else if (!telemetry.isNone()) {
            std::printf("\ntelemetry: %zu per-run %s traces at %s "
                        "(.runNNNN suffix)\n",
                        total, telemetry.sink.c_str(),
                        telemetry.path.c_str());
        }
        return 0;
    });
}
