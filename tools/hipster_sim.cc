/**
 * @file
 * hipster_sim — command-line driver for the Hipster simulator.
 *
 * Runs any registered policy against any registered workload,
 * platform and load trace — one declarative ExperimentSpec —
 * printing per-interval series (optional) and the run summary.
 *
 *   hipster_sim --workload memcached --policy hipster-in
 *   hipster_sim --workload memcached:qos=300us,stall=0.5 \
 *               --platform juno:big=4,little=8
 *   hipster_sim --workload websearch --policy octopus-man \
 *               --trace ramp --duration 400 --csv out.csv
 *   hipster_sim --workload websearch --policy hipster-co \
 *               --batch calculix,lbm --series
 *   hipster_sim --hazard hazard:thermal+interference \
 *               --telemetry telemetry:jsonl:path=trace.jsonl
 *
 * Options:
 *   --workload any registry workload spec: memcached (alias mc),
 *              websearch (alias web-search), synthetic (alias syn),
 *              optionally parameterized with key=value overrides,
 *              e.g. memcached:qos=300us,stall=0.5 (default memcached)
 *   --list-workloads                    (print the catalog and exit)
 *   --platform any registry platform spec: juno (alias juno-r1),
 *              hetero (alias server), optionally parameterized, e.g.
 *              juno:big=4,little=8 (default juno)
 *   --list-platforms                    (print the catalog and exit)
 *   --policy   any registry policy spec: static-big, static-small,
 *              heuristic, octopus-man (alias octopus), hipster-in
 *              (alias hipster), hipster-co, optionally parameterized
 *              with key=value overrides, e.g.
 *              hipster-in:bucket=8,learn=600 or
 *              octopus-man:up=0.85,down=0.6 (default hipster-in)
 *   --list-policies                     (print the catalog and exit)
 *   --trace    any registry spec: diurnal, ramp, spike,
 *              constant:<frac>, mmpp:<lo,hi,switch>,
 *              flashcrowd:<base,peak,t0,rise,hold>,
 *              sine:<mean,amp,period>, replay:<csv>, composed with
 *              |scale/|offset/|clip/|noise/|jitter/|repeat and '+'
 *              splicing (default diurnal)
 *   --list-traces                       (print the catalog and exit)
 *   --hazard   any registry hazard spec: none (default) or composed
 *              adversity, e.g. hazard:thermal:tdp_cap=0.7 or
 *              hazard:thermal+interference:burst=2
 *   --list-hazards                      (print the catalog and exit)
 *   --migration migration spec; single-node runs accept only "none"
 *              (moving work needs a fleet — see hipster_fleet)
 *   --list-migrations                   (print the catalog and exit)
 *   --telemetry telemetry spec: none (default) or a sink, e.g.
 *              telemetry:jsonl:path=trace.jsonl,sample=10 or
 *              telemetry:counters (analyze with hipster_trace)
 *   --list-telemetry                    (print the catalog and exit)
 *   --duration <seconds>                (default: workload diurnal)
 *   --seed     <n>                      (default 1)
 *   --bucket   <percent>                (Hipster bucket width)
 *   --learning <seconds>                (Hipster learning phase)
 *   --batch    <prog>[,<prog>...]       (collocate batch kernels)
 *   --series                            (print every interval)
 *   --csv      <path>                   (dump the interval series)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cli_util.hh"
#include "common/csv.hh"
#include "common/table.hh"
#include "core/policy_registry.hh"
#include "experiments/experiment_spec.hh"
#include "experiments/scenario.hh"
#include "hazards/hazard_registry.hh"
#include "migration/migration_registry.hh"
#include "workloads/batch.hh"

namespace
{

using namespace hipster;

struct CliOptions
{
    std::string workload = "memcached";
    std::string platform = "juno";
    std::string policy = "hipster-in";
    std::string trace = "diurnal";
    std::string hazard = "none";
    std::string migration = "none";
    std::string telemetry = "none";
    Seconds duration = 0.0;
    std::uint64_t seed = 1;
    double bucket = 0.0;
    Seconds learning = -1.0;
    std::vector<std::string> batch;
    bool series = false;
    std::string csvPath;
};

const char *kUsage =
    "[--workload <spec>] [--list-workloads]\n"
    "          [--platform <spec>] [--list-platforms]\n"
    "          [--policy <spec>] [--list-policies]\n"
    "          [--trace <spec>] [--list-traces]\n"
    "          [--hazard <spec>] [--list-hazards]\n"
    "          [--migration <spec>] [--list-migrations]\n"
    "          [--telemetry <spec>] [--list-telemetry]\n"
    "          [--duration <s>] [--seed <n>] [--bucket <pct>]\n"
    "          [--learning <s>] [--batch p1,p2,...] [--series]\n"
    "          [--csv <path>]\n"
    "all axes use their registry spec grammars (e.g.\n"
    "memcached:qos=300us,stall=0.5, juno:big=4,little=8,\n"
    "mmpp:0.2,0.9,45, hipster-in:bucket=8,learn=600,\n"
    "hazard:thermal+interference,\n"
    "telemetry:jsonl:path=trace.jsonl); see the --list-* flags for\n"
    "the catalogs\n";

CliOptions
parse(int argc, char **argv)
{
    CliOptions options;
    const CliParser cli{argc, argv, kUsage};
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (cli.handleListFlag(arg)) {
            // Unreachable: handleListFlag exits when it matches.
        } else if (arg == "--workload") {
            options.workload = cli.need(i);
        } else if (arg == "--platform") {
            options.platform = cli.need(i);
        } else if (arg == "--policy") {
            options.policy = cli.need(i);
        } else if (arg == "--trace") {
            options.trace = cli.need(i);
        } else if (arg == "--hazard") {
            options.hazard = cli.need(i);
        } else if (arg == "--migration") {
            options.migration = cli.need(i);
        } else if (arg == "--telemetry") {
            options.telemetry = cli.need(i);
        } else if (arg == "--duration") {
            options.duration = std::atof(cli.need(i));
        } else if (arg == "--seed") {
            options.seed = std::strtoull(cli.need(i), nullptr, 10);
        } else if (arg == "--bucket") {
            options.bucket = std::atof(cli.need(i));
        } else if (arg == "--learning") {
            options.learning = std::atof(cli.need(i));
        } else if (arg == "--batch") {
            std::string list = cli.need(i);
            std::size_t pos = 0;
            while (pos != std::string::npos) {
                const std::size_t comma = list.find(',', pos);
                options.batch.push_back(
                    list.substr(pos, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - pos));
                pos = comma == std::string::npos ? comma : comma + 1;
            }
        } else if (arg == "--series") {
            options.series = true;
        } else if (arg == "--csv") {
            options.csvPath = cli.need(i);
        } else if (arg == "--help" || arg == "-h") {
            cli.usage(0);
        } else {
            cli.unknown(arg);
        }
    }
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions options = parse(argc, argv);
    return runCli([&]() -> int {
        // One declarative spec carries all the axes; the runner,
        // base tunables and duration all derive from it.
        ExperimentSpec spec;
        spec.workload = options.workload;
        spec.platform = options.platform;
        spec.trace = options.trace;
        spec.policy = options.policy;
        spec.hazard = options.hazard;
        spec.telemetry = options.telemetry;
        spec.duration = options.duration;
        spec.seed = options.seed;
        spec.validate();
        // Migration moves work BETWEEN nodes, so a single-node run
        // has nowhere to send it: validate against the catalog, then
        // insist on none (use hipster_fleet for mixed-ISA fleets).
        validateMigrationSpec(options.migration);
        if (!isNoneMigration(options.migration))
            fatal("--migration ", options.migration,
                  ": single-node runs cannot migrate work; use "
                  "hipster_fleet for mixed-ISA fleets");

        const Seconds duration = spec.resolvedDuration();
        ExperimentRunner runner = spec.makeRunner();
        if (!options.batch.empty()) {
            std::vector<BatchKernel> mix;
            for (const auto &name : options.batch)
                mix.push_back(SpecCatalog::byName(name));
            runner.setBatch(std::make_shared<BatchWorkload>(mix));
        }

        HipsterParams params = spec.baseHipsterParams();
        if (options.bucket > 0.0)
            params.bucketPercent = options.bucket;
        if (options.learning >= 0.0)
            params.learningPhase = options.learning;
        // Spec overrides (e.g. hipster-in:bucket=8) are applied by
        // the registry factory on top of these base params, so the
        // most specific setting wins; hipster-co's collocated
        // variant is forced by its factory.
        auto policy =
            makePolicy(options.policy, runner.platform(), params);

        // The trace opens with the run axes + build provenance, like
        // ExperimentSpec::run() (this CLI drives the runner directly
        // for --batch and the series observer).
        if (runner.telemetry()) {
            emitTelemetryHeader(
                *runner.telemetry(),
                {{"workload", options.workload},
                 {"platform", options.platform},
                 {"trace", options.trace},
                 {"policy", options.policy},
                 {"hazard", canonicalHazardLabel(options.hazard)}},
                {{"seed", static_cast<double>(options.seed)},
                 {"duration_s", duration},
                 {"interval_s", spec.runner.interval}});
        }

        std::unique_ptr<CsvWriter> csv;
        if (!options.csvPath.empty()) {
            csv = std::make_unique<CsvWriter>(options.csvPath);
            csv->header({"time_s", "load_pct", "tail_ms", "target_ms",
                         "throughput", "power_w", "config",
                         "batch_gips"});
        }
        if (options.series) {
            std::printf("%8s %7s %10s %10s %10s %8s %-10s\n", "t(s)",
                        "load%", "tail(ms)", "thr", "power(W)",
                        "batchG", "config");
        }

        const ExperimentResult result = runner.run(
            *policy, duration, [&](const IntervalMetrics &m) {
                if (csv) {
                    csv->add(m.begin)
                        .add(m.offeredLoad * 100.0)
                        .add(m.tailLatency)
                        .add(m.qosTarget)
                        .add(m.throughput)
                        .add(m.power)
                        .add(m.config.label())
                        .add((m.batchBigIps + m.batchSmallIps) / 1e9)
                        .endRow();
                }
                if (options.series) {
                    std::printf(
                        "%8.0f %6.1f%% %10.2f %10.0f %10.2f %8.2f "
                        "%-10s%s\n",
                        m.begin, m.offeredLoad * 100.0, m.tailLatency,
                        m.throughput, m.power,
                        (m.batchBigIps + m.batchSmallIps) / 1e9,
                        m.config.label().c_str(),
                        m.qosViolated() ? "  <-- QoS violation" : "");
                }
            });

        const RunSummary &s = result.summary;
        // The hazard slot only appears when one is armed, so
        // hazard-free invocations keep their historical output.
        const std::string hazardSlot =
            isNoneHazard(options.hazard)
                ? ""
                : " / " + canonicalHazardLabel(options.hazard);
        std::printf("\n=== %s / %s / %s / %s%s, %.0f s, seed %llu ===\n",
                    result.workloadName.c_str(),
                    runner.platform().name().c_str(),
                    result.policyName.c_str(), options.trace.c_str(),
                    hazardSlot.c_str(), duration,
                    static_cast<unsigned long long>(options.seed));
        std::printf("QoS guarantee:   %.1f%%\n", s.qosGuarantee * 100.0);
        std::printf("QoS tardiness:   %.2f\n", s.qosTardiness);
        std::printf("energy:          %.0f J (mean power %.2f W)\n",
                    s.energy, s.meanPower);
        std::printf("mean throughput: %.0f\n", s.meanThroughput);
        if (!options.batch.empty())
            std::printf("mean batch IPS:  %.2f GIPS\n",
                        s.meanBatchIps / 1e9);
        std::printf("migrations:      %llu, DVFS transitions: %llu\n",
                    static_cast<unsigned long long>(result.migrations),
                    static_cast<unsigned long long>(
                        result.dvfsTransitions));
        std::printf("dropped:         %llu\n",
                    static_cast<unsigned long long>(s.dropped));
        // Telemetry-armed runs report where the trace went; off runs
        // keep the historical byte layout.
        if (runner.telemetry()) {
            const std::string text =
                runner.telemetry()->sink().summaryText();
            if (!text.empty())
                std::printf("%s\n", text.c_str());
        }
        return 0;
    });
}
