/**
 * @file
 * Mixed-ISA migration comparison: a fleet of two arm64 Juno boards
 * and two riscv64 Monte Cimone boards serving a diurnal day, with
 * work migration priced by the checkpointed hexo model.
 *
 * Two regimes, both pinned by the committed BENCH_migration.csv:
 *
 * 1. Cheap migration (migrate:hexo defaults, ~64 MB checkpoints).
 *    The migration-blind cp dispatcher churns toward a fresh share
 *    vector every interval and pays the modeled cost for every move;
 *    cost-gated cp-migrate plans few deliberate moves — draining
 *    load toward the efficient RISC-V boards — and must beat blind
 *    cp on total fleet energy at equal-or-better fleet QoS.
 *
 * 2. Expensive migration (migrate:hexo:ckpt=2048, 2 GB images).
 *    Every move now costs more than any scoring gain, so cp-migrate
 *    must decline to migrate entirely (zero moves) while blind cp
 *    keeps paying and collapses.
 *
 * The bench exits non-zero unless BOTH regimes reproduce.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "fleet/dispatcher_registry.hh"
#include "fleet/fleet_sweep.hh"

using namespace hipster;

namespace
{

/** Mixed-ISA reference fleet: two Juno-class arm64 boards plus two
 * Monte Cimone riscv64 boards, all running HipsterIn locally. */
const char kNodes[] =
    "juno@hipster-in;juno:big=4,little=8@hipster-in;"
    "montecimone@hipster-in;montecimone:u74=8@hipster-in";

const char kCheap[] = "migrate:hexo";
const char kExpensive[] = "migrate:hexo:ckpt=2048";

FleetSweepResults
runFleetBench(const FleetSweepSpec &spec, std::size_t jobs)
{
    try {
        return runFleetSweep(spec, jobs);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(1);
    }
}

/** The folded policy-axis label of a (dispatcher, migration) cell. */
std::string
foldedLabel(const std::string &dispatcher, const std::string &migration)
{
    return migration == "none" ? dispatcher
                               : dispatcher + "+" + migration;
}

/** Mean fleet-level migration stats of a (dispatcher, migration)
 * cell, from the per-run FleetRunStats. */
struct CellMigration
{
    double moves = 0.0;
    double energy = 0.0;
    double stranded = 0.0;
    std::size_t runs = 0;
};

CellMigration
cellMigration(const FleetSweepResults &results,
              const std::string &dispatcher,
              const std::string &migration)
{
    CellMigration out;
    for (const FleetRunStats &run : results.fleet) {
        if (run.dispatcher != dispatcher || run.migration != migration)
            continue;
        out.moves += static_cast<double>(run.migrationTotals.moves);
        out.energy += run.migrationTotals.energy;
        out.stranded += run.strandedCapacity;
        ++out.runs;
    }
    if (out.runs > 0) {
        out.moves /= static_cast<double>(out.runs);
        out.energy /= static_cast<double>(out.runs);
        out.stranded /= static_cast<double>(out.runs);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Fleet migration",
                  "work migration across a mixed arm64 + riscv64 fleet "
                  "under the checkpointed hexo cost model");

    FleetSweepSpec spec;
    spec.base.nodes = parseFleetNodes(kNodes);
    spec.base.workload = "memcached";
    spec.base.duration = 240.0 * options.durationScale;
    spec.dispatchers = {"dispatch:cp", "dispatch:cp-migrate",
                        "dispatch:rebalance"};
    spec.traces = {"diurnal"};
    spec.seeds = options.seeds;
    spec.masterSeed = options.masterSeed;
    spec.keepSeries = false; // only summaries are reported

    // Regime 1: cheap checkpoints — migrating onto the efficient
    // RISC-V boards can win. (migrate:none rows give the free-routing
    // baseline every dispatcher would reach without a priced model.)
    spec.migrations = {"none", kCheap};
    const FleetSweepResults cheap = runFleetBench(spec, options.jobs);

    // Regime 2: 2 GB checkpoints — every move costs more than it can
    // ever repay inside the amortization horizon.
    spec.dispatchers = {"dispatch:cp", "dispatch:cp-migrate"};
    spec.migrations = {kExpensive};
    const FleetSweepResults expensive =
        runFleetBench(spec, options.jobs);

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"regime", "dispatcher", "migration", "runs",
                     "qos_guarantee_pct", "qos_guarantee_ci95_pct",
                     "energy_j", "energy_ci95_j", "mean_power_w",
                     "moves_mean", "migration_energy_j",
                     "stranded_pct"});
    }

    std::printf("%zu nodes, %zu seeds per cell (jobs=%zu), "
                "mean ± 95%% CI:\n\n",
                spec.base.nodes.size(), options.seeds, options.jobs);
    TextTable table({"Regime", "Dispatcher", "Migration",
                     "Fleet QoS guar.", "Energy (J)", "Moves",
                     "Move energy (J)"});
    const auto report = [&](const char *regime,
                            const FleetSweepResults &results,
                            const std::string &dispatcher,
                            const std::string &migration) {
        const AggregateSummary *cell = results.sweep.find(
            foldedLabel(dispatcher, migration), "memcached");
        if (cell == nullptr) {
            std::fprintf(stderr, "missing cell %s / %s\n",
                         dispatcher.c_str(), migration.c_str());
            std::exit(1);
        }
        const CellMigration moved =
            cellMigration(results, dispatcher, migration);
        table.newRow()
            .cell(regime)
            .cell(dispatcher)
            .cell(migration)
            .cell(formatMeanCi(cell->qosGuarantee, 1, 100.0) + "%")
            .cell(formatMeanCi(cell->energy, 1))
            .cell(moved.moves, 1)
            .cell(moved.energy, 1);
        if (csv) {
            csv->add(regime)
                .add(dispatcher)
                .add(migration)
                .add(cell->runs)
                .add(cell->qosGuarantee.mean * 100.0)
                .add(cell->qosGuarantee.ci95 * 100.0)
                .add(cell->energy.mean)
                .add(cell->energy.ci95)
                .add(cell->meanPower.mean)
                .add(moved.moves)
                .add(moved.energy)
                .add(moved.stranded * 100.0)
                .endRow();
        }
        return cell;
    };

    for (const char *dispatcher :
         {"dispatch:cp", "dispatch:cp-migrate", "dispatch:rebalance"})
        report("cheap", cheap, dispatcher, "none");
    const AggregateSummary *blindCheap =
        report("cheap", cheap, "dispatch:cp", kCheap);
    const AggregateSummary *awareCheap =
        report("cheap", cheap, "dispatch:cp-migrate", kCheap);
    report("cheap", cheap, "dispatch:rebalance", kCheap);
    report("expensive", expensive, "dispatch:cp", kExpensive);
    const AggregateSummary *awareExpensive = report(
        "expensive", expensive, "dispatch:cp-migrate", kExpensive);
    table.print(std::cout);

    // Regime 1 check: cost-gated migration beats blind churn on
    // energy at equal-or-better fleet QoS.
    const bool cheapWins =
        awareCheap->qosGuarantee.mean >= blindCheap->qosGuarantee.mean &&
        awareCheap->energy.mean < blindCheap->energy.mean;

    // Regime 2 check: with 2 GB checkpoints the planner declines
    // every move, in every run.
    const CellMigration declined =
        cellMigration(expensive, "dispatch:cp-migrate", kExpensive);
    const bool expensiveDeclines =
        declined.runs > 0 && declined.moves == 0.0;
    (void)awareExpensive;

    std::printf(
        "\nShape checks: under cheap checkpoints the blind cp front\n"
        "end re-routes every interval and pays transfer latency and\n"
        "energy for each change, while cp-migrate moves only when the\n"
        "scoring gain beats the modeled cost — consolidating load\n"
        "onto the efficient riscv64 boards. Under 2 GB checkpoints no\n"
        "move can repay its cost, so the planner freezes placement.\n");
    std::printf("Measured: cheap regime — cp-migrate %s blind cp "
                "(QoS %.1f%% vs %.1f%%, energy %.1f J vs %.1f J).\n",
                cheapWins ? "beats" : "DOES NOT beat",
                awareCheap->qosGuarantee.mean * 100.0,
                blindCheap->qosGuarantee.mean * 100.0,
                awareCheap->energy.mean, blindCheap->energy.mean);
    std::printf("Measured: expensive regime — cp-migrate %s "
                "(%.1f moves/run).\n",
                expensiveDeclines ? "declines to migrate"
                                  : "STILL MIGRATES",
                declined.moves);
    return cheapWins && expensiveDeclines ? 0 : 1;
}
