/**
 * @file
 * Ablation: hybrid RL (heuristic bootstrap) vs pure RL (greedy on a
 * cold table from the start). Section 3.1 argues the hybrid avoids
 * the unacceptable QoS violations a pure learner incurs while the
 * table is still cold; this bench quantifies that on our substrate.
 *
 * The 2 workloads x 2 variants x --seeds grid runs in parallel
 * through SweepEngine with a custom job runner toggling the
 * heuristic bootstrap; rows report seed means ± 95% CI.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "bench/bench_util.hh"
#include "core/hipster_policy.hh"
#include "experiments/sweep.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Ablation: hybrid vs pure RL",
                  "QoS during and after the learning window");

    const Seconds learning =
        ScenarioDefaults::learningPhase * options.durationScale;

    SweepSpec spec = bench::sweepSpec(options);
    spec.workloads = {"memcached", "websearch"};
    spec.policies = {"hybrid", "pure-rl"};
    spec.jobRunner = [&](const SweepJob &job) {
        const Seconds duration =
            diurnalDurationFor(job.workload) * options.durationScale;
        ExperimentRunner runner(
            Platform::junoR1(), lcWorkloadByName(job.workload),
            diurnalTrace(duration, job.seed + 100), job.seed);
        HipsterParams params = tunedHipsterParams(job.workload);
        params.learningPhase = learning;
        params.useHeuristicBootstrap = job.policy == "hybrid";
        HipsterPolicy policy(runner.platform(), params);
        return runner.run(policy, duration);
    };
    const auto results = bench::runSweep(spec, options);

    // QoS over the learning window only, per cell across seeds.
    std::map<std::size_t, std::vector<double>> early_by_cell;
    for (const auto &run : results.runs) {
        std::size_t early_met = 0, early_n = 0;
        for (const auto &m : run.result.series) {
            if (m.begin < learning) {
                ++early_n;
                early_met += m.qosViolated() ? 0 : 1;
            }
        }
        early_by_cell[run.job.cell].push_back(
            early_n ? 100.0 * early_met / early_n : 0.0);
    }

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"workload", "variant", "runs", "qos_learning_pct",
                     "qos_overall_pct", "qos_overall_ci95_pct",
                     "energy_j"});
    }

    std::printf("%zu seeds per cell (jobs=%zu):\n\n", options.seeds,
                options.jobs);
    TextTable table({"workload", "variant", "QoS (learning win.)",
                     "QoS (overall)", "energy (J)"});
    for (std::size_t c = 0; c < results.cells.size(); ++c) {
        const AggregateSummary &cell = results.cells[c];
        const Estimate early = Estimate::of(early_by_cell[c]);
        table.newRow()
            .cell(cell.workload)
            .cell(cell.policy)
            .cell(formatMeanCi(early, 1) + "%")
            .cell(formatMeanCi(cell.qosGuarantee, 1, 100.0) + "%")
            .cell(formatMeanCi(cell.energy, 0));
        if (csv) {
            csv->add(cell.workload)
                .add(cell.policy)
                .add(cell.runs)
                .add(early.mean)
                .add(cell.qosGuarantee.mean * 100.0)
                .add(cell.qosGuarantee.ci95 * 100.0)
                .add(cell.energy.mean)
                .endRow();
        }
    }
    table.print(std::cout);
    std::printf("\nExpected: the hybrid's learning window keeps QoS high "
                "(heuristic picks viable rungs);\npure RL violates QoS "
                "heavily until the table warms up (the Section 3.1 "
                "argument).\n");
    return 0;
}
