/**
 * @file
 * Ablation: hybrid RL (heuristic bootstrap) vs pure RL (greedy on a
 * cold table from the start). Section 3.1 argues the hybrid avoids
 * the unacceptable QoS violations a pure learner incurs while the
 * table is still cold; this bench quantifies that on our substrate.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/hipster_policy.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Ablation: hybrid vs pure RL",
                  "QoS during and after the learning window");

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"workload", "variant", "qos_learning_pct",
                     "qos_overall_pct", "energy_j"});
    }

    TextTable table({"workload", "variant", "QoS (first 500 s)",
                     "QoS (overall)", "energy (J)"});
    for (const char *workload : {"memcached", "websearch"}) {
        const Seconds duration =
            diurnalDurationFor(workload) * options.durationScale;
        const Seconds learning =
            ScenarioDefaults::learningPhase * options.durationScale;
        for (bool hybrid : {true, false}) {
            ExperimentRunner runner =
                makeDiurnalRunner(workload, duration, 1);
            HipsterParams params = tunedHipsterParams(workload);
            params.learningPhase = learning;
            params.useHeuristicBootstrap = hybrid;
            HipsterPolicy policy(runner.platform(), params);
            const auto result = runner.run(policy, duration);

            std::size_t early_met = 0, early_n = 0;
            for (const auto &m : result.series) {
                if (m.begin < learning) {
                    ++early_n;
                    early_met += m.qosViolated() ? 0 : 1;
                }
            }
            const double early_qos =
                early_n ? 100.0 * early_met / early_n : 0.0;
            const char *variant = hybrid ? "hybrid" : "pure-RL";
            table.newRow()
                .cell(workload)
                .cell(variant)
                .cell(formatFixed(early_qos, 1) + "%")
                .percentCell(result.summary.qosGuarantee)
                .cell(result.summary.energy, 0);
            if (csv) {
                csv->add(workload)
                    .add(variant)
                    .add(early_qos)
                    .add(result.summary.qosGuarantee * 100.0)
                    .add(result.summary.energy)
                    .endRow();
            }
        }
    }
    table.print(std::cout);
    std::printf("\nExpected: the hybrid's learning window keeps QoS high "
                "(heuristic picks viable rungs);\npure RL violates QoS "
                "heavily until the table warms up (the Section 3.1 "
                "argument).\n");
    return 0;
}
