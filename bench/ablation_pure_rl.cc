/**
 * @file
 * Ablation: hybrid RL (heuristic bootstrap) vs pure RL (greedy on a
 * cold table from the start). Section 3.1 argues the hybrid avoids
 * the unacceptable QoS violations a pure learner incurs while the
 * table is still cold; this bench quantifies that on our substrate.
 *
 * The 2 workloads x 2 variants x --seeds grid runs in parallel
 * through SweepEngine's default wiring: each variant is an ordinary
 * registry policy spec ("hipster-in:learn=500" vs
 * "hipster-in:bootstrap=0,learn=500" — the same strings
 * `hipster_sweep --policies` accepts), no bespoke jobRunner
 * plumbing; rows report seed means ± 95% CI.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "experiments/sweep.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options =
        bench::parseArgs(argc, argv, bench::SweepOverrides::Supported);
    bench::banner("Ablation: hybrid vs pure RL",
                  "QoS during and after the learning window");

    const Seconds learning =
        ScenarioDefaults::learningPhase * options.durationScale;
    const std::string learn_key =
        ",learn=" + formatFixed(learning, 2);

    SweepSpec spec = bench::sweepSpec(options);
    spec.workloads = {"memcached", "websearch"};
    spec.policies = {"hipster-in:bootstrap=1" + learn_key,
                     "hipster-in:bootstrap=0" + learn_key};
    const auto results = bench::runSweep(spec, options);

    const auto variantLabel = [](const std::string &policy) {
        return policy.find("bootstrap=0") != std::string::npos
                   ? "pure-rl"
                   : "hybrid";
    };

    // QoS over the learning window only, per cell across seeds.
    std::map<std::size_t, std::vector<double>> early_by_cell;
    for (const auto &run : results.runs) {
        std::size_t early_met = 0, early_n = 0;
        for (const auto &m : run.result.series) {
            if (m.begin < learning) {
                ++early_n;
                early_met += m.qosViolated() ? 0 : 1;
            }
        }
        early_by_cell[run.job.cell].push_back(
            early_n ? 100.0 * early_met / early_n : 0.0);
    }

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"workload", "variant", "runs", "qos_learning_pct",
                     "qos_overall_pct", "qos_overall_ci95_pct",
                     "energy_j"});
    }

    std::printf("%zu seeds per cell (jobs=%zu):\n\n", options.seeds,
                options.jobs);
    TextTable table({"workload", "variant", "QoS (learning win.)",
                     "QoS (overall)", "energy (J)"});
    for (std::size_t c = 0; c < results.cells.size(); ++c) {
        const AggregateSummary &cell = results.cells[c];
        const Estimate early = Estimate::of(early_by_cell[c]);
        table.newRow()
            .cell(cell.workload)
            .cell(variantLabel(cell.policy))
            .cell(formatMeanCi(early, 1) + "%")
            .cell(formatMeanCi(cell.qosGuarantee, 1, 100.0) + "%")
            .cell(formatMeanCi(cell.energy, 0));
        if (csv) {
            csv->add(cell.workload)
                .add(variantLabel(cell.policy))
                .add(cell.runs)
                .add(early.mean)
                .add(cell.qosGuarantee.mean * 100.0)
                .add(cell.qosGuarantee.ci95 * 100.0)
                .add(cell.energy.mean)
                .endRow();
        }
    }
    table.print(std::cout);
    std::printf("\nExpected: the hybrid's learning window keeps QoS high "
                "(heuristic picks viable rungs);\npure RL violates QoS "
                "heavily until the table warms up (the Section 3.1 "
                "argument).\n");
    return 0;
}
