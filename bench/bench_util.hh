/**
 * @file
 * Shared helpers for the figure/table bench binaries: banner
 * printing, optional CSV dumping (--csv <path>), common formatting,
 * and the sweep plumbing the multi-run benches share (--seeds /
 * --jobs route every policy x workload x seed combination through
 * SweepEngine instead of hand-rolled serial loops).
 */

#ifndef HIPSTER_BENCH_BENCH_UTIL_HH
#define HIPSTER_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "experiments/sweep.hh"
#include "loadgen/trace_registry.hh"
#include "platform/platform_registry.hh"

namespace hipster::bench
{

/** Parsed common bench options. */
struct BenchOptions
{
    /** CSV output path from --csv <path> (empty = no CSV). */
    std::string csvPath;

    /** Scale factor for run durations from --quick (0.25) to smoke-
     * test a bench, default 1.0. */
    double durationScale = 1.0;

    /** Seeds per experiment cell from --seeds <n>; multi-run benches
     * sweep this many repetitions and report mean ± 95% CI. */
    std::size_t seeds = 3;

    /** Worker threads for the sweep from --jobs <n> (default: all
     * hardware threads). Aggregates are identical for any value. */
    std::size_t jobs = ThreadPool::defaultJobs();

    /** Master seed the per-run seeds derive from (--master-seed). */
    std::uint64_t masterSeed = 1;

    /** Trace-spec override from --trace <list> (empty = the bench's
     * own stimulus). Any registered registry spec is accepted, so a
     * figure can be re-run against e.g. mmpp or flashcrowd load. */
    std::vector<std::string> traces;

    /** Platform-spec override from --platform <spec> (empty = the
     * Juno R1). Any registered registry spec is accepted, so a
     * figure can be re-run on e.g. juno:big=4,little=8 or hetero. */
    std::string platform;
};

/**
 * Whether a bench honours the --trace / --platform overrides. Only
 * benches that run the SweepEngine's default job wiring do;
 * ablation_relearn and the hand-rolled single-run figures drive a
 * fixed setup and must reject the flags rather than silently ignore
 * them (the results would otherwise be mislabeled with the
 * requested stimulus or board).
 */
enum class SweepOverrides
{
    Rejected, ///< fixed setup; --trace / --platform are errors
    Supported ///< default sweep wiring; the axes are reroutable
};

inline BenchOptions
parseArgs(int argc, char **argv,
          SweepOverrides overrides = SweepOverrides::Rejected)
{
    BenchOptions options;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing argument for %s\n", argv[i]);
            std::exit(1);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv") {
            options.csvPath = need(i);
        } else if (arg == "--quick") {
            options.durationScale = 0.25;
        } else if (arg == "--seeds") {
            options.seeds = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--jobs") {
            options.jobs = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--master-seed") {
            options.masterSeed = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--trace" || arg == "--traces") {
            if (overrides == SweepOverrides::Rejected) {
                std::fprintf(stderr,
                             "%s: this bench drives a fixed stimulus "
                             "and does not honour --trace\n",
                             arg.c_str());
                std::exit(1);
            }
            options.traces = splitTraceList(need(i));
        } else if (arg == "--platform") {
            if (overrides == SweepOverrides::Rejected) {
                std::fprintf(stderr,
                             "--platform: this bench drives a fixed "
                             "setup and does not honour platform "
                             "overrides\n");
                std::exit(1);
            }
            options.platform = need(i);
        } else if (arg == "--list-platforms") {
            std::fputs(
                PlatformRegistry::instance().catalogText().c_str(),
                stdout);
            std::exit(0);
        } else if (arg == "--list-traces") {
            std::fputs(
                TraceRegistry::instance().catalogText().c_str(),
                stdout);
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--csv <path>] [--quick] "
                        "[--seeds <n>] [--jobs <n>] "
                        "[--master-seed <n>]%s [--list-traces] "
                        "[--list-platforms]\n",
                        argv[0],
                        overrides == SweepOverrides::Supported
                            ? " [--trace <spec,...>] "
                              "[--platform <spec>]"
                            : "");
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            std::exit(1);
        }
    }
    // Validate here: the bench mains have no FatalError handler, so
    // garbage must not reach SweepEngine/ThreadPool as an exception.
    if (options.seeds == 0 || options.seeds > SweepSpec::kMaxSeeds) {
        std::fprintf(stderr, "--seeds must be in [1, %zu]\n",
                     SweepSpec::kMaxSeeds);
        std::exit(1);
    }
    if (options.jobs == 0 || options.jobs > ThreadPool::kMaxThreads) {
        std::fprintf(stderr, "--jobs must be in [1, %zu]\n",
                     ThreadPool::kMaxThreads);
        std::exit(1);
    }
    // One spec only: the figure benches report a single stimulus
    // (their lookups, contrast loops and banners all assume it); a
    // multi-trace campaign belongs in hipster_sweep.
    if (options.traces.size() > 1) {
        std::fprintf(stderr,
                     "--trace: benches take a single trace spec (got "
                     "%zu); use hipster_sweep for multi-trace "
                     "campaigns\n",
                     options.traces.size());
        std::exit(1);
    }
    for (const std::string &trace : options.traces) {
        try {
            validateTraceSpec(trace);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "--trace: %s\n", e.what());
            std::exit(1);
        }
    }
    if (!options.platform.empty()) {
        try {
            validatePlatformSpec(options.platform);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "--platform: %s\n", e.what());
            std::exit(1);
        }
    }
    return options;
}

/** The stimulus name to print in banners: the --trace override when
 * given, else the bench's default. */
inline std::string
traceLabel(const BenchOptions &options,
           const std::string &default_label = "diurnal")
{
    return options.traces.empty() ? default_label : options.traces[0];
}

/** Open the CSV writer when requested. */
inline std::unique_ptr<CsvWriter>
maybeCsv(const BenchOptions &options)
{
    if (options.csvPath.empty())
        return nullptr;
    return std::make_unique<CsvWriter>(options.csvPath);
}

/** Print the experiment banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("=====================================================\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("Reproduction on the simulated ARM Juno R1 substrate.\n");
    std::printf("=====================================================\n\n");
}

/** A SweepSpec pre-filled from the common bench options. */
inline SweepSpec
sweepSpec(const BenchOptions &options)
{
    SweepSpec spec;
    spec.seeds = options.seeds;
    spec.masterSeed = options.masterSeed;
    spec.durationScale = options.durationScale;
    if (!options.traces.empty())
        spec.traces = options.traces;
    if (!options.platform.empty())
        spec.platforms = {options.platform};
    return spec;
}

/** Run a spec with the bench's --jobs setting. The bench mains have
 * no FatalError handler, so engine-level validation failures (e.g. a
 * --trace splice that doesn't fit this bench's run length) must exit
 * cleanly instead of reaching std::terminate. */
inline SweepResults
runSweep(const SweepSpec &spec, const BenchOptions &options)
{
    try {
        return SweepEngine(spec).run(options.jobs);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(1);
    }
}

} // namespace hipster::bench

#endif // HIPSTER_BENCH_BENCH_UTIL_HH
