/**
 * @file
 * Shared helpers for the figure/table bench binaries: banner
 * printing, optional CSV dumping (--csv <path>), and common
 * formatting.
 */

#ifndef HIPSTER_BENCH_BENCH_UTIL_HH
#define HIPSTER_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "common/csv.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace hipster::bench
{

/** Parsed common bench options. */
struct BenchOptions
{
    /** CSV output path from --csv <path> (empty = no CSV). */
    std::string csvPath;

    /** Scale factor for run durations from --quick (0.25) to smoke-
     * test a bench, default 1.0. */
    double durationScale = 1.0;
};

inline BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv" && i + 1 < argc) {
            options.csvPath = argv[++i];
        } else if (arg == "--quick") {
            options.durationScale = 0.25;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--csv <path>] [--quick]\n", argv[0]);
            std::exit(0);
        }
    }
    return options;
}

/** Open the CSV writer when requested. */
inline std::unique_ptr<CsvWriter>
maybeCsv(const BenchOptions &options)
{
    if (options.csvPath.empty())
        return nullptr;
    return std::make_unique<CsvWriter>(options.csvPath);
}

/** Print the experiment banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("=====================================================\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("Reproduction on the simulated ARM Juno R1 substrate.\n");
    std::printf("=====================================================\n\n");
}

} // namespace hipster::bench

#endif // HIPSTER_BENCH_BENCH_UTIL_HH
