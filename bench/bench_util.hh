/**
 * @file
 * Shared helpers for the figure/table bench binaries: banner
 * printing, optional CSV dumping (--csv <path>), common formatting,
 * and the sweep plumbing the multi-run benches share (--seeds /
 * --jobs route every policy x workload x seed combination through
 * SweepEngine instead of hand-rolled serial loops).
 */

#ifndef HIPSTER_BENCH_BENCH_UTIL_HH
#define HIPSTER_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>

#include "common/csv.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "experiments/sweep.hh"

namespace hipster::bench
{

/** Parsed common bench options. */
struct BenchOptions
{
    /** CSV output path from --csv <path> (empty = no CSV). */
    std::string csvPath;

    /** Scale factor for run durations from --quick (0.25) to smoke-
     * test a bench, default 1.0. */
    double durationScale = 1.0;

    /** Seeds per experiment cell from --seeds <n>; multi-run benches
     * sweep this many repetitions and report mean ± 95% CI. */
    std::size_t seeds = 3;

    /** Worker threads for the sweep from --jobs <n> (default: all
     * hardware threads). Aggregates are identical for any value. */
    std::size_t jobs = ThreadPool::defaultJobs();

    /** Master seed the per-run seeds derive from (--master-seed). */
    std::uint64_t masterSeed = 1;
};

inline BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions options;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing argument for %s\n", argv[i]);
            std::exit(1);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv") {
            options.csvPath = need(i);
        } else if (arg == "--quick") {
            options.durationScale = 0.25;
        } else if (arg == "--seeds") {
            options.seeds = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--jobs") {
            options.jobs = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--master-seed") {
            options.masterSeed = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--csv <path>] [--quick] "
                        "[--seeds <n>] [--jobs <n>] "
                        "[--master-seed <n>]\n",
                        argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            std::exit(1);
        }
    }
    // Validate here: the bench mains have no FatalError handler, so
    // garbage must not reach SweepEngine/ThreadPool as an exception.
    if (options.seeds == 0 || options.seeds > SweepSpec::kMaxSeeds) {
        std::fprintf(stderr, "--seeds must be in [1, %zu]\n",
                     SweepSpec::kMaxSeeds);
        std::exit(1);
    }
    if (options.jobs == 0 || options.jobs > ThreadPool::kMaxThreads) {
        std::fprintf(stderr, "--jobs must be in [1, %zu]\n",
                     ThreadPool::kMaxThreads);
        std::exit(1);
    }
    return options;
}

/** Open the CSV writer when requested. */
inline std::unique_ptr<CsvWriter>
maybeCsv(const BenchOptions &options)
{
    if (options.csvPath.empty())
        return nullptr;
    return std::make_unique<CsvWriter>(options.csvPath);
}

/** Print the experiment banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("=====================================================\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("Reproduction on the simulated ARM Juno R1 substrate.\n");
    std::printf("=====================================================\n\n");
}

/** A SweepSpec pre-filled from the common bench options. */
inline SweepSpec
sweepSpec(const BenchOptions &options)
{
    SweepSpec spec;
    spec.seeds = options.seeds;
    spec.masterSeed = options.masterSeed;
    spec.durationScale = options.durationScale;
    return spec;
}

/** Run a spec with the bench's --jobs setting. */
inline SweepResults
runSweep(const SweepSpec &spec, const BenchOptions &options)
{
    return SweepEngine(spec).run(options.jobs);
}

} // namespace hipster::bench

#endif // HIPSTER_BENCH_BENCH_UTIL_HH
