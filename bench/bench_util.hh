/**
 * @file
 * Shared helpers for the figure/table bench binaries: banner
 * printing, optional CSV dumping (--csv <path>), common formatting,
 * and the sweep plumbing the multi-run benches share (--seeds /
 * --jobs route every policy x workload x seed combination through
 * SweepEngine instead of hand-rolled serial loops).
 */

#ifndef HIPSTER_BENCH_BENCH_UTIL_HH
#define HIPSTER_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "experiments/sweep.hh"
#include "loadgen/trace_registry.hh"

namespace hipster::bench
{

/** Parsed common bench options. */
struct BenchOptions
{
    /** CSV output path from --csv <path> (empty = no CSV). */
    std::string csvPath;

    /** Scale factor for run durations from --quick (0.25) to smoke-
     * test a bench, default 1.0. */
    double durationScale = 1.0;

    /** Seeds per experiment cell from --seeds <n>; multi-run benches
     * sweep this many repetitions and report mean ± 95% CI. */
    std::size_t seeds = 3;

    /** Worker threads for the sweep from --jobs <n> (default: all
     * hardware threads). Aggregates are identical for any value. */
    std::size_t jobs = ThreadPool::defaultJobs();

    /** Master seed the per-run seeds derive from (--master-seed). */
    std::uint64_t masterSeed = 1;

    /** Trace-spec override from --trace <list> (empty = the bench's
     * own stimulus). Any registered registry spec is accepted, so a
     * figure can be re-run against e.g. mmpp or flashcrowd load. */
    std::vector<std::string> traces;
};

/**
 * Whether a bench honours --trace overrides. Only benches that run
 * the SweepEngine's default job wiring do; the ablations and the
 * hand-rolled single-run figures drive a fixed stimulus and must
 * reject the flag rather than silently ignore it (the results would
 * otherwise be mislabeled with the requested trace).
 */
enum class TraceOverride
{
    Rejected, ///< fixed stimulus; --trace is an error
    Supported ///< default sweep wiring; --trace reroutes the load
};

inline BenchOptions
parseArgs(int argc, char **argv,
          TraceOverride trace_override = TraceOverride::Rejected)
{
    BenchOptions options;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing argument for %s\n", argv[i]);
            std::exit(1);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--csv") {
            options.csvPath = need(i);
        } else if (arg == "--quick") {
            options.durationScale = 0.25;
        } else if (arg == "--seeds") {
            options.seeds = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--jobs") {
            options.jobs = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--master-seed") {
            options.masterSeed = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--trace" || arg == "--traces") {
            if (trace_override == TraceOverride::Rejected) {
                std::fprintf(stderr,
                             "%s: this bench drives a fixed stimulus "
                             "and does not honour --trace\n",
                             arg.c_str());
                std::exit(1);
            }
            options.traces = splitTraceList(need(i));
        } else if (arg == "--list-traces") {
            std::fputs(
                TraceRegistry::instance().catalogText().c_str(),
                stdout);
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [--csv <path>] [--quick] "
                        "[--seeds <n>] [--jobs <n>] "
                        "[--master-seed <n>]%s [--list-traces]\n",
                        argv[0],
                        trace_override == TraceOverride::Supported
                            ? " [--trace <spec,...>]"
                            : "");
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            std::exit(1);
        }
    }
    // Validate here: the bench mains have no FatalError handler, so
    // garbage must not reach SweepEngine/ThreadPool as an exception.
    if (options.seeds == 0 || options.seeds > SweepSpec::kMaxSeeds) {
        std::fprintf(stderr, "--seeds must be in [1, %zu]\n",
                     SweepSpec::kMaxSeeds);
        std::exit(1);
    }
    if (options.jobs == 0 || options.jobs > ThreadPool::kMaxThreads) {
        std::fprintf(stderr, "--jobs must be in [1, %zu]\n",
                     ThreadPool::kMaxThreads);
        std::exit(1);
    }
    // One spec only: the figure benches report a single stimulus
    // (their lookups, contrast loops and banners all assume it); a
    // multi-trace campaign belongs in hipster_sweep.
    if (options.traces.size() > 1) {
        std::fprintf(stderr,
                     "--trace: benches take a single trace spec (got "
                     "%zu); use hipster_sweep for multi-trace "
                     "campaigns\n",
                     options.traces.size());
        std::exit(1);
    }
    for (const std::string &trace : options.traces) {
        try {
            validateTraceSpec(trace);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "--trace: %s\n", e.what());
            std::exit(1);
        }
    }
    return options;
}

/** The stimulus name to print in banners: the --trace override when
 * given, else the bench's default. */
inline std::string
traceLabel(const BenchOptions &options,
           const std::string &default_label = "diurnal")
{
    return options.traces.empty() ? default_label : options.traces[0];
}

/** Open the CSV writer when requested. */
inline std::unique_ptr<CsvWriter>
maybeCsv(const BenchOptions &options)
{
    if (options.csvPath.empty())
        return nullptr;
    return std::make_unique<CsvWriter>(options.csvPath);
}

/** Print the experiment banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("=====================================================\n");
    std::printf("%s — %s\n", id.c_str(), what.c_str());
    std::printf("Reproduction on the simulated ARM Juno R1 substrate.\n");
    std::printf("=====================================================\n\n");
}

/** A SweepSpec pre-filled from the common bench options. */
inline SweepSpec
sweepSpec(const BenchOptions &options)
{
    SweepSpec spec;
    spec.seeds = options.seeds;
    spec.masterSeed = options.masterSeed;
    spec.durationScale = options.durationScale;
    if (!options.traces.empty())
        spec.traces = options.traces;
    return spec;
}

/** Run a spec with the bench's --jobs setting. The bench mains have
 * no FatalError handler, so engine-level validation failures (e.g. a
 * --trace splice that doesn't fit this bench's run length) must exit
 * cleanly instead of reaching std::terminate. */
inline SweepResults
runSweep(const SweepSpec &spec, const BenchOptions &options)
{
    try {
        return SweepEngine(spec).run(options.jobs);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(1);
    }
}

} // namespace hipster::bench

#endif // HIPSTER_BENCH_BENCH_UTIL_HH
