/**
 * @file
 * Table 1: workload configurations — max load while meeting the
 * target tail latency with two big cores. We print the encoded
 * configuration and verify the max-load anchor by measurement.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "experiments/oracle.hh"
#include "experiments/scenario.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Table 1",
                  "Workload configurations and max-load anchors");

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"app", "max_load", "target_ms", "percentile",
                     "tail_at_max_ms", "met"});
    }

    TextTable table({"App", "Max load", "Target tail", "Measured tail "
                     "@100% on 2B-1.15", "Met"});
    for (const char *name : {"memcached", "websearch"}) {
        const LcWorkloadDef def = lcWorkloadByName(name);
        OracleOptions oracle_options;
        oracle_options.warmup = 4.0;
        oracle_options.measure = 24.0 * options.durationScale;
        HetCmpOracle oracle(Platform::junoR1(), def, oracle_options);
        const auto m = oracle.measure(1.0, parseCoreConfig("2B-1.15",
                                                           0.65));
        const std::string unit = name[0] == 'm' ? " RPS" : " QPS";
        table.newRow()
            .cell(def.params.name)
            .cell(formatFixed(def.params.maxLoad, 0) + unit)
            .cell(formatFixed(def.params.qosTargetMs, 0) + " ms (p" +
                  formatFixed(def.params.tailPercentile, 0) + ")")
            .cell(formatFixed(m.tailLatency, 1) + " ms")
            .cell(m.feasible ? "yes" : "NO");
        if (csv) {
            csv->add(def.params.name)
                .add(def.params.maxLoad)
                .add(def.params.qosTargetMs)
                .add(def.params.tailPercentile)
                .add(m.tailLatency)
                .add(m.feasible ? 1 : 0)
                .endRow();
        }
    }
    table.print(std::cout);
    std::printf("\nPaper Table 1: Memcached 36 000 RPS @ 10 ms (95th "
                "pct); Web-Search 44 QPS @ 500 ms (90th pct),\n2 s think "
                "time. Max load is defined as what two big cores at the "
                "highest DVFS can serve.\n");
    return 0;
}
