/**
 * @file
 * Hazard resilience study: how the Table 3 managers survive injected
 * adversity, and where the steady-state policy ranking flips.
 *
 * Two sections, each a (policy x {steady, hazard}) sweep under
 * common random numbers:
 *
 *  - "tail-survival": a flash-crowd day overlapped with thermal
 *    throttling + a noisy neighbor. The throttle caps the OPP ladder
 *    exactly when the crowd needs the headroom, and the interference
 *    bursts inflate the tail further — policies that learned a
 *    power-optimal table under clean conditions are driven off it.
 *
 *  - "relearn": a diurnal day under node crashes (nodefail with
 *    reboot): every restore cold-starts the task manager, so
 *    HipsterIn pays its learning phase again and again while the
 *    stateless heuristics resume instantly.
 *
 * Exits non-zero unless at least one pairwise policy ranking (by
 * mean QoS guarantee) changes between the steady and hazarded arms —
 * the committed BENCH_hazard.csv pins that ranking change.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "hazards/hazard_registry.hh"

using namespace hipster;

namespace
{

struct Section
{
    const char *name;
    const char *trace;
    const char *hazard;
    Seconds duration;
};

const Section kSections[] = {
    {"tail-survival", "flashcrowd:0.25,0.95,240,45,90",
     "hazard:thermal:tdp_cap=0.55,tau=20s+"
     "interference:burst=2,on=30s,off=45s",
     480.0},
    {"relearn", "diurnal", "hazard:nodefail:mtbf=150s,mttr=20s",
     480.0},
};

const char *kPolicies[] = {"hipster-in:learn=90", "heuristic",
                           "octopus-man", "static-big"};

/** Cells of one hazard arm, in kPolicies order. */
std::vector<const AggregateSummary *>
arm(const SweepResults &results, const std::string &hazard)
{
    std::vector<const AggregateSummary *> cells;
    for (const char *policy : kPolicies) {
        const AggregateSummary *found = nullptr;
        for (const AggregateSummary &cell : results.cells)
            if (cell.policy == policy && cell.hazard == hazard)
                found = &cell;
        if (!found) {
            std::fprintf(stderr, "missing cell %s / %s\n", policy,
                         hazard.c_str());
            std::exit(1);
        }
        cells.push_back(found);
    }
    return cells;
}

/** Rank of each policy (1 = best QoS guarantee) within one arm. */
std::vector<std::size_t>
ranks(const std::vector<const AggregateSummary *> &cells)
{
    std::vector<std::size_t> rank(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::size_t better = 0;
        for (std::size_t j = 0; j < cells.size(); ++j)
            if (cells[j]->qosGuarantee.mean >
                cells[i]->qosGuarantee.mean)
                ++better;
        rank[i] = better + 1;
    }
    return rank;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Hazard resilience",
                  "Table 3 managers under injected faults, throttling "
                  "and chaos");

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"section", "policy", "hazard", "runs",
                     "qos_guarantee_pct", "qos_guarantee_ci95_pct",
                     "qos_tardiness", "energy_j", "energy_ci95_j",
                     "mean_power_w", "qos_rank"});
    }

    bool ranking_changed = false;
    for (const Section &section : kSections) {
        SweepSpec spec = bench::sweepSpec(options);
        spec.traces = {section.trace};
        spec.policies.assign(std::begin(kPolicies),
                             std::end(kPolicies));
        spec.hazards = {"none", section.hazard};
        spec.duration = section.duration * options.durationScale;
        spec.keepSeries = false; // only summaries are reported
        const auto results = bench::runSweep(spec, options);

        const auto steady = arm(results, "none");
        const auto hazarded =
            arm(results, canonicalHazardLabel(section.hazard));
        const auto steadyRank = ranks(steady);
        const auto hazardRank = ranks(hazarded);
        const bool flipped = steadyRank != hazardRank;
        ranking_changed |= flipped;

        std::printf("[%s] %s under %s, %zu seeds (jobs=%zu):\n\n",
                    section.name, section.trace, section.hazard,
                    options.seeds, options.jobs);
        TextTable table({"Policy", "Arm", "QoS guar.", "Tardiness",
                         "Energy (J)", "Power (W)", "Rank"});
        for (std::size_t i = 0; i < steady.size(); ++i) {
            const struct
            {
                const AggregateSummary *cell;
                const char *label;
                std::size_t rank;
            } arms[] = {{steady[i], "steady", steadyRank[i]},
                        {hazarded[i], "hazard", hazardRank[i]}};
            for (const auto &a : arms) {
                table.newRow()
                    .cell(kPolicies[i])
                    .cell(a.label)
                    .cell(formatMeanCi(a.cell->qosGuarantee, 1, 100.0) +
                          "%")
                    .cell(a.cell->qosTardiness.mean, 2)
                    .cell(formatMeanCi(a.cell->energy, 1))
                    .cell(formatMeanCi(a.cell->meanPower, 2))
                    .cell(a.rank, 0);
                if (csv) {
                    csv->add(section.name)
                        .add(kPolicies[i])
                        .add(a.cell->hazard)
                        .add(a.cell->runs)
                        .add(a.cell->qosGuarantee.mean * 100.0)
                        .add(a.cell->qosGuarantee.ci95 * 100.0)
                        .add(a.cell->qosTardiness.mean)
                        .add(a.cell->energy.mean)
                        .add(a.cell->energy.ci95)
                        .add(a.cell->meanPower.mean)
                        .add(a.rank)
                        .endRow();
                }
            }
        }
        table.print(std::cout);
        std::printf("%s: policy QoS ranking %s under this hazard.\n\n",
                    section.name,
                    flipped ? "CHANGES" : "is unchanged");
    }

    std::printf(
        "Shape check: adversity must reorder at least one policy\n"
        "pair — learned managers lose their table to reboots and get\n"
        "throttled off their learned operating points, while the\n"
        "stateless baselines degrade but keep their relative shape.\n");
    std::printf("Measured: ranking %s under hazards.\n",
                ranking_changed ? "changed" : "DID NOT change");
    return ranking_changed ? 0 : 1;
}
