/**
 * @file
 * Fleet dispatch comparison: the four built-in dispatchers routing a
 * diurnal day across the default 4-node mixed fleet (two Juno-class
 * boards and two hetero boards, all running HipsterIn locally).
 *
 * Shape checks: round-robin ignores both capacity and thermals, so
 * it overdrives the small boards (poor fleet QoS) while leaving the
 * big ones padded (high energy). The CP dispatcher — scoring node
 * assignments against predicted slack and power headroom — must
 * beat round-robin on fleet energy at equal-or-better fleet QoS
 * guarantee (the committed BENCH_fleet.csv pins this comparison;
 * tests/fleet/test_fleet_sweep.cc asserts it at short length).
 *
 * 4 dispatchers x --seeds repetitions run in parallel through the
 * fleet sweep; cells report seed means (± 95% CI).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "fleet/dispatcher_registry.hh"
#include "fleet/fleet_sweep.hh"

using namespace hipster;

namespace
{

/** The reference fleet: the same 4-node mixed board set the
 * hipster_fleet CLI defaults to and the golden fleet pin runs. */
const char kNodes[] =
    "juno@hipster-in;juno:big=4,little=8@hipster-in;"
    "hetero:big=2,little=8@hipster-in;"
    "hetero:big=6,little=6@hipster-in";

FleetSweepResults
runFleetBench(const FleetSweepSpec &spec, std::size_t jobs)
{
    try {
        return runFleetSweep(spec, jobs);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Fleet dispatch",
                  "4 dispatchers routing a diurnal day over a 4-node "
                  "mixed fleet");

    FleetSweepSpec spec;
    spec.base.nodes = parseFleetNodes(kNodes);
    spec.base.workload = "memcached";
    spec.base.duration = 240.0 * options.durationScale;
    spec.dispatchers.clear();
    for (const DispatcherInfo &info :
         DispatcherRegistry::instance().entries())
        spec.dispatchers.push_back(canonicalDispatcherLabel(info.name));
    spec.traces = {"diurnal"};
    spec.seeds = options.seeds;
    spec.masterSeed = options.masterSeed;
    spec.keepSeries = false; // only summaries are reported
    const auto results = runFleetBench(spec, options.jobs);

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"dispatcher", "runs", "qos_guarantee_pct",
                     "qos_guarantee_ci95_pct", "energy_j",
                     "energy_ci95_j", "mean_power_w", "stranded_pct",
                     "energy_vs_rr_pct"});
    }

    const AggregateSummary *rr =
        results.sweep.find("dispatch:round-robin", spec.base.workload);

    std::printf("%zu nodes, %zu seeds per cell (jobs=%zu), "
                "mean ± 95%% CI:\n\n",
                spec.base.nodes.size(), options.seeds, options.jobs);
    TextTable table({"Dispatcher", "Fleet QoS guar.", "Energy (J)",
                     "Mean power (W)", "Stranded cap.", "Energy vs RR"});
    for (const std::string &dispatcher : spec.dispatchers) {
        const AggregateSummary *cell =
            results.sweep.find(dispatcher, spec.base.workload);
        const double stranded = results.meanStranded(dispatcher);
        const double vs_rr = 1.0 - cell->energy.mean / rr->energy.mean;
        table.newRow()
            .cell(dispatcher)
            .cell(formatMeanCi(cell->qosGuarantee, 1, 100.0) + "%")
            .cell(formatMeanCi(cell->energy, 1))
            .cell(formatMeanCi(cell->meanPower, 2))
            .cell(stranded * 100.0, 1)
            .percentCell(vs_rr);
        if (csv) {
            csv->add(dispatcher)
                .add(cell->runs)
                .add(cell->qosGuarantee.mean * 100.0)
                .add(cell->qosGuarantee.ci95 * 100.0)
                .add(cell->energy.mean)
                .add(cell->energy.ci95)
                .add(cell->meanPower.mean)
                .add(stranded * 100.0)
                .add(vs_rr * 100.0)
                .endRow();
        }
    }
    table.print(std::cout);

    const AggregateSummary *cp =
        results.sweep.find("dispatch:cp", spec.base.workload);
    const bool cp_wins = cp->qosGuarantee.mean >= rr->qosGuarantee.mean &&
                         cp->energy.mean < rr->energy.mean;
    std::printf(
        "\nShape checks: capacity-blind round-robin overdrives the\n"
        "small boards (fleet QoS counts an interval only when every\n"
        "node meets its target) while padding the big ones; the CP\n"
        "dispatcher trades slack for power headroom per node.\n");
    std::printf("Measured: dispatch:cp %s dispatch:round-robin "
                "(QoS %.1f%% vs %.1f%%, energy %.1f J vs %.1f J).\n",
                cp_wins ? "beats" : "DOES NOT beat",
                cp->qosGuarantee.mean * 100.0,
                rr->qosGuarantee.mean * 100.0, cp->energy.mean,
                rr->energy.mean);
    return cp_wins ? 0 : 1;
}
