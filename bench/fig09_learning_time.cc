/**
 * @file
 * Figure 9: impact of learning time. Web-Search runs under HipsterIn
 * with a short (200 s) learning phase; the QoS guarantee is reported
 * per 100 s window for HipsterIn and Octopus-Man. Paper claim:
 * HipsterIn's guarantee climbs quickly after the learning phase,
 * while Octopus-Man stays flat around the 80% mark.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/baselines.hh"
#include "core/hipster_policy.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Figure 9",
                  "QoS guarantee per 100 s window (Web-Search, 200 s "
                  "learning phase)");

    const Seconds duration = 1500.0 * options.durationScale;
    const Seconds window = 100.0;

    // The short learning phase is a registry spec override — the
    // exact string a CLI user would pass — not bespoke struct
    // plumbing (Octopus-Man has no learning phase, so its spec is
    // bare).
    const std::string hipsterSpec =
        "hipster-in:learn=" +
        formatFixed(ScenarioDefaults::shortLearningPhase, 0);

    auto run = [&](const std::string &spec) {
        ExperimentRunner runner = makeDiurnalRunner("websearch",
                                                    duration, 7);
        auto policy = makePolicy(spec, runner.platform(),
                                 tunedHipsterParams("websearch"));
        return runner.run(*policy, duration);
    };

    const auto hipster = run(hipsterSpec);
    const auto octopus = run("octopus-man");

    auto csv = bench::maybeCsv(options);
    if (csv)
        csv->header({"window", "hipster_qos", "octopus_qos"});

    TextTable table({"window", "time (s)", "HipsterIn QoS",
                     "Octopus-Man QoS"});
    const std::size_t windows =
        hipster.series.size() / static_cast<std::size_t>(window);
    double hipster_late = 0.0, octopus_late = 0.0;
    std::size_t late_count = 0;
    for (std::size_t w = 0; w < windows; ++w) {
        std::size_t h_met = 0, o_met = 0, n = 0;
        for (std::size_t k = w * 100; k < (w + 1) * 100 &&
                                      k < hipster.series.size();
             ++k) {
            h_met += hipster.series[k].qosViolated() ? 0 : 1;
            o_met += octopus.series[k].qosViolated() ? 0 : 1;
            ++n;
        }
        const double h_qos = 100.0 * h_met / n;
        const double o_qos = 100.0 * o_met / n;
        if (w >= 3) { // after the learning phase settles
            hipster_late += h_qos;
            octopus_late += o_qos;
            ++late_count;
        }
        table.newRow()
            .cell(static_cast<long long>(w))
            .cell(static_cast<long long>(w * 100))
            .cell(h_qos, 1)
            .cell(o_qos, 1);
        if (csv)
            csv->add(w).add(h_qos).add(o_qos).endRow();
    }
    table.print(std::cout);

    std::printf("\nPost-learning mean (windows 3+): HipsterIn %.1f%%, "
                "Octopus-Man %.1f%%\n",
                late_count ? hipster_late / late_count : 0.0,
                late_count ? octopus_late / late_count : 0.0);
    std::printf("Paper: HipsterIn learns within the heuristic phase and "
                "then exceeds Octopus-Man,\nwhich hovers around 80%% "
                "because it never uses past decisions.\n");
    return 0;
}
