/**
 * @file
 * Figure 10: impact of the load-bucket size on HipsterIn's QoS
 * violations and energy savings, normalized to the static all-big
 * mapping. The paper sweeps 3/6/9% for Web-Search and 2/3/4% for
 * Memcached and observes: small buckets save more energy but incur
 * more QoS violations; large buckets are safer but save less.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/baselines.hh"
#include "core/hipster_policy.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Figure 10",
                  "Bucket-size sweep: QoS violations and energy savings "
                  "vs static all-big");

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"workload", "bucket_pct", "qos_violations_pct",
                     "energy_reduction_pct"});
    }

    struct Sweep
    {
        const char *workload;
        std::vector<double> buckets;
    };
    // Paper's sweep points, plus a coarser point per workload to
    // expose the full trend on our substrate.
    const Sweep sweeps[] = {
        {"websearch", {3.0, 6.0, 9.0, 12.0}},
        {"memcached", {2.0, 3.0, 4.0, 8.0}},
    };

    for (const auto &sweep : sweeps) {
        const Seconds duration =
            diurnalDurationFor(sweep.workload) * options.durationScale;

        // Baseline energy: static all-big.
        ExperimentRunner base_runner =
            makeDiurnalRunner(sweep.workload, duration, 1);
        StaticPolicy static_big =
            StaticPolicy::allBig(base_runner.platform());
        const auto baseline = base_runner.run(static_big, duration);

        std::printf("--- %s ---\n", sweep.workload);
        TextTable table({"bucket", "QoS violations", "energy saving",
                         "migrations"});
        double prev_energy_saving = 1e9;
        for (double bucket : sweep.buckets) {
            ExperimentRunner runner =
                makeDiurnalRunner(sweep.workload, duration, 1);
            HipsterParams params = tunedHipsterParams(sweep.workload);
            params.bucketPercent = bucket;
            params.learningPhase =
                ScenarioDefaults::learningPhase * options.durationScale;
            HipsterPolicy policy(runner.platform(), params);
            const auto result = runner.run(policy, duration);

            const double violations =
                (1.0 - result.summary.qosGuarantee) * 100.0;
            const double saving =
                result.summary.energyReductionVs(baseline.summary) *
                100.0;
            table.newRow()
                .cell(formatFixed(bucket, 0) + "%")
                .percentCell((100.0 - result.summary.qosGuarantee *
                                          100.0) /
                                 100.0,
                             1)
                .cell(formatFixed(saving, 1) + "%")
                .cell(static_cast<long long>(result.migrations));
            if (csv) {
                csv->add(sweep.workload)
                    .add(bucket)
                    .add(violations)
                    .add(saving)
                    .endRow();
            }
            prev_energy_saving = saving;
        }
        (void)prev_energy_saving;
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf(
        "Paper's trend: smaller buckets -> finer control -> more energy\n"
        "saving but more QoS violations; larger buckets -> the "
        "opposite.\n");
    return 0;
}
