/**
 * @file
 * Figure 10: impact of the load-bucket size on HipsterIn's QoS
 * violations and energy savings, normalized to the static all-big
 * mapping. The paper sweeps 3/6/9% for Web-Search and 2/3/4% for
 * Memcached and observes: small buckets save more energy but incur
 * more QoS violations; large buckets are safer but save less.
 *
 * Every bucket point is an ordinary sweep cell driven by a generated
 * policy spec ("hipster-in:bucket=<pct>") — the same strings
 * `hipster_sweep --policies` accepts — so there is no bespoke
 * construction path; --seeds repetitions per cell report seed means.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "experiments/sweep.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options =
        bench::parseArgs(argc, argv, bench::SweepOverrides::Supported);
    bench::banner("Figure 10",
                  "Bucket-size sweep: QoS violations and energy savings "
                  "vs static all-big");

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"workload", "policy_spec", "bucket_pct",
                     "qos_violations_pct", "energy_reduction_pct",
                     "migrations"});
    }

    struct Sweep
    {
        const char *workload;
        std::vector<double> buckets;
    };
    // Paper's sweep points, plus a coarser point per workload to
    // expose the full trend on our substrate.
    const Sweep sweeps[] = {
        {"websearch", {3.0, 6.0, 9.0, 12.0}},
        {"memcached", {2.0, 3.0, 4.0, 8.0}},
    };

    for (const auto &sweep : sweeps) {
        // One campaign per workload: the static all-big baseline and
        // one parameterized HipsterIn spec per bucket width.
        SweepSpec spec = bench::sweepSpec(options);
        spec.workloads = {sweep.workload};
        spec.keepSeries = false;
        spec.policies = {"static-big"};
        std::vector<std::string> bucketSpecs;
        for (double bucket : sweep.buckets) {
            bucketSpecs.push_back("hipster-in:bucket=" +
                                  formatFixed(bucket, 0));
            spec.policies.push_back(bucketSpecs.back());
        }
        const auto results = bench::runSweep(spec, options);

        const AggregateSummary *baseline =
            results.find("static-big", sweep.workload);

        std::printf("--- %s (%zu seeds per cell) ---\n", sweep.workload,
                    options.seeds);
        TextTable table({"spec", "QoS violations", "energy saving",
                         "migrations"});
        for (std::size_t i = 0; i < sweep.buckets.size(); ++i) {
            const AggregateSummary *cell =
                results.find(bucketSpecs[i], sweep.workload);
            const double violations =
                (1.0 - cell->qosGuarantee.mean) * 100.0;
            const double saving =
                (baseline->energy.mean - cell->energy.mean) /
                baseline->energy.mean * 100.0;
            table.newRow()
                .cell(bucketSpecs[i])
                .cell(formatFixed(violations, 1) + " ±" +
                      formatFixed(cell->qosGuarantee.ci95 * 100.0, 1) +
                      "%")
                .cell(formatFixed(saving, 1) + "%")
                .cell(formatMeanCi(cell->migrations, 1));
            if (csv) {
                csv->add(sweep.workload)
                    .add(bucketSpecs[i])
                    .add(sweep.buckets[i])
                    .add(violations)
                    .add(saving)
                    .add(cell->migrations.mean)
                    .endRow();
            }
        }
        table.print(std::cout);
        std::printf("\n");
    }
    std::printf(
        "Paper's trend: smaller buckets -> finer control -> more energy\n"
        "saving but more QoS violations; larger buckets -> the "
        "opposite.\n");
    return 0;
}
