/**
 * @file
 * Ablation: sweep of the Q-learning hyper-parameters around the
 * paper's defaults (alpha = 0.6, gamma = 0.9), plus the stochastic
 * danger-zone reward on/off (Algorithm 1 line 9) and a migration-
 * penalty sweep.
 *
 * Both grids run through SweepEngine (each hyper-parameter point is
 * a sweep cell, --seeds repetitions each, in parallel); rows report
 * seed means ± 95% CI.
 */

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.hh"
#include "core/hipster_policy.hh"
#include "experiments/sweep.hh"

using namespace hipster;

namespace
{

/** One hyper-parameter point of the grid. */
struct RlPoint
{
    double alpha = 0.6;
    double gamma = 0.9;
    bool stochastic = true;
    double migrationPenalty = -1.0; ///< < 0 = workload default
};

/** Labelled grid: the label names the sweep cell, the point carries
 * the actual values (no string round-trip). */
using RlGrid = std::vector<std::pair<std::string, RlPoint>>;

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Ablation: RL hyper-parameters",
                  "alpha/gamma sweep + stochastic reward toggle "
                  "(Web-Search diurnal)");

    // The alpha/gamma grid + the paper defaults with the stochastic
    // danger-zone penalty disabled.
    RlGrid points;
    for (double alpha : {0.2, 0.6, 0.9})
        for (double gamma : {0.0, 0.5, 0.9})
            points.emplace_back("a" + formatFixed(alpha, 1) + "-g" +
                                    formatFixed(gamma, 1),
                                RlPoint{alpha, gamma, true, -1.0});
    points.emplace_back("a0.6-g0.9-plain",
                        RlPoint{0.6, 0.9, false, -1.0});

    // Every cell runs a HipsterIn policy; the label only selects the
    // parameter point.
    const auto runGrid = [&](const std::string &workload,
                             const RlGrid &grid, Seconds learning) {
        SweepSpec spec = bench::sweepSpec(options);
        spec.workloads = {workload};
        spec.keepSeries = false; // only summaries are reported
        spec.policies.clear();
        std::map<std::string, RlPoint> byLabel;
        for (const auto &[label, point] : grid) {
            spec.policies.push_back(label);
            byLabel.emplace(label, point);
        }
        const double scale = options.durationScale;
        spec.jobRunner = [scale, learning,
                          byLabel](const SweepJob &job) {
            const RlPoint &p = byLabel.at(job.policy);
            const Seconds duration =
                diurnalDurationFor(job.workload) * scale;
            ExperimentRunner runner(
                Platform::junoR1(), lcWorkloadByName(job.workload),
                diurnalTrace(duration, job.seed + 100), job.seed);
            HipsterParams params = tunedHipsterParams(job.workload);
            params.learningPhase = learning;
            params.alpha = p.alpha;
            params.gamma = p.gamma;
            params.stochasticReward = p.stochastic;
            if (p.migrationPenalty >= 0.0)
                params.migrationPenalty = p.migrationPenalty;
            HipsterPolicy policy(runner.platform(), params);
            return runner.run(policy, duration);
        };
        return bench::runSweep(spec, options);
    };

    const Seconds ws_duration =
        diurnalDurationFor("websearch") * options.durationScale;
    const auto grid =
        runGrid("websearch", points,
                std::min<Seconds>(ScenarioDefaults::learningPhase,
                                  ws_duration * 0.4));

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"cell", "runs", "qos_pct", "qos_ci95_pct",
                     "energy_j", "energy_ci95_j", "migrations"});
    }

    std::printf("%zu seeds per cell (jobs=%zu):\n\n", options.seeds,
                options.jobs);
    TextTable table({"alpha", "gamma", "stochastic", "QoS",
                     "energy (J)"});
    for (const auto &[label, p] : points) {
        const AggregateSummary *cell =
            grid.find(label, "websearch");
        table.newRow()
            .cell(p.alpha, 1)
            .cell(p.gamma, 1)
            .cell(p.stochastic ? "on" : "off")
            .cell(formatMeanCi(cell->qosGuarantee, 1, 100.0) + "%")
            .cell(formatMeanCi(cell->energy, 0));
        if (csv) {
            csv->add(label)
                .add(cell->runs)
                .add(cell->qosGuarantee.mean * 100.0)
                .add(cell->qosGuarantee.ci95 * 100.0)
                .add(cell->energy.mean)
                .add(cell->energy.ci95)
                .add(cell->migrations.mean)
                .endRow();
        }
    }
    table.print(std::cout);

    // Migration-penalty ablation (our extension over the pure greedy
    // Algorithm 2 line 7): how the churn damping affects migrations.
    std::printf("\nMigration-penalty ablation (memcached):\n");
    RlGrid mig_points;
    for (double penalty : {0.0, 0.5, 2.0})
        mig_points.emplace_back("mig" + formatFixed(penalty, 1),
                                RlPoint{0.6, 0.9, true, penalty});
    const auto mig_grid = runGrid("memcached", mig_points,
                                  ScenarioDefaults::learningPhase *
                                      options.durationScale);
    TextTable mig({"penalty", "QoS", "energy (J)", "migrations"});
    for (const auto &[label, p] : mig_points) {
        const AggregateSummary *cell =
            mig_grid.find(label, "memcached");
        mig.newRow()
            .cell(p.migrationPenalty, 1)
            .cell(formatMeanCi(cell->qosGuarantee, 1, 100.0) + "%")
            .cell(formatMeanCi(cell->energy, 0))
            .cell(formatMeanCi(cell->migrations, 1));
        if (csv) {
            csv->add(label)
                .add(cell->runs)
                .add(cell->qosGuarantee.mean * 100.0)
                .add(cell->qosGuarantee.ci95 * 100.0)
                .add(cell->energy.mean)
                .add(cell->energy.ci95)
                .add(cell->migrations.mean)
                .endRow();
        }
    }
    mig.print(std::cout);

    std::printf("\nPaper defaults: alpha = 0.6 (fast but noise-tolerant "
                "learning), gamma = 0.9\n(values future rewards). "
                "gamma = 0 collapses to myopic immediate reward.\n");
    return 0;
}
