/**
 * @file
 * Ablation: sweep of the Q-learning hyper-parameters around the
 * paper's defaults (alpha = 0.6, gamma = 0.9), plus the stochastic
 * danger-zone reward on/off (Algorithm 1 line 9).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/hipster_policy.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

using namespace hipster;

namespace
{

RunSummary
runWith(const char *workload, Seconds duration, double alpha,
        double gamma, bool stochastic)
{
    ExperimentRunner runner = makeDiurnalRunner(workload, duration, 1);
    HipsterParams params = tunedHipsterParams(workload);
    params.alpha = alpha;
    params.gamma = gamma;
    params.stochasticReward = stochastic;
    params.learningPhase = std::min<Seconds>(
        ScenarioDefaults::learningPhase, duration * 0.4);
    HipsterPolicy policy(runner.platform(), params);
    return runner.run(policy, duration).summary;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Ablation: RL hyper-parameters",
                  "alpha/gamma sweep + stochastic reward toggle "
                  "(Web-Search diurnal)");

    const char *workload = "websearch";
    const Seconds duration =
        diurnalDurationFor(workload) * options.durationScale;

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"alpha", "gamma", "stochastic", "qos_pct",
                     "energy_j"});
    }

    TextTable table({"alpha", "gamma", "stochastic", "QoS", "energy "
                     "(J)"});
    for (double alpha : {0.2, 0.6, 0.9}) {
        for (double gamma : {0.0, 0.5, 0.9}) {
            const RunSummary s =
                runWith(workload, duration, alpha, gamma, true);
            table.newRow()
                .cell(alpha, 1)
                .cell(gamma, 1)
                .cell("on")
                .percentCell(s.qosGuarantee)
                .cell(s.energy, 0);
            if (csv) {
                csv->add(alpha).add(gamma).add(1)
                    .add(s.qosGuarantee * 100.0).add(s.energy).endRow();
            }
        }
    }
    // Paper defaults without the stochastic danger-zone penalty.
    const RunSummary plain = runWith(workload, duration, 0.6, 0.9, false);
    table.newRow()
        .cell(0.6, 1)
        .cell(0.9, 1)
        .cell("off")
        .percentCell(plain.qosGuarantee)
        .cell(plain.energy, 0);
    if (csv) {
        csv->add(0.6).add(0.9).add(0)
            .add(plain.qosGuarantee * 100.0).add(plain.energy).endRow();
    }
    table.print(std::cout);

    // Migration-penalty ablation (our extension over the pure greedy
    // Algorithm 2 line 7): how the churn damping affects migrations.
    std::printf("\nMigration-penalty ablation (memcached):\n");
    TextTable mig({"penalty", "QoS", "energy (J)", "migrations"});
    const Seconds mc_duration =
        diurnalDurationFor("memcached") * options.durationScale;
    for (double penalty : {0.0, 0.5, 2.0}) {
        ExperimentRunner runner =
            makeDiurnalRunner("memcached", mc_duration, 1);
        HipsterParams params = tunedHipsterParams("memcached");
        params.migrationPenalty = penalty;
        HipsterPolicy policy(runner.platform(), params);
        const auto result = runner.run(policy, mc_duration);
        mig.newRow()
            .cell(penalty, 1)
            .percentCell(result.summary.qosGuarantee)
            .cell(result.summary.energy, 0)
            .cell(static_cast<long long>(result.migrations));
        if (csv) {
            csv->add(penalty).add(-1).add(-1)
                .add(result.summary.qosGuarantee * 100.0)
                .add(result.summary.energy).endRow();
        }
    }
    mig.print(std::cout);

    std::printf("\nPaper defaults: alpha = 0.6 (fast but noise-tolerant "
                "learning), gamma = 0.9\n(values future rewards). "
                "gamma = 0 collapses to myopic immediate reward.\n");
    return 0;
}
