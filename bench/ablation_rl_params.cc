/**
 * @file
 * Ablation: sweep of the Q-learning hyper-parameters around the
 * paper's defaults (alpha = 0.6, gamma = 0.9), plus the stochastic
 * danger-zone reward on/off (Algorithm 1 line 9) and a migration-
 * penalty sweep.
 *
 * Every hyper-parameter point is an ordinary sweep cell named by a
 * generated registry policy spec ("hipster-in:alpha=0.2,gamma=0.5",
 * "hipster-in:stochastic=0,learn=200") running the engine's default
 * wiring — the same strings `hipster_sweep --policies` accepts, no
 * bespoke jobRunner plumbing; the learning phase rides in each spec
 * too. --seeds repetitions per cell, in parallel; rows report seed
 * means ± 95% CI.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "experiments/sweep.hh"

using namespace hipster;

namespace
{

/** One grid point: the generated spec plus the values it encodes
 * (kept alongside for row labelling — no string round-trip). */
struct RlCell
{
    std::string spec;
    double alpha = 0.6;
    double gamma = 0.9;
    bool stochastic = true;
    double migrationPenalty = -1.0; ///< < 0 = workload default
};

} // namespace

int
main(int argc, char **argv)
{
    const auto options =
        bench::parseArgs(argc, argv, bench::SweepOverrides::Supported);
    bench::banner("Ablation: RL hyper-parameters",
                  "alpha/gamma sweep + stochastic reward toggle "
                  "(Web-Search diurnal)");

    // The learning phase is part of each generated spec (the
    // SweepSpec escape hatch is gone): shortened on Web-Search so
    // the exploitation window dominates even under --quick.
    const Seconds ws_duration =
        diurnalDurationFor("websearch") * options.durationScale;
    const Seconds ws_learning = std::min<Seconds>(
        ScenarioDefaults::learningPhase, ws_duration * 0.4);
    const auto learnKey = [](Seconds learning) {
        return ",learn=" + formatFixed(learning, 2);
    };

    // The alpha/gamma grid + the paper defaults with the stochastic
    // danger-zone penalty disabled.
    std::vector<RlCell> points;
    for (double alpha : {0.2, 0.6, 0.9}) {
        for (double gamma : {0.0, 0.5, 0.9}) {
            points.push_back({"hipster-in:alpha=" +
                                  formatFixed(alpha, 1) + ",gamma=" +
                                  formatFixed(gamma, 1) +
                                  learnKey(ws_learning),
                              alpha, gamma, true, -1.0});
        }
    }
    points.push_back({"hipster-in:stochastic=0" +
                          learnKey(ws_learning),
                      0.6, 0.9, false, -1.0});

    // Each cell is just a policy spec on the default sweep wiring.
    const auto runGrid = [&](const std::string &workload,
                             const std::vector<RlCell> &grid) {
        SweepSpec spec = bench::sweepSpec(options);
        spec.workloads = {workload};
        spec.keepSeries = false; // only summaries are reported
        spec.policies.clear();
        for (const RlCell &cell : grid)
            spec.policies.push_back(cell.spec);
        return bench::runSweep(spec, options);
    };

    const auto grid = runGrid("websearch", points);

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"cell", "runs", "qos_pct", "qos_ci95_pct",
                     "energy_j", "energy_ci95_j", "migrations"});
    }

    std::printf("%zu seeds per cell (jobs=%zu):\n\n", options.seeds,
                options.jobs);
    TextTable table({"alpha", "gamma", "stochastic", "QoS",
                     "energy (J)"});
    for (const RlCell &point : points) {
        const AggregateSummary *cell =
            grid.find(point.spec, "websearch");
        table.newRow()
            .cell(point.alpha, 1)
            .cell(point.gamma, 1)
            .cell(point.stochastic ? "on" : "off")
            .cell(formatMeanCi(cell->qosGuarantee, 1, 100.0) + "%")
            .cell(formatMeanCi(cell->energy, 0));
        if (csv) {
            csv->add(point.spec)
                .add(cell->runs)
                .add(cell->qosGuarantee.mean * 100.0)
                .add(cell->qosGuarantee.ci95 * 100.0)
                .add(cell->energy.mean)
                .add(cell->energy.ci95)
                .add(cell->migrations.mean)
                .endRow();
        }
    }
    table.print(std::cout);

    // Migration-penalty ablation (our extension over the pure greedy
    // Algorithm 2 line 7): how the churn damping affects migrations.
    std::printf("\nMigration-penalty ablation (memcached):\n");
    std::vector<RlCell> mig_points;
    const Seconds mc_learning =
        ScenarioDefaults::learningPhase * options.durationScale;
    for (double penalty : {0.0, 0.5, 2.0}) {
        mig_points.push_back({"hipster-in:migpen=" +
                                  formatFixed(penalty, 1) +
                                  learnKey(mc_learning),
                              0.6, 0.9, true, penalty});
    }
    const auto mig_grid = runGrid("memcached", mig_points);
    TextTable mig({"penalty", "QoS", "energy (J)", "migrations"});
    for (const RlCell &point : mig_points) {
        const AggregateSummary *cell =
            mig_grid.find(point.spec, "memcached");
        mig.newRow()
            .cell(point.migrationPenalty, 1)
            .cell(formatMeanCi(cell->qosGuarantee, 1, 100.0) + "%")
            .cell(formatMeanCi(cell->energy, 0))
            .cell(formatMeanCi(cell->migrations, 1));
        if (csv) {
            csv->add(point.spec)
                .add(cell->runs)
                .add(cell->qosGuarantee.mean * 100.0)
                .add(cell->qosGuarantee.ci95 * 100.0)
                .add(cell->energy.mean)
                .add(cell->energy.ci95)
                .add(cell->migrations.mean)
                .endRow();
        }
    }
    mig.print(std::cout);

    std::printf("\nPaper defaults: alpha = 0.6 (fast but noise-tolerant "
                "learning), gamma = 0.9\n(values future rewards). "
                "gamma = 0 collapses to myopic immediate reward.\n");
    return 0;
}
