/**
 * @file
 * Figure 5: time-series comparison of the static mapping (all big
 * cores), Octopus-Man, and Hipster's heuristic mapper on the diurnal
 * load — Memcached (top row of the paper's figure) and Web-Search
 * (bottom row). For each policy we print sampled rows of the four
 * stacked subplots (tail latency, throughput, DVFS, core mapping)
 * and the aggregate oscillation statistics the paper discusses.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

using namespace hipster;

namespace
{

void
runPolicy(const char *workload, const char *policy_name,
          const bench::BenchOptions &options, CsvWriter *csv)
{
    const Seconds duration =
        diurnalDurationFor(workload) * options.durationScale;
    ExperimentRunner runner = makeDiurnalRunner(workload, duration, 1);
    auto policy = makePolicy(policy_name, runner.platform(),
                             tunedHipsterParams(workload));
    const auto result = runner.run(*policy, duration);

    std::printf("--- %s / %s ---\n", workload,
                result.policyName.c_str());
    TextTable table({"t(s)", "tail(ms)", "target", "thr", "config",
                     "bigGHz", "smallGHz"});
    for (std::size_t k = 0; k < result.series.size(); k += 60) {
        const auto &m = result.series[k];
        table.newRow()
            .cell(static_cast<long long>(m.begin))
            .cell(m.tailLatency, 2)
            .cell(m.qosTarget, 0)
            .cell(m.throughput, 0)
            .cell(m.config.label())
            .cell(m.config.nBig > 0 ? m.config.bigFreq : 0.0, 2)
            .cell(m.config.nSmall > 0 ? m.config.smallFreq : 0.0, 2);
        if (csv) {
            csv->add(workload)
                .add(result.policyName)
                .add(m.begin)
                .add(m.tailLatency)
                .add(m.throughput)
                .add(m.config.label())
                .endRow();
        }
    }
    table.print(std::cout);

    // Oscillation analysis (the paper calls out Octopus-Man's 2B<->4S
    // flapping around the 600-800 s mark).
    std::size_t config_changes = 0, mixed = 0, dvfs_used = 0;
    for (std::size_t k = 1; k < result.series.size(); ++k) {
        if (!(result.series[k].config == result.series[k - 1].config))
            ++config_changes;
        if (!result.series[k].config.singleCoreType())
            ++mixed;
        if (result.series[k].config.nBig > 0 &&
            result.series[k].config.bigFreq < 1.15)
            ++dvfs_used;
    }
    const auto &s = result.summary;
    std::printf("QoS guarantee %.1f%%, tardiness %.2f, energy %.0f J, "
                "core migrations %llu, config changes %zu,\n"
                "mixed big+small intervals %zu, reduced-DVFS intervals "
                "%zu\n\n",
                s.qosGuarantee * 100.0, s.qosTardiness, s.energy,
                static_cast<unsigned long long>(result.migrations),
                config_changes, mixed, dvfs_used);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Figure 5",
                  "Static vs Octopus-Man vs Hipster's heuristic mapper "
                  "(diurnal time series)");
    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"workload", "policy", "time_s", "tail_ms",
                     "throughput", "config"});
    }
    for (const char *workload : {"memcached", "websearch"}) {
        for (const char *policy :
             {"static-big", "octopus-man", "heuristic"}) {
            runPolicy(workload, policy, options, csv.get());
        }
    }
    std::printf(
        "Paper's observations to check: the heuristic explores DVFS\n"
        "and mixed big+small configs (Octopus-Man never does); both\n"
        "oscillate between adjacent configurations; static has the\n"
        "fewest violations.\n");
    return 0;
}
