/**
 * @file
 * Figure 11: HipsterCo — Web-Search collocated with batch workloads
 * (one SPEC CPU2006-like program per spare core). For each of the 12
 * programs we run the static mapping (LC on 2 big cores, batch on 4
 * small cores at max DVFS), Octopus-Man and HipsterCo, and report
 * QoS guarantee, batch throughput (aggregate IPS) and energy, all
 * normalized to static.
 *
 * Paper claims to check: HipsterCo ~94% QoS vs Octopus-Man ~76%;
 * both deliver much higher batch throughput than static (means 2.3x
 * and 2.6x); HipsterCo cuts energy (~0.8x static) while Octopus-Man
 * increases it (~1.2x); compute-bound programs (calculix) gain the
 * most, memory-bound (lbm, libquantum) the least.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"
#include "workloads/batch.hh"

using namespace hipster;

namespace
{

struct CoRunResult
{
    RunSummary summary;
    Ips batchIps = 0.0;
};

CoRunResult
runOne(const BatchKernel &kernel, const std::string &policy_name,
       Seconds duration)
{
    ExperimentRunner runner = makeDiurnalRunner("websearch", duration, 1);
    runner.setBatch(std::make_shared<BatchWorkload>(
        std::vector<BatchKernel>{kernel}));

    HipsterParams params = tunedHipsterParams("websearch");
    params.variant = PolicyVariant::Collocated;
    params.learningPhase =
        std::min<Seconds>(ScenarioDefaults::learningPhase,
                          duration * 0.45);
    std::unique_ptr<TaskPolicy> policy;
    if (policy_name == "static") {
        // LC pinned to the big cluster, batch on the small cores.
        policy = std::make_unique<StaticPolicy>(StaticPolicy::allBig(
            runner.platform(), PolicyVariant::Collocated));
    } else {
        // "octopus" is a registered registry alias for "octopus-man",
        // so the name passes straight through.
        OctopusManParams op;
        op.variant = PolicyVariant::Collocated;
        policy = makePolicy(policy_name, runner.platform(), params, op);
    }
    const auto result = runner.run(*policy, duration);
    CoRunResult out;
    out.summary = result.summary;
    out.batchIps = result.summary.meanBatchIps;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Figure 11",
                  "Web-Search + batch collocation: QoS, throughput and "
                  "energy vs static");

    const Seconds duration =
        diurnalDurationFor("websearch") * options.durationScale;

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"program", "policy", "qos_norm", "ips_norm",
                     "energy_norm"});
    }

    TextTable table({"program", "QoS O-M", "QoS HipCo", "IPS O-M",
                     "IPS HipCo", "Energy O-M", "Energy HipCo"});
    double om_qos = 0.0, co_qos = 0.0;
    double om_ips = 0.0, co_ips = 0.0;
    double om_energy = 0.0, co_energy = 0.0;
    double co_best_ips = 0.0, co_worst_ips = 1e18;
    std::string best_name, worst_name;

    for (const auto &kernel : SpecCatalog::all()) {
        const CoRunResult st = runOne(kernel, "static", duration);
        const CoRunResult om = runOne(kernel, "octopus", duration);
        const CoRunResult co = runOne(kernel, "hipster-co", duration);

        const double st_qos = std::max(st.summary.qosGuarantee, 1e-6);
        const double st_ips = std::max(st.batchIps, 1.0);
        const double st_energy = std::max(st.summary.energy, 1e-6);

        const double om_qos_n = om.summary.qosGuarantee / st_qos;
        const double co_qos_n = co.summary.qosGuarantee / st_qos;
        const double om_ips_n = om.batchIps / st_ips;
        const double co_ips_n = co.batchIps / st_ips;
        const double om_energy_n = om.summary.energy / st_energy;
        const double co_energy_n = co.summary.energy / st_energy;

        om_qos += om.summary.qosGuarantee;
        co_qos += co.summary.qosGuarantee;
        om_ips += om_ips_n;
        co_ips += co_ips_n;
        om_energy += om_energy_n;
        co_energy += co_energy_n;
        if (co_ips_n > co_best_ips) {
            co_best_ips = co_ips_n;
            best_name = kernel.name;
        }
        if (co_ips_n < co_worst_ips) {
            co_worst_ips = co_ips_n;
            worst_name = kernel.name;
        }

        table.newRow()
            .cell(kernel.name)
            .cell(om_qos_n, 2)
            .cell(co_qos_n, 2)
            .cell(om_ips_n, 2)
            .cell(co_ips_n, 2)
            .cell(om_energy_n, 2)
            .cell(co_energy_n, 2);
        if (csv) {
            csv->add(kernel.name).add("octopus-man").add(om_qos_n)
                .add(om_ips_n).add(om_energy_n).endRow();
            csv->add(kernel.name).add("hipster-co").add(co_qos_n)
                .add(co_ips_n).add(co_energy_n).endRow();
        }
    }
    table.print(std::cout);

    const double n = SpecCatalog::all().size();
    std::printf("\nMeans over the 12 programs (normalized to static "
                "unless noted):\n");
    std::printf("  QoS guarantee (absolute): HipsterCo %.1f%%, "
                "Octopus-Man %.1f%% (paper: 94%% vs 76%%)\n",
                co_qos / n * 100.0, om_qos / n * 100.0);
    std::printf("  Batch throughput: HipsterCo %.2fx, Octopus-Man "
                "%.2fx static (paper: 2.3x and 2.6x)\n",
                co_ips / n, om_ips / n);
    std::printf("  Energy: HipsterCo %.2fx, Octopus-Man %.2fx static "
                "(paper: ~0.8x and ~1.2x)\n",
                co_energy / n, om_energy / n);
    std::printf("  Best HipsterCo throughput gain: %s (%.2fx); least: "
                "%s (%.2fx)\n",
                best_name.c_str(), co_best_ips, worst_name.c_str(),
                co_worst_ips);
    std::printf("  (paper: calculix best at 3.35x, libquantum least at "
                "1.6x)\n");
    return 0;
}
