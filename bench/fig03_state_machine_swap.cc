/**
 * @file
 * Figure 3: energy efficiency lost when one workload is driven by
 * the state machine built for the *other* workload. For each load,
 * we take the best configuration from the other workload's state
 * machine (falling back to that machine's nearest feasible rung when
 * the foreign choice violates QoS, as a real deployment would climb)
 * and normalize its throughput-per-watt to the workload's own best.
 *
 * Paper result: up to ~35% efficiency lost for Memcached (at 90%
 * load) and ~19% for Web-Search (at 50% load); no loss at the
 * extremes where both machines use all-small or all-big.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "experiments/oracle.hh"
#include "experiments/scenario.hh"
#include "platform/config_space.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Figure 3",
                  "Energy efficiency with the other workload's state "
                  "machine (normalized; lower is worse)");

    Platform platform(Platform::junoR1());
    const auto states = ConfigSpace::paperStates(platform);
    const std::vector<Fraction> loads = {0.20, 0.30, 0.40, 0.50, 0.60,
                                         0.70, 0.75, 0.85, 0.90, 0.95,
                                         1.00};

    OracleOptions oracle_options;
    oracle_options.warmup = 4.0;
    oracle_options.measure = 16.0 * options.durationScale;

    HetCmpOracle mc_oracle(Platform::junoR1(),
                           lcWorkloadByName("memcached"), oracle_options);
    HetCmpOracle ws_oracle(Platform::junoR1(),
                           lcWorkloadByName("websearch"), oracle_options);

    // Build both state machines once.
    std::vector<OracleEntry> mc_machine, ws_machine;
    for (Fraction load : loads) {
        mc_machine.push_back(mc_oracle.bestConfig(load, states));
        ws_machine.push_back(ws_oracle.bestConfig(load, states));
    }

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"load_pct", "memcached_normalized",
                     "websearch_normalized"});
    }

    // Normalized efficiency of `app` at loads[i] when driven by the
    // other app's machine choice.
    auto normalized = [&](HetCmpOracle &oracle,
                          const std::vector<OracleEntry> &own,
                          const std::vector<OracleEntry> &other,
                          std::size_t i) -> double {
        if (!own[i].best || !other[i].best)
            return 1.0; // no basis for comparison at this level
        ConfigMeasurement foreign =
            oracle.measure(loads[i], other[i].best->config);
        if (!foreign.feasible) {
            // The foreign choice violates QoS here: a deployed
            // controller would climb that machine's ladder until QoS
            // holds; charge the best feasible rung of the foreign
            // machine instead.
            double best_eff = 0.0;
            for (const auto &entry : other) {
                if (!entry.best)
                    continue;
                ConfigMeasurement m =
                    oracle.measure(loads[i], entry.best->config);
                if (m.feasible && m.throughputPerWatt > best_eff)
                    best_eff = m.throughputPerWatt;
            }
            return best_eff > 0.0
                       ? best_eff / own[i].best->throughputPerWatt
                       : 0.0;
        }
        return foreign.throughputPerWatt /
               own[i].best->throughputPerWatt;
    };

    TextTable table({"load", "Memcached w/ WS machine",
                     "Web-Search w/ MC machine"});
    double worst_mc = 1.0, worst_ws = 1.0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
        const double mc_norm =
            normalized(mc_oracle, mc_machine, ws_machine, i);
        const double ws_norm =
            normalized(ws_oracle, ws_machine, mc_machine, i);
        worst_mc = std::min(worst_mc, mc_norm);
        worst_ws = std::min(worst_ws, ws_norm);
        table.newRow()
            .percentCell(loads[i], 0)
            .cell(mc_norm, 3)
            .cell(ws_norm, 3);
        if (csv) {
            csv->add(loads[i] * 100.0)
                .add(mc_norm)
                .add(ws_norm)
                .endRow();
        }
    }
    table.print(std::cout);
    std::printf(
        "\nWorst-case efficiency retained: Memcached %.0f%%, "
        "Web-Search %.0f%%\n"
        "(paper: losses up to 35%% for Memcached, 19%% for Web-Search;\n"
        " extremes match because both machines use all-small / "
        "all-big there)\n",
        worst_mc * 100.0, worst_ws * 100.0);
    return 0;
}
