/**
 * @file
 * Figure 8: rapid adaptation to load changes. Memcached's load ramps
 * from 50% to 100% of max over 175 seconds; HipsterIn (already in
 * its exploitation phase) is compared against Octopus-Man on QoS
 * tardiness (QoScurr / QoStarget; above 1 = violation).
 *
 * Paper claim: from 75% to 90% load, HipsterIn's tardiness is ~3.7x
 * (mean) lower than Octopus-Man's.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/bench_util.hh"
#include "core/baselines.hh"
#include "core/hipster_policy.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

using namespace hipster;

namespace
{

/** Diurnal warm-up (covers the load buckets) followed by the ramp. */
std::shared_ptr<const LoadTrace>
warmupThenRamp(Seconds warmup)
{
    std::vector<std::pair<Seconds, Fraction>> points;
    // One compressed day to let the learner visit every bucket.
    DiurnalTrace day(warmup, 0.10, 1.00);
    for (Seconds t = 0.0; t < warmup; t += 5.0)
        points.emplace_back(t, day.at(t));
    // The Figure 8 stimulus.
    points.emplace_back(warmup + 0.0, 0.50);
    points.emplace_back(warmup + 5.0, 0.50);
    points.emplace_back(warmup + 180.0, 1.00);
    points.emplace_back(warmup + 200.0, 1.00);
    return std::make_shared<PiecewiseTrace>(std::move(points));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Figure 8",
                  "Memcached load ramp 50%->100% over 175 s: QoS "
                  "tardiness, HipsterIn vs Octopus-Man");

    const Seconds warmup = 600.0;
    const Seconds duration = warmup + 200.0;
    const auto trace = warmupThenRamp(warmup);

    auto run = [&](const std::string &policy_name) {
        ExperimentRunner runner(Platform::junoR1(),
                                lcWorkloadByName("memcached"), trace, 3);
        HipsterParams params = tunedHipsterParams("memcached");
        params.learningPhase = 500.0; // exploiting before the ramp
        auto policy =
            makePolicy(policy_name, runner.platform(), params);
        return runner.run(*policy, duration);
    };

    const auto hipster = run("hipster-in");
    const auto octopus = run("octopus-man");

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"time_s", "load_pct", "hipster_tardiness",
                     "octopus_tardiness"});
    }

    TextTable table({"t(s)", "load", "HipsterIn tard.", "Octopus tard.",
                     "HipsterIn cfg", "Octopus cfg"});
    double hipster_sum = 0.0, octopus_sum = 0.0;
    std::size_t window_count = 0;
    for (std::size_t k = static_cast<std::size_t>(warmup);
         k < hipster.series.size(); ++k) {
        const auto &h = hipster.series[k];
        const auto &o = octopus.series[k];
        const Seconds t = h.begin - warmup;
        const Fraction load = h.offeredLoad;
        if (load >= 0.75 && load <= 0.90) {
            hipster_sum += h.qosRatio();
            octopus_sum += o.qosRatio();
            ++window_count;
        }
        if (csv) {
            csv->add(t)
                .add(load * 100.0)
                .add(h.qosRatio())
                .add(o.qosRatio())
                .endRow();
        }
        if (k % 10 == 0) {
            table.newRow()
                .cell(static_cast<long long>(t))
                .percentCell(load, 0)
                .cell(h.qosRatio(), 2)
                .cell(o.qosRatio(), 2)
                .cell(h.config.label())
                .cell(o.config.label());
        }
    }
    table.print(std::cout);

    const double ratio = window_count && hipster_sum > 0.0
                             ? octopus_sum / hipster_sum
                             : 0.0;
    std::printf("\nMean tardiness in the 75-90%% load window: HipsterIn "
                "%.2f, Octopus-Man %.2f\n",
                window_count ? hipster_sum / window_count : 0.0,
                window_count ? octopus_sum / window_count : 0.0);
    std::printf("Paper: HipsterIn ~3.7x lower tardiness there. "
                "Measured: %.1fx lower.\n",
                ratio);
    return 0;
}
