/**
 * @file
 * Table 2: power and performance characterization of the Juno
 * platform with the compute-bound stress microbenchmark — the
 * calibration anchors of the simulated substrate, plus the derived
 * power-efficiency relations from Section 4.1.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "platform/config_space.hh"
#include "platform/platform.hh"

using namespace hipster;

namespace
{

Watts
systemPowerWith(const Platform &platform, CoreType type, std::uint32_t n,
                GHz freq)
{
    const auto &cluster = platform.cluster(type);
    const auto &model = platform.powerModel();
    const Opp opp{freq, cluster.spec().voltageAt(freq)};
    return model.restOfSystem() +
           model.clusterPower(cluster.spec(), model.params(cluster.id()),
                              opp, {n, 1.0});
}

Ips
microbenchIps(const Platform &platform, CoreType type, std::uint32_t n,
              GHz freq)
{
    return n * platform.cluster(type).spec().microbenchIpc * freq * 1e9;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Table 2",
                  "Juno power/performance characterization "
                  "(microbenchmark, paper anchors in parentheses)");

    Platform platform(Platform::junoR1());

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"row", "power_w", "paper_power_w", "perf_mips",
                     "paper_perf_mips"});
    }

    struct Row
    {
        const char *name;
        CoreType type;
        std::uint32_t cores;
        GHz freq;
        double paper_power;
        double paper_mips;
    };
    const Row rows[] = {
        {"Big A57 (1.15) all cores", CoreType::Big, 2, 1.15, 2.30, 4260},
        {"Big A57 (1.15) one core", CoreType::Big, 1, 1.15, 1.62, 2138},
        {"Small A53 (0.65) all cores", CoreType::Small, 4, 0.65, 1.43,
         3298},
        {"Small A53 (0.65) one core", CoreType::Small, 1, 0.65, 0.95,
         826},
    };

    TextTable table({"Configuration", "Power (W)", "paper", "Perf "
                     "(MIPS)", "paper"});
    for (const Row &row : rows) {
        const Watts power =
            systemPowerWith(platform, row.type, row.cores, row.freq);
        const double mips =
            microbenchIps(platform, row.type, row.cores, row.freq) / 1e6;
        table.newRow()
            .cell(row.name)
            .cell(power, 2)
            .cell(row.paper_power, 2)
            .cell(mips, 0)
            .cell(row.paper_mips, 0);
        if (csv) {
            csv->add(row.name)
                .add(power)
                .add(row.paper_power)
                .add(mips)
                .add(row.paper_mips)
                .endRow();
        }
    }
    table.print(std::cout);

    // Section 4.1's derived observations.
    const double big1 = systemPowerWith(platform, CoreType::Big, 1, 1.15);
    const double small1 =
        systemPowerWith(platform, CoreType::Small, 1, 0.65);
    const double big_all =
        systemPowerWith(platform, CoreType::Big, 2, 1.15);
    const double small_all =
        systemPowerWith(platform, CoreType::Small, 4, 0.65);
    const double big_core_eff = 2138e6 / big1;
    const double small_core_eff = 826e6 / small1;
    const double big_cluster_eff = 4260e6 / big_all;
    const double small_cluster_eff = 3298e6 / small_all;

    std::printf("\nDerived relations (Section 4.1):\n");
    std::printf("  single big core vs single small core (system IPS/W): "
                "%.0f%% more efficient (paper: 52%%)\n",
                (big_core_eff / small_core_eff - 1.0) * 100.0);
    std::printf("  small cluster vs big cluster (system IPS/W): %.0f%% "
                "more efficient (paper: 25%%)\n",
                (small_cluster_eff / big_cluster_eff - 1.0) * 100.0);
    std::printf("  rest-of-system power: %.2f W (paper: ~0.76 W)\n",
                platform.powerModel().restOfSystem());
    std::printf("  TDP: %.2f W\n", platform.tdp());
    return 0;
}
