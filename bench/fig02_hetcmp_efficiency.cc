/**
 * @file
 * Figure 2: throughput-per-watt of Memcached (2a) and Web-Search (2b)
 * under HetCMP (best core-mix + DVFS configuration per load) versus
 * the baseline policy BP (exclusively big or small cores at the
 * highest DVFS), plus the resulting per-workload state machines (2c).
 *
 * Selection rule per the paper's Section 2: among the configurations
 * meeting QoS at a load level, pick the least power.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "experiments/oracle.hh"
#include "experiments/scenario.hh"
#include "platform/config_space.hh"

using namespace hipster;

namespace
{

void
runWorkload(const char *name, const std::vector<Fraction> &loads,
            const bench::BenchOptions &options)
{
    const LcWorkloadDef def = lcWorkloadByName(name);
    Platform platform(Platform::junoR1());
    const auto hetcmp_states = ConfigSpace::paperStates(platform);
    const auto bp_states = ConfigSpace::octopusManStates(platform);

    OracleOptions oracle_options;
    oracle_options.warmup = 4.0;
    oracle_options.measure = 16.0 * options.durationScale;
    HetCmpOracle oracle(Platform::junoR1(), def, oracle_options);

    const char *unit =
        def.params.name == "memcached" ? "RPS/Watt" : "QPS/Watt";
    std::printf("--- %s (%s) ---\n", def.params.name.c_str(), unit);

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"workload", "load_pct", "hetcmp_config",
                     "hetcmp_eff", "bp_config", "bp_eff"});
    }

    TextTable table({"load", "HetCMP config", unit, "BP config",
                     std::string("BP ") + unit, "HetCMP gain"});
    double gain_sum = 0.0;
    int gain_count = 0;
    for (Fraction load : loads) {
        const OracleEntry het = oracle.bestConfig(load, hetcmp_states);
        const OracleEntry bp = oracle.bestConfig(load, bp_states);
        const std::string het_label =
            het.best ? het.best->config.label() : "-";
        const std::string bp_label =
            bp.best ? bp.best->config.label() : "-";
        const double het_eff =
            het.best ? het.best->throughputPerWatt : 0.0;
        const double bp_eff = bp.best ? bp.best->throughputPerWatt : 0.0;
        double gain = 0.0;
        if (het.best && bp.best && bp_eff > 0.0) {
            gain = het_eff / bp_eff - 1.0;
            gain_sum += gain;
            ++gain_count;
        }
        table.newRow()
            .percentCell(load, 0)
            .cell(het_label)
            .cell(het_eff, 1)
            .cell(bp_label)
            .cell(bp_eff, 1)
            .percentCell(gain, 1);
        if (csv) {
            csv->add(def.params.name)
                .add(load * 100.0)
                .add(het_label)
                .add(het_eff)
                .add(bp_label)
                .add(bp_eff)
                .endRow();
        }
    }
    table.print(std::cout);
    std::printf("Mean HetCMP efficiency gain over BP: %.1f%% "
                "(paper: ~27.7%% Memcached, ~25%% Web-Search at "
                "intermediate loads)\n\n",
                gain_count ? gain_sum / gain_count * 100.0 : 0.0);
}

void
printStateMachines(const bench::BenchOptions &options)
{
    std::printf("--- Figure 2c: per-workload state machines ---\n");
    Platform platform(Platform::junoR1());
    const auto states = ConfigSpace::paperStates(platform);
    const std::vector<Fraction> loads = {0.20, 0.30, 0.40, 0.50, 0.60,
                                         0.70, 0.75, 0.85, 0.90, 0.95,
                                         1.00};
    OracleOptions oracle_options;
    oracle_options.warmup = 4.0;
    oracle_options.measure = 16.0 * options.durationScale;

    TextTable table({"load", "Memcached best", "Web-Search best"});
    HetCmpOracle mc(Platform::junoR1(), lcWorkloadByName("memcached"),
                    oracle_options);
    HetCmpOracle ws(Platform::junoR1(), lcWorkloadByName("websearch"),
                    oracle_options);
    bool machines_differ = false;
    for (Fraction load : loads) {
        const auto mc_best = mc.bestConfig(load, states);
        const auto ws_best = ws.bestConfig(load, states);
        const std::string mc_label =
            mc_best.best ? mc_best.best->config.label() : "-";
        const std::string ws_label =
            ws_best.best ? ws_best.best->config.label() : "-";
        machines_differ |= mc_label != ws_label;
        table.newRow().percentCell(load, 0).cell(mc_label).cell(ws_label);
    }
    table.print(std::cout);
    std::printf("State machines differ across workloads: %s "
                "(paper: yes — no single static ordering fits both)\n",
                machines_differ ? "yes" : "no");
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Figure 2",
                  "HetCMP vs baseline policy efficiency + state machines");

    runWorkload("memcached",
                {0.29, 0.40, 0.51, 0.63, 0.69, 0.71, 0.77, 0.83, 0.89,
                 0.91, 0.94, 0.97, 1.00},
                options);
    runWorkload("websearch",
                {0.18, 0.25, 0.33, 0.40, 0.47, 0.55, 0.62, 0.69, 0.76,
                 0.84, 0.91, 0.96, 1.00},
                options);
    printStateMachines(options);
    return 0;
}
