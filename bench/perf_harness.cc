/**
 * @file
 * hipster_bench: the repo's canonical hot-loop performance harness.
 * Runs a fixed multi-seed ExperimentSpec campaign (memcached +
 * websearch on the Juno, diurnal + MMPP stimuli, the hipster policy)
 * through SweepEngine and measures wall-clock time, simulated
 * events/second, runs/second, and peak RSS, with warmup repetitions
 * and median/IQR over the measured ones. Results land in a
 * schema-versioned JSON (committed at the repo root as
 * BENCH_hotloop.json) that CI diffs against: --baseline FILE fails
 * the run when events/sec regressed beyond --threshold percent.
 *
 * No Google Benchmark dependency: timing is std::chrono, RSS is
 * getrusage, and the JSON reader/writer below understand exactly the
 * schema this tool emits (--validate / --selfcheck).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <locale>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "common/build_info.hh"
#include "common/json_number.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "experiments/sweep.hh"

namespace
{

using namespace hipster;

/** Bump when the JSON layout changes; readers accept 1..current.
 * v2 added the build-provenance block (git SHA, compiler + flags,
 * build type) — v1 files (no provenance) still validate. */
constexpr int kSchemaVersion = 2;

constexpr const char *kBenchmarkName = "hotloop_campaign";

/** The canonical campaign axes (see docs/EXPERIMENTS.md). */
const std::vector<std::string> kWorkloads = {"memcached", "websearch"};
const std::vector<std::string> kPlatforms = {"juno"};
const std::vector<std::string> kTraces = {"diurnal", "mmpp:0.2,0.9,45"};
const std::vector<std::string> kPolicies = {"hipster"};
constexpr std::uint64_t kMasterSeed = 42;

struct Options
{
    Seconds duration = 240.0;
    std::size_t seeds = 3;
    std::size_t repetitions = 5;
    std::size_t warmup = 1;
    std::size_t jobs = 1;
    std::string output = "BENCH_hotloop.json";
    std::string baseline;
    std::string validate;
    double threshold = 15.0;
    bool selfcheck = false;
    bool quiet = false;
};

/** Median / interquartile range of one measured quantity. */
struct Spread
{
    double median = 0.0;
    double p25 = 0.0;
    double p75 = 0.0;
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::printf(
        "usage: %s [options]\n"
        "\n"
        "Canonical hot-loop performance campaign (see "
        "docs/EXPERIMENTS.md).\n"
        "\n"
        "  --duration SECS[s]  simulated seconds per run (default "
        "240s)\n"
        "  --seeds N           seeds per campaign cell (default 3)\n"
        "  --repetitions N     measured repetitions (default 5)\n"
        "  --warmup N          unmeasured warmup repetitions (default "
        "1)\n"
        "  --jobs N            sweep worker threads (default 1)\n"
        "  --output FILE       JSON output path (default "
        "BENCH_hotloop.json)\n"
        "  --baseline FILE     fail if events/sec regressed vs FILE\n"
        "  --threshold PCT     regression tolerance for --baseline "
        "(default 15)\n"
        "  --validate FILE     schema-check an existing JSON and "
        "exit\n"
        "  --selfcheck         re-read and schema-check the JSON "
        "just written\n"
        "  --quiet             suppress progress output\n",
        argv0);
    std::exit(code);
}

Seconds
parseDuration(const char *text)
{
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || (*end != '\0' && std::strcmp(end, "s") != 0) ||
        !std::isfinite(value) || value <= 0.0) {
        std::fprintf(stderr,
                     "--duration: expected a positive number of "
                     "seconds (optionally 's'-suffixed), got '%s'\n",
                     text);
        std::exit(1);
    }
    return value;
}

Options
parseArgs(int argc, char **argv)
{
    Options options;
    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing argument for %s\n", argv[i]);
            std::exit(1);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--duration") {
            options.duration = parseDuration(need(i));
        } else if (arg == "--seeds") {
            options.seeds = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--repetitions") {
            options.repetitions = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--warmup") {
            options.warmup = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--jobs") {
            options.jobs = std::strtoull(need(i), nullptr, 10);
        } else if (arg == "--output") {
            options.output = need(i);
        } else if (arg == "--baseline") {
            options.baseline = need(i);
        } else if (arg == "--threshold") {
            options.threshold = std::strtod(need(i), nullptr);
        } else if (arg == "--validate") {
            options.validate = need(i);
        } else if (arg == "--selfcheck") {
            options.selfcheck = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            std::exit(1);
        }
    }
    if (options.seeds == 0 || options.seeds > SweepSpec::kMaxSeeds) {
        std::fprintf(stderr, "--seeds must be in [1, %zu]\n",
                     SweepSpec::kMaxSeeds);
        std::exit(1);
    }
    if (options.repetitions == 0 || options.repetitions > 1000) {
        std::fprintf(stderr, "--repetitions must be in [1, 1000]\n");
        std::exit(1);
    }
    if (options.warmup > 1000) {
        std::fprintf(stderr, "--warmup must be at most 1000\n");
        std::exit(1);
    }
    if (options.jobs == 0 || options.jobs > ThreadPool::kMaxThreads) {
        std::fprintf(stderr, "--jobs must be in [1, %zu]\n",
                     ThreadPool::kMaxThreads);
        std::exit(1);
    }
    if (!std::isfinite(options.threshold) || options.threshold < 0.0) {
        std::fprintf(stderr, "--threshold must be non-negative\n");
        std::exit(1);
    }
    return options;
}

// --------------------------------------------------------------------
// Minimal JSON reader: parses into a flat map of dotted paths. Only
// what this tool's own schema needs — objects, arrays, strings,
// finite numbers, booleans.

struct FlatJson
{
    std::map<std::string, double> numbers;
    std::map<std::string, std::string> strings;
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, FlatJson &out)
        : text_(text), out_(out)
    {
    }

    bool
    parse()
    {
        skipSpace();
        if (!parseValue(""))
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

    const std::string &error() const { return error_; }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_.empty()) {
            error_ = what + " at byte " + std::to_string(pos_);
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("dangling escape");
                const char esc = text_[pos_++];
                switch (esc) {
                case '"':
                case '\\':
                case '/':
                    c = esc;
                    break;
                case 'n':
                    c = '\n';
                    break;
                case 't':
                    c = '\t';
                    break;
                default:
                    return fail("unsupported escape");
                }
            }
            out.push_back(c);
        }
        if (pos_ >= text_.size())
            return fail("unterminated string");
        ++pos_; // closing quote
        return true;
    }

    bool
    parseValue(const std::string &path)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(path);
        if (c == '[')
            return parseArray(path);
        if (c == '"') {
            std::string value;
            if (!parseString(value))
                return false;
            out_.strings[path] = value;
            return true;
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            out_.numbers[path] = 1.0;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            out_.numbers[path] = 0.0;
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return true;
        }
        // Locale-independent number parse (strtod would honour
        // LC_NUMERIC and silently stop at a ',' decimal separator);
        // also rejects the non-JSON "nan"/"inf" spellings.
        double value = 0.0;
        if (!parseJsonNumber(text_, pos_, value))
            return fail("expected a JSON value");
        out_.numbers[path] = value;
        return true;
    }

    bool
    parseObject(const std::string &path)
    {
        if (!consume('{'))
            return false;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return false;
            const std::string sub =
                path.empty() ? key : path + "." + key;
            if (!parseValue(sub))
                return false;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume('}');
        }
    }

    bool
    parseArray(const std::string &path)
    {
        if (!consume('['))
            return false;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        std::size_t index = 0;
        while (true) {
            if (!parseValue(path + "[" + std::to_string(index++) + "]"))
                return false;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume(']');
        }
    }

    const std::string &text_;
    FlatJson &out_;
    std::size_t pos_ = 0;
    std::string error_;
};

bool
loadJson(const std::string &path, FlatJson &out, std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    JsonParser parser(text, out);
    if (!parser.parse()) {
        error = path + ": " + parser.error();
        return false;
    }
    return true;
}

/**
 * Schema check: every required key present, schema_version within
 * the versions this reader understands, every number finite (the
 * parser already rejects non-finite literals) and the medians
 * positive.
 */
bool
validateSchema(const FlatJson &json, std::string &error)
{
    const char *required_numbers[] = {
        "schema_version",        "peak_rss_bytes",
        "runs_per_repetition",   "events_per_repetition",
        "campaign.duration_s",   "campaign.seeds",
        "campaign.repetitions",  "campaign.warmup",
        "campaign.jobs",         "wall_s.median",
        "wall_s.p25",            "wall_s.p75",
        "events_per_sec.median", "events_per_sec.p25",
        "events_per_sec.p75",    "runs_per_sec.median",
        "runs_per_sec.p25",      "runs_per_sec.p75",
    };
    for (const char *key : required_numbers) {
        if (json.numbers.find(key) == json.numbers.end()) {
            error = std::string("missing required number '") + key + "'";
            return false;
        }
    }
    if (json.strings.find("benchmark") == json.strings.end()) {
        error = "missing required string 'benchmark'";
        return false;
    }
    const double version = json.numbers.at("schema_version");
    if (version != std::floor(version) || version < 1 ||
        version > kSchemaVersion) {
        error = "schema_version must be an integer in [1, " +
                std::to_string(kSchemaVersion) + "]";
        return false;
    }
    // v2 stamps build provenance; v1 files predate it and stay
    // valid, so the committed baseline never has to be regenerated
    // just for a schema bump.
    if (version >= 2) {
        const char *provenance[] = {
            "provenance.git_sha", "provenance.compiler",
            "provenance.compiler_flags", "provenance.build_type"};
        for (const char *key : provenance) {
            if (json.strings.find(key) == json.strings.end()) {
                error = std::string("missing required string '") +
                        key + "' (schema_version >= 2)";
                return false;
            }
        }
    }
    const char *positive[] = {"wall_s.median", "events_per_sec.median",
                              "runs_per_sec.median"};
    for (const char *key : positive) {
        if (json.numbers.at(key) <= 0.0) {
            error = std::string("'") + key + "' must be positive";
            return false;
        }
    }
    return true;
}

// --------------------------------------------------------------------
// Measurement.

double
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0.0;
#if defined(__APPLE__)
    return static_cast<double>(usage.ru_maxrss); // bytes
#else
    return static_cast<double>(usage.ru_maxrss) * 1024.0; // KiB
#endif
#else
    return 0.0;
#endif
}

SweepSpec
campaignSpec(const Options &options)
{
    SweepSpec spec;
    spec.workloads = kWorkloads;
    spec.platforms = kPlatforms;
    spec.traces = kTraces;
    spec.policies = kPolicies;
    spec.seeds = options.seeds;
    spec.masterSeed = kMasterSeed;
    spec.duration = options.duration;
    spec.keepSeries = false; // summaries only: peak RSS stays honest
    return spec;
}

Spread
spreadOf(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    const auto at = [&](double q) {
        // Nearest-rank on the sorted repetitions.
        const std::size_t n = samples.size();
        const auto rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(n)));
        return samples[std::min(rank > 0 ? rank - 1 : 0, n - 1)];
    };
    Spread spread;
    spread.median = at(0.50);
    spread.p25 = at(0.25);
    spread.p75 = at(0.75);
    return spread;
}

struct Measurement
{
    std::size_t runs = 0;
    std::uint64_t events = 0;
    Spread wall;
    Spread eventsPerSec;
    Spread runsPerSec;
    double peakRss = 0.0;
};

Measurement
measure(const Options &options)
{
    const SweepEngine engine(campaignSpec(options));
    Measurement m;
    std::vector<double> wall, eps, rps;

    const std::size_t total = options.warmup + options.repetitions;
    for (std::size_t rep = 0; rep < total; ++rep) {
        const bool warm = rep < options.warmup;
        const auto start = std::chrono::steady_clock::now();
        const SweepResults results = engine.run(options.jobs);
        const auto stop = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(stop - start).count();

        std::uint64_t events = 0;
        for (const SweepRun &run : results.runs)
            events += run.result.simEvents;
        if (!warm) {
            m.runs = results.runs.size();
            m.events = events;
            wall.push_back(seconds);
            eps.push_back(static_cast<double>(events) / seconds);
            rps.push_back(static_cast<double>(results.runs.size()) /
                          seconds);
        }
        if (!options.quiet) {
            std::fprintf(stderr,
                         "%s %zu/%zu: %zu runs, %.2fs wall, %.3g "
                         "events/s\n",
                         warm ? "warmup" : "rep",
                         warm ? rep + 1 : rep - options.warmup + 1,
                         warm ? options.warmup : options.repetitions,
                         results.runs.size(), seconds,
                         static_cast<double>(events) / seconds);
        }
    }

    m.wall = spreadOf(wall);
    m.eventsPerSec = spreadOf(eps);
    m.runsPerSec = spreadOf(rps);
    m.peakRss = peakRssBytes();
    return m;
}

std::string
jsonStringList(const std::vector<std::string> &items)
{
    std::string out = "[";
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i)
            out += ", ";
        out += "\"" + items[i] + "\"";
    }
    return out + "]";
}

void
writeJson(const Options &options, const Measurement &m)
{
    std::ofstream out(options.output);
    if (!out)
        fatal("hipster_bench: cannot write ", options.output);
    // Locale-independent emit: every number goes through to_chars
    // (formatJsonNumber, which also rejects NaN/Inf at emit time),
    // and the stream is pinned to the classic locale so an imbued
    // global locale cannot add thousands grouping to integers.
    out.imbue(std::locale::classic());
    const auto num = [](double value) {
        return formatJsonNumber(value);
    };
    const auto count = [](std::uint64_t value) {
        return formatJsonNumber(value);
    };
    out << "{\n";
    out << "  \"schema_version\": "
        << count(static_cast<std::uint64_t>(kSchemaVersion)) << ",\n";
    out << "  \"benchmark\": \"" << kBenchmarkName << "\",\n";
    out << "  \"provenance\": {\n";
    out << "    \"git_sha\": \"" << buildGitSha() << "\",\n";
    out << "    \"compiler\": \"" << buildCompilerId() << "\",\n";
    out << "    \"compiler_flags\": \"" << buildCompilerFlags()
        << "\",\n";
    out << "    \"build_type\": \"" << buildTypeName() << "\"\n";
    out << "  },\n";
    out << "  \"campaign\": {\n";
    out << "    \"workloads\": " << jsonStringList(kWorkloads) << ",\n";
    out << "    \"platforms\": " << jsonStringList(kPlatforms) << ",\n";
    out << "    \"traces\": " << jsonStringList(kTraces) << ",\n";
    out << "    \"policies\": " << jsonStringList(kPolicies) << ",\n";
    out << "    \"master_seed\": " << count(kMasterSeed) << ",\n";
    out << "    \"duration_s\": " << num(options.duration) << ",\n";
    out << "    \"seeds\": " << count(options.seeds) << ",\n";
    out << "    \"repetitions\": " << count(options.repetitions)
        << ",\n";
    out << "    \"warmup\": " << count(options.warmup) << ",\n";
    out << "    \"jobs\": " << count(options.jobs) << "\n";
    out << "  },\n";
    out << "  \"runs_per_repetition\": " << count(m.runs) << ",\n";
    out << "  \"events_per_repetition\": " << count(m.events) << ",\n";
    out << "  \"wall_s\": {\"median\": " << num(m.wall.median)
        << ", \"p25\": " << num(m.wall.p25)
        << ", \"p75\": " << num(m.wall.p75) << "},\n";
    out << "  \"events_per_sec\": {\"median\": "
        << num(m.eventsPerSec.median)
        << ", \"p25\": " << num(m.eventsPerSec.p25)
        << ", \"p75\": " << num(m.eventsPerSec.p75) << "},\n";
    out << "  \"runs_per_sec\": {\"median\": " << num(m.runsPerSec.median)
        << ", \"p25\": " << num(m.runsPerSec.p25)
        << ", \"p75\": " << num(m.runsPerSec.p75) << "},\n";
    out << "  \"peak_rss_bytes\": " << num(m.peakRss) << "\n";
    out << "}\n";
    if (!out)
        fatal("hipster_bench: failed writing ", options.output);
}

int
validateFile(const std::string &path, bool quiet)
{
    FlatJson json;
    std::string error;
    if (!loadJson(path, json, error) || !validateSchema(json, error)) {
        std::fprintf(stderr, "hipster_bench: %s: invalid: %s\n",
                     path.c_str(), error.c_str());
        return 1;
    }
    if (!quiet)
        std::fprintf(stderr, "hipster_bench: %s: schema OK\n",
                     path.c_str());
    return 0;
}

/** Compare current events/sec against a baseline JSON; 0 = OK. */
int
compareBaseline(const Options &options, const Measurement &m)
{
    FlatJson base;
    std::string error;
    if (!loadJson(options.baseline, base, error) ||
        !validateSchema(base, error)) {
        std::fprintf(stderr, "hipster_bench: baseline %s: %s\n",
                     options.baseline.c_str(), error.c_str());
        return 1;
    }
    const double base_eps = base.numbers.at("events_per_sec.median");
    const double cur_eps = m.eventsPerSec.median;
    const double change = (cur_eps - base_eps) / base_eps * 100.0;
    std::fprintf(stderr,
                 "hipster_bench: events/sec %.4g vs baseline %.4g "
                 "(%+.1f%%), threshold -%.1f%%\n",
                 cur_eps, base_eps, change, options.threshold);
    if (change < -options.threshold) {
        std::fprintf(stderr,
                     "hipster_bench: FAIL — events/sec regressed "
                     "beyond %.1f%%\n",
                     options.threshold);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options = parseArgs(argc, argv);
    if (!options.validate.empty())
        return validateFile(options.validate, options.quiet);

    Measurement m;
    try {
        m = measure(options);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "hipster_bench: %s\n", e.what());
        return 1;
    }
    writeJson(options, m);
    if (!options.quiet) {
        std::fprintf(stderr,
                     "hipster_bench: %s — wall %.2fs (IQR %.2f–%.2f), "
                     "%.3g events/s, %.0f MiB peak RSS\n",
                     options.output.c_str(), m.wall.median, m.wall.p25,
                     m.wall.p75, m.eventsPerSec.median,
                     m.peakRss / (1024.0 * 1024.0));
    }

    if (options.selfcheck) {
        const int rc = validateFile(options.output, options.quiet);
        if (rc != 0)
            return rc;
    }
    if (!options.baseline.empty())
        return compareBaseline(options, m);
    return 0;
}
