/**
 * @file
 * Figure 7: HipsterIn managing Web-Search over the diurnal day.
 * Paper claims to check here (Section 4.2.3): HipsterIn performs
 * ~4.7x fewer task migrations than Octopus-Man on Web-Search while
 * improving QoS (up to 16%) and reducing energy (~13.5%).
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/baselines.hh"
#include "core/hipster_policy.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Figure 7", "HipsterIn on Web-Search (diurnal)");

    const Seconds duration =
        ScenarioDefaults::webSearchDiurnal * options.durationScale;
    const Seconds learning =
        ScenarioDefaults::learningPhase * options.durationScale;

    // HipsterIn run.
    ExperimentRunner runner = makeDiurnalRunner("websearch", duration, 1);
    HipsterParams params = tunedHipsterParams("websearch");
    params.learningPhase = learning;
    HipsterPolicy policy(runner.platform(), params);
    const auto hipster = runner.run(policy, duration);

    // Octopus-Man run for the migration/energy comparison.
    ExperimentRunner runner2 = makeDiurnalRunner("websearch", duration, 1);
    OctopusManPolicy octopus(runner2.platform(), {});
    const auto baseline = runner2.run(octopus, duration);

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"time_s", "tail_ms", "qps", "config", "phase"});
        for (const auto &m : hipster.series) {
            csv->add(m.begin)
                .add(m.tailLatency)
                .add(m.throughput)
                .add(m.config.label())
                .add(m.begin < learning ? "learning" : "exploitation")
                .endRow();
        }
    }

    TextTable table({"t(s)", "phase", "tail(ms)", "QPS", "config"});
    for (std::size_t k = 0; k < hipster.series.size(); k += 45) {
        const auto &m = hipster.series[k];
        table.newRow()
            .cell(static_cast<long long>(m.begin))
            .cell(m.begin < learning ? "learn" : "exploit")
            .cell(m.tailLatency, 1)
            .cell(m.throughput, 0)
            .cell(m.config.label());
    }
    table.print(std::cout);

    const double migration_ratio =
        hipster.migrations > 0
            ? static_cast<double>(baseline.migrations) /
                  hipster.migrations
            : 0.0;
    const double qos_gain = (hipster.summary.qosGuarantee -
                             baseline.summary.qosGuarantee) *
                            100.0;
    const double energy_cut =
        1.0 - hipster.summary.energy / baseline.summary.energy;

    std::printf("\n              %-12s %-12s\n", "HipsterIn",
                "Octopus-Man");
    std::printf("QoS guarantee %-12.1f %-12.1f\n",
                hipster.summary.qosGuarantee * 100.0,
                baseline.summary.qosGuarantee * 100.0);
    std::printf("migrations    %-12llu %-12llu\n",
                static_cast<unsigned long long>(hipster.migrations),
                static_cast<unsigned long long>(baseline.migrations));
    std::printf("energy (J)    %-12.0f %-12.0f\n",
                hipster.summary.energy, baseline.summary.energy);
    std::printf("\nPaper: ~4.7x fewer migrations, QoS up to +16%%, "
                "energy -13.5%% vs Octopus-Man.\n");
    std::printf("Measured: %.1fx fewer migrations, QoS %+.1f%%, energy "
                "%+.1f%%.\n",
                migration_ratio, qos_gain, -energy_cut * 100.0);
    return 0;
}
