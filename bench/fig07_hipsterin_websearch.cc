/**
 * @file
 * Figure 7: HipsterIn managing Web-Search over the diurnal day.
 * Paper claims to check here (Section 4.2.3): HipsterIn performs
 * ~4.7x fewer task migrations than Octopus-Man on Web-Search while
 * improving QoS (up to 16%) and reducing energy (~13.5%).
 *
 * Both policies run --seeds repetitions in parallel through
 * SweepEngine; the comparison uses the per-cell seed means.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "experiments/sweep.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv,
                                         bench::SweepOverrides::Supported);
    bench::banner("Figure 7", "HipsterIn on Web-Search (" +
                             bench::traceLabel(options) + ")");

    const Seconds learning =
        ScenarioDefaults::learningPhase * options.durationScale;

    SweepSpec spec = bench::sweepSpec(options);
    spec.workloads = {"websearch"};
    spec.policies = {"hipster-in", "octopus-man"};
    // Only the representative series feeds the table/CSV; summaries
    // cover the rest.
    spec.keepSeries = false;
    const auto results = bench::runSweep(spec, options);

    const ExperimentResult *rep =
        results.representative("hipster-in", "websearch");
    const AggregateSummary *hipster =
        results.find("hipster-in", "websearch");
    const AggregateSummary *octopus =
        results.find("octopus-man", "websearch");

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"time_s", "tail_ms", "qps", "config", "phase"});
        for (const auto &m : rep->series) {
            csv->add(m.begin)
                .add(m.tailLatency)
                .add(m.throughput)
                .add(m.config.label())
                .add(m.begin < learning ? "learning" : "exploitation")
                .endRow();
        }
    }

    TextTable table({"t(s)", "phase", "tail(ms)", "QPS", "config"});
    for (std::size_t k = 0; k < rep->series.size(); k += 45) {
        const auto &m = rep->series[k];
        table.newRow()
            .cell(static_cast<long long>(m.begin))
            .cell(m.begin < learning ? "learn" : "exploit")
            .cell(m.tailLatency, 1)
            .cell(m.throughput, 0)
            .cell(m.config.label());
    }
    table.print(std::cout);

    const double migration_ratio =
        hipster->migrations.mean > 0.0
            ? octopus->migrations.mean / hipster->migrations.mean
            : 0.0;
    const double qos_gain =
        (hipster->qosGuarantee.mean - octopus->qosGuarantee.mean) *
        100.0;
    const double energy_cut =
        1.0 - hipster->energy.mean / octopus->energy.mean;

    std::printf("\n%zu seeds (jobs=%zu), mean ± 95%% CI:\n",
                options.seeds, options.jobs);
    std::printf("              %-18s %-18s\n", "HipsterIn",
                "Octopus-Man");
    std::printf("QoS guarantee %-18s %-18s\n",
                formatMeanCi(hipster->qosGuarantee, 1, 100.0).c_str(),
                formatMeanCi(octopus->qosGuarantee, 1, 100.0).c_str());
    std::printf("migrations    %-18s %-18s\n",
                formatMeanCi(hipster->migrations, 1).c_str(),
                formatMeanCi(octopus->migrations, 1).c_str());
    std::printf("energy (J)    %-18s %-18s\n",
                formatMeanCi(hipster->energy, 0).c_str(),
                formatMeanCi(octopus->energy, 0).c_str());
    std::printf("\nPaper: ~4.7x fewer migrations, QoS up to +16%%, "
                "energy -13.5%% vs Octopus-Man.\n");
    std::printf("Measured: %.1fx fewer migrations, QoS %+.1f%%, energy "
                "%+.1f%%.\n",
                migration_ratio, qos_gain, -energy_cut * 100.0);
    return 0;
}
