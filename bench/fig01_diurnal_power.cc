/**
 * @file
 * Figure 1: power drawn for a diurnal load — Web-Search pinned to the
 * two big cores of the Juno R1 (the paper's static mapping). The
 * paper's observation: although load drops to ~5% of capacity, power
 * never falls below ~60% of peak, motivating heterogeneity + DVFS.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/baselines.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Figure 1",
                  "QPS vs server power, Web-Search on 2 big cores");

    const Seconds duration = 800.0 * options.durationScale;
    ExperimentRunner runner(Platform::junoR1(), webSearchWorkload(),
                            diurnalTrace(duration, 21), 1);
    StaticPolicy policy = StaticPolicy::allBig(runner.platform());
    const auto result = runner.run(policy, duration);

    double peak_power = 0.0;
    for (const auto &m : result.series)
        peak_power = std::max(peak_power, m.power);

    auto csv = bench::maybeCsv(options);
    if (csv)
        csv->header({"time_s", "load_pct", "power_pct"});

    TextTable table({"time (s)", "QPS %%max", "power %%max"});
    double min_power_pct = 100.0;
    for (std::size_t k = 0; k < result.series.size(); ++k) {
        const auto &m = result.series[k];
        const double load_pct = m.offeredLoad * 100.0;
        const double power_pct = m.power / peak_power * 100.0;
        min_power_pct = std::min(min_power_pct, power_pct);
        if (csv) {
            csv->add(m.begin).add(load_pct).add(power_pct).endRow();
        }
        if (k % 50 == 0) {
            table.newRow()
                .cell(static_cast<long long>(m.begin))
                .cell(load_pct, 1)
                .cell(power_pct, 1);
        }
    }
    table.print(std::cout);

    std::printf("\nPaper: load swings ~5-95%% of max capacity, yet the\n"
                "static big-core mapping never drops below ~60%% of peak "
                "power.\n");
    std::printf("Measured: minimum power = %.1f%% of peak.\n",
                min_power_pct);
    return 0;
}
