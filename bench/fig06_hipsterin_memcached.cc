/**
 * @file
 * Figure 6: HipsterIn managing Memcached over the diurnal day —
 * tail latency, throughput, DVFS and core-mapping time series, with
 * the learning/exploitation phase boundary marked. The paper's
 * claims to check: after the learning phase the core-mapping
 * oscillation drops (~8%) and the QoS guarantee improves (~24%)
 * versus the learning phase.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/hipster_policy.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Figure 6", "HipsterIn on Memcached (diurnal)");

    const Seconds duration =
        ScenarioDefaults::memcachedDiurnal * options.durationScale;
    const Seconds learning =
        ScenarioDefaults::learningPhase * options.durationScale;

    ExperimentRunner runner = makeDiurnalRunner("memcached", duration, 1);
    HipsterParams params = tunedHipsterParams("memcached");
    params.learningPhase = learning;
    HipsterPolicy policy(runner.platform(), params);
    const auto result = runner.run(policy, duration);

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"time_s", "tail_ms", "rps", "config", "phase"});
        for (const auto &m : result.series) {
            csv->add(m.begin)
                .add(m.tailLatency)
                .add(m.throughput)
                .add(m.config.label())
                .add(m.begin < learning ? "learning" : "exploitation")
                .endRow();
        }
    }

    TextTable table({"t(s)", "phase", "tail(ms)", "RPS", "config"});
    for (std::size_t k = 0; k < result.series.size(); k += 60) {
        const auto &m = result.series[k];
        table.newRow()
            .cell(static_cast<long long>(m.begin))
            .cell(m.begin < learning ? "learn" : "exploit")
            .cell(m.tailLatency, 2)
            .cell(m.throughput, 0)
            .cell(m.config.label());
    }
    table.print(std::cout);

    // Learning-vs-exploitation contrast.
    std::size_t learn_n = 0, learn_met = 0, learn_changes = 0;
    std::size_t expl_n = 0, expl_met = 0, expl_changes = 0;
    for (std::size_t k = 0; k < result.series.size(); ++k) {
        const auto &m = result.series[k];
        // Count core-mapping changes only (the paper's oscillation
        // metric); DVFS-only moves are cheap and intentional.
        const bool changed =
            k > 0 && (m.config.nBig != result.series[k - 1].config.nBig ||
                      m.config.nSmall !=
                          result.series[k - 1].config.nSmall);
        if (m.begin < learning) {
            ++learn_n;
            learn_met += m.qosViolated() ? 0 : 1;
            learn_changes += changed ? 1 : 0;
        } else {
            ++expl_n;
            expl_met += m.qosViolated() ? 0 : 1;
            expl_changes += changed ? 1 : 0;
        }
    }
    const double learn_qos =
        learn_n ? 100.0 * learn_met / learn_n : 0.0;
    const double expl_qos = expl_n ? 100.0 * expl_met / expl_n : 0.0;
    const double learn_osc =
        learn_n ? 100.0 * learn_changes / learn_n : 0.0;
    const double expl_osc =
        expl_n ? 100.0 * expl_changes / expl_n : 0.0;

    std::printf("\nLearning phase:      QoS %.1f%%, core-mapping changes "
                "in %.1f%% of intervals\n",
                learn_qos, learn_osc);
    std::printf("Exploitation phase:  QoS %.1f%%, core-mapping changes "
                "in %.1f%% of intervals\n",
                expl_qos, expl_osc);
    std::printf("Paper: oscillation reduced (by ~8%%) and QoS improved "
                "(by ~24%%) after learning.\n");
    std::printf("Measured: oscillation %+.1f%%, QoS %+.1f%% "
                "(exploitation vs learning).\n",
                expl_osc - learn_osc, expl_qos - learn_qos);
    std::printf("Overall: QoS %.1f%%, energy %.0f J, migrations %llu\n",
                result.summary.qosGuarantee * 100.0,
                result.summary.energy,
                static_cast<unsigned long long>(result.migrations));
    return 0;
}
