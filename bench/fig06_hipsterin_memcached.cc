/**
 * @file
 * Figure 6: HipsterIn managing Memcached over the diurnal day —
 * tail latency, throughput, DVFS and core-mapping time series, with
 * the learning/exploitation phase boundary marked. The paper's
 * claims to check: after the learning phase the core-mapping
 * oscillation drops (~8%) and the QoS guarantee improves (~24%)
 * versus the learning phase.
 *
 * Runs --seeds repetitions in parallel through SweepEngine; the time
 * series comes from the representative (first-seed) run, the
 * learning/exploitation contrast and the overall summary are
 * mean ± 95% CI across seeds.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "core/hipster_policy.hh"
#include "experiments/sweep.hh"

using namespace hipster;

namespace
{

/** Per-phase QoS / core-mapping-oscillation contrast of one run. */
struct PhaseContrast
{
    double learnQos = 0.0, explQos = 0.0;
    double learnOsc = 0.0, explOsc = 0.0;
};

PhaseContrast
contrastOf(const ExperimentResult &result, Seconds learning)
{
    std::size_t learn_n = 0, learn_met = 0, learn_changes = 0;
    std::size_t expl_n = 0, expl_met = 0, expl_changes = 0;
    for (std::size_t k = 0; k < result.series.size(); ++k) {
        const auto &m = result.series[k];
        // Count core-mapping changes only (the paper's oscillation
        // metric); DVFS-only moves are cheap and intentional.
        const bool changed =
            k > 0 && (m.config.nBig != result.series[k - 1].config.nBig ||
                      m.config.nSmall !=
                          result.series[k - 1].config.nSmall);
        if (m.begin < learning) {
            ++learn_n;
            learn_met += m.qosViolated() ? 0 : 1;
            learn_changes += changed ? 1 : 0;
        } else {
            ++expl_n;
            expl_met += m.qosViolated() ? 0 : 1;
            expl_changes += changed ? 1 : 0;
        }
    }
    PhaseContrast c;
    c.learnQos = learn_n ? 100.0 * learn_met / learn_n : 0.0;
    c.explQos = expl_n ? 100.0 * expl_met / expl_n : 0.0;
    c.learnOsc = learn_n ? 100.0 * learn_changes / learn_n : 0.0;
    c.explOsc = expl_n ? 100.0 * expl_changes / expl_n : 0.0;
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv,
                                         bench::SweepOverrides::Supported);
    bench::banner("Figure 6", "HipsterIn on Memcached (" +
                             bench::traceLabel(options) + ")");

    const Seconds learning =
        ScenarioDefaults::learningPhase * options.durationScale;

    SweepSpec spec = bench::sweepSpec(options);
    spec.workloads = {"memcached"};
    spec.policies = {"hipster-in"};
    const auto results = bench::runSweep(spec, options);

    const ExperimentResult *rep =
        results.representative("hipster-in", "memcached");
    const AggregateSummary *agg =
        results.find("hipster-in", "memcached");

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"time_s", "tail_ms", "rps", "config", "phase"});
        for (const auto &m : rep->series) {
            csv->add(m.begin)
                .add(m.tailLatency)
                .add(m.throughput)
                .add(m.config.label())
                .add(m.begin < learning ? "learning" : "exploitation")
                .endRow();
        }
    }

    TextTable table({"t(s)", "phase", "tail(ms)", "RPS", "config"});
    for (std::size_t k = 0; k < rep->series.size(); k += 60) {
        const auto &m = rep->series[k];
        table.newRow()
            .cell(static_cast<long long>(m.begin))
            .cell(m.begin < learning ? "learn" : "exploit")
            .cell(m.tailLatency, 2)
            .cell(m.throughput, 0)
            .cell(m.config.label());
    }
    table.print(std::cout);

    // Learning-vs-exploitation contrast, aggregated across seeds.
    std::vector<double> learn_qos, expl_qos, learn_osc, expl_osc;
    for (const auto &run : results.runs) {
        const PhaseContrast c = contrastOf(run.result, learning);
        learn_qos.push_back(c.learnQos);
        expl_qos.push_back(c.explQos);
        learn_osc.push_back(c.learnOsc);
        expl_osc.push_back(c.explOsc);
    }
    const Estimate lq = Estimate::of(learn_qos);
    const Estimate eq = Estimate::of(expl_qos);
    const Estimate lo = Estimate::of(learn_osc);
    const Estimate eo = Estimate::of(expl_osc);

    std::printf("\n%zu seeds (jobs=%zu):\n", options.seeds,
                options.jobs);
    std::printf("Learning phase:      QoS %s%%, core-mapping changes "
                "in %s%% of intervals\n",
                formatMeanCi(lq, 1).c_str(),
                formatMeanCi(lo, 1).c_str());
    std::printf("Exploitation phase:  QoS %s%%, core-mapping changes "
                "in %s%% of intervals\n",
                formatMeanCi(eq, 1).c_str(),
                formatMeanCi(eo, 1).c_str());
    std::printf("Paper: oscillation reduced (by ~8%%) and QoS improved "
                "(by ~24%%) after learning.\n");
    std::printf("Measured: oscillation %+.1f%%, QoS %+.1f%% "
                "(exploitation vs learning, seed means).\n",
                eo.mean - lo.mean, eq.mean - lq.mean);
    std::printf("Overall: QoS %s%%, energy %s J, migrations %s\n",
                formatMeanCi(agg->qosGuarantee, 1, 100.0).c_str(),
                formatMeanCi(agg->energy, 0).c_str(),
                formatMeanCi(agg->migrations, 1).c_str());
    return 0;
}
