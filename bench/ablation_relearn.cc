/**
 * @file
 * Ablation: re-entering the learning phase (Algorithm 2, line 18).
 * The workload's characteristics change mid-run — the contention
 * sensitivity of the service doubles (as if a noisy neighbour
 * appeared) — and we compare Hipster with and without the
 * QoS-guarantee watchdog that re-enters the learning phase.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/hipster_policy.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

using namespace hipster;

namespace
{

/** Memcached whose per-request demand inflates by 1.35x mid-run —
 * the mid-run shift the watchdog must absorb. */
LcWorkloadDef
shiftedWorkload()
{
    LcWorkloadDef def = memcachedWorkload();
    def.params.demand.meanComputeInsn *= 1.35;
    def.params.demand.meanMemStall *= 1.35;
    return def;
}

RunSummary
runPhase2(bool with_watchdog, Seconds phase, std::uint64_t seed)
{
    // Phase 1 (normal demand) trains the table; phase 2 (inflated
    // demand) stresses it. We emulate the shift by running two
    // runners back-to-back, transplanting nothing: the second run
    // reuses the same policy object, which is the point.
    Platform platform(Platform::junoR1());
    HipsterParams params = tunedHipsterParams("memcached");
    params.learningPhase = 300.0;
    params.relearnThreshold = with_watchdog ? 0.85 : 0.0;
    params.guaranteeWindow = 60;
    HipsterPolicy policy(platform, params);

    ExperimentRunner normal(Platform::junoR1(), memcachedWorkload(),
                            diurnalTrace(phase, 31), seed);
    normal.run(policy, phase);

    ExperimentRunner shifted(Platform::junoR1(), shiftedWorkload(),
                             diurnalTrace(phase, 32), seed + 1);
    // Continue with the trained policy: decide() keeps being called
    // with the new workload's metrics.
    const auto result = shifted.run(policy, phase);
    return result.summary;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Ablation: learning-phase re-entry",
                  "workload characteristics shift mid-run "
                  "(demand +35%)");

    const Seconds phase = 700.0 * options.durationScale;

    const RunSummary with = runPhase2(true, phase, 5);
    const RunSummary without = runPhase2(false, phase, 5);

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"watchdog", "qos_pct", "tardiness", "energy_j"});
        csv->add("on").add(with.qosGuarantee * 100.0)
            .add(with.qosTardiness).add(with.energy).endRow();
        csv->add("off").add(without.qosGuarantee * 100.0)
            .add(without.qosTardiness).add(without.energy).endRow();
    }

    TextTable table({"watchdog", "QoS after shift", "tardiness",
                     "energy (J)"});
    table.newRow()
        .cell("on (Algorithm 2 l.18)")
        .percentCell(with.qosGuarantee)
        .cell(with.qosTardiness, 2)
        .cell(with.energy, 0);
    table.newRow()
        .cell("off")
        .percentCell(without.qosGuarantee)
        .cell(without.qosTardiness, 2)
        .cell(without.energy, 0);
    table.print(std::cout);

    std::printf("\nExpected: with the watchdog, a QoS collapse after the "
                "shift re-enters the heuristic\nlearning phase and "
                "re-populates the table for the new behaviour; without "
                "it the stale\ntable keeps choosing under-provisioned "
                "configurations.\n");
    return 0;
}
