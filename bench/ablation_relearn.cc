/**
 * @file
 * Ablation: re-entering the learning phase (Algorithm 2, line 18).
 * The workload's characteristics change mid-run — the contention
 * sensitivity of the service doubles (as if a noisy neighbour
 * appeared) — and we compare Hipster with and without the
 * QoS-guarantee watchdog that re-enters the learning phase.
 *
 * The watchdog on/off pair runs --seeds repetitions in parallel
 * through SweepEngine with a custom two-phase job runner; rows
 * report post-shift seed means ± 95% CI.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "core/hipster_policy.hh"
#include "experiments/sweep.hh"

using namespace hipster;

namespace
{

/** Memcached whose per-request demand inflates by 1.35x mid-run —
 * the mid-run shift the watchdog must absorb. */
LcWorkloadDef
shiftedWorkload()
{
    LcWorkloadDef def = memcachedWorkload();
    def.params.demand.meanComputeInsn *= 1.35;
    def.params.demand.meanMemStall *= 1.35;
    return def;
}

/**
 * Phase 1 (normal demand) trains the table; phase 2 (inflated
 * demand) stresses it. We emulate the shift by running two runners
 * back-to-back, transplanting nothing: the second run reuses the
 * same policy object, which is the point. Returns the phase-2
 * result.
 */
ExperimentResult
runPhase2(bool with_watchdog, Seconds phase, std::uint64_t seed)
{
    Platform platform(Platform::junoR1());
    HipsterParams params = tunedHipsterParams("memcached");
    params.learningPhase = 300.0;
    params.relearnThreshold = with_watchdog ? 0.85 : 0.0;
    params.guaranteeWindow = 60;
    HipsterPolicy policy(platform, params);

    ExperimentRunner normal(Platform::junoR1(), memcachedWorkload(),
                            diurnalTrace(phase, seed + 100), seed);
    normal.run(policy, phase);

    ExperimentRunner shifted(Platform::junoR1(), shiftedWorkload(),
                             diurnalTrace(phase, seed + 200),
                             seed + 1);
    // Continue with the trained policy: decide() keeps being called
    // with the new workload's metrics.
    return shifted.run(policy, phase);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Ablation: learning-phase re-entry",
                  "workload characteristics shift mid-run "
                  "(demand +35%)");

    const Seconds phase = 700.0 * options.durationScale;

    SweepSpec spec = bench::sweepSpec(options);
    spec.workloads = {"memcached"};
    spec.policies = {"watchdog-on", "watchdog-off"};
    spec.keepSeries = false; // only summaries are reported
    spec.jobRunner = [&](const SweepJob &job) {
        return runPhase2(job.policy == "watchdog-on", phase, job.seed);
    };
    const auto results = bench::runSweep(spec, options);

    const AggregateSummary *with =
        results.find("watchdog-on", "memcached");
    const AggregateSummary *without =
        results.find("watchdog-off", "memcached");

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"watchdog", "runs", "qos_pct", "qos_ci95_pct",
                     "tardiness", "energy_j"});
        csv->add("on").add(with->runs)
            .add(with->qosGuarantee.mean * 100.0)
            .add(with->qosGuarantee.ci95 * 100.0)
            .add(with->qosTardiness.mean).add(with->energy.mean)
            .endRow();
        csv->add("off").add(without->runs)
            .add(without->qosGuarantee.mean * 100.0)
            .add(without->qosGuarantee.ci95 * 100.0)
            .add(without->qosTardiness.mean).add(without->energy.mean)
            .endRow();
    }

    std::printf("%zu seeds per cell (jobs=%zu):\n\n", options.seeds,
                options.jobs);
    TextTable table({"watchdog", "QoS after shift", "tardiness",
                     "energy (J)"});
    table.newRow()
        .cell("on (Algorithm 2 l.18)")
        .cell(formatMeanCi(with->qosGuarantee, 1, 100.0) + "%")
        .cell(formatMeanCi(with->qosTardiness, 2))
        .cell(formatMeanCi(with->energy, 0));
    table.newRow()
        .cell("off")
        .cell(formatMeanCi(without->qosGuarantee, 1, 100.0) + "%")
        .cell(formatMeanCi(without->qosTardiness, 2))
        .cell(formatMeanCi(without->energy, 0));
    table.print(std::cout);

    std::printf("\nExpected: with the watchdog, a QoS collapse after the "
                "shift re-enters the heuristic\nlearning phase and "
                "re-populates the table for the new behaviour; without "
                "it the stale\ntable keeps choosing under-provisioned "
                "configurations.\n");
    return 0;
}
