/**
 * @file
 * Section 3.7's runtime-overhead claim, verified with
 * google-benchmark: the paper measures < 2 ms per decision for its
 * Python prototype (invoked every second, < 0.2% overhead). The C++
 * implementation's whole decision path — reward, table update,
 * argmax, decision decoration — must be far below that.
 */

#include <benchmark/benchmark.h>

#include "core/baselines.hh"
#include "core/hipster_policy.hh"
#include "core/qtable.hh"
#include "core/reward.hh"
#include "platform/platform.hh"

namespace
{

using namespace hipster;

IntervalMetrics
sampleMetrics(int i)
{
    IntervalMetrics m;
    m.begin = i;
    m.end = i + 1.0;
    m.offeredLoad = 0.05 + 0.9 * ((i * 37) % 100) / 100.0;
    m.tailLatency = 2.0 + (i % 10);
    m.qosTarget = 10.0;
    m.power = 2.0;
    m.energy = 2.0;
    return m;
}

void
BM_HipsterDecision(benchmark::State &state)
{
    Platform platform(Platform::junoR1());
    HipsterPolicy policy(platform, {});
    policy.initialDecision();
    int i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(policy.decide(sampleMetrics(i++)));
    }
    state.SetLabel("paper bound: 2 ms per decision");
}
BENCHMARK(BM_HipsterDecision);

void
BM_OctopusManDecision(benchmark::State &state)
{
    Platform platform(Platform::junoR1());
    OctopusManPolicy policy(platform, {});
    policy.initialDecision();
    int i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(policy.decide(sampleMetrics(i++)));
}
BENCHMARK(BM_OctopusManDecision);

void
BM_QTableUpdate(benchmark::State &state)
{
    QTable table(20, 13);
    int i = 0;
    for (auto _ : state) {
        table.update(i % 20, i % 13, 1.5, (i + 1) % 20, 0.6, 0.9);
        ++i;
    }
}
BENCHMARK(BM_QTableUpdate);

void
BM_QTableBestAction(benchmark::State &state)
{
    QTable table(20, 13);
    for (int w = 0; w < 20; ++w)
        for (int c = 0; c < 13; ++c)
            table.update(w, c, (w * 13 + c) % 7, (w + 1) % 20, 0.6, 0.9);
    int w = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.bestAction(w));
        w = (w + 1) % 20;
    }
}
BENCHMARK(BM_QTableBestAction);

void
BM_RewardEvaluation(benchmark::State &state)
{
    RewardCalculator calc(0.8);
    RewardInputs in;
    in.qosCurr = 9.0;
    in.qosTarget = 10.0;
    in.power = 2.0;
    in.tdp = 3.0;
    in.maxIpsSum = 7.5e9;
    for (auto _ : state)
        benchmark::DoNotOptimize(calc.evaluate(in));
}
BENCHMARK(BM_RewardEvaluation);

void
BM_PlatformApplyConfig(benchmark::State &state)
{
    Platform platform(Platform::junoR1());
    const CoreConfig a{2, 0, 1.15, 0.65};
    const CoreConfig b{1, 3, 0.90, 0.65};
    bool flip = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(platform.applyConfig(flip ? a : b));
        flip = !flip;
    }
}
BENCHMARK(BM_PlatformApplyConfig);

} // namespace

BENCHMARK_MAIN();
