/**
 * @file
 * Table 3: the HipsterIn evaluation summary — QoS guarantee, QoS
 * tardiness and energy reduction (vs static all-big) for the five
 * policies on Memcached and Web-Search over the diurnal day.
 *
 * Shape checks from the paper: static all-small cannot meet QoS;
 * the heuristic policies (Octopus-Man, Hipster's heuristic) save
 * energy but violate QoS more; HipsterIn delivers the best QoS of
 * the dynamic policies (99.4% / 96.5% in the paper) with double-
 * digit energy savings.
 */

#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_util.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv);
    bench::banner("Table 3",
                  "QoS guarantee / tardiness / energy reduction, "
                  "5 policies x 2 workloads");

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"policy", "workload", "qos_guarantee_pct",
                     "qos_tardiness", "energy_reduction_pct"});
    }

    std::map<std::string, std::map<std::string, RunSummary>> results;
    std::map<std::string, std::string> display;

    for (const char *workload : {"memcached", "websearch"}) {
        const Seconds duration =
            diurnalDurationFor(workload) * options.durationScale;
        for (const auto &policy_name : tablePolicyNames()) {
            ExperimentRunner runner =
                makeDiurnalRunner(workload, duration, 1);
            HipsterParams params = tunedHipsterParams(workload);
            params.learningPhase =
                ScenarioDefaults::learningPhase * options.durationScale;
            auto policy =
                makePolicy(policy_name, runner.platform(), params);
            const auto result = runner.run(*policy, duration);
            results[policy_name][workload] = result.summary;
            display[policy_name] = result.policyName;
        }
    }

    TextTable table({"Policy", "QoS guar. MC", "QoS guar. WS",
                     "Tardiness MC", "Tardiness WS", "Energy red. MC",
                     "Energy red. WS"});
    const RunSummary &mc_base = results["static-big"]["memcached"];
    const RunSummary &ws_base = results["static-big"]["websearch"];
    for (const auto &policy_name : tablePolicyNames()) {
        const RunSummary &mc = results[policy_name]["memcached"];
        const RunSummary &ws = results[policy_name]["websearch"];
        table.newRow()
            .cell(display[policy_name])
            .percentCell(mc.qosGuarantee)
            .percentCell(ws.qosGuarantee)
            .cell(mc.qosTardiness, 1)
            .cell(ws.qosTardiness, 1)
            .percentCell(mc.energyReductionVs(mc_base))
            .percentCell(ws.energyReductionVs(ws_base));
        if (csv) {
            for (const char *workload : {"memcached", "websearch"}) {
                const RunSummary &s = results[policy_name][workload];
                const RunSummary &base = workload[0] == 'm' ? mc_base
                                                            : ws_base;
                csv->add(display[policy_name])
                    .add(workload)
                    .add(s.qosGuarantee * 100.0)
                    .add(s.qosTardiness)
                    .add(s.energyReductionVs(base) * 100.0)
                    .endRow();
            }
        }
    }
    table.print(std::cout);

    std::printf(
        "\nPaper (Table 3):                QoS MC / WS     energy red.\n"
        "  Static (all big)              99.5%% / 99.5%%     -    / -\n"
        "  Static (all small)            85.8%% / 78.4%%   48.0%% / 31.0%%\n"
        "  Hipster's heuristic           89.9%% / 95.3%%   18.7%% / 13.6%%\n"
        "  Octopus-Man                   92.0%% / 80.0%%   17.2%% /  4.3%%\n"
        "  HipsterIn                     99.4%% / 96.5%%   14.3%% / 17.8%%\n"
        "\nShape checks: HipsterIn beats the heuristic policies on QoS\n"
        "with comparable (10-20%%) energy savings; all-small saves the\n"
        "most energy but cannot meet QoS.\n");
    return 0;
}
