/**
 * @file
 * Table 3: the HipsterIn evaluation summary — QoS guarantee, QoS
 * tardiness and energy reduction (vs static all-big) for the five
 * policies on Memcached and Web-Search over the diurnal day.
 *
 * Shape checks from the paper: static all-small cannot meet QoS;
 * the heuristic policies (Octopus-Man, Hipster's heuristic) save
 * energy but violate QoS more; HipsterIn delivers the best QoS of
 * the dynamic policies (99.4% / 96.5% in the paper) with double-
 * digit energy savings.
 *
 * All 5 policies x 2 workloads x --seeds repetitions run in parallel
 * through SweepEngine; cells report seed means (± 95% CI), and the
 * energy reduction compares mean energies against static all-big.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_util.hh"
#include "experiments/sweep.hh"

using namespace hipster;

int
main(int argc, char **argv)
{
    const auto options = bench::parseArgs(argc, argv,
                                         bench::SweepOverrides::Supported);
    bench::banner("Table 3",
                  "QoS guarantee / tardiness / energy reduction, "
                  "5 policies x 2 workloads (" +
                      bench::traceLabel(options) + ")");

    SweepSpec spec = bench::sweepSpec(options);
    spec.workloads = {"memcached", "websearch"};
    spec.policies = tablePolicyNames();
    spec.keepSeries = false; // only summaries are reported
    const auto results = bench::runSweep(spec, options);

    auto csv = bench::maybeCsv(options);
    if (csv) {
        csv->header({"policy", "workload", "runs",
                     "qos_guarantee_pct", "qos_guarantee_ci95_pct",
                     "qos_tardiness", "energy_reduction_pct"});
    }

    const AggregateSummary *mc_base =
        results.find("static-big", "memcached");
    const AggregateSummary *ws_base =
        results.find("static-big", "websearch");

    std::printf("%zu seeds per cell (jobs=%zu), mean ± 95%% CI:\n\n",
                options.seeds, options.jobs);
    TextTable table({"Policy", "QoS guar. MC", "QoS guar. WS",
                     "Tardiness MC", "Tardiness WS", "Energy red. MC",
                     "Energy red. WS"});
    for (const auto &policy_name : tablePolicyNames()) {
        const AggregateSummary *mc =
            results.find(policy_name, "memcached");
        const AggregateSummary *ws =
            results.find(policy_name, "websearch");
        const double mc_red = 1.0 - mc->energy.mean / mc_base->energy.mean;
        const double ws_red = 1.0 - ws->energy.mean / ws_base->energy.mean;
        table.newRow()
            .cell(mc->policyDisplay)
            .cell(formatMeanCi(mc->qosGuarantee, 1, 100.0) + "%")
            .cell(formatMeanCi(ws->qosGuarantee, 1, 100.0) + "%")
            .cell(formatMeanCi(mc->qosTardiness, 1))
            .cell(formatMeanCi(ws->qosTardiness, 1))
            .percentCell(mc_red)
            .percentCell(ws_red);
        if (csv) {
            for (const char *workload : {"memcached", "websearch"}) {
                const AggregateSummary *cell =
                    results.find(policy_name, workload);
                const AggregateSummary *base =
                    workload[0] == 'm' ? mc_base : ws_base;
                csv->add(cell->policyDisplay)
                    .add(workload)
                    .add(cell->runs)
                    .add(cell->qosGuarantee.mean * 100.0)
                    .add(cell->qosGuarantee.ci95 * 100.0)
                    .add(cell->qosTardiness.mean)
                    .add((1.0 - cell->energy.mean / base->energy.mean) *
                         100.0)
                    .endRow();
            }
        }
    }
    table.print(std::cout);

    std::printf(
        "\nPaper (Table 3):                QoS MC / WS     energy red.\n"
        "  Static (all big)              99.5%% / 99.5%%     -    / -\n"
        "  Static (all small)            85.8%% / 78.4%%   48.0%% / 31.0%%\n"
        "  Hipster's heuristic           89.9%% / 95.3%%   18.7%% / 13.6%%\n"
        "  Octopus-Man                   92.0%% / 80.0%%   17.2%% /  4.3%%\n"
        "  HipsterIn                     99.4%% / 96.5%%   14.3%% / 17.8%%\n"
        "\nShape checks: HipsterIn beats the heuristic policies on QoS\n"
        "with comparable (10-20%%) energy savings; all-small saves the\n"
        "most energy but cannot meet QoS.\n");
    return 0;
}
