/**
 * @file
 * Colocation demo (HipsterCo): Web-Search shares the Juno with a mix
 * of batch programs; Hipster keeps the QoS target while giving the
 * spare cores — clocked up — to the batch work.
 *
 * Usage:
 *   ./build/examples/example_colocation_demo [batch-program ...]
 * e.g.
 *   ./build/examples/example_colocation_demo calculix lbm povray
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.hh"
#include "core/hipster_policy.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"
#include "workloads/batch.hh"

int
main(int argc, char **argv)
{
    using namespace hipster;

    // Pick the batch mix: arguments or a default compute/memory blend.
    std::vector<BatchKernel> mix;
    for (int i = 1; i < argc; ++i)
        mix.push_back(SpecCatalog::byName(argv[i]));
    if (mix.empty()) {
        mix = {SpecCatalog::byName("calculix"),
               SpecCatalog::byName("lbm")};
    }
    std::printf("Batch mix:");
    for (const auto &kernel : mix)
        std::printf(" %s(mem=%.2f)", kernel.name.c_str(),
                    kernel.memIntensity);
    std::printf("\n\n");

    const Seconds day = diurnalDurationFor("websearch");

    auto run = [&](const char *policy_name) {
        ExperimentRunner runner = makeDiurnalRunner("websearch", day, 1);
        runner.setBatch(std::make_shared<BatchWorkload>(mix));
        HipsterParams params = tunedHipsterParams("websearch");
        params.variant = PolicyVariant::Collocated;
        std::unique_ptr<TaskPolicy> policy;
        if (std::string(policy_name) == "static") {
            policy = std::make_unique<StaticPolicy>(StaticPolicy::allBig(
                runner.platform(), PolicyVariant::Collocated));
        } else {
            policy = makePolicy(policy_name, runner.platform(), params);
        }
        return runner.run(*policy, day);
    };

    const auto s = run("static");
    const auto o = run("octopus-man");
    const auto h = run("hipster-co");

    TextTable table({"policy", "QoS guarantee", "batch GIPS",
                     "vs static", "energy (J)"});
    auto add_row = [&](const ExperimentResult &r) {
        table.newRow()
            .cell(r.policyName)
            .percentCell(r.summary.qosGuarantee)
            .cell(r.summary.meanBatchIps / 1e9, 2)
            .cell(s.summary.meanBatchIps > 0
                      ? r.summary.meanBatchIps / s.summary.meanBatchIps
                      : 0.0,
                  2)
            .cell(r.summary.energy, 0);
    };
    add_row(s);
    add_row(o);
    add_row(h);
    table.print(std::cout);

    std::printf(
        "\nWhat to look for (paper Figure 11): both dynamic managers "
        "feed the batch mix\nbig cores whenever Web-Search's load "
        "allows, so batch throughput beats the\nstatic split; "
        "Octopus-Man pushes throughput hardest but violates the "
        "Web-Search\nQoS far more often, while HipsterCo keeps the "
        "guarantee high at lower energy.\n");
    return 0;
}
