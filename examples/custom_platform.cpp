/**
 * @file
 * Custom platform: shows that the library is not hard-wired to the
 * Juno R1. We assemble a hypothetical server-class big.LITTLE part
 * (4 "big" cores with four OPPs + 8 "small" cores with two OPPs),
 * give it its own power calibration, let ConfigSpace derive a
 * heuristic ladder automatically (no Figure 2c to copy from), and
 * run HipsterIn on it.
 *
 * Usage:
 *   ./build/examples/example_custom_platform
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "core/hipster_policy.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"
#include "platform/config_space.hh"
#include "platform/platform_registry.hh"

namespace
{

using namespace hipster;

/** A made-up 4+8 server SoC. */
PlatformSpec
serverSoc()
{
    PlatformSpec spec;
    spec.name = "Custom 4B+8S server SoC";

    ClusterSpec big;
    big.name = "BigCore";
    big.type = CoreType::Big;
    big.coreCount = 4;
    big.microbenchIpc = 2.2;
    big.l2Bytes = 4ULL << 20;
    big.opps = {{1.0, 0.80}, {1.5, 0.90}, {2.0, 1.00}, {2.5, 1.12}};

    ClusterSpec small;
    small.name = "SmallCore";
    small.type = CoreType::Small;
    small.coreCount = 8;
    small.microbenchIpc = 1.4;
    small.l2Bytes = 2ULL << 20;
    small.opps = {{0.8, 0.78}, {1.2, 0.88}};

    spec.clusters = {big, small};

    ClusterPowerParams big_power;
    big_power.core.refVoltage = 1.12;
    big_power.core.staticAtRef = 0.35;
    big_power.core.dynCoeff = 0.50;
    big_power.uncoreAtRef = 0.40;

    ClusterPowerParams small_power;
    small_power.core.refVoltage = 0.88;
    small_power.core.staticAtRef = 0.08;
    small_power.core.dynCoeff = 0.22;
    small_power.uncoreAtRef = 0.10;

    spec.power = {big_power, small_power};
    spec.restOfSystem = 1.5;
    return spec;
}

/** A service sized for this bigger machine. */
LcWorkloadDef
bigBoxService()
{
    LcWorkloadDef def = memcachedWorkload();
    def.params.name = "kv-store@4B8S";
    def.params.demand.ipcBig = 0.85;
    def.params.demand.ipcSmall = 0.45;
    // Re-anchor max load the way the paper defines it (Table 1): the
    // rate the big cluster at max DVFS serves at ~85% utilization.
    // The memory-stall part of each request does not shrink with the
    // faster clock, so derive it from the service model rather than
    // scaling by clock ratio.
    const ServiceModel model(def.params.demand);
    const Seconds service = model.meanServiceTime(CoreType::Big, 2.5);
    def.params.maxLoad = 0.85 * 4 / service / def.params.loadScale;
    return def;
}

} // namespace

int
main()
{
    using namespace hipster;

    const PlatformSpec spec = serverSoc();
    Platform platform(spec);
    std::printf("platform: %s, %u cores, TDP %.1f W\n",
                platform.name().c_str(), platform.totalCores(),
                platform.tdp());

    // Derive the action space automatically: enumerate every
    // core-mix + OPP combination (no paper ladder exists for this
    // part), thin it to the power-Pareto front, order by capability.
    const auto ladder = ConfigSpace::paretoPrune(
        platform, ConfigSpace::enumerate(platform),
        /*ips_epsilon=*/0.10);
    std::printf("derived ladder (%zu rungs):", ladder.size());
    for (const auto &config : ladder)
        std::printf(" %s", config.fullLabel().c_str());
    std::printf("\n\n");

    // Run HipsterIn with that ladder as the action space.
    const Seconds day = 900.0;
    ExperimentRunner runner(spec, bigBoxService(), diurnalTrace(day, 3),
                            /*seed=*/5);
    HipsterParams params;
    params.bucketPercent = 8.0;
    params.learningPhase = 300.0;
    HipsterPolicy hipster(runner.platform(), params, ladder);
    const auto result = runner.run(hipster, day);

    ExperimentRunner base_runner(spec, bigBoxService(),
                                 diurnalTrace(day, 3), /*seed=*/5);
    StaticPolicy static_big = StaticPolicy::allBig(base_runner.platform());
    const auto baseline = base_runner.run(static_big, day);

    TextTable table({"policy", "QoS guarantee", "energy (J)",
                     "vs static-big"});
    table.newRow()
        .cell(baseline.policyName)
        .percentCell(baseline.summary.qosGuarantee)
        .cell(baseline.summary.energy, 0)
        .cell("-");
    table.newRow()
        .cell(result.policyName)
        .percentCell(result.summary.qosGuarantee)
        .cell(result.summary.energy, 0)
        .percentCell(result.summary.energyReductionVs(baseline.summary));
    table.print(std::cout);

    std::printf("\nThe same manager, reward and monitor code runs "
                "unmodified on a platform it has\nnever seen — only the "
                "PlatformSpec and the (auto-derived) action space "
                "changed.\n");

    // The platform registry synthesizes comparable server-class
    // parts from a one-line spec — no C++ assembly required, and the
    // same string works as a sweep axis in hipster_sweep
    // --platforms.
    Platform fromSpec(makePlatformFromSpec(
        "hetero:big=4,little=8,bigfreq=2.5,bigipc=2.2,littleipc=1.4"));
    std::printf("\nregistry one-liner "
                "'hetero:big=4,little=8,bigfreq=2.5' -> %s, %u cores, "
                "TDP %.1f W\n",
                fromSpec.name().c_str(), fromSpec.totalCores(),
                fromSpec.tdp());
    return 0;
}
