/**
 * @file
 * Policy comparison: runs the full Table 3 lineup — static all-big,
 * static all-small, Hipster's heuristic, Octopus-Man and HipsterIn —
 * on a chosen workload and prints QoS/energy side by side.
 *
 * Usage:
 *   ./build/examples/example_policy_comparison [memcached|websearch] [seconds]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

int
main(int argc, char **argv)
{
    using namespace hipster;

    const std::string workload = argc > 1 ? argv[1] : "memcached";
    const Seconds duration =
        argc > 2 ? std::atof(argv[2]) : diurnalDurationFor(workload);
    if (duration <= 0.0) {
        std::fprintf(stderr, "bad duration\n");
        return 1;
    }

    std::printf("Comparing policies on %s over a %.0f s diurnal day\n\n",
                workload.c_str(), duration);

    TextTable table({"policy", "QoS guarantee", "QoS tardiness",
                     "energy (J)", "vs static-big", "migrations"});

    RunSummary baseline;
    for (const auto &name : tablePolicyNames()) {
        // A fresh runner per policy: identical seed, trace and
        // platform, so the comparison is apples-to-apples.
        ExperimentRunner runner = makeDiurnalRunner(workload, duration,
                                                    /*seed=*/1);
        HipsterParams params = tunedHipsterParams(workload);
        auto policy = makePolicy(name, runner.platform(), params);
        const ExperimentResult result = runner.run(*policy, duration);

        if (name == "static-big")
            baseline = result.summary;
        table.newRow()
            .cell(result.policyName)
            .percentCell(result.summary.qosGuarantee)
            .cell(result.summary.qosTardiness, 2)
            .cell(result.summary.energy, 0)
            .percentCell(result.summary.energyReductionVs(baseline))
            .cell(static_cast<long long>(result.migrations));
    }
    table.print(std::cout);

    std::printf("\n'vs static-big' is the energy reduction relative to "
                "pinning the workload to\nboth big cores at the highest "
                "DVFS (positive = saves energy). The paper's\nheadline: "
                "HipsterIn keeps the QoS guarantee near the static "
                "mapping while cutting\nenergy by double digits; the "
                "heuristic-only policies trade QoS for energy.\n");
    return 0;
}
