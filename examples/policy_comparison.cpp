/**
 * @file
 * Policy comparison: runs the full Table 3 lineup — static all-big,
 * static all-small, Hipster's heuristic, Octopus-Man and HipsterIn —
 * on a chosen workload/platform spec and prints QoS/energy side by
 * side. Each run is one declarative ExperimentSpec; any registry
 * spec works for the workload and platform axes.
 *
 * Usage:
 *   ./build/examples/example_policy_comparison \
 *       [workload-spec] [seconds] [platform-spec]
 *   ./build/examples/example_policy_comparison \
 *       memcached:qos=8ms 400 juno:big=4,little=8
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "experiments/experiment_spec.hh"
#include "experiments/scenario.hh"

int
main(int argc, char **argv)
{
    using namespace hipster;

    ExperimentSpec spec;
    spec.workload = argc > 1 ? argv[1] : "memcached";
    if (argc > 2) {
        // An explicit duration must be a positive number: 0 means
        // "diurnal default" to ExperimentSpec, so a typo'd argument
        // would otherwise silently run the full day.
        spec.duration = std::atof(argv[2]);
        if (spec.duration <= 0.0) {
            std::fprintf(stderr, "bad duration '%s'\n", argv[2]);
            return 1;
        }
    }
    spec.platform = argc > 3 ? argv[3] : "juno";
    spec.seed = 1;
    try {
        spec.validate();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    const Seconds duration = spec.resolvedDuration();

    std::printf("Comparing policies on %s / %s over a %.0f s diurnal "
                "day\n\n",
                spec.workload.c_str(), spec.platform.c_str(), duration);

    TextTable table({"policy", "QoS guarantee", "QoS tardiness",
                     "energy (J)", "vs static-big", "migrations"});

    RunSummary baseline;
    for (const auto &name : tablePolicyNames()) {
        // The same declarative spec per policy: identical seed,
        // trace, workload and platform, so the comparison is
        // apples-to-apples.
        spec.policy = name;
        const ExperimentResult result = spec.run();

        if (name == "static-big")
            baseline = result.summary;
        table.newRow()
            .cell(result.policyName)
            .percentCell(result.summary.qosGuarantee)
            .cell(result.summary.qosTardiness, 2)
            .cell(result.summary.energy, 0)
            .percentCell(result.summary.energyReductionVs(baseline))
            .cell(static_cast<long long>(result.migrations));
    }
    table.print(std::cout);

    std::printf("\n'vs static-big' is the energy reduction relative to "
                "pinning the workload to\nboth big cores at the highest "
                "DVFS (positive = saves energy). The paper's\nheadline: "
                "HipsterIn keeps the QoS guarantee near the static "
                "mapping while cutting\nenergy by double digits; the "
                "heuristic-only policies trade QoS for energy.\n");
    return 0;
}
