/**
 * @file
 * Quickstart: the smallest useful Hipster program.
 *
 * Builds the simulated ARM Juno R1, loads the Memcached workload
 * model, runs HipsterIn against one compressed diurnal day, and
 * prints the Table 3 style summary. Everything here uses only the
 * public API; start from this file when integrating the library.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/example_quickstart
 */

#include <cstdio>

#include "core/hipster_policy.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

int
main()
{
    using namespace hipster;

    // 1. A platform: the paper's evaluation board. Platform::junoR1()
    //    describes 2x Cortex-A57 (DVFS 0.60/0.90/1.15 GHz) + 4x
    //    Cortex-A53 (fixed 0.65 GHz) with a Table 2 calibrated power
    //    model.
    const PlatformSpec board = Platform::junoR1();

    // 2. A latency-critical workload: Memcached per Table 1
    //    (36 kRPS max load, 10 ms p95 target, open-loop traffic).
    const LcWorkloadDef workload = memcachedWorkload();

    // 3. A load trace: one compressed diurnal day (Figure 1 shape).
    const Seconds day = diurnalDurationFor("memcached");
    auto trace = diurnalTrace(day, /*seed=*/11);

    // 4. The runner wires platform + workload + trace and steps the
    //    closed loop one monitoring interval (1 s) at a time.
    ExperimentRunner runner(board, workload, trace, /*seed=*/1);

    // 5. The task manager: HipsterIn with the paper's defaults
    //    (alpha = 0.6, gamma = 0.9, 500 s learning phase).
    HipsterParams params = tunedHipsterParams("memcached");
    HipsterPolicy hipster(runner.platform(), params);

    // 6. Run and report.
    const ExperimentResult result = runner.run(hipster, day);

    std::printf("workload:        %s on %s\n",
                result.workloadName.c_str(), board.name.c_str());
    std::printf("policy:          %s\n", result.policyName.c_str());
    std::printf("intervals:       %zu\n", result.summary.intervals);
    std::printf("QoS guarantee:   %.1f%% of intervals met the %.0f ms "
                "p%.0f target\n",
                result.summary.qosGuarantee * 100.0,
                workload.params.qosTargetMs,
                workload.params.tailPercentile);
    std::printf("QoS tardiness:   %.2f (mean QoS_curr/QoS_target over "
                "violations)\n",
                result.summary.qosTardiness);
    std::printf("energy:          %.0f J (mean power %.2f W, TDP %.2f "
                "W)\n",
                result.summary.energy, result.summary.meanPower,
                runner.platform().tdp());
    std::printf("core migrations: %llu, DVFS transitions: %llu\n",
                static_cast<unsigned long long>(result.migrations),
                static_cast<unsigned long long>(result.dvfsTransitions));
    std::printf("\nTry: ./build/examples/example_policy_comparison for the "
                "full baseline lineup.\n");
    return 0;
}
