/**
 * @file
 * Load-spike drill: subjects a trained HipsterIn to the two
 * time-varying load patterns Section 2 worries about — a gradual
 * diurnal swell and a sudden traffic spike — and prints how the
 * manager reconfigures through them, interval by interval.
 *
 * Usage:
 *   ./build/examples/example_load_spike_drill
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.hh"
#include "core/hipster_policy.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"

int
main()
{
    using namespace hipster;

    // A day with a flash-crowd spike at t=700 s: +45% load decaying
    // over 40 s on top of the diurnal curve.
    const Seconds day = 900.0;
    auto diurnal = std::make_shared<DiurnalTrace>(day, 0.05, 0.80);
    auto spiky = std::make_shared<SpikeTrace>(diurnal, /*t0=*/700.0,
                                              /*width=*/40.0,
                                              /*height=*/0.45);

    ExperimentRunner runner(Platform::junoR1(), memcachedWorkload(),
                            spiky, /*seed=*/17);
    HipsterParams params = tunedHipsterParams("memcached");
    params.learningPhase = 400.0;
    HipsterPolicy hipster(runner.platform(), params);

    std::size_t violations_at_spike = 0;
    Seconds last_violation = 0.0;
    TextTable table({"t(s)", "load", "tail(ms)", "config", "phase"});
    const auto result = runner.run(
        hipster, day, [&](const IntervalMetrics &m) {
            const bool spike_window = m.begin >= 695.0 && m.begin < 760.0;
            if (spike_window && m.qosViolated()) {
                ++violations_at_spike;
                last_violation = m.begin;
            }
            // Print the interesting region at full resolution, the
            // rest sparsely.
            const auto t = static_cast<long long>(m.begin);
            if (spike_window || t % 90 == 0) {
                table.newRow()
                    .cell(t)
                    .percentCell(m.offeredLoad, 0)
                    .cell(m.tailLatency, 2)
                    .cell(m.config.label())
                    .cell(m.begin < 400.0 ? "learn" : "exploit");
            }
        });
    table.print(std::cout);

    std::printf("\nSpike verdict: %zu violation(s) in the 65 s spike "
                "window, last at t=%.0f s\n(recovered %.0f s after the "
                "spike hit); overall QoS %.1f%%, energy %.0f J.\n"
                "A flash crowd inevitably hurts while the request "
                "backlog drains — what the\ntrained manager buys is "
                "jumping straight to a viable configuration instead "
                "of\nclimbing one rung per interval (the Figure 8 "
                "contrast with Octopus-Man).\n",
                violations_at_spike, last_violation,
                last_violation > 0.0 ? last_violation - 700.0 : 0.0,
                result.summary.qosGuarantee * 100.0,
                result.summary.energy);
    return 0;
}
