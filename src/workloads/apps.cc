#include "workloads/apps.hh"

#include "workloads/workload_registry.hh"

namespace hipster
{

LcWorkloadDef
memcachedWorkload()
{
    LcWorkloadDef def;
    LcAppParams &p = def.params;
    p.name = "memcached";
    p.maxLoad = 36000.0;     // Table 1
    p.loadScale = 0.1;       // simulate 3 600 RPS at 100% load
    p.tailPercentile = 95.0; // Table 1: 95th percentile
    p.qosTargetMs = 10.0;    // Table 1: 10 ms
    p.mode = ArrivalMode::OpenLoop;
    p.maxQueue = 50000;

    // Demand calibration (see DESIGN.md): at the simulated max rate
    // of 3 600 RPS, two big cores at 1.15 GHz run at ~85%
    // utilization, leaving the p95 just under the 10 ms target.
    // Requests are short with a heavy-ish lognormal tail (multigets,
    // hot keys); ~30% of service time is frequency-insensitive
    // memory stall, which is why small cores are competitive at low
    // load.
    ServiceDemandParams &d = p.demand;
    d.ipcBig = 0.70;      // memcached is branchy and memory-bound
    d.ipcSmall = 0.31;    // in-order A53 suffers on pointer chasing
    d.meanComputeInsn = 2.66e5;
    d.cvCompute = 1.5;
    d.meanMemStall = 140e-6;
    d.cvMemStall = 1.0;
    d.zipfRanks = 0;      // no per-request popularity skew

    def.traits.stallSensitivity = 0.40; // very contention-sensitive
    def.traits.memPressure = 0.35;
    return def;
}

LcWorkloadDef
webSearchWorkload()
{
    LcWorkloadDef def;
    LcAppParams &p = def.params;
    p.name = "websearch";
    p.maxLoad = 44.0;        // Table 1
    p.loadScale = 1.0;       // 44 QPS is cheap to simulate directly
    p.tailPercentile = 90.0; // Table 1: 90th percentile
    p.qosTargetMs = 500.0;   // Table 1: 500 ms
    p.mode = ArrivalMode::ClosedLoop;
    p.thinkTime = 2.0;       // Table 1: 2 s think time
    p.nominalResponse = 0.25;
    p.maxQueue = 2000;

    // Demand calibration: mean query ~38 ms on a big core at
    // 1.15 GHz; two big cores at 44 QPS run at ~85% utilization.
    // Zipfian popularity (English Wikipedia) with a positive cost
    // exponent gives the heavy tail that makes Web-Search's p90 much
    // more sensitive to slow cores than Memcached's p95 (Figure 2b:
    // the small cluster saturates near 50% load).
    ServiceDemandParams &d = p.demand;
    d.ipcBig = 1.10;     // scoring/ranking is compute-dense
    d.ipcSmall = 0.31;
    d.meanComputeInsn = 3.80e7;
    d.cvCompute = 0.4;
    d.meanMemStall = 11e-3;
    d.cvMemStall = 0.8;
    d.zipfRanks = 10000; // document/query popularity ranks
    d.zipfAlpha = 0.9;
    d.zipfExponent = 0.10;

    def.traits.stallSensitivity = 0.30;
    def.traits.memPressure = 0.30;
    return def;
}

LcWorkloadDef
lcWorkloadByName(const std::string &name)
{
    return makeWorkloadFromSpec(name);
}

} // namespace hipster
