#include "workloads/contention.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hipster
{

ContentionModel::ContentionModel(ContentionParams params)
    : params_(params)
{
    if (params_.lcSameCluster < 0.0 || params_.lcCrossCluster < 0.0 ||
        params_.batchSameCluster < 0.0 || params_.batchCrossCluster < 0.0) {
        fatal("ContentionModel coefficients must be non-negative");
    }
}

double
ContentionModel::lcStallScale(const std::vector<ClusterPressure> &pressure,
                              ClusterId cluster, double sensitivity) const
{
    HIPSTER_ASSERT(cluster < pressure.size(), "cluster out of range");
    double same = pressure[cluster].batch;
    double cross = 0.0;
    for (std::size_t i = 0; i < pressure.size(); ++i) {
        if (i != cluster)
            cross += pressure[i].batch;
    }
    const double inflation = sensitivity * (params_.lcSameCluster * same +
                                            params_.lcCrossCluster * cross);
    return 1.0 + std::max(0.0, inflation);
}

double
ContentionModel::batchIpcFactor(
    const std::vector<ClusterPressure> &pressure, ClusterId cluster,
    double self) const
{
    HIPSTER_ASSERT(cluster < pressure.size(), "cluster out of range");
    const double same = std::max(
        0.0, pressure[cluster].batch - self + pressure[cluster].lc);
    double cross = 0.0;
    for (std::size_t i = 0; i < pressure.size(); ++i) {
        if (i != cluster)
            cross += pressure[i].batch + pressure[i].lc;
    }
    const double loss = params_.batchSameCluster * same +
                        params_.batchCrossCluster * cross;
    return 1.0 / (1.0 + std::max(0.0, loss));
}

} // namespace hipster
