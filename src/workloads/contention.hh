/**
 * @file
 * Shared-resource contention model for collocated execution
 * (HipsterCo). The paper (Section 3.5) observes that collocating
 * latency-critical and batch workloads degrades QoS at higher loads
 * due to shared-resource contention; this model reproduces that
 * coupling in both directions:
 *
 *  - batch memory pressure on a cluster inflates the LC app's
 *    memory-stall time (shared L2 + DRAM bandwidth);
 *  - LC activity and other batch jobs reduce each batch job's
 *    effective IPC.
 */

#ifndef HIPSTER_WORKLOADS_CONTENTION_HH
#define HIPSTER_WORKLOADS_CONTENTION_HH

#include <vector>

#include "common/units.hh"

namespace hipster
{

/**
 * Per-cluster pressure snapshot. Pressures are dimensionless sums of
 * the memory intensities of the co-runners, weighted by how busy
 * they are.
 */
struct ClusterPressure
{
    /** Sum of memory intensities of batch jobs pinned to the
     * cluster. */
    double batch = 0.0;

    /** Memory pressure exerted by the LC app's cores on the cluster
     * (utilization-weighted). */
    double lc = 0.0;
};

/** Tunable coefficients of the contention model. */
struct ContentionParams
{
    /** LC stall inflation per unit of same-cluster batch pressure. */
    double lcSameCluster = 1.0;

    /** LC stall inflation per unit of total (cross-cluster, shared
     * DRAM) batch pressure. */
    double lcCrossCluster = 0.25;

    /** Batch IPC loss per unit of same-cluster co-runner pressure. */
    double batchSameCluster = 0.30;

    /** Batch IPC loss per unit of cross-cluster pressure. */
    double batchCrossCluster = 0.10;
};

/**
 * Pure functions mapping pressure snapshots to slowdown factors.
 */
class ContentionModel
{
  public:
    ContentionModel() = default;
    explicit ContentionModel(ContentionParams params);

    const ContentionParams &params() const { return params_; }

    /**
     * Multiplier (>= 1) applied to the LC app's memory-stall time on
     * `cluster`, given all clusters' pressures and the app's
     * sensitivity (LcContentionTraits::stallSensitivity).
     */
    double lcStallScale(const std::vector<ClusterPressure> &pressure,
                        ClusterId cluster, double sensitivity) const;

    /**
     * Multiplier (<= 1) applied to a batch job's IPC on `cluster`.
     * `self` is the job's own memory intensity, which is excluded
     * from the same-cluster pressure it suffers from.
     */
    double batchIpcFactor(const std::vector<ClusterPressure> &pressure,
                          ClusterId cluster, double self) const;

  private:
    ContentionParams params_;
};

} // namespace hipster

#endif // HIPSTER_WORKLOADS_CONTENTION_HH
