#include "workloads/service_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace hipster
{

ServiceModel::ServiceModel(ServiceDemandParams params)
    : params_(std::move(params))
{
    if (params_.meanComputeInsn < 0.0 || params_.meanMemStall < 0.0)
        fatal("ServiceModel: negative mean demand");
    if (params_.meanComputeInsn == 0.0 && params_.meanMemStall == 0.0)
        fatal("ServiceModel: request demand cannot be entirely zero");
    if (params_.ipcBig <= 0.0 || params_.ipcSmall <= 0.0)
        fatal("ServiceModel: IPC must be positive");
    if (params_.zipfRanks > 0) {
        zipf_.emplace(params_.zipfRanks, params_.zipfAlpha);
        double norm = 0.0;
        for (std::size_t r = 1; r <= params_.zipfRanks; ++r) {
            norm += zipf_->pmf(r) *
                    std::pow(static_cast<double>(r), params_.zipfExponent);
        }
        zipfNorm_ = norm;
        HIPSTER_ASSERT(zipfNorm_ > 0.0, "zipf normalization failed");
    }
}

Request
ServiceModel::sample(Rng &rng, Seconds arrival,
                     std::uint64_t user_id) const
{
    double multiplier = 1.0;
    if (zipf_) {
        const std::size_t rank = zipf_->sample(rng);
        multiplier = std::pow(static_cast<double>(rank),
                              params_.zipfExponent) /
                     zipfNorm_;
    }
    Request request;
    request.arrival = arrival;
    request.userId = user_id;
    request.computeInsn =
        params_.meanComputeInsn *
        rng.lognormalMeanCv(1.0, params_.cvCompute) * multiplier;
    request.memStall = params_.meanMemStall *
                       rng.lognormalMeanCv(1.0, params_.cvMemStall) *
                       multiplier;
    return request;
}

Ips
ServiceModel::instructionRate(CoreType type, GHz frequency) const
{
    const double ipc =
        type == CoreType::Big ? params_.ipcBig : params_.ipcSmall;
    return ipc * frequency * 1e9;
}

Seconds
ServiceModel::meanServiceTime(CoreType type, GHz frequency) const
{
    return params_.meanComputeInsn / instructionRate(type, frequency) +
           params_.meanMemStall;
}

} // namespace hipster
