#include "workloads/workload_registry.hh"

#include "common/logging.hh"

namespace hipster
{

namespace
{

/** Overrides every LC workload shares (Table 1 deployment knobs +
 * colocation traits). */
std::vector<SpecParamInfo>
commonSchema(double qos_ms, double pct, double load, double stall,
             double pressure)
{
    return {
        {"qos", "tail-latency QoS target (Table 1)", qos_ms, 0.05,
         10000.0, false, false, ParamUnit::TimeMs},
        {"pct", "monitored tail percentile (Table 1)", pct, 50.0,
         99.9, false, false, ParamUnit::None},
        {"load",
         "max load in requests/s: the rate two big cores at top DVFS "
         "serve within the tail target (Table 1)",
         load, 1.0, 1e7, false, false, ParamUnit::None},
        {"stall",
         "contention sensitivity: how batch memory pressure inflates "
         "the LC stall portion (Section 3.5)",
         stall, 0.0, 2.0, false, false, ParamUnit::None},
        {"pressure",
         "memory pressure this workload exerts per busy core "
         "(Section 3.5)",
         pressure, 0.0, 2.0, false, false, ParamUnit::None},
    };
}

/** Apply the shared overrides onto a calibrated definition. */
void
applyCommon(LcWorkloadDef &def, const SpecParamSet &set)
{
    def.params.qosTargetMs = set.get("qos", def.params.qosTargetMs);
    def.params.tailPercentile =
        set.get("pct", def.params.tailPercentile);
    def.params.maxLoad = set.get("load", def.params.maxLoad);
    def.traits.stallSensitivity =
        set.get("stall", def.traits.stallSensitivity);
    def.traits.memPressure =
        set.get("pressure", def.traits.memPressure);
}

} // namespace

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry = [] {
        WorkloadRegistry r;
        r.registerBuiltins();
        return r;
    }();
    return registry;
}

void
WorkloadRegistry::registerWorkload(WorkloadInfo info, Factory factory)
{
    if (hasWorkload(info.name))
        fatal("WorkloadRegistry: workload '", info.name,
              "' already registered");
    for (const std::string &alias : info.aliases) {
        if (hasWorkload(alias))
            fatal("WorkloadRegistry: alias '", alias,
                  "' already registered");
    }
    if (!factory)
        fatal("WorkloadRegistry: null factory for '", info.name, "'");
    workloads_.push_back(std::move(info));
    factories_.push_back(std::move(factory));
}

bool
WorkloadRegistry::hasWorkload(const std::string &name) const
{
    return findWorkload(name) != nullptr;
}

const WorkloadInfo *
WorkloadRegistry::findWorkload(const std::string &name) const
{
    for (const WorkloadInfo &workload : workloads_) {
        if (workload.name == name)
            return &workload;
        for (const std::string &alias : workload.aliases) {
            if (alias == name)
                return &workload;
        }
    }
    return nullptr;
}

std::string
WorkloadRegistry::knownWorkloadsSummary() const
{
    std::string out = "registered workloads:";
    for (const WorkloadInfo &workload : workloads_) {
        out += "\n  " + workload.name;
        for (const std::string &alias : workload.aliases)
            out += " (alias: " + alias + ")";
        if (!workload.params.empty()) {
            out += " — keys:";
            for (std::size_t i = 0; i < workload.params.size(); ++i)
                out += (i == 0 ? " " : ", ") + workload.params[i].key;
        }
    }
    out += "\nparameterize with ':key=value,...', e.g. "
           "memcached:qos=300us,stall=0.5; see --list-workloads";
    return out;
}

std::string
WorkloadRegistry::catalogText() const
{
    std::string out = "registered workloads "
                      "(spec: name[:key=value,...]):\n";
    for (const WorkloadInfo &workload : workloads_) {
        out += "\n" + workload.name;
        for (const std::string &alias : workload.aliases)
            out += " (alias: " + alias + ")";
        out += " — " + workload.display + ": " + workload.summary;
        if (!workload.paperRef.empty())
            out += " [" + workload.paperRef + "]";
        out += "\n    diurnal run " +
               formatSpecValue(workload.diurnalDuration) +
               " s, tuned bucket " +
               formatSpecValue(workload.tunedBucketPercent) + "%\n";
        if (workload.params.empty()) {
            out += "    (no parameters)\n";
            continue;
        }
        for (const SpecParamInfo &param : workload.params)
            out += "    " + specParamLine(param) + "\n";
    }
    out += "\nkey=value overrides apply on top of the calibrated "
           "Table 1 definitions;\ntime-typed keys accept us/ms/s "
           "suffixes (qos=300us).\n";
    return out;
}

const WorkloadInfo &
WorkloadRegistry::parseSpec(const std::string &spec,
                            SpecParamSet &out) const
{
    if (spec.empty())
        fatal("empty workload spec; ", knownWorkloadsSummary());

    const std::string head = specHead(spec);
    const WorkloadInfo *info = findWorkload(head);
    if (info == nullptr)
        fatal("unknown workload '", head, "' in spec '", spec, "'; ",
              knownWorkloadsSummary());

    parseSpecParams("workload", spec, info->name, info->params, out);
    return *info;
}

LcWorkloadDef
WorkloadRegistry::make(const std::string &spec) const
{
    SpecParamSet params;
    const WorkloadInfo &info = parseSpec(spec, params);
    const std::size_t index =
        static_cast<std::size_t>(&info - workloads_.data());
    return factories_[index](params);
}

void
WorkloadRegistry::registerBuiltins()
{
    {
        WorkloadInfo info;
        info.name = "memcached";
        info.aliases = {"mc"};
        info.display = "Memcached";
        info.summary =
            "in-memory key-value store, open-loop Twitter caching "
            "traffic; memory-bound, small-core friendly at low load";
        info.paperRef = "Table 1; Figure 2a";
        info.diurnalDuration = 1440.0;
        info.tunedBucketPercent = 8.0;
        info.params = commonSchema(10.0, 95.0, 36000.0, 0.40, 0.35);
        info.params.push_back(
            {"cv",
             "coefficient of variation of the compute demand "
             "(multigets, hot keys)",
             1.5, 0.0, 5.0, false, false, ParamUnit::None});
        registerWorkload(info, [](const SpecParamSet &set) {
            LcWorkloadDef def = memcachedWorkload();
            applyCommon(def, set);
            def.params.demand.cvCompute =
                set.get("cv", def.params.demand.cvCompute);
            return def;
        });
    }

    {
        WorkloadInfo info;
        info.name = "websearch";
        info.aliases = {"web-search"};
        info.display = "Web-Search";
        info.summary =
            "Elasticsearch over Wikipedia, closed-loop users with "
            "think time; compute-hungry with a Zipfian heavy tail";
        info.paperRef = "Table 1; Figure 2b";
        info.diurnalDuration = 1080.0;
        info.tunedBucketPercent = 5.0;
        info.params = commonSchema(500.0, 90.0, 44.0, 0.30, 0.30);
        info.params.push_back(
            {"think", "mean closed-loop user think time (Table 1)",
             2.0, 0.01, 60.0, false, false, ParamUnit::TimeSec});
        info.params.push_back(
            {"tail",
             "tail-heaviness multiplier on the Zipfian query-cost "
             "exponent (1 = calibrated)",
             1.0, 0.25, 4.0, false, false, ParamUnit::None});
        registerWorkload(info, [](const SpecParamSet &set) {
            LcWorkloadDef def = webSearchWorkload();
            applyCommon(def, set);
            def.params.thinkTime =
                set.get("think", def.params.thinkTime);
            def.params.demand.zipfExponent *= set.get("tail", 1.0);
            return def;
        });
    }

    {
        WorkloadInfo info;
        info.name = "synthetic";
        info.aliases = {"syn"};
        info.display = "Synthetic";
        info.summary =
            "fully declarative LC service: every demand/arrival knob "
            "is a spec key (beyond-paper scenario axis)";
        info.paperRef = "";
        info.diurnalDuration = 1200.0;
        info.tunedBucketPercent = 5.0;
        info.params = commonSchema(50.0, 95.0, 1000.0, 0.30, 0.30);
        info.params.push_back(
            {"ipcbig", "effective IPC on a big core", 1.0, 0.05, 8.0,
             false, false, ParamUnit::None});
        info.params.push_back(
            {"ipcsmall", "effective IPC on a small core", 0.4, 0.01,
             8.0, false, false, ParamUnit::None});
        info.params.push_back(
            {"insn", "mean compute instructions per request", 1e6,
             1e3, 1e10, false, false, ParamUnit::None});
        info.params.push_back(
            {"cv", "CV of the lognormal compute factor", 1.0, 0.0,
             5.0, false, false, ParamUnit::None});
        info.params.push_back(
            {"memstall",
             "mean per-request memory stall (frequency-insensitive)",
             1e-3, 0.0, 1.0, false, false, ParamUnit::TimeSec});
        info.params.push_back(
            {"cvmem", "CV of the lognormal stall factor", 1.0, 0.0,
             5.0, false, false, ParamUnit::None});
        info.params.push_back(
            {"zipf",
             "Zipf popularity ranks (0 disables the multiplier)",
             0.0, 0.0, 1e6, true, false, ParamUnit::None});
        info.params.push_back(
            {"zipfexp", "Zipf demand-multiplier exponent", 0.1, -1.0,
             1.0, false, false, ParamUnit::None});
        info.params.push_back(
            {"closed",
             "closed-loop users with think time instead of open-loop "
             "Poisson arrivals",
             0.0, 0.0, 1.0, false, true, ParamUnit::None});
        info.params.push_back(
            {"think", "mean think time in closed-loop mode", 2.0,
             0.01, 60.0, false, false, ParamUnit::TimeSec});
        info.params.push_back(
            {"scale",
             "internal simulation scale: the DES simulates "
             "load x scale arrivals/s",
             1.0, 1e-4, 1.0, false, false, ParamUnit::None});
        registerWorkload(info, [](const SpecParamSet &set) {
            LcWorkloadDef def;
            LcAppParams &p = def.params;
            p.name = "synthetic";
            p.maxLoad = 1000.0;
            p.loadScale = set.get("scale", 1.0);
            p.qosTargetMs = 50.0;
            p.tailPercentile = 95.0;
            p.mode = set.getBool("closed", false)
                         ? ArrivalMode::ClosedLoop
                         : ArrivalMode::OpenLoop;
            p.thinkTime = set.get("think", 2.0);
            p.maxQueue = 100000;

            ServiceDemandParams &d = p.demand;
            d.ipcBig = set.get("ipcbig", 1.0);
            d.ipcSmall = set.get("ipcsmall", 0.4);
            d.meanComputeInsn = set.get("insn", 1e6);
            d.cvCompute = set.get("cv", 1.0);
            d.meanMemStall = set.get("memstall", 1e-3);
            d.cvMemStall = set.get("cvmem", 1.0);
            d.zipfRanks =
                static_cast<std::size_t>(set.get("zipf", 0.0));
            d.zipfExponent = set.get("zipfexp", 0.1);

            def.traits.stallSensitivity = 0.30;
            def.traits.memPressure = 0.30;
            applyCommon(def, set);
            return def;
        });
    }
}

LcWorkloadDef
makeWorkloadFromSpec(const std::string &spec)
{
    return WorkloadRegistry::instance().make(spec);
}

void
validateWorkloadSpec(const std::string &spec)
{
    SpecParamSet params;
    WorkloadRegistry::instance().parseSpec(spec, params);
}

bool
isWorkloadSpec(const std::string &spec)
{
    try {
        validateWorkloadSpec(spec);
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

std::vector<std::string>
splitWorkloadList(const std::string &list)
{
    const WorkloadRegistry &registry = WorkloadRegistry::instance();
    return splitSpecList(list, [&](const std::string &head) {
        return registry.hasWorkload(head);
    });
}

} // namespace hipster
