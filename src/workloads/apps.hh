/**
 * @file
 * Factory definitions of the paper's two latency-critical workloads
 * (Table 1), calibrated so the simulated substrate reproduces the
 * evaluation's anchor behaviours:
 *
 *  - Memcached: 36 000 RPS max load, 10 ms p95 target, open-loop
 *    Twitter-caching style traffic;
 *  - Web-Search: 44 QPS max load, 500 ms p90 target, closed-loop
 *    users with 2 s think time over a Zipfian document set.
 *
 * "Max load" is the load two big cores at the highest DVFS can serve
 * while meeting the tail target (the paper's definition). The
 * calibration tests in tests/workloads assert these anchors.
 */

#ifndef HIPSTER_WORKLOADS_APPS_HH
#define HIPSTER_WORKLOADS_APPS_HH

#include "workloads/latency_app.hh"

namespace hipster
{

/** Contention sensitivity used by the colocation model per LC app. */
struct LcContentionTraits
{
    /** How strongly batch memory pressure on the same cluster
     * inflates the LC memory-stall portion. */
    double stallSensitivity = 0.3;

    /** Memory pressure this LC app itself exerts per busy core. */
    double memPressure = 0.3;
};

/** Parameters + contention traits for an LC workload. */
struct LcWorkloadDef
{
    LcAppParams params;
    LcContentionTraits traits;
};

/**
 * Memcached (in-memory key-value store, Twitter caching workload,
 * 1.3 GB dataset). Short, moderately variable requests; fairly
 * memory-bound, so it benefits little from the big cores' clock and
 * runs acceptably on the small cluster until ~60-65% load
 * (Figure 2a).
 */
LcWorkloadDef memcachedWorkload();

/**
 * Web-Search (Elasticsearch over English Wikipedia, Zipfian query
 * popularity). Long, heavy-tailed queries; compute-hungry enough
 * that the small cluster saturates near 50% load (Figure 2b).
 */
LcWorkloadDef webSearchWorkload();

/**
 * Workload factory keyed on the spec grammar of the
 * WorkloadRegistry (see workloads/workload_registry.hh): every
 * registered workload name and alias ("memcached" / "mc",
 * "websearch" / "web-search", "synthetic" / "syn"), optionally
 * parameterized with ":key=value,..." overrides (e.g.
 * "memcached:qos=300us,stall=0.5"). Throws FatalError on unknown or
 * malformed specs, enumerating the catalog (unknown workload) or
 * the workload's schema (unknown key / bad value).
 */
LcWorkloadDef lcWorkloadByName(const std::string &name);

} // namespace hipster

#endif // HIPSTER_WORKLOADS_APPS_HH
