/**
 * @file
 * Service-demand model for latency-critical applications: how much
 * work one request costs, and how fast a given core type executes it.
 *
 * A request's demand has a compute part (instructions; scales with
 * core IPC x frequency) and a memory-stall part (seconds; does not
 * scale with frequency but inflates under cache/bandwidth
 * contention). Heavy-tailed variation comes from a lognormal factor
 * plus an optional Zipf popularity multiplier (Web-Search serves a
 * Zipfian document distribution in the paper's setup, Table 1).
 */

#ifndef HIPSTER_WORKLOADS_SERVICE_MODEL_HH
#define HIPSTER_WORKLOADS_SERVICE_MODEL_HH

#include <memory>
#include <optional>
#include <string>

#include "common/random.hh"
#include "common/units.hh"
#include "platform/types.hh"
#include "sim/queueing.hh"

namespace hipster
{

/** Tunable description of one LC application's per-request demand. */
struct ServiceDemandParams
{
    /** Mean compute instructions per request. */
    Instructions meanComputeInsn = 0.0;

    /** Coefficient of variation of the lognormal compute factor. */
    double cvCompute = 0.5;

    /** Mean per-request memory stall (seconds). */
    Seconds meanMemStall = 0.0;

    /** CV of the lognormal stall factor. */
    double cvMemStall = 0.5;

    /** Zipf popularity ranks (0 disables the Zipf multiplier). */
    std::size_t zipfRanks = 0;

    /** Zipf skew alpha. */
    double zipfAlpha = 0.9;

    /**
     * Demand multiplier exponent: a rank-r item costs ~ r^exponent
     * (normalized to unit mean). Positive values make unpopular
     * items expensive — deep postings-list traversals in search.
     */
    double zipfExponent = 0.3;

    /** Effective IPC of this app on a big core. */
    double ipcBig = 1.0;

    /** Effective IPC of this app on a small core. */
    double ipcSmall = 0.6;
};

/**
 * Samples request demands and converts (core type, frequency,
 * contention) into queueing-server speeds.
 */
class ServiceModel
{
  public:
    explicit ServiceModel(ServiceDemandParams params);

    const ServiceDemandParams &params() const { return params_; }

    /** Sample the demand of one request. */
    Request sample(Rng &rng, Seconds arrival,
                   std::uint64_t user_id = 0) const;

    /** Instruction rate of a core running this app. */
    Ips instructionRate(CoreType type, GHz frequency) const;

    /**
     * Mean service time of a request on the given core at the given
     * frequency with no contention — the capacity-planning figure
     * used by calibration and the oracle.
     */
    Seconds meanServiceTime(CoreType type, GHz frequency) const;

  private:
    ServiceDemandParams params_;
    std::optional<ZipfSampler> zipf_;
    double zipfNorm_ = 1.0; ///< E[rank^exponent], for unit-mean scaling
};

} // namespace hipster

#endif // HIPSTER_WORKLOADS_SERVICE_MODEL_HH
