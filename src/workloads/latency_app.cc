#include "workloads/latency_app.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hh"
#include "loadgen/arrival_batch.hh"

namespace hipster
{

namespace
{

/** Pack a closed-loop user index and its epoch into Request::userId. */
std::uint64_t
packUser(std::size_t user, std::uint64_t epoch)
{
    return (epoch << 32) | static_cast<std::uint64_t>(user & 0xffffffffULL);
}

std::size_t
unpackUserIndex(std::uint64_t packed)
{
    return static_cast<std::size_t>(packed & 0xffffffffULL);
}

std::uint64_t
unpackUserEpoch(std::uint64_t packed)
{
    return packed >> 32;
}

} // namespace

LatencyCriticalApp::LatencyCriticalApp(LcAppParams params,
                                       std::uint64_t seed)
    : params_(std::move(params)),
      model_(params_.demand),
      demandRng_(seed),
      arrivalRng_(Rng(seed).fork()),
      system_(events_, params_.maxQueue)
{
    if (params_.maxLoad <= 0.0)
        fatal("LatencyCriticalApp '", params_.name,
              "': maxLoad must be positive");
    if (params_.loadScale <= 0.0 || params_.loadScale > 1.0)
        fatal("LatencyCriticalApp '", params_.name,
              "': loadScale must lie in (0, 1]");
    if (params_.qosTargetMs <= 0.0)
        fatal("LatencyCriticalApp '", params_.name,
              "': qosTargetMs must be positive");
    if (params_.tailPercentile <= 0.0 || params_.tailPercentile >= 100.0)
        fatal("LatencyCriticalApp '", params_.name,
              "': tailPercentile must lie in (0, 100)");

    system_.setCompletionCallback([this](const CompletedRequest &done) {
        intervalLatencies_.add(done.latency());
        ++intervalCompleted_;
        if (params_.mode == ArrivalMode::ClosedLoop) {
            const std::size_t user = unpackUserIndex(done.userId);
            const std::uint64_t epoch = unpackUserEpoch(done.userId);
            if (user < userEpoch_.size() && userEpoch_[user] == epoch &&
                user < activeUsers_) {
                scheduleUserThink(user, done.completed);
            }
        }
    });
}

void
LatencyCriticalApp::configure(const std::vector<ServerSpec> &servers,
                              Seconds now, Seconds stall)
{
    if (servers.empty())
        fatal("LatencyCriticalApp '", params_.name,
              "': cannot run with zero servers");
    system_.configure(servers, now);
    if (stall > 0.0)
        system_.stall(now, now + stall);
    configured_ = true;
}

LcIntervalStats
LatencyCriticalApp::runInterval(Seconds t0, Seconds t1,
                                Fraction offered_load)
{
    HIPSTER_ASSERT(configured_, "runInterval before configure");
    HIPSTER_ASSERT(t1 > t0, "empty interval");
    HIPSTER_ASSERT(offered_load >= 0.0, "negative load");

    intervalLatencies_.clear();
    intervalCompleted_ = 0;

    const Rate sim_rate = offered_load * params_.maxLoad * params_.loadScale;
    const auto arrival_begin = std::chrono::steady_clock::now();
    if (params_.mode == ArrivalMode::OpenLoop) {
        seedOpenLoopArrivals(t0, t1, sim_rate);
    } else {
        const double max_users =
            params_.maxLoad * params_.loadScale *
            (params_.thinkTime + params_.nominalResponse);
        const auto target = static_cast<std::size_t>(
            std::llround(offered_load * max_users));
        adjustUserPopulation(target, t0);
    }
    arrivalGenSeconds_ += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() -
                              arrival_begin)
                              .count();

    events_.runUntil(t1);

    LcIntervalStats stats;
    stats.begin = t0;
    stats.end = t1;
    stats.offeredLoad = offered_load;
    stats.offeredRate = offered_load * params_.maxLoad;
    stats.completed = intervalCompleted_;
    const Seconds dt = t1 - t0;
    stats.throughput =
        static_cast<Rate>(intervalCompleted_) / dt / params_.loadScale;
    stats.tailLatency =
        toMillis(intervalLatencies_.percentile(params_.tailPercentile));
    stats.meanLatency = toMillis(intervalLatencies_.mean());
    stats.p50Latency = toMillis(intervalLatencies_.percentile(50.0));
    stats.p99Latency = toMillis(intervalLatencies_.percentile(99.0));
    const std::uint64_t dropped_total = system_.dropped();
    stats.dropped = dropped_total - lastDroppedTotal_;
    lastDroppedTotal_ = dropped_total;
    stats.queueDepth = system_.queueLength();
    stats.usage = system_.harvestUsage(t1);

    Seconds busy = 0.0;
    for (const auto &use : stats.usage)
        busy += use.busyTime;
    stats.utilization =
        stats.usage.empty() ? 0.0 : busy / (dt * stats.usage.size());
    return stats;
}

void
LatencyCriticalApp::reset()
{
    events_.clear();
    system_.reset();
    intervalLatencies_.clear();
    intervalCompleted_ = 0;
    lastDroppedTotal_ = 0;
    activeUsers_ = 0;
    userEpoch_.clear();
    arrivalGenSeconds_ = 0.0;
}

void
LatencyCriticalApp::seedOpenLoopArrivals(Seconds t0, Seconds t1,
                                         Rate sim_rate)
{
    // All of the interval's arrival times are drawn in one batch and
    // pre-scheduled. The demand RNG is a separate stream sampled in
    // timestamp order either way, so batching leaves both RNG
    // sequences — and therefore every golden — untouched, while the
    // single-pointer capture below stays inside std::function's
    // small-buffer storage (no allocation per arrival).
    drawPoissonArrivals(arrivalRng_, t0, t1, sim_rate, arrivalBatch_);
    for (const Seconds when : arrivalBatch_) {
        events_.schedule(when, [this](Seconds now) {
            Request request = model_.sample(demandRng_, now);
            system_.submit(request);
        });
    }
}

void
LatencyCriticalApp::adjustUserPopulation(std::size_t target, Seconds now)
{
    if (target > userEpoch_.size())
        userEpoch_.resize(target, 0);
    if (target > activeUsers_) {
        // New users start with a think phase (they just "arrived").
        for (std::size_t u = activeUsers_; u < target; ++u) {
            ++userEpoch_[u];
            scheduleUserThink(u, now);
        }
    } else if (target < activeUsers_) {
        // Departing users: bump their epoch so any pending think
        // events or completions do not resurrect them.
        for (std::size_t u = target; u < activeUsers_; ++u)
            ++userEpoch_[u];
    }
    activeUsers_ = target;
}

void
LatencyCriticalApp::scheduleUserThink(std::size_t user, Seconds now)
{
    const std::uint64_t epoch = userEpoch_[user];
    const Seconds when =
        now + arrivalRng_.exponential(1.0 / params_.thinkTime);
    events_.schedule(when, [this, user, epoch](Seconds fire) {
        if (user >= userEpoch_.size() || userEpoch_[user] != epoch ||
            user >= activeUsers_) {
            return; // user departed meanwhile
        }
        Request request =
            model_.sample(demandRng_, fire, packUser(user, epoch));
        system_.submit(request);
    });
}

} // namespace hipster
