/**
 * @file
 * Batch (throughput-oriented) workloads: a catalog of synthetic
 * kernels standing in for the SPEC CPU2006 programs the paper
 * collocates with Web-Search (Figure 11), and the BatchWorkload
 * runtime that executes them on the cores the LC workload does not
 * use.
 *
 * Each kernel is parameterised along the compute <-> memory-bound
 * axis: memory-bound kernels gain little from big cores or high DVFS
 * (lbm, libquantum), compute-bound kernels gain a lot (calculix,
 * povray). HipsterCo observes them exactly as the paper does:
 * through aggregate per-cluster IPS from the perf counters.
 */

#ifndef HIPSTER_WORKLOADS_BATCH_HH
#define HIPSTER_WORKLOADS_BATCH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "platform/platform.hh"
#include "workloads/contention.hh"

namespace hipster
{

/** Static characteristics of one batch program. */
struct BatchKernel
{
    std::string name;

    /** IPC on a big core at the big cluster's max frequency. */
    double ipcBig = 1.0;

    /** IPC on a small core at the small cluster's max frequency. */
    double ipcSmall = 0.6;

    /**
     * Memory-boundedness in [0, 1]: fraction of execution limited by
     * memory rather than the core clock. 0 = pure compute (IPS
     * scales linearly with frequency), 1 = pure memory (IPS
     * insensitive to DVFS).
     */
    double memIntensity = 0.3;
};

/**
 * The 12 SPEC CPU2006 programs of Figure 11 with plausible
 * big.LITTLE characteristics (calculix most compute-bound, lbm and
 * libquantum most memory-bound).
 */
class SpecCatalog
{
  public:
    /** All programs, in the paper's Figure 11 order. */
    static const std::vector<BatchKernel> &all();

    /** Look up a program by name; throws FatalError when unknown. */
    static const BatchKernel &byName(const std::string &name);
};

/** Per-interval batch execution report. */
struct BatchIntervalStats
{
    /** Aggregate IPS retired on big-cluster cores (paper: BIPS). */
    Ips bigIps = 0.0;

    /** Aggregate IPS retired on small-cluster cores (paper: SIPS). */
    Ips smallIps = 0.0;

    /** Instructions retired this interval, per running job. */
    std::vector<Instructions> perJob;

    /** Number of jobs that actually ran. */
    std::size_t jobsRunning = 0;

    Ips totalIps() const { return bigIps + smallIps; }
};

/**
 * Runtime for a mix of batch jobs. The scheduler assigns one job per
 * spare core each interval (the paper runs as many batch programs as
 * there are cores unused by the LC workload) and supports suspending
 * the whole mix (the paper throttles batch jobs with SIGSTOP /
 * SIGCONT).
 */
class BatchWorkload
{
  public:
    /**
     * @param mix Kernels to draw from; job i on the k-th spare core
     *            runs mix[k % mix.size()].
     */
    explicit BatchWorkload(std::vector<BatchKernel> mix);

    const std::vector<BatchKernel> &mix() const { return mix_; }

    /** Suspend/resume all batch execution (SIGSTOP / SIGCONT). */
    void setSuspended(bool suspended) { suspended_ = suspended; }
    bool suspended() const { return suspended_; }

    /**
     * Memory pressure the mix would exert per cluster if assigned to
     * `cores` (used by the runner to couple with the LC app before
     * executing the interval).
     */
    std::vector<ClusterPressure>
    pressureOn(const Platform &platform,
               const std::vector<CoreId> &cores) const;

    /**
     * Execute one interval of length `dt` on the given spare cores,
     * under the given contention snapshot. Also deposits per-core
     * instruction counts into the platform's perf-counter bank.
     */
    BatchIntervalStats runInterval(Platform &platform,
                                   const std::vector<CoreId> &cores,
                                   const ContentionModel &contention,
                                   std::vector<ClusterPressure> pressure,
                                   Seconds dt);

    /**
     * IPS of one kernel on a given core type at a given frequency
     * with no contention. `max_freq` is that core type's maximum
     * frequency (the IPC reference point).
     */
    static Ips kernelIps(const BatchKernel &kernel, CoreType type,
                         GHz frequency, GHz max_freq);

    /** Cumulative instructions retired by the mix so far. */
    Instructions totalRetired() const { return totalRetired_; }

  private:
    std::vector<BatchKernel> mix_;
    bool suspended_ = false;
    Instructions totalRetired_ = 0.0;
};

/**
 * Maximum aggregate IPS of each cluster at the highest DVFS, on the
 * characterization microbenchmark — the denominator of the paper's
 * Throughput Reward (Algorithm 1 line 13: maxIPS(B) + maxIPS(S)).
 */
Ips maxClusterIps(const Platform &platform, CoreType type);

} // namespace hipster

#endif // HIPSTER_WORKLOADS_BATCH_HH
