/**
 * @file
 * LatencyCriticalApp: the simulated interactive service. Combines a
 * ServiceModel, an arrival source (open-loop Poisson for Memcached,
 * closed-loop users with think time for Web-Search), and the
 * heterogeneous multi-server QueueingSystem. Stepped one monitoring
 * interval at a time by the experiment runner, it reports exactly
 * what the paper's QoS Monitor reads from the application logfile:
 * throughput and tail latency.
 */

#ifndef HIPSTER_WORKLOADS_LATENCY_APP_HH
#define HIPSTER_WORKLOADS_LATENCY_APP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "sim/event_queue.hh"
#include "sim/queueing.hh"
#include "workloads/service_model.hh"

namespace hipster
{

/** Arrival process flavours. */
enum class ArrivalMode
{
    /** Open loop: Poisson arrivals at the offered rate
     * (Memcached-style key-value traffic). */
    OpenLoop,

    /** Closed loop: a population of users with exponential think
     * time (the paper's Faban driver for Web-Search uses a 2 s think
     * time, Table 1). */
    ClosedLoop,
};

/** Complete description of a latency-critical application. */
struct LcAppParams
{
    std::string name;

    /** Demand + core-speed model. */
    ServiceDemandParams demand;

    /**
     * Maximum load in *reported* requests/queries per second: the
     * load at which two big cores at max DVFS just meet the tail
     * target (paper Table 1: 36 000 RPS Memcached, 44 QPS
     * Web-Search).
     */
    Rate maxLoad = 0.0;

    /**
     * Internal simulation scale: the DES simulates
     * maxLoad * loadScale arrivals per second at 100% load, and
     * reported throughput is descaled by 1/loadScale. Scaling down
     * Memcached's 36 kRPS keeps full diurnal runs fast while
     * preserving utilization (demand is calibrated against the
     * scaled rate). 1.0 = no scaling.
     */
    double loadScale = 1.0;

    /** Tail-latency percentile monitored for QoS (95.0, 90.0, ...). */
    double tailPercentile = 95.0;

    /** Tail-latency target (the QoS target), in milliseconds. */
    Millis qosTargetMs = 0.0;

    /** Arrival process flavour. */
    ArrivalMode mode = ArrivalMode::OpenLoop;

    /** Mean think time for closed-loop mode (seconds). */
    Seconds thinkTime = 2.0;

    /**
     * Nominal response time used to size the closed-loop user
     * population: users(100%) = maxLoad*loadScale*(think+nominal).
     */
    Seconds nominalResponse = 0.25;

    /** Waiting-room bound (requests); beyond it arrivals drop. */
    std::size_t maxQueue = 200000;
};

/** What the QoS monitor reads at the end of each interval. */
struct LcIntervalStats
{
    Seconds begin = 0.0;
    Seconds end = 0.0;

    /** Offered load as a fraction of max capacity. */
    Fraction offeredLoad = 0.0;

    /** Offered arrival rate (reported scale, RPS/QPS). */
    Rate offeredRate = 0.0;

    /** Completed requests in the interval (internal scale). */
    std::uint64_t completed = 0;

    /** Achieved throughput (reported scale). */
    Rate throughput = 0.0;

    /** Tail latency at the app's QoS percentile (ms). */
    Millis tailLatency = 0.0;

    Millis meanLatency = 0.0;
    Millis p50Latency = 0.0;
    Millis p99Latency = 0.0;

    /** Arrivals dropped (waiting room full) this interval. */
    std::uint64_t dropped = 0;

    /** Queue length at the interval boundary. */
    std::size_t queueDepth = 0;

    /** Per-server (core) busy time and instructions. */
    std::vector<ServerUsage> usage;

    /** Mean busy fraction across allocated servers. */
    Fraction utilization = 0.0;
};

/**
 * The simulated service. Owns its event queue, queueing system, and
 * RNG streams; the runner reconfigures servers between intervals and
 * steps it.
 */
class LatencyCriticalApp
{
  public:
    LatencyCriticalApp(LcAppParams params, std::uint64_t seed);

    const LcAppParams &params() const { return params_; }
    const ServiceModel &serviceModel() const { return model_; }

    /** QoS target in ms (convenience). */
    Millis qosTarget() const { return params_.qosTargetMs; }

    /**
     * Replace the server (core) set at time `now`, optionally
     * freezing execution until `now + stall` to model actuation
     * latency. Safe to call with an identical set (no-op besides the
     * stall).
     */
    void configure(const std::vector<ServerSpec> &servers, Seconds now,
                   Seconds stall = 0.0);

    /**
     * Simulate the interval [t0, t1) at `offered_load` fraction of
     * max capacity and return the monitor-visible statistics.
     */
    LcIntervalStats runInterval(Seconds t0, Seconds t1,
                                Fraction offered_load);

    /** Reset all queues, users and statistics (fresh experiment). */
    void reset();

    /** Closed-loop population currently active (0 in open loop). */
    std::size_t activeUsers() const { return activeUsers_; }

    /** Simulation events processed so far (bench instrumentation). */
    std::uint64_t eventsProcessed() const { return events_.processed(); }

    /**
     * Wall-clock seconds spent generating arrivals (open-loop batch
     * draws and closed-loop population adjustments) since the last
     * reset — the phase profiler's "arrival gen" bucket. Pure
     * observation: never feeds back into simulated behavior.
     */
    double arrivalGenSeconds() const { return arrivalGenSeconds_; }

  private:
    void seedOpenLoopArrivals(Seconds t0, Seconds t1, Rate sim_rate);
    void adjustUserPopulation(std::size_t target, Seconds now);
    void scheduleUserThink(std::size_t user, Seconds now);

    LcAppParams params_;
    ServiceModel model_;
    Rng demandRng_;
    Rng arrivalRng_;
    EventQueue events_;
    QueueingSystem system_;

    /** Latencies (seconds) completed in the current interval. */
    SampleStats intervalLatencies_;
    std::uint64_t intervalCompleted_ = 0;
    std::uint64_t lastDroppedTotal_ = 0;

    /** Reusable scratch for batched open-loop arrival times. */
    std::vector<Seconds> arrivalBatch_;

    /** Wall-clock spent in arrival generation since reset(). */
    double arrivalGenSeconds_ = 0.0;

    // Closed-loop user state.
    std::size_t activeUsers_ = 0;
    std::vector<std::uint64_t> userEpoch_;

    bool configured_ = false;
};

} // namespace hipster

#endif // HIPSTER_WORKLOADS_LATENCY_APP_HH
