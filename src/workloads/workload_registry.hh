/**
 * @file
 * Workload registry: every latency-critical workload the CLIs, sweep
 * engine and bench binaries can name, plus a key=value spec grammar
 * that makes the Table 1 deployment knobs — QoS target, tail
 * percentile, max load, contention traits — first-class sweep axes:
 *
 *   spec := name [':' key '=' value (',' key '=' value)*]
 *
 * Examples:
 *   memcached:qos=300us,stall=0.5
 *   websearch:tail=2.0
 *   synthetic:ipcbig=1.4,insn=5e6,qos=20ms,closed=1
 *
 * Time-typed keys (qos, think, memstall) accept us/ms/s suffixes.
 * Each registered workload declares a parameter schema (key,
 * default, valid range, doc string); overrides validate fail-fast —
 * an unknown key or out-of-range value enumerates the schema, an
 * unknown workload enumerates the catalog — and apply on top of the
 * calibrated Table 1 definition, so a bare name behaves exactly as
 * before. The registry also owns the per-workload scenario defaults
 * (diurnal run length, deployment-tuned Hipster bucket) that
 * experiments/scenario resolves through it.
 */

#ifndef HIPSTER_WORKLOADS_WORKLOAD_REGISTRY_HH
#define HIPSTER_WORKLOADS_WORKLOAD_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "common/spec_grammar.hh"
#include "common/units.hh"
#include "workloads/apps.hh"

namespace hipster
{

/** Catalog entry describing one registered LC workload family. */
struct WorkloadInfo
{
    std::string name;                 ///< canonical spec head
    std::vector<std::string> aliases; ///< alternate heads
    std::string display;              ///< report name, e.g. "Memcached"
    std::string summary;              ///< one-line description
    std::string paperRef;             ///< e.g. "Table 1"

    /** Diurnal run length for this workload (Section 4.1). */
    Seconds diurnalDuration = 0.0;

    /** Deployment-tuned Hipster bucket width (Figure 10 sweep). */
    double tunedBucketPercent = 5.0;

    std::vector<SpecParamInfo> params;
};

/**
 * Name-keyed factory for LC workload definitions. A singleton holds
 * the built-ins (the paper's Table 1 pair plus a fully declarative
 * synthetic family); custom workloads can be registered at startup
 * and become available to every consumer (CLIs, sweeps, benches) at
 * once.
 */
class WorkloadRegistry
{
  public:
    /** Builds a workload definition from the parsed overrides. */
    using Factory =
        std::function<LcWorkloadDef(const SpecParamSet &params)>;

    /** The process-wide registry with the built-ins installed. */
    static WorkloadRegistry &instance();

    /** Register a workload; FatalError on duplicate names/aliases or
     * a null factory. */
    void registerWorkload(WorkloadInfo info, Factory factory);

    /** Whether `name` heads a registered workload (canonical or
     * alias; spec arguments are not accepted here). */
    bool hasWorkload(const std::string &name) const;

    /** All registered workloads, in registration order. */
    const std::vector<WorkloadInfo> &workloads() const
    {
        return workloads_;
    }

    /** Catalog entry for a canonical name or alias; nullptr when
     * unknown. */
    const WorkloadInfo *findWorkload(const std::string &name) const;

    /**
     * Parse and validate a spec against the schema without building
     * anything: resolves the head (canonical or alias) and checks
     * every key and range. Throws FatalError with the catalog
     * (unknown workload) or the workload's schema (unknown key / bad
     * value).
     */
    const WorkloadInfo &parseSpec(const std::string &spec,
                                  SpecParamSet &out) const;

    /** Build a fully parameterized workload definition from a spec
     * string. A bare name reproduces the calibrated factory
     * exactly. */
    LcWorkloadDef make(const std::string &spec) const;

    /** Human-readable catalog: every workload with aliases, paper
     * reference and full parameter schema (--list-workloads). */
    std::string catalogText() const;

    /** Compact enumeration used in unknown-workload errors. */
    std::string knownWorkloadsSummary() const;

  private:
    WorkloadRegistry() = default;
    void registerBuiltins();

    std::vector<WorkloadInfo> workloads_;
    std::vector<Factory> factories_;
};

/** Build a workload definition from a spec via the global registry. */
LcWorkloadDef makeWorkloadFromSpec(const std::string &spec);

/**
 * Fail-fast spec validation: parses the spec and checks every
 * override against the schema, throwing the same FatalError
 * WorkloadRegistry::make would, so campaigns reject bad cells before
 * any runs start.
 */
void validateWorkloadSpec(const std::string &spec);

/** Non-throwing validateWorkloadSpec(). */
bool isWorkloadSpec(const std::string &spec);

/**
 * Splits a CLI workload list into specs. `;` always separates; a `,`
 * separates only when the text after it heads a registered workload
 * (so `memcached:qos=300us,stall=0.5,websearch` yields the
 * parameterized memcached spec and `websearch`).
 */
std::vector<std::string> splitWorkloadList(const std::string &list);

} // namespace hipster

#endif // HIPSTER_WORKLOADS_WORKLOAD_REGISTRY_HH
