#include "workloads/batch.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hipster
{

const std::vector<BatchKernel> &
SpecCatalog::all()
{
    // IPC values are representative of A57-class cores at max DVFS;
    // memIntensity places each program on the compute<->memory axis
    // consistent with published SPEC CPU2006 characterizations
    // (calculix/povray compute-bound; lbm/libquantum memory-bound).
    static const std::vector<BatchKernel> kernels = {
        {"povray",     1.70, 0.90, 0.05},
        {"namd",       1.60, 0.85, 0.10},
        {"gromacs",    1.50, 0.80, 0.15},
        {"tonto",      1.40, 0.75, 0.20},
        {"sjeng",      1.10, 0.60, 0.25},
        {"calculix",   1.80, 0.95, 0.05},
        {"cactusADM",  0.90, 0.55, 0.55},
        {"lbm",        0.50, 0.38, 0.90},
        {"astar",      0.80, 0.50, 0.50},
        {"soplex",     0.70, 0.48, 0.60},
        {"libquantum", 0.55, 0.42, 0.85},
        {"zeusmp",     0.75, 0.50, 0.55},
    };
    return kernels;
}

const BatchKernel &
SpecCatalog::byName(const std::string &name)
{
    for (const auto &kernel : all()) {
        if (kernel.name == name)
            return kernel;
    }
    fatal("SpecCatalog: unknown batch program '", name, "'");
}

BatchWorkload::BatchWorkload(std::vector<BatchKernel> mix)
    : mix_(std::move(mix))
{
    if (mix_.empty())
        fatal("BatchWorkload requires a non-empty kernel mix");
    for (const auto &kernel : mix_) {
        if (kernel.ipcBig <= 0.0 || kernel.ipcSmall <= 0.0)
            fatal("BatchWorkload kernel '", kernel.name,
                  "' needs positive IPC");
        if (kernel.memIntensity < 0.0 || kernel.memIntensity > 1.0)
            fatal("BatchWorkload kernel '", kernel.name,
                  "' memIntensity must lie in [0, 1]");
    }
}

std::vector<ClusterPressure>
BatchWorkload::pressureOn(const Platform &platform,
                          const std::vector<CoreId> &cores) const
{
    std::vector<ClusterPressure> pressure(platform.clusters().size());
    if (suspended_)
        return pressure;
    for (std::size_t i = 0; i < cores.size(); ++i) {
        const BatchKernel &kernel = mix_[i % mix_.size()];
        pressure[platform.clusterOf(cores[i])].batch +=
            kernel.memIntensity;
    }
    return pressure;
}

Ips
BatchWorkload::kernelIps(const BatchKernel &kernel, CoreType type,
                         GHz frequency, GHz max_freq)
{
    const double ipc =
        type == CoreType::Big ? kernel.ipcBig : kernel.ipcSmall;
    // Memory-bound fraction does not speed up with the clock: blend
    // the actual frequency with the reference (max) frequency.
    const GHz effective = kernel.memIntensity * max_freq +
                          (1.0 - kernel.memIntensity) * frequency;
    return ipc * effective * 1e9;
}

BatchIntervalStats
BatchWorkload::runInterval(Platform &platform,
                           const std::vector<CoreId> &cores,
                           const ContentionModel &contention,
                           std::vector<ClusterPressure> pressure,
                           Seconds dt)
{
    BatchIntervalStats stats;
    stats.perJob.assign(cores.size(), 0.0);
    if (suspended_ || cores.empty() || dt <= 0.0)
        return stats;

    for (std::size_t i = 0; i < cores.size(); ++i) {
        const CoreId core = cores[i];
        const BatchKernel &kernel = mix_[i % mix_.size()];
        const ClusterId cluster = platform.clusterOf(core);
        const CoreType type = platform.coreType(core);
        const GHz freq = platform.coreFrequency(core);
        const GHz max_freq =
            platform.cluster(type).spec().maxFrequency();
        const double factor = contention.batchIpcFactor(
            pressure, cluster, kernel.memIntensity);
        const Ips rate = kernelIps(kernel, type, freq, max_freq) * factor;
        const Instructions retired = rate * dt;
        stats.perJob[i] = retired;
        totalRetired_ += retired;
        if (type == CoreType::Big) {
            stats.bigIps += rate;
        } else {
            stats.smallIps += rate;
        }
        platform.perfCounters().record(core, retired, freq * 1e9 * dt,
                                       1.0);
        ++stats.jobsRunning;
    }
    return stats;
}

Ips
maxClusterIps(const Platform &platform, CoreType type)
{
    if (platform.coreCount(type) == 0)
        return 0.0;
    const auto &spec = platform.cluster(type).spec();
    return spec.coreCount * spec.microbenchIpc * spec.maxFrequency() * 1e9;
}

} // namespace hipster
