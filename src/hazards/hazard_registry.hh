/**
 * @file
 * Registry for the hazard axis — the sixth registry-backed spec
 * grammar. Hazard specs ride the shared common/spec_grammar, carry a
 * canonical `hazard:` prefix so sweep/CSV labels are self-describing,
 * compose with `+` like traces, and fail fast with catalog-enumerating
 * errors exactly like the other axes:
 *
 *   spec := 'none'
 *         | ['hazard:'] stage ('+' stage)*
 *   stage := name [':' key '=' value (',' ...)]
 *
 *   none
 *   hazard:thermal:tdp_cap=0.8,tau=30s
 *   hazard:nodefail:mtbf=600s,mttr=60s
 *   hazard:dvfs-lag:latency=5ms,drop=0.01
 *   hazard:thermal+interference:burst=2
 *
 * Every stage draws from its own stream derived from the run seed and
 * the stage *name*, so composed hazards are bitwise order-independent
 * and reproducible across jobs=1 vs jobs=N.
 */

#ifndef HIPSTER_HAZARDS_HAZARD_REGISTRY_HH
#define HIPSTER_HAZARDS_HAZARD_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/spec_grammar.hh"
#include "hazards/hazard.hh"

namespace hipster
{

/** Catalog entry describing one registered hazard family. */
struct HazardInfo
{
    std::string name;                 ///< grammar head, e.g. "thermal"
    std::vector<std::string> aliases; ///< alternate heads, e.g. "throttle"
    std::string summary;              ///< one line for --list-hazards
    std::vector<SpecParamInfo> params;
};

/**
 * Name-keyed hazard factory. A singleton holds the built-ins; custom
 * hazards registered at startup become available to the CLIs, the
 * sweep axes and the benches at once.
 */
class HazardRegistry
{
  public:
    /** Builds one stage from its validated parameters and the
     * stage's derived stream seed. */
    using Factory = std::function<std::unique_ptr<Hazard>(
        const SpecParamSet &params, std::uint64_t seed)>;

    static HazardRegistry &instance();

    /** Register a hazard; FatalError on duplicate names/aliases. */
    void add(HazardInfo info, Factory factory);

    /** Whether `name` is a registered family name or alias. */
    bool has(const std::string &name) const;

    /** All registered hazards, in registration order. */
    const std::vector<HazardInfo> &entries() const { return entries_; }

    /**
     * Build the composed engine of a hazard spec (with or without
     * the `hazard:` prefix), or nullptr for "none"/empty — the
     * bitwise no-op. Throws FatalError enumerating the catalog on
     * unknown names and the schema on bad parameters.
     */
    std::unique_ptr<HazardEngine> make(const std::string &spec,
                                       std::uint64_t seed) const;

    /** Human-readable catalog (--list-hazards). */
    std::string catalogText() const;

  private:
    HazardRegistry() = default;
    void registerBuiltins();

    std::vector<HazardInfo> entries_;
    std::vector<Factory> factories_;
};

/** Build a hazard engine from a spec via the global registry
 * (nullptr for "none"/empty). */
std::unique_ptr<HazardEngine> makeHazardEngine(const std::string &spec,
                                               std::uint64_t seed);

/** Whether the spec is the no-op hazard ("", "none", "hazard:none"). */
bool isNoneHazard(const std::string &spec);

/** Fail-fast validation of a hazard spec (builds and discards). */
void validateHazardSpec(const std::string &spec);

/** The spec with its `hazard:` prefix enforced ("none" stays bare). */
std::string canonicalHazardLabel(const std::string &spec);

/** The engine seed derived from a run seed (decorrelated from the
 * trace/workload streams that also fork from the run seed). */
std::uint64_t hazardEngineSeed(std::uint64_t runSeed);

/** Splits a CLI hazard list (`;` separated; a `,` separates only
 * before a registered head, the `hazard:` prefix, or `none`). */
std::vector<std::string> splitHazardList(const std::string &list);

} // namespace hipster

#endif // HIPSTER_HAZARDS_HAZARD_REGISTRY_HH
