#include "hazards/hazard.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"

namespace hipster
{

// ---------------------------------------------------------------------------
// HazardTimeline

HazardTimeline::HazardTimeline(std::uint64_t seed, Seconds meanInactive,
                               Seconds meanActive)
    : seed_(seed), meanInactive_(meanInactive), meanActive_(meanActive),
      rng_(seed)
{
}

void
HazardTimeline::reset()
{
    rng_ = Rng(seed_);
    switches_.clear();
}

void
HazardTimeline::extendTo(Seconds t)
{
    while (switches_.empty() || switches_.back() <= t) {
        // Even-indexed switches end an inactive sojourn. Sojourns are
        // floored at a nanosecond so a degenerate draw cannot stall
        // the extension loop.
        const bool leavingInactive = switches_.size() % 2 == 0;
        const Seconds mean = leavingInactive ? meanInactive_ : meanActive_;
        const Seconds sojourn =
            std::max(rng_.exponential(1.0 / mean), 1e-9);
        const Seconds last = switches_.empty() ? 0.0 : switches_.back();
        switches_.push_back(last + sojourn);
    }
}

bool
HazardTimeline::activeAt(Seconds t)
{
    extendTo(t);
    // State starts inactive and flips at each switch time <= t.
    std::size_t flips = 0;
    while (flips < switches_.size() && switches_[flips] <= t)
        ++flips;
    return flips % 2 == 1;
}

// ---------------------------------------------------------------------------
// HazardEngine

HazardEngine::HazardEngine(std::string spec,
                           std::vector<std::unique_ptr<Hazard>> stages)
    : spec_(std::move(spec)), stages_(std::move(stages))
{
}

void
HazardEngine::bind(Watts tdp)
{
    for (auto &stage : stages_)
        stage->bind(tdp);
}

void
HazardEngine::reset()
{
    for (auto &stage : stages_)
        stage->reset();
}

HazardEffects
HazardEngine::intervalEffects(std::size_t k, Seconds t0, Seconds dt)
{
    HazardEffects fx;
    for (auto &stage : stages_)
        stage->apply(k, t0, dt, fx);
    return fx;
}

void
HazardEngine::observePower(Watts power, Seconds dt)
{
    for (auto &stage : stages_)
        stage->observePower(power, dt);
}

bool
HazardEngine::nodeDown(Seconds t)
{
    for (auto &stage : stages_) {
        if (stage->downAt(t))
            return true;
    }
    return false;
}

std::uint32_t
HazardEngine::blastRadius() const
{
    std::uint32_t radius = 1;
    for (const auto &stage : stages_)
        radius = std::max(radius, stage->blastRadius());
    return radius;
}

bool
HazardEngine::rebootOnRestore() const
{
    for (const auto &stage : stages_) {
        if (stage->rebootOnRestore())
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Built-in hazards

namespace
{

/**
 * Thermal throttling grounded in the telemetry of real low-power
 * clusters: a first-order thermal RC charged by the ratio of drawn
 * power to the throttle budget (tdp_cap x TDP). When the normalized
 * temperature exceeds 1.0 the governor removes OPP steps from the
 * top of every ladder, one per hot interval, and re-arms them only
 * below the hysteresis release point — so throttling both lags the
 * overload and outlives it, like firmware governors do.
 */
class ThermalHazard final : public Hazard
{
  public:
    ThermalHazard(double tdpCap, Seconds tau, std::uint32_t steps,
                  double release)
        : tdpCap_(tdpCap), tau_(tau), maxSteps_(steps), release_(release)
    {
    }

    const std::string &name() const override
    {
        static const std::string kName = "thermal";
        return kName;
    }

    void bind(Watts tdp) override { budget_ = tdpCap_ * tdp; }

    void apply(std::size_t, Seconds, Seconds, HazardEffects &fx) override
    {
        fx.oppCapSteps = std::max(fx.oppCapSteps, level_);
    }

    void observePower(Watts power, Seconds dt) override
    {
        if (budget_ <= 0.0)
            return;
        // Exponential relaxation toward the normalized steady-state
        // temperature power/budget with time constant tau.
        const double target = power / budget_;
        const double alpha = 1.0 - std::exp(-dt / tau_);
        temp_ += alpha * (target - temp_);
        if (temp_ > 1.0 && level_ < maxSteps_)
            ++level_;
        else if (temp_ < release_ && level_ > 0)
            --level_;
    }

    void reset() override
    {
        temp_ = 0.0;
        level_ = 0;
    }

  private:
    double tdpCap_;
    Seconds tau_;
    std::uint32_t maxSteps_;
    double release_;
    Watts budget_ = 0.0;
    double temp_ = 0.0;
    std::uint32_t level_ = 0;
};

/**
 * Slow/flaky DVFS actuation: every frequency transition costs extra
 * latency, and each interval the whole actuation can be denied with
 * probability `drop` (the write is dropped and clusters keep their
 * current OPPs) — one Bernoulli draw per interval, in interval
 * order, so the stream is a pure function of the stage seed.
 */
class DvfsLagHazard final : public Hazard
{
  public:
    DvfsLagHazard(Seconds latency, double drop, std::uint64_t seed)
        : latency_(latency), drop_(drop), seed_(seed), rng_(seed)
    {
    }

    const std::string &name() const override
    {
        static const std::string kName = "dvfs-lag";
        return kName;
    }

    void apply(std::size_t, Seconds, Seconds, HazardEffects &fx) override
    {
        fx.dvfsLatency += latency_;
        if (rng_.bernoulli(drop_))
            fx.dvfsDenied = true;
    }

    void reset() override { rng_ = Rng(seed_); }

  private:
    Seconds latency_;
    double drop_;
    std::uint64_t seed_;
    Rng rng_;
};

/**
 * Co-tenant interference: bursts of contention pressure on every
 * cluster, arriving as an alternating-renewal process (exponential
 * quiet/burst sojourns).
 */
class InterferenceHazard final : public Hazard
{
  public:
    InterferenceHazard(double burst, Seconds on, Seconds off,
                       std::uint64_t seed)
        : burst_(burst), timeline_(seed, off, on)
    {
    }

    const std::string &name() const override
    {
        static const std::string kName = "interference";
        return kName;
    }

    void apply(std::size_t, Seconds t0, Seconds,
               HazardEffects &fx) override
    {
        if (timeline_.activeAt(t0))
            fx.pressure += burst_;
    }

    void reset() override { timeline_.reset(); }

    HazardTimeline *timeline() override { return &timeline_; }

  private:
    double burst_;
    HazardTimeline timeline_;
};

/**
 * Whole-node failure/restore: an up/down alternating-renewal process
 * with exponential MTBF/MTTR sojourns. While down the node executes
 * nothing and draws no power (the fleet front end also routes no
 * traffic to it); on restore with reboot=1 the task manager comes
 * back cold, so the policy relearns from scratch.
 */
class NodefailHazard final : public Hazard
{
  public:
    NodefailHazard(Seconds mtbf, Seconds mttr, bool reboot,
                   std::uint32_t blast, std::uint64_t seed)
        : reboot_(reboot), blast_(blast), timeline_(seed, mtbf, mttr)
    {
    }

    const std::string &name() const override
    {
        static const std::string kName = "nodefail";
        return kName;
    }

    void apply(std::size_t k, Seconds t0, Seconds dt,
               HazardEffects &fx) override
    {
        const bool down = timeline_.activeAt(t0);
        if (down)
            fx.down = true;
        else if (reboot_ && k > 0 && timeline_.activeAt(t0 - dt))
            fx.reboot = true;
    }

    bool downAt(Seconds t) override { return timeline_.activeAt(t); }

    std::uint32_t blastRadius() const override { return blast_; }

    bool rebootOnRestore() const override { return reboot_; }

    void reset() override { timeline_.reset(); }

    HazardTimeline *timeline() override { return &timeline_; }

  private:
    bool reboot_;
    std::uint32_t blast_;
    HazardTimeline timeline_;
};

} // namespace

std::unique_ptr<Hazard>
makeThermalHazard(double tdpCap, Seconds tau, std::uint32_t steps,
                  double release)
{
    return std::make_unique<ThermalHazard>(tdpCap, tau, steps, release);
}

std::unique_ptr<Hazard>
makeDvfsLagHazard(Seconds latency, double drop, std::uint64_t seed)
{
    return std::make_unique<DvfsLagHazard>(latency, drop, seed);
}

std::unique_ptr<Hazard>
makeInterferenceHazard(double burst, Seconds on, Seconds off,
                       std::uint64_t seed)
{
    return std::make_unique<InterferenceHazard>(burst, on, off, seed);
}

std::unique_ptr<Hazard>
makeNodefailHazard(Seconds mtbf, Seconds mttr, bool reboot,
                   std::uint32_t blast, std::uint64_t seed)
{
    return std::make_unique<NodefailHazard>(mtbf, mttr, reboot, blast,
                                            seed);
}

} // namespace hipster
