/**
 * @file
 * Hazard engine: deterministic, seed-derived adversity injected into
 * the ExperimentRunner's closed loop (ROADMAP item 5). A hazard is a
 * per-interval event stream — thermal throttling that integrates the
 * platform power model and caps the OPP ladder, DVFS actuation
 * latency/failure, co-tenant interference pressure, or whole-node
 * failure/restore — composed into one HazardEngine per run. Every
 * stream derives from the run seed (per-stage streams are keyed by
 * the stage *name*, so composed hazards commute bitwise), and a run
 * with no engine attached is bit-identical to a pre-hazard run.
 */

#ifndef HIPSTER_HAZARDS_HAZARD_HH
#define HIPSTER_HAZARDS_HAZARD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/units.hh"

namespace hipster
{

/**
 * The merged per-interval effect of every hazard stage. Defaults are
 * all no-ops; merge operators are commutative (OR / max / sum), so
 * the effect of a composed spec is independent of stage order.
 */
struct HazardEffects
{
    /** Node is failed this interval: no actuation, no arrivals, no
     * power (the fleet front end also routes nothing here). */
    bool down = false;

    /** First up-interval after a down span with reboot=1: the task
     * manager restarts cold (policy reset + initialDecision). */
    bool reboot = false;

    /** Thermal throttle: number of OPP-ladder steps removed from the
     * top of every cluster's DVFS table (0 = no cap). */
    std::uint32_t oppCapSteps = 0;

    /** Extra actuation latency per DVFS transition (dvfs-lag). */
    Seconds dvfsLatency = 0.0;

    /** DVFS writes fail this interval: requested frequency changes
     * are silently dropped and clusters keep their current OPPs. */
    bool dvfsDenied = false;

    /** Extra contention pressure on every cluster (co-tenant
     * interference bursts). */
    double pressure = 0.0;
};

/**
 * Lazily extended alternating-state event timeline: sojourns in the
 * inactive/active states are exponential with the given mean
 * durations, drawn in time order from a dedicated stream, so the
 * switch times are a pure function of the seed no matter when or how
 * often the timeline is queried. Used by the interference (off/burst)
 * and nodefail (up/down) hazards.
 */
class HazardTimeline
{
  public:
    /**
     * @param seed         Stream seed (per-stage, name-derived).
     * @param meanInactive Mean sojourn in the initial/inactive state.
     * @param meanActive   Mean sojourn in the active state.
     */
    HazardTimeline(std::uint64_t seed, Seconds meanInactive,
                   Seconds meanActive);

    /** State at time t >= 0 (extends the timeline as needed). */
    bool activeAt(Seconds t);

    /** Regenerate from the seed (fresh run on the same engine). */
    void reset();

    /** Switch times generated so far (strictly increasing; state
     * flips at each, starting inactive). Test/inspection hook. */
    const std::vector<Seconds> &switches() const { return switches_; }

  private:
    void extendTo(Seconds t);

    std::uint64_t seed_;
    Seconds meanInactive_;
    Seconds meanActive_;
    Rng rng_;
    std::vector<Seconds> switches_;
};

/** One hazard stage of a composed spec. */
class Hazard
{
  public:
    virtual ~Hazard() = default;

    /** Registered family name ("thermal", "nodefail", ...). */
    virtual const std::string &name() const = 0;

    /**
     * Merge this stage's effect for interval k ([t0, t0+dt)) into
     * `fx`. Called exactly once per interval, in interval order —
     * stages that draw randomness consume their stream here, so the
     * draw sequence is a pure function of (seed, interval index).
     */
    virtual void apply(std::size_t k, Seconds t0, Seconds dt,
                      HazardEffects &fx) = 0;

    /** Power measured over the finished interval (thermal state). */
    virtual void observePower(Watts power, Seconds dt)
    {
        (void)power;
        (void)dt;
    }

    /** Attach platform constants (TDP) before the run starts. */
    virtual void bind(Watts tdp) { (void)tdp; }

    /** Whether the node is failed at time t (pure timeline lookup —
     * the fleet front end asks this before routing). */
    virtual bool downAt(Seconds t)
    {
        (void)t;
        return false;
    }

    /** How many contiguous fleet nodes one failure of this stage
     * downs (rack-level correlated failures; 1 = just this node). */
    virtual std::uint32_t blastRadius() const { return 1; }

    /** Whether a node blanked by a *neighbor's* failure (blast
     * radius) restarts its task manager cold on restore. */
    virtual bool rebootOnRestore() const { return false; }

    /** Back to the freshly built state (new run, same engine). */
    virtual void reset() = 0;

    /** Event timeline behind this stage, when it has one. */
    virtual HazardTimeline *timeline() { return nullptr; }
};

/**
 * The composed hazard of one run: owns the stages parsed from a
 * `hazard:` spec and merges their per-interval effects. Built by the
 * hazard registry; a null engine (spec "none") means the runner's
 * hazard hooks are never taken.
 */
class HazardEngine
{
  public:
    HazardEngine(std::string spec,
                 std::vector<std::unique_ptr<Hazard>> stages);

    /** The canonical spec this engine was built from. */
    const std::string &spec() const { return spec_; }

    /** Attach platform constants (TDP) to every stage. */
    void bind(Watts tdp);

    /** Fresh-run reset of every stage (beginRun). */
    void reset();

    /** Merged effects for interval k ([t0, t0+dt)); call once per
     * interval, in order. */
    HazardEffects intervalEffects(std::size_t k, Seconds t0, Seconds dt);

    /** Forward the interval's measured power to every stage. */
    void observePower(Watts power, Seconds dt);

    /** Whether any stage has the node failed at time t. */
    bool nodeDown(Seconds t);

    /** Largest blast radius over all stages (fleet rack size). */
    std::uint32_t blastRadius() const;

    /** Whether any stage reboots a blast-blanked node on restore. */
    bool rebootOnRestore() const;

    /** The stages, in spec order (test/inspection hook). */
    const std::vector<std::unique_ptr<Hazard>> &stages() const
    {
        return stages_;
    }

  private:
    std::string spec_;
    std::vector<std::unique_ptr<Hazard>> stages_;
};

/** Factory helpers the registry wires up (one per built-in). Each
 * takes its validated parameters and the stage's derived seed. */
std::unique_ptr<Hazard> makeThermalHazard(double tdpCap, Seconds tau,
                                          std::uint32_t steps,
                                          double release);
std::unique_ptr<Hazard> makeDvfsLagHazard(Seconds latency, double drop,
                                          std::uint64_t seed);
std::unique_ptr<Hazard> makeInterferenceHazard(double burst, Seconds on,
                                               Seconds off,
                                               std::uint64_t seed);
std::unique_ptr<Hazard> makeNodefailHazard(Seconds mtbf, Seconds mttr,
                                           bool reboot,
                                           std::uint32_t blast,
                                           std::uint64_t seed);

} // namespace hipster

#endif // HIPSTER_HAZARDS_HAZARD_HH
