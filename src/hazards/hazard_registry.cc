#include "hazards/hazard_registry.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/random.hh"

namespace hipster
{

namespace
{

constexpr const char *kPrefix = "hazard:";

/** The spec with any `hazard:` prefix removed. */
std::string
stripPrefix(const std::string &spec)
{
    const std::string prefix(kPrefix);
    if (spec.rfind(prefix, 0) == 0)
        return spec.substr(prefix.size());
    return spec;
}

/** FNV-1a over a name. Stage streams are keyed by the *family name*
 * (not the stage position), so `thermal+interference` and
 * `interference+thermal` draw identical streams and the composed
 * effects — merged with commutative operators — are bitwise equal. */
std::uint64_t
hashName(const std::string &name)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * Splits a composed hazard body on `+`, but only where the text
 * after the `+` heads a registered hazard — mirroring the trace
 * grammar, so parameter values can never be cut in half.
 */
std::vector<std::string>
splitOnHazardBoundary(const std::string &body)
{
    std::vector<std::string> stages;
    std::size_t start = 0;
    for (std::size_t i = 0; i < body.size(); ++i) {
        if (body[i] != '+')
            continue;
        const std::string head = specHeadToken(body, i + 1);
        if (head.empty())
            continue;
        if (head == "none" || HazardRegistry::instance().has(head)) {
            stages.push_back(body.substr(start, i - start));
            start = i + 1;
        }
    }
    stages.push_back(body.substr(start));
    return stages;
}

} // namespace

HazardRegistry &
HazardRegistry::instance()
{
    static HazardRegistry registry = [] {
        HazardRegistry r;
        r.registerBuiltins();
        return r;
    }();
    return registry;
}

void
HazardRegistry::add(HazardInfo info, Factory factory)
{
    if (has(info.name))
        fatal("HazardRegistry: duplicate hazard '", info.name, "'");
    for (const std::string &alias : info.aliases) {
        if (has(alias))
            fatal("HazardRegistry: duplicate hazard alias '", alias,
                  "'");
    }
    entries_.push_back(std::move(info));
    factories_.push_back(std::move(factory));
}

bool
HazardRegistry::has(const std::string &name) const
{
    return std::any_of(
        entries_.begin(), entries_.end(), [&](const HazardInfo &e) {
            return e.name == name ||
                   std::find(e.aliases.begin(), e.aliases.end(), name) !=
                       e.aliases.end();
        });
}

std::unique_ptr<HazardEngine>
HazardRegistry::make(const std::string &spec, std::uint64_t seed) const
{
    if (isNoneHazard(spec))
        return nullptr;

    const std::string body = stripPrefix(spec);
    const std::vector<std::string> stageTexts =
        splitOnHazardBoundary(body);

    std::vector<std::unique_ptr<Hazard>> stages;
    std::vector<std::string> used;
    for (const std::string &stageText : stageTexts) {
        const std::string head = specHead(stageText);
        if (head == "none")
            fatal("hazard spec '", spec,
                  "': 'none' cannot be composed with other hazards");
        std::size_t index = entries_.size();
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            const HazardInfo &e = entries_[i];
            if (e.name == head ||
                std::find(e.aliases.begin(), e.aliases.end(), head) !=
                    e.aliases.end()) {
                index = i;
                break;
            }
        }
        if (index == entries_.size()) {
            std::string known = "none";
            for (const HazardInfo &e : entries_)
                known += ", " + e.name;
            fatal("unknown hazard '", head, "' in spec '", spec,
                  "'; registered hazards: ", known,
                  " (prefix with 'hazard:', e.g. hazard:",
                  entries_.empty() ? "thermal" : entries_.front().name,
                  ")");
        }
        const HazardInfo &entry = entries_[index];
        if (std::find(used.begin(), used.end(), entry.name) !=
            used.end())
            fatal("hazard spec '", spec, "': hazard '", entry.name,
                  "' appears more than once in the composition");
        used.push_back(entry.name);

        SpecParamSet params;
        parseSpecParams("hazard", stageText, entry.name, entry.params,
                        params);
        // Stage streams are keyed by the family name, never the
        // position, so compositions commute bitwise.
        const std::uint64_t stageSeed =
            splitMix64(seed ^ hashName(entry.name));
        stages.push_back(factories_[index](params, stageSeed));
    }
    return std::make_unique<HazardEngine>(canonicalHazardLabel(spec),
                                          std::move(stages));
}

std::string
HazardRegistry::catalogText() const
{
    std::string out =
        "Hazards (spec grammar: hazard:name[:key=value,...]"
        "[+name[:...]], or none):\n";
    out += "  none — perfectly behaved substrate (bitwise-identical "
           "to a run without hazards)\n";
    for (const HazardInfo &e : entries_) {
        out += "  " + std::string(kPrefix) + e.name;
        for (const std::string &alias : e.aliases)
            out += " (alias: " + alias + ")";
        out += " — " + e.summary + "\n";
        for (const SpecParamInfo &p : e.params)
            out += "      " + specParamLine(p) + "\n";
    }
    return out;
}

void
HazardRegistry::registerBuiltins()
{
    add({"thermal",
         {"throttle"},
         "first-order thermal model over the measured power; "
         "throttles the OPP ladder with hysteresis (after the "
         "telemetry of arXiv:2503.18543)",
         {{"tdp_cap", "throttle budget as a fraction of platform TDP",
           0.8, 0.05, 1.5, false, false, ParamUnit::None},
          {"tau", "thermal time constant", 30.0, 0.5, 3600.0, false,
           false, ParamUnit::TimeSec},
          {"steps", "max OPP steps removed from the ladder top", 3.0,
           1.0, 32.0, true, false, ParamUnit::None},
          {"release", "normalized temperature below which one step "
                      "re-arms per interval",
           0.92, 0.5, 0.999, false, false, ParamUnit::None}}},
        [](const SpecParamSet &params, std::uint64_t) {
            return makeThermalHazard(
                params.get("tdp_cap", 0.8), params.get("tau", 30.0),
                static_cast<std::uint32_t>(params.get("steps", 3.0)),
                params.get("release", 0.92));
        });

    add({"dvfs-lag",
         {"dvfs"},
         "slow/flaky DVFS actuation: extra latency per transition, "
         "and whole actuations dropped with probability `drop`",
         {{"latency", "extra actuation latency per DVFS transition",
           0.005, 0.0, 10.0, false, false, ParamUnit::TimeSec},
          {"drop", "per-interval probability the actuation is denied",
           0.01, 0.0, 1.0, false, false, ParamUnit::None}}},
        [](const SpecParamSet &params, std::uint64_t seed) {
            return makeDvfsLagHazard(params.get("latency", 0.005),
                                     params.get("drop", 0.01), seed);
        });

    add({"interference",
         {"noisy-neighbor"},
         "co-tenant contention bursts: extra pressure on every "
         "cluster during exponential on/off episodes",
         {{"burst", "contention pressure added while a burst is "
                    "active",
           1.0, 0.0, 16.0, false, false, ParamUnit::None},
          {"on", "mean burst duration", 20.0, 0.1, 86400.0, false,
           false, ParamUnit::TimeSec},
          {"off", "mean quiet gap between bursts", 60.0, 0.1, 86400.0,
           false, false, ParamUnit::TimeSec}}},
        [](const SpecParamSet &params, std::uint64_t seed) {
            return makeInterferenceHazard(params.get("burst", 1.0),
                                          params.get("on", 20.0),
                                          params.get("off", 60.0), seed);
        });

    add({"nodefail",
         {"crash"},
         "whole-node failure/restore with exponential MTBF/MTTR; at "
         "fleet scope dispatchers re-route around down nodes (after "
         "arXiv:2009.10348)",
         {{"mtbf", "mean time between failures", 600.0, 1.0, 1e7,
           false, false, ParamUnit::TimeSec},
          {"mttr", "mean time to restore", 60.0, 0.5, 1e6, false,
           false, ParamUnit::TimeSec},
          {"reboot", "restart the task manager cold on restore (the "
                     "policy relearns)",
           1.0, 0.0, 1.0, false, true, ParamUnit::None},
          {"blast", "contiguous fleet nodes downed per failure "
                    "(rack-level blast radius; single-node scope "
                    "ignores it)",
           1.0, 1.0, 64.0, true, false, ParamUnit::None}}},
        [](const SpecParamSet &params, std::uint64_t seed) {
            return makeNodefailHazard(
                params.get("mtbf", 600.0), params.get("mttr", 60.0),
                params.getBool("reboot", true),
                static_cast<std::uint32_t>(params.get("blast", 1.0)),
                seed);
        });
}

std::unique_ptr<HazardEngine>
makeHazardEngine(const std::string &spec, std::uint64_t seed)
{
    return HazardRegistry::instance().make(spec, seed);
}

bool
isNoneHazard(const std::string &spec)
{
    const std::string body = stripPrefix(spec);
    return body.empty() || body == "none";
}

void
validateHazardSpec(const std::string &spec)
{
    makeHazardEngine(spec, 1);
}

std::string
canonicalHazardLabel(const std::string &spec)
{
    if (isNoneHazard(spec))
        return "none";
    return std::string(kPrefix) + stripPrefix(spec);
}

std::uint64_t
hazardEngineSeed(std::uint64_t runSeed)
{
    // Decorrelated from the trace stream (seed + 100) and the
    // workload forks: an unrelated additive constant through the
    // same SplitMix64 finalizer.
    return splitMix64(runSeed + 0x5851f42d4c957f2dULL);
}

std::vector<std::string>
splitHazardList(const std::string &list)
{
    return splitSpecList(list, [](const std::string &head) {
        return head == "hazard" || head == "none" ||
               HazardRegistry::instance().has(head);
    });
}

} // namespace hipster
