#include "telemetry/telemetry.hh"

#include "common/build_info.hh"

namespace hipster
{

const char *
telemetryEventTypeName(TelemetryEventType type)
{
    switch (type) {
    case TelemetryEventType::Header:
        return "header";
    case TelemetryEventType::Decision:
        return "decision";
    case TelemetryEventType::Dvfs:
        return "dvfs";
    case TelemetryEventType::Hazard:
        return "hazard";
    case TelemetryEventType::Migration:
        return "migration";
    case TelemetryEventType::Dispatch:
        return "dispatch";
    case TelemetryEventType::PhaseProfile:
        return "phase_profile";
    }
    return "unknown";
}

bool
parseTelemetryEventType(const std::string &name, TelemetryEventType &out)
{
    static const TelemetryEventType kAll[kTelemetryEventTypes] = {
        TelemetryEventType::Header,       TelemetryEventType::Decision,
        TelemetryEventType::Dvfs,         TelemetryEventType::Hazard,
        TelemetryEventType::Migration,    TelemetryEventType::Dispatch,
        TelemetryEventType::PhaseProfile,
    };
    for (TelemetryEventType type : kAll) {
        if (name == telemetryEventTypeName(type)) {
            out = type;
            return true;
        }
    }
    return false;
}

double
TelemetryEvent::numField(const std::string &key, double fallback) const
{
    for (const auto &kv : num)
        if (kv.first == key)
            return kv.second;
    return fallback;
}

std::string
TelemetryEvent::strField(const std::string &key) const
{
    for (const auto &kv : str)
        if (kv.first == key)
            return kv.second;
    return "";
}

TelemetryContext::TelemetryContext(TelemetryConfig config,
                                   std::shared_ptr<TelemetrySink> sink)
    : config_(std::move(config)), sink_(std::move(sink))
{
}

std::shared_ptr<TelemetryContext>
TelemetryContext::forNode(int node) const
{
    auto child = std::make_shared<TelemetryContext>(config_, sink_);
    child->node_ = node;
    return child;
}

bool
TelemetryContext::wants(TelemetryEventType type,
                        std::uint64_t interval) const
{
    const auto bit = 1u << static_cast<unsigned>(type);
    if ((config_.typeMask & bit) == 0)
        return false;
    // Headers and run-level profiles always pass the sampling
    // stride; only interval-scoped events are decimated.
    if (type == TelemetryEventType::Header ||
        type == TelemetryEventType::PhaseProfile)
        return true;
    return config_.sample <= 1 || interval % config_.sample == 0;
}

void
TelemetryContext::emit(TelemetryEvent event)
{
    if (event.node < 0 && node_ >= 0)
        event.node = node_;
    sink_->write(event);
    ++emitted_;
}

void
emitTelemetryHeader(
    TelemetryContext &telemetry,
    const std::vector<std::pair<std::string, std::string>> &axes,
    const std::vector<std::pair<std::string, double>> &numbers)
{
    if (!telemetry.wants(TelemetryEventType::Header, 0))
        return;
    TelemetryEvent event(TelemetryEventType::Header, 0, 0.0);
    event.add("schema", static_cast<double>(kTelemetryTraceSchema));
    event.add("git_sha", std::string(buildGitSha()));
    event.add("compiler", std::string(buildCompilerId()));
    event.add("compiler_flags", std::string(buildCompilerFlags()));
    event.add("build_type", std::string(buildTypeName()));
    for (const auto &axis : axes)
        event.add(axis.first, axis.second);
    for (const auto &field : numbers)
        event.add(field.first, field.second);
    telemetry.emit(std::move(event));
}

} // namespace hipster
