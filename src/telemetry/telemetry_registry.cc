#include "telemetry/telemetry_registry.hh"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/logging.hh"
#include "common/spec_grammar.hh"
#include "telemetry/sinks.hh"

namespace hipster
{

namespace
{

constexpr const char *kPrefix = "telemetry:";

/** The spec with any `telemetry:` prefix removed. */
std::string
stripPrefix(const std::string &spec)
{
    const std::string prefix(kPrefix);
    if (spec.rfind(prefix, 0) == 0)
        return spec.substr(prefix.size());
    return spec;
}

/** The schema summary used by every bad-parameter error. */
std::string
keySchemaText(const TelemetrySinkInfo &entry)
{
    if (entry.params.empty())
        return "'" + entry.name + "' takes no parameters";
    std::string out = "'" + entry.name + "' parameters:";
    for (const TelemetryParamInfo &p : entry.params)
        out += "\n  " + p.key + "=" + p.example + " — " + p.doc;
    return out;
}

const TelemetrySinkInfo *
findEntry(const std::string &head)
{
    for (const TelemetrySinkInfo &e :
         TelemetryRegistry::instance().entries()) {
        if (e.name == head ||
            std::find(e.aliases.begin(), e.aliases.end(), head) !=
                e.aliases.end())
            return &e;
    }
    return nullptr;
}

bool
entryHasKey(const TelemetrySinkInfo &entry, const std::string &key)
{
    return std::any_of(entry.params.begin(), entry.params.end(),
                       [&](const TelemetryParamInfo &p) {
                           return p.key == key;
                       });
}

std::uint64_t
parseCount(const std::string &spec, const TelemetrySinkInfo &entry,
           const std::string &key, const std::string &value,
           std::uint64_t min)
{
    std::uint64_t out = 0;
    bool ok = !value.empty();
    for (char c : value) {
        if (c < '0' || c > '9') {
            ok = false;
            break;
        }
        out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!ok || out < min)
        fatal("telemetry spec '", spec, "': '", key, "=", value,
              "' must be an integer >= ", min, "; ",
              keySchemaText(entry));
    return out;
}

std::uint32_t
parseTypeMask(const std::string &spec, const TelemetrySinkInfo &entry,
              const std::string &value)
{
    std::uint32_t mask = 0;
    std::size_t start = 0;
    while (start <= value.size()) {
        const std::size_t plus = value.find('+', start);
        const std::string name =
            value.substr(start, plus == std::string::npos
                                    ? std::string::npos
                                    : plus - start);
        TelemetryEventType type;
        if (!parseTelemetryEventType(name, type)) {
            std::string known;
            for (std::size_t i = 0; i < kTelemetryEventTypes; ++i) {
                if (i > 0)
                    known += ", ";
                known += telemetryEventTypeName(
                    static_cast<TelemetryEventType>(i));
            }
            fatal("telemetry spec '", spec, "': unknown event type '",
                  name, "' in only=; event types: ", known, "; ",
                  keySchemaText(entry));
        }
        mask |= 1u << static_cast<unsigned>(type);
        if (plus == std::string::npos)
            break;
        start = plus + 1;
    }
    // Headers and phase profiles always ride along: a filtered trace
    // still names its build and closes with its profile.
    mask |= 1u << static_cast<unsigned>(TelemetryEventType::Header);
    mask |=
        1u << static_cast<unsigned>(TelemetryEventType::PhaseProfile);
    return mask;
}

} // namespace

TelemetryRegistry &
TelemetryRegistry::instance()
{
    static TelemetryRegistry registry = [] {
        TelemetryRegistry r;
        r.registerBuiltins();
        return r;
    }();
    return registry;
}

void
TelemetryRegistry::add(TelemetrySinkInfo info)
{
    if (has(info.name))
        fatal("TelemetryRegistry: duplicate sink '", info.name, "'");
    for (const std::string &alias : info.aliases) {
        if (has(alias))
            fatal("TelemetryRegistry: duplicate sink alias '", alias,
                  "'");
    }
    entries_.push_back(std::move(info));
}

bool
TelemetryRegistry::has(const std::string &name) const
{
    return std::any_of(
        entries_.begin(), entries_.end(),
        [&](const TelemetrySinkInfo &e) {
            return e.name == name ||
                   std::find(e.aliases.begin(), e.aliases.end(),
                             name) != e.aliases.end();
        });
}

std::string
TelemetryRegistry::catalogText() const
{
    std::string out =
        "Telemetry sinks (spec grammar: telemetry:sink[:key=value,"
        "...], or none):\n";
    out += "  none — tracing off (the default; bitwise-identical to "
           "a build without the axis)\n";
    for (const TelemetrySinkInfo &e : entries_) {
        out += "  " + std::string(kPrefix) + e.name;
        for (const std::string &alias : e.aliases)
            out += " (alias: " + alias + ")";
        out += " — " + e.summary + "\n";
        for (const TelemetryParamInfo &p : e.params)
            out += "      " + p.key + "=" + p.example + " — " + p.doc +
                   "\n";
    }
    return out;
}

void
TelemetryRegistry::registerBuiltins()
{
    const TelemetryParamInfo kSample = {
        "sample", "keep interval-scoped events every Nth interval",
        "10"};
    const TelemetryParamInfo kOnly = {
        "only",
        "'+'-joined event types to keep (headers and phase profiles "
        "always ride along)",
        "decision+hazard"};
    const TelemetryParamInfo kPerf = {
        "perf",
        "arm the perf_event_open cycles/instructions backend "
        "(degrades to 'unavailable' off-Linux/unprivileged)",
        "1"};

    add({"jsonl",
         {"json"},
         "one JSON object per event, one per line (jq-friendly; "
         "numbers round-trip bitwise)",
         {{"path", "output file (mandatory)", "trace.jsonl"}, kSample,
          kOnly, kPerf},
         true});
    add({"csv",
         {},
         "type,interval,time_s,node,data rows; the data column packs "
         "k=v pairs at full precision",
         {{"path", "output file (mandatory)", "trace.csv"}, kSample,
          kOnly, kPerf},
         true});
    add({"ring",
         {"memory"},
         "bounded in-memory buffer keeping the newest events; "
         "overflow drops oldest-first with a counted drop stat",
         {{"cap", "buffer capacity in events", "65536"}, kSample,
          kOnly, kPerf},
         false});
    add({"counters",
         {"count"},
         "per-type event tallies only (cheapest; shareable across a "
         "whole sweep)",
         {kSample, kOnly, kPerf},
         false});
}

TelemetryConfig
parseTelemetryConfig(const std::string &spec)
{
    TelemetryConfig config;
    if (isNoneTelemetry(spec))
        return config;

    const std::string body = stripPrefix(spec);
    const std::string head = specHead(body);
    const TelemetrySinkInfo *entry = findEntry(head);
    if (!entry) {
        std::string known = "none";
        for (const TelemetrySinkInfo &e :
             TelemetryRegistry::instance().entries())
            known += ", " + e.name;
        fatal("unknown telemetry sink '", head, "' in spec '", spec,
              "'; registered sinks: ", known,
              " (prefix with 'telemetry:', e.g. "
              "telemetry:jsonl:path=trace.jsonl)");
    }

    config.sink = entry->name;
    config.label = canonicalTelemetryLabel(spec);

    const std::size_t colon = body.find(':');
    const std::string tail =
        colon == std::string::npos ? "" : body.substr(colon + 1);
    std::vector<std::string> seen;
    std::size_t start = 0;
    while (start < tail.size()) {
        std::size_t comma = tail.find(',', start);
        if (comma == std::string::npos)
            comma = tail.size();
        const std::string pair = tail.substr(start, comma - start);
        start = comma + 1;
        if (pair.empty())
            continue;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0)
            fatal("telemetry spec '", spec, "': malformed parameter '",
                  pair, "' (expected key=value); ",
                  keySchemaText(*entry));
        const std::string key = pair.substr(0, eq);
        const std::string value = pair.substr(eq + 1);
        if (!entryHasKey(*entry, key))
            fatal("telemetry spec '", spec, "': unknown parameter '",
                  key, "'; ", keySchemaText(*entry));
        if (std::find(seen.begin(), seen.end(), key) != seen.end())
            fatal("telemetry spec '", spec, "': duplicate parameter '",
                  key, "'; ", keySchemaText(*entry));
        seen.push_back(key);

        if (key == "path") {
            if (value.empty())
                fatal("telemetry spec '", spec,
                      "': path= must not be empty; ",
                      keySchemaText(*entry));
            config.path = value;
        } else if (key == "sample") {
            config.sample =
                parseCount(spec, *entry, key, value, 1);
        } else if (key == "cap") {
            config.cap = static_cast<std::size_t>(
                parseCount(spec, *entry, key, value, 1));
        } else if (key == "only") {
            config.typeMask = parseTypeMask(spec, *entry, value);
        } else if (key == "perf") {
            config.perfCounters =
                parseCount(spec, *entry, key, value, 0) != 0;
        }
    }

    if (entry->needsPath && config.path.empty())
        fatal("telemetry spec '", spec, "': sink '", entry->name,
              "' requires path=; ", keySchemaText(*entry));
    return config;
}

std::shared_ptr<TelemetrySink>
makeTelemetrySink(const TelemetryConfig &config)
{
    if (config.isNone())
        return nullptr;
    if (config.sink == "jsonl")
        return std::make_shared<JsonlSink>(config.path);
    if (config.sink == "csv")
        return std::make_shared<CsvSink>(config.path);
    if (config.sink == "ring")
        return std::make_shared<RingBufferSink>(config.cap);
    if (config.sink == "counters")
        return std::make_shared<CountersSink>();
    fatal("telemetry: no sink factory for '", config.sink, "'");
}

std::shared_ptr<TelemetryContext>
makeTelemetryContext(const std::string &spec)
{
    const TelemetryConfig config = parseTelemetryConfig(spec);
    if (config.isNone())
        return nullptr;
    return std::make_shared<TelemetryContext>(
        config, makeTelemetrySink(config));
}

bool
isNoneTelemetry(const std::string &spec)
{
    const std::string body = stripPrefix(spec);
    return body.empty() || body == "none";
}

void
validateTelemetrySpec(const std::string &spec)
{
    parseTelemetryConfig(spec);
}

std::string
canonicalTelemetryLabel(const std::string &spec)
{
    if (isNoneTelemetry(spec))
        return "none";
    return std::string(kPrefix) + stripPrefix(spec);
}

TelemetryConfig
telemetryConfigForRun(const TelemetryConfig &base, std::size_t runIndex)
{
    TelemetryConfig config = base;
    if (config.path.empty())
        return config;
    char tag[16];
    std::snprintf(tag, sizeof(tag), ".run%04zu", runIndex);
    const std::size_t dot = config.path.rfind('.');
    const std::size_t slash = config.path.find_last_of("/\\");
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash))
        config.path.insert(dot, tag);
    else
        config.path += tag;
    return config;
}

std::shared_ptr<TelemetryContext>
makeRunTelemetryContext(const TelemetryConfig &config,
                        const std::shared_ptr<TelemetrySink> &sharedSink,
                        std::size_t runIndex)
{
    if (config.isNone())
        return nullptr;
    if (sharedSink)
        return std::make_shared<TelemetryContext>(config, sharedSink);
    const TelemetryConfig run = telemetryConfigForRun(config, runIndex);
    return std::make_shared<TelemetryContext>(run,
                                              makeTelemetrySink(run));
}

std::vector<std::string>
splitTelemetryList(const std::string &list)
{
    return splitSpecList(list, [](const std::string &head) {
        return head == "telemetry" || head == "none" ||
               TelemetryRegistry::instance().has(head);
    });
}

} // namespace hipster
