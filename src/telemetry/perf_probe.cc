#include "telemetry/perf_probe.hh"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define HIPSTER_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace hipster
{

#if defined(HIPSTER_HAVE_PERF_EVENT)

namespace
{

int
openCounter(std::uint64_t hwConfig, std::string &reason)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = hwConfig;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;

    const long fd = syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0);
    if (fd >= 0)
        return static_cast<int>(fd);

    switch (errno) {
    case EACCES:
    case EPERM:
        reason = "permission denied (perf_event_paranoid)";
        break;
    case ENOSYS:
        reason = "perf_event_open syscall unavailable";
        break;
    case ENOENT:
    case ENODEV:
    case EOPNOTSUPP:
        reason = "hardware counters unsupported";
        break;
    default:
        reason = std::strerror(errno);
    }
    return -1;
}

} // namespace

const PerfProbe &
probePerfCounters()
{
    static const PerfProbe probe = [] {
        PerfProbe p;
        std::string reason;
        const int fd =
            openCounter(PERF_COUNT_HW_CPU_CYCLES, reason);
        if (fd >= 0) {
            close(fd);
            p.available = true;
            p.reason = "ok";
        } else {
            p.reason = reason;
        }
        return p;
    }();
    return probe;
}

PerfCounterSession::PerfCounterSession()
{
    const PerfProbe &probe = probePerfCounters();
    if (!probe.available) {
        reason_ = probe.reason;
        return;
    }
    std::string reason;
    cyclesFd_ = openCounter(PERF_COUNT_HW_CPU_CYCLES, reason);
    if (cyclesFd_ < 0) {
        reason_ = reason;
        return;
    }
    instructionsFd_ =
        openCounter(PERF_COUNT_HW_INSTRUCTIONS, reason);
    if (instructionsFd_ < 0) {
        close(cyclesFd_);
        cyclesFd_ = -1;
        reason_ = reason;
        return;
    }
    ioctl(cyclesFd_, PERF_EVENT_IOC_RESET, 0);
    ioctl(instructionsFd_, PERF_EVENT_IOC_RESET, 0);
    ioctl(cyclesFd_, PERF_EVENT_IOC_ENABLE, 0);
    ioctl(instructionsFd_, PERF_EVENT_IOC_ENABLE, 0);
    ok_ = true;
}

PerfCounterSession::~PerfCounterSession()
{
    if (cyclesFd_ >= 0)
        close(cyclesFd_);
    if (instructionsFd_ >= 0)
        close(instructionsFd_);
}

void
PerfCounterSession::stop(std::uint64_t &cycles,
                         std::uint64_t &instructions)
{
    cycles = 0;
    instructions = 0;
    if (!ok_)
        return;
    ioctl(cyclesFd_, PERF_EVENT_IOC_DISABLE, 0);
    ioctl(instructionsFd_, PERF_EVENT_IOC_DISABLE, 0);
    std::uint64_t value = 0;
    if (read(cyclesFd_, &value, sizeof(value)) == sizeof(value))
        cycles = value;
    if (read(instructionsFd_, &value, sizeof(value)) == sizeof(value))
        instructions = value;
    close(cyclesFd_);
    close(instructionsFd_);
    cyclesFd_ = -1;
    instructionsFd_ = -1;
    ok_ = false;
}

#else // !HIPSTER_HAVE_PERF_EVENT

const PerfProbe &
probePerfCounters()
{
    static const PerfProbe probe = [] {
        PerfProbe p;
        p.available = false;
        p.reason = "unsupported platform";
        return p;
    }();
    return probe;
}

PerfCounterSession::PerfCounterSession()
    : reason_(probePerfCounters().reason)
{
}

PerfCounterSession::~PerfCounterSession() = default;

void
PerfCounterSession::stop(std::uint64_t &cycles,
                         std::uint64_t &instructions)
{
    cycles = 0;
    instructions = 0;
}

#endif // HIPSTER_HAVE_PERF_EVENT

} // namespace hipster
