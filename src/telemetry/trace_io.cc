#include "telemetry/trace_io.hh"

#include <fstream>
#include <istream>

#include "common/logging.hh"
#include "telemetry/sinks.hh"

namespace hipster
{

std::vector<TelemetryEvent>
readTrace(std::istream &in, const std::string &name)
{
    std::vector<TelemetryEvent> events;
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            continue;
        TelemetryEvent event;
        if (!parseTelemetryEventJson(line, event))
            fatal("telemetry trace '", name, "' line ", lineNo,
                  ": malformed event: ", line);
        events.push_back(std::move(event));
    }
    return events;
}

std::vector<TelemetryEvent>
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("telemetry trace '", path, "': cannot open for reading");
    return readTrace(in, path);
}

} // namespace hipster
