/**
 * @file
 * Reading JSONL telemetry traces back in: the inverse of JsonlSink,
 * shared by the hipster_trace CLI and the test suite so analysis
 * never reimplements the wire format.
 */

#ifndef HIPSTER_TELEMETRY_TRACE_IO_HH
#define HIPSTER_TELEMETRY_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/telemetry.hh"

namespace hipster
{

/**
 * Parse a whole JSONL trace stream; `name` labels error messages.
 * Blank lines are skipped; malformed lines fail fast with their
 * line number.
 */
std::vector<TelemetryEvent>
readTrace(std::istream &in, const std::string &name = "<stream>");

/** Read and parse a trace file; FatalError when unopenable. */
std::vector<TelemetryEvent> readTraceFile(const std::string &path);

} // namespace hipster

#endif // HIPSTER_TELEMETRY_TRACE_IO_HH
