/**
 * @file
 * Self-instrumentation: where does a simulated run's wall-clock go?
 * The runner splits each interval into arrival generation, the
 * discrete event loop, policy decisions and metrics assembly, and
 * accumulates the split here together with an events-per-second
 * rate — answering ROADMAP item 2's "does per-run simulation
 * dominate?" without external profilers. Optionally backed by
 * perf_event_open hardware counters (telemetry/perf_probe.hh).
 *
 * Wall-clock values never feed back into simulated behavior or any
 * pinned output: they live only in ExperimentResult::profile and in
 * phase_profile trace events.
 */

#ifndef HIPSTER_TELEMETRY_PHASE_PROFILER_HH
#define HIPSTER_TELEMETRY_PHASE_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <string>

namespace hipster
{

/** Per-run phase-time breakdown and self-instrumentation counters. */
struct PhaseProfile
{
    /** Open-loop arrival generation inside the workload model. */
    double arrivalGenSeconds = 0.0;

    /** Discrete event loop (service simulation) minus arrival gen. */
    double eventLoopSeconds = 0.0;

    /** Policy initialDecision()/decide() calls. */
    double policySeconds = 0.0;

    /** Interval bookkeeping: actuation, power/metrics assembly. */
    double metricsSeconds = 0.0;

    /** Intervals stepped. */
    std::uint64_t intervals = 0;

    /** Simulator events processed (workload eventsProcessed delta). */
    std::uint64_t simEvents = 0;

    /** Hardware counters (perf=1 and the probe succeeded). */
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    bool perfAvailable = false;

    /** "ok", or why hardware counters are off ("disabled",
     * "unsupported platform", "permission denied", ...). */
    std::string perfStatus = "disabled";

    double
    totalSeconds() const
    {
        return arrivalGenSeconds + eventLoopSeconds + policySeconds +
               metricsSeconds;
    }

    /** Simulator events per wall-clock second (0 when unmeasured). */
    double
    eventsPerSecond() const
    {
        const double total = totalSeconds();
        return total > 0.0
                   ? static_cast<double>(simEvents) / total
                   : 0.0;
    }
};

/** Monotonic stopwatch for one phase bucket. */
class PhaseTimer
{
  public:
    using Clock = std::chrono::steady_clock;

    void
    start()
    {
        begin_ = Clock::now();
    }

    /** Seconds since start(). */
    double
    lap() const
    {
        return std::chrono::duration<double>(Clock::now() - begin_)
            .count();
    }

  private:
    Clock::time_point begin_{};
};

} // namespace hipster

#endif // HIPSTER_TELEMETRY_PHASE_PROFILER_HH
