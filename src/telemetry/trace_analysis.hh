/**
 * @file
 * Offline analysis over telemetry traces: the summarize / filter /
 * diff primitives behind the hipster_trace CLI. All rendering is
 * deterministic for a given trace, so tests pin the summary text of
 * a committed fixture byte-for-byte.
 */

#ifndef HIPSTER_TELEMETRY_TRACE_ANALYSIS_HH
#define HIPSTER_TELEMETRY_TRACE_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hh"

namespace hipster
{

/** A contiguous run of intervals with active hazard effects. */
struct HazardWindow
{
    std::uint64_t first = 0;
    std::uint64_t last = 0;
};

/** Per-node tallies extracted from one trace. */
struct TraceNodeStats
{
    std::uint64_t decisions = 0;
    std::uint64_t initialDecisions = 0;
    std::uint64_t dvfsTransitions = 0;
    std::uint64_t dvfsDenied = 0;
    std::uint64_t hazardIntervals = 0;
    std::uint64_t downIntervals = 0;
    std::uint64_t pressuredIntervals = 0;
    std::uint64_t oppCappedIntervals = 0;
    std::uint64_t reboots = 0;
    std::uint64_t migrationMoves = 0;
    std::uint64_t dispatchSamples = 0;
    double shareSum = 0.0;

    /** Chosen-config histogram, insertion-ordered by first use. */
    std::vector<std::pair<std::string, std::uint64_t>> configs;

    /** Contiguous hazard-effect windows, in interval order. */
    std::vector<HazardWindow> hazardWindows;
};

/** Everything summarize reports about one trace. */
struct TraceSummary
{
    std::uint64_t totalEvents = 0;
    std::array<std::uint64_t, kTelemetryEventTypes> typeCounts{};

    bool hasHeader = false;
    std::vector<std::pair<std::string, std::string>> headerStr;
    std::vector<std::pair<std::string, double>> headerNum;

    /** Keyed by node (-1 = untagged/fleet-level events). */
    std::map<int, TraceNodeStats> nodes;

    /** Phase-time totals summed over all phase_profile events. */
    double arrivalGenSeconds = 0.0;
    double eventLoopSeconds = 0.0;
    double policySeconds = 0.0;
    double metricsSeconds = 0.0;
    std::uint64_t simEvents = 0;
    std::uint64_t profiledRuns = 0;
    bool perfAvailable = false;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::string perfStatus;
};

/** Tally a trace into its summary. */
TraceSummary summarizeTrace(const std::vector<TelemetryEvent> &events);

/** Render a summary as deterministic human-readable text. */
std::string renderTraceSummary(const TraceSummary &summary);

/** Predicate set for `hipster_trace filter`. */
struct TraceFilter
{
    std::uint32_t typeMask = 0xffffffffu;
    int node = -2; ///< -2 = any node; -1 = untagged only
    std::uint64_t minInterval = 0;
    std::uint64_t maxInterval = UINT64_MAX;

    bool matches(const TelemetryEvent &event) const;
};

/** Events passing the filter, order preserved. */
std::vector<TelemetryEvent>
filterTrace(const std::vector<TelemetryEvent> &events,
            const TraceFilter &filter);

/**
 * Render the differences between two traces: per-type count deltas
 * plus the first `maxDetails` event-level mismatches (wall-clock
 * phase profiles and headers are skipped — they differ between any
 * two runs by construction). Returns "" when equivalent.
 */
std::string diffTraces(const std::vector<TelemetryEvent> &a,
                       const std::vector<TelemetryEvent> &b,
                       std::size_t maxDetails = 10);

} // namespace hipster

#endif // HIPSTER_TELEMETRY_TRACE_ANALYSIS_HH
