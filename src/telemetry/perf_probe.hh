/**
 * @file
 * Optional perf_event_open backend for the phase profiler: hardware
 * cycles/instructions per run, behind a runtime probe. The probe
 * degrades gracefully — off-Linux, in sandboxes without the syscall,
 * or unprivileged (perf_event_paranoid) it reports a clean
 * "unavailable" status with the reason; it never throws and never
 * fails a run.
 */

#ifndef HIPSTER_TELEMETRY_PERF_PROBE_HH
#define HIPSTER_TELEMETRY_PERF_PROBE_HH

#include <cstdint>
#include <string>

namespace hipster
{

/** Result of probing for perf_event_open support. */
struct PerfProbe
{
    bool available = false;

    /** "ok" when available, else why not ("unsupported platform",
     * "permission denied", ...). */
    std::string reason;
};

/** Probe once per process (cached) for usable hardware counters. */
const PerfProbe &probePerfCounters();

/**
 * One measurement session over hardware cycles + instructions.
 * Construction arms the counters when the probe succeeded;
 * otherwise every call is a no-op and ok() stays false.
 */
class PerfCounterSession
{
  public:
    PerfCounterSession();
    ~PerfCounterSession();

    PerfCounterSession(const PerfCounterSession &) = delete;
    PerfCounterSession &operator=(const PerfCounterSession &) = delete;

    /** Whether counters are live for this session. */
    bool ok() const { return ok_; }

    /** Why the session is not live ("" when ok). */
    const std::string &reason() const { return reason_; }

    /** Stop counting and read the totals (0 when not ok). */
    void stop(std::uint64_t &cycles, std::uint64_t &instructions);

  private:
    bool ok_ = false;
    std::string reason_;
    int cyclesFd_ = -1;
    int instructionsFd_ = -1;
};

} // namespace hipster

#endif // HIPSTER_TELEMETRY_PERF_PROBE_HH
