/**
 * @file
 * Telemetry & introspection: the structured decision-trace event
 * model and the context every instrumented layer emits through.
 *
 * The simulator's aggregate outputs (series, summaries, sweep CSVs)
 * say *what* happened; the telemetry stream records *why*: one typed
 * event per policy decision (observed state + chosen config), DVFS
 * transition (including hazard-denied ones), hazard effect
 * application, migration move and dispatcher routing share, plus one
 * run-level phase-time profile. Emission is observation-only by
 * construction — no RNG is drawn, no event order is perturbed — so
 * a traced run is bitwise-identical to an untraced one, and
 * `telemetry:none` (a null context) is the no-op every golden pin
 * already exercises.
 */

#ifndef HIPSTER_TELEMETRY_TELEMETRY_HH
#define HIPSTER_TELEMETRY_TELEMETRY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hipster
{

/** Every event kind a trace can carry. */
enum class TelemetryEventType
{
    Header,       ///< run metadata + build provenance (first line)
    Decision,     ///< one policy decision with its observed state
    Dvfs,         ///< a DVFS actuation (incl. hazard-denied ones)
    Hazard,       ///< hazard effects applied to one interval
    Migration,    ///< per-interval work-migration activity
    Dispatch,     ///< one node's routed share of the fleet load
    PhaseProfile, ///< run-level phase-time/self-instrumentation
};

/** Number of event types (array sizing). */
constexpr std::size_t kTelemetryEventTypes = 7;

/** Canonical lower-case name ("decision", "phase_profile", ...). */
const char *telemetryEventTypeName(TelemetryEventType type);

/** Parse a canonical name back; false when unknown. */
bool parseTelemetryEventType(const std::string &name,
                             TelemetryEventType &out);

/**
 * One trace event: a type, the interval/time it belongs to, the node
 * it came from (-1 = single-node or fleet-level), and ordered
 * key=value payloads — numeric fields serialize through
 * common/json_number so every double round-trips bitwise.
 */
struct TelemetryEvent
{
    TelemetryEventType type = TelemetryEventType::Header;
    std::uint64_t interval = 0;
    double time = 0.0;
    int node = -1;

    std::vector<std::pair<std::string, double>> num;
    std::vector<std::pair<std::string, std::string>> str;

    TelemetryEvent() = default;
    TelemetryEvent(TelemetryEventType t, std::uint64_t k, double at)
        : type(t), interval(k), time(at)
    {
    }

    TelemetryEvent &
    add(std::string key, double value)
    {
        num.emplace_back(std::move(key), value);
        return *this;
    }

    TelemetryEvent &
    add(std::string key, std::string value)
    {
        str.emplace_back(std::move(key), std::move(value));
        return *this;
    }

    /** The numeric field `key`, or `fallback` when absent. */
    double numField(const std::string &key, double fallback = 0.0) const;

    /** The string field `key`, or "" when absent. */
    std::string strField(const std::string &key) const;
};

/**
 * Where events go. Implementations (telemetry/sinks.hh) are JSONL /
 * CSV files, a bounded in-memory ring buffer, and per-type counters.
 * Sinks shared across sweep jobs must be thread-safe; file sinks are
 * created one-per-run (suffixed paths) and never shared.
 */
class TelemetrySink
{
  public:
    virtual ~TelemetrySink() = default;

    virtual void write(const TelemetryEvent &event) = 0;

    virtual void flush() {}

    /** Human-readable post-run summary ("" = nothing to report). */
    virtual std::string summaryText() const { return ""; }
};

/** Parsed configuration of one telemetry spec (see the registry). */
struct TelemetryConfig
{
    /** Sink family: "none", "jsonl", "csv", "ring", "counters". */
    std::string sink = "none";

    /** Output path (jsonl/csv sinks). */
    std::string path;

    /** Emit interval-scoped events only every Nth interval. */
    std::uint64_t sample = 1;

    /** Bitmask over TelemetryEventType: which kinds to keep. */
    std::uint32_t typeMask = 0xffffffffu;

    /** Ring-buffer capacity (ring sink). */
    std::size_t cap = 65536;

    /** Arm the perf_event_open cycles/instructions backend. */
    bool perfCounters = false;

    /** Canonical spec label ("telemetry:jsonl:path=..."). */
    std::string label = "none";

    bool isNone() const { return sink == "none"; }
};

/**
 * The handle instrumented code emits through: a shared sink plus the
 * run's sampling/filter config and a node tag. Contexts are cheap to
 * copy per node (fleet runs share one sink across nodes); a null
 * context pointer is the `telemetry:none` fast path.
 */
class TelemetryContext
{
  public:
    TelemetryContext(TelemetryConfig config,
                     std::shared_ptr<TelemetrySink> sink);

    const TelemetryConfig &config() const { return config_; }
    TelemetrySink &sink() { return *sink_; }
    const std::shared_ptr<TelemetrySink> &sinkPtr() const
    {
        return sink_;
    }

    /** The node index events are stamped with (-1 = untagged). */
    int node() const { return node_; }

    /** A context sharing this sink/config, tagged with `node`. */
    std::shared_ptr<TelemetryContext> forNode(int node) const;

    /**
     * Whether an event of `type` at `interval` passes the filter and
     * the sampling stride. Callers guard event construction with
     * this so the no-emission path stays allocation-free.
     */
    bool wants(TelemetryEventType type, std::uint64_t interval) const;

    /** Stamp the node tag (when unset) and forward to the sink.
     * Callers are expected to have checked wants() first. */
    void emit(TelemetryEvent event);

    /** Events emitted through this context. */
    std::uint64_t emitted() const { return emitted_; }

  private:
    TelemetryConfig config_;
    std::shared_ptr<TelemetrySink> sink_;
    int node_ = -1;
    std::uint64_t emitted_ = 0;
};

/**
 * Emit the run-header event: the given run axes plus the build
 * provenance (git SHA, compiler + flags, build type) stamped into
 * every trace file, mirroring the perf-harness JSON schema.
 */
void emitTelemetryHeader(
    TelemetryContext &telemetry,
    const std::vector<std::pair<std::string, std::string>> &axes,
    const std::vector<std::pair<std::string, double>> &numbers);

/** Telemetry trace-format version (header `schema` field). */
constexpr std::uint64_t kTelemetryTraceSchema = 1;

} // namespace hipster

#endif // HIPSTER_TELEMETRY_TELEMETRY_HH
