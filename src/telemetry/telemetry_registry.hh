/**
 * @file
 * Registry for the telemetry axis — the eighth registry-backed spec
 * grammar. Telemetry specs carry a canonical `telemetry:` prefix,
 * name one sink family, and take a key=value tail; unlike the other
 * axes two keys (`path`, `only`) are strings, so the tail parser
 * here extends the numeric common/spec_grammar with string-typed
 * parameters while keeping catalog-enumerating fail-fast errors:
 *
 *   spec := 'none'
 *         | ['telemetry:'] sink [':' key '=' value (',' ...)]
 *
 *   none
 *   telemetry:jsonl:path=trace.jsonl,sample=10
 *   telemetry:csv:path=trace.csv,only=decision+hazard
 *   telemetry:ring:cap=4096
 *   telemetry:counters:perf=1
 *
 * `none` is the default and the bitwise no-op: a null context, no
 * allocation, no emission, byte-identical output to a build without
 * the axis.
 */

#ifndef HIPSTER_TELEMETRY_TELEMETRY_REGISTRY_HH
#define HIPSTER_TELEMETRY_TELEMETRY_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "telemetry/telemetry.hh"

namespace hipster
{

/** Schema entry for one telemetry spec key. */
struct TelemetryParamInfo
{
    std::string key;     ///< e.g. "path"
    std::string doc;     ///< one-line description
    std::string example; ///< catalog example value
};

/** Catalog entry describing one registered sink family. */
struct TelemetrySinkInfo
{
    std::string name;                 ///< grammar head, e.g. "jsonl"
    std::vector<std::string> aliases; ///< alternate heads
    std::string summary;              ///< one line for --list-telemetry
    std::vector<TelemetryParamInfo> params;
    bool needsPath = false; ///< `path=` is mandatory
};

/**
 * Name-keyed sink catalog. A singleton holds the built-ins (jsonl,
 * csv, ring, counters); the catalog drives --list-telemetry and the
 * fail-fast unknown-sink errors.
 */
class TelemetryRegistry
{
  public:
    static TelemetryRegistry &instance();

    /** Register a sink family; FatalError on duplicates. */
    void add(TelemetrySinkInfo info);

    /** Whether `name` is a registered family name or alias. */
    bool has(const std::string &name) const;

    /** All registered sinks, in registration order. */
    const std::vector<TelemetrySinkInfo> &entries() const
    {
        return entries_;
    }

    /** Human-readable catalog (--list-telemetry). */
    std::string catalogText() const;

  private:
    TelemetryRegistry() = default;
    void registerBuiltins();

    std::vector<TelemetrySinkInfo> entries_;
};

/**
 * Parse and validate a telemetry spec into its configuration.
 * Throws FatalError enumerating the catalog on unknown sinks and
 * the key schema on bad parameters. "none"/"" parses to the no-op
 * config.
 */
TelemetryConfig parseTelemetryConfig(const std::string &spec);

/** Build the sink of a parsed config (nullptr for none). File sinks
 * fail fast on unwritable paths, naming the telemetry stage. */
std::shared_ptr<TelemetrySink>
makeTelemetrySink(const TelemetryConfig &config);

/** Parse + build in one step: the context a run emits through, or
 * nullptr for "none"/empty — the bitwise no-op. */
std::shared_ptr<TelemetryContext>
makeTelemetryContext(const std::string &spec);

/** Whether the spec is the no-op ("", "none", "telemetry:none"). */
bool isNoneTelemetry(const std::string &spec);

/** Fail-fast validation of a telemetry spec (parses and discards —
 * does NOT open the sink, so sweep validation never touches disk). */
void validateTelemetrySpec(const std::string &spec);

/** The spec with its `telemetry:` prefix enforced ("none" bare). */
std::string canonicalTelemetryLabel(const std::string &spec);

/**
 * The per-run variant of a config for sweep job `runIndex`: file
 * paths gain a ".runNNNN" tag before the extension ("trace.jsonl"
 * -> "trace.run0003.jsonl") so parallel jobs never share a file;
 * pathless configs come back unchanged (their sinks are shared).
 */
TelemetryConfig telemetryConfigForRun(const TelemetryConfig &base,
                                      std::size_t runIndex);

/**
 * The context one sweep job emits through: nullptr for none, a
 * context over `sharedSink` when set (counters/ring sinks shared by
 * the whole campaign — must be thread-safe), else a fresh file sink
 * on the run-suffixed path. Thread-safe; called from worker threads.
 */
std::shared_ptr<TelemetryContext>
makeRunTelemetryContext(const TelemetryConfig &config,
                        const std::shared_ptr<TelemetrySink> &sharedSink,
                        std::size_t runIndex);

/** Splits a CLI telemetry list (`;` separated; a `,` separates only
 * before a registered head, the `telemetry:` prefix, or `none`). */
std::vector<std::string> splitTelemetryList(const std::string &list);

} // namespace hipster

#endif // HIPSTER_TELEMETRY_TELEMETRY_REGISTRY_HH
