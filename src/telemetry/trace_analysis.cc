#include "telemetry/trace_analysis.hh"

#include <algorithm>
#include <cstdio>

#include "common/json_number.hh"

namespace hipster
{

namespace
{

std::string
fmt(const char *format, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), format, value);
    return buf;
}

/** "4B@1.80+4S@1.20[+batch]" from a decision event's fields. */
std::string
configLabel(const TelemetryEvent &event)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%dB@%.2f+%dS@%.2f",
                  static_cast<int>(event.numField("n_big")),
                  event.numField("big_ghz"),
                  static_cast<int>(event.numField("n_small")),
                  event.numField("small_ghz"));
    std::string label = buf;
    if (event.numField("run_batch") != 0.0)
        label += "+batch";
    return label;
}

void
bumpConfig(TraceNodeStats &stats, const std::string &label)
{
    for (auto &entry : stats.configs) {
        if (entry.first == label) {
            ++entry.second;
            return;
        }
    }
    stats.configs.emplace_back(label, 1);
}

void
extendWindows(std::vector<HazardWindow> &windows,
              std::uint64_t interval)
{
    // Traces arrive in interval order per node; sampling may stride
    // intervals, so anything non-adjacent opens a new window.
    if (!windows.empty() && interval <= windows.back().last + 1) {
        windows.back().last = std::max(windows.back().last, interval);
        return;
    }
    windows.push_back({interval, interval});
}

std::string
nodeName(int node)
{
    if (node < 0)
        return "fleet";
    return "node " + formatJsonNumber(static_cast<std::uint64_t>(
                         static_cast<unsigned>(node)));
}

/** One event's identity for diffing, without wall-clock payloads. */
std::string
eventKey(const TelemetryEvent &event)
{
    std::string key = telemetryEventTypeName(event.type);
    key += '@';
    key += formatJsonNumber(event.interval);
    key += "/node=";
    key += event.node < 0 ? std::string("-")
                          : formatJsonNumber(static_cast<std::uint64_t>(
                                static_cast<unsigned>(event.node)));
    for (const auto &kv : event.num) {
        key += ' ';
        key += kv.first;
        key += '=';
        key += formatJsonNumber(kv.second);
    }
    for (const auto &kv : event.str) {
        key += ' ';
        key += kv.first;
        key += '=';
        key += kv.second;
    }
    return key;
}

bool
skipInDiff(const TelemetryEvent &event)
{
    return event.type == TelemetryEventType::PhaseProfile ||
           event.type == TelemetryEventType::Header;
}

} // namespace

TraceSummary
summarizeTrace(const std::vector<TelemetryEvent> &events)
{
    TraceSummary summary;
    summary.totalEvents = events.size();
    for (const TelemetryEvent &event : events) {
        ++summary.typeCounts[static_cast<std::size_t>(event.type)];
        switch (event.type) {
        case TelemetryEventType::Header:
            if (!summary.hasHeader) {
                summary.hasHeader = true;
                summary.headerStr = event.str;
                summary.headerNum = event.num;
            }
            break;
        case TelemetryEventType::Decision: {
            TraceNodeStats &stats = summary.nodes[event.node];
            ++stats.decisions;
            if (event.numField("initial") != 0.0)
                ++stats.initialDecisions;
            bumpConfig(stats, configLabel(event));
            break;
        }
        case TelemetryEventType::Dvfs: {
            TraceNodeStats &stats = summary.nodes[event.node];
            stats.dvfsTransitions += static_cast<std::uint64_t>(
                event.numField("transitions"));
            if (event.numField("denied") != 0.0)
                ++stats.dvfsDenied;
            break;
        }
        case TelemetryEventType::Hazard: {
            TraceNodeStats &stats = summary.nodes[event.node];
            ++stats.hazardIntervals;
            if (event.numField("down") != 0.0)
                ++stats.downIntervals;
            if (event.numField("pressure") > 0.0)
                ++stats.pressuredIntervals;
            if (event.numField("opp_cap_steps") > 0.0)
                ++stats.oppCappedIntervals;
            if (event.numField("dvfs_denied") != 0.0)
                ++stats.dvfsDenied;
            if (event.numField("reboot") != 0.0)
                ++stats.reboots;
            extendWindows(stats.hazardWindows, event.interval);
            break;
        }
        case TelemetryEventType::Migration: {
            TraceNodeStats &stats = summary.nodes[event.node];
            stats.migrationMoves += static_cast<std::uint64_t>(
                event.numField("moves_started"));
            break;
        }
        case TelemetryEventType::Dispatch: {
            TraceNodeStats &stats = summary.nodes[event.node];
            ++stats.dispatchSamples;
            stats.shareSum += event.numField("share");
            break;
        }
        case TelemetryEventType::PhaseProfile:
            ++summary.profiledRuns;
            summary.arrivalGenSeconds +=
                event.numField("arrival_gen_s");
            summary.eventLoopSeconds += event.numField("event_loop_s");
            summary.policySeconds += event.numField("policy_s");
            summary.metricsSeconds += event.numField("metrics_s");
            summary.simEvents +=
                static_cast<std::uint64_t>(event.numField("sim_events"));
            summary.cycles +=
                static_cast<std::uint64_t>(event.numField("cycles"));
            summary.instructions += static_cast<std::uint64_t>(
                event.numField("instructions"));
            if (event.numField("perf_available") != 0.0)
                summary.perfAvailable = true;
            if (summary.perfStatus.empty())
                summary.perfStatus = event.strField("perf_status");
            break;
        }
    }
    return summary;
}

std::string
renderTraceSummary(const TraceSummary &summary)
{
    std::string out = "trace summary: " +
                      formatJsonNumber(summary.totalEvents) +
                      " events\n";
    if (summary.hasHeader) {
        for (const auto &kv : summary.headerStr) {
            if (kv.first == "git_sha" || kv.first == "compiler" ||
                kv.first == "compiler_flags" ||
                kv.first == "build_type")
                continue;
            out += "  " + kv.first + "=" + kv.second + "\n";
        }
        for (const auto &kv : summary.headerStr) {
            if (kv.first == "git_sha")
                out += "  built from " + kv.second + "\n";
        }
    }
    out += "  by type:";
    for (std::size_t i = 0; i < kTelemetryEventTypes; ++i) {
        if (summary.typeCounts[i] == 0)
            continue;
        out += ' ';
        out += telemetryEventTypeName(
            static_cast<TelemetryEventType>(i));
        out += '=';
        out += formatJsonNumber(summary.typeCounts[i]);
    }
    out += '\n';

    for (const auto &entry : summary.nodes) {
        const TraceNodeStats &stats = entry.second;
        out += '\n';
        out += nodeName(entry.first) + ": " +
               formatJsonNumber(stats.decisions) + " decisions";
        if (stats.initialDecisions > 0)
            out += " (" + formatJsonNumber(stats.initialDecisions) +
                   " initial)";
        out += '\n';
        if (!stats.configs.empty()) {
            std::vector<std::pair<std::string, std::uint64_t>>
                ranked = stats.configs;
            std::stable_sort(ranked.begin(), ranked.end(),
                             [](const auto &a, const auto &b) {
                                 return a.second > b.second;
                             });
            out += "  configs:\n";
            for (const auto &config : ranked) {
                char line[128];
                std::snprintf(line, sizeof(line), "    %-28s %s\n",
                              config.first.c_str(),
                              formatJsonNumber(config.second).c_str());
                out += line;
            }
        }
        if (stats.dvfsTransitions > 0 || stats.dvfsDenied > 0)
            out += "  dvfs: " +
                   formatJsonNumber(stats.dvfsTransitions) +
                   " transitions, " +
                   formatJsonNumber(stats.dvfsDenied) + " denied\n";
        if (stats.hazardIntervals > 0) {
            out += "  hazard: " +
                   formatJsonNumber(stats.hazardIntervals) +
                   " intervals flagged (" +
                   formatJsonNumber(stats.downIntervals) + " down, " +
                   formatJsonNumber(stats.pressuredIntervals) +
                   " pressured, " +
                   formatJsonNumber(stats.oppCappedIntervals) +
                   " opp-capped, " + formatJsonNumber(stats.reboots) +
                   " reboots) in " +
                   formatJsonNumber(static_cast<std::uint64_t>(
                       stats.hazardWindows.size())) +
                   " windows:\n   ";
            for (const HazardWindow &window : stats.hazardWindows) {
                out += " [" + formatJsonNumber(window.first) + ".." +
                       formatJsonNumber(window.last) + "]";
            }
            out += '\n';
        }
        if (stats.dispatchSamples > 0)
            out += "  dispatch: mean share " +
                   fmt("%.4f", stats.shareSum /
                                   static_cast<double>(
                                       stats.dispatchSamples)) +
                   " over " + formatJsonNumber(stats.dispatchSamples) +
                   " intervals\n";
        if (stats.migrationMoves > 0)
            out += "  migration: " +
                   formatJsonNumber(stats.migrationMoves) +
                   " moves started\n";
    }

    if (summary.profiledRuns > 0) {
        const double total =
            summary.arrivalGenSeconds + summary.eventLoopSeconds +
            summary.policySeconds + summary.metricsSeconds;
        auto line = [&](const char *name, double seconds) {
            char buf[96];
            const double pct =
                total > 0.0 ? 100.0 * seconds / total : 0.0;
            std::snprintf(buf, sizeof(buf),
                          "  %-12s %10.6f s  (%5.1f%%)\n", name,
                          seconds, pct);
            out += buf;
        };
        out += "\nphase breakdown (" +
               formatJsonNumber(summary.profiledRuns) +
               " profiled runs):\n";
        line("arrival gen", summary.arrivalGenSeconds);
        line("event loop", summary.eventLoopSeconds);
        line("policy", summary.policySeconds);
        line("metrics", summary.metricsSeconds);
        out += "  total        " + fmt("%10.6f", total) + " s, " +
               formatJsonNumber(summary.simEvents) + " sim events";
        if (total > 0.0)
            out += ", " +
                   fmt("%.0f", static_cast<double>(summary.simEvents) /
                                   total) +
                   " events/s";
        out += '\n';
        if (summary.perfAvailable)
            out += "  perf: " + formatJsonNumber(summary.cycles) +
                   " cycles, " +
                   formatJsonNumber(summary.instructions) +
                   " instructions\n";
        else if (!summary.perfStatus.empty())
            out += "  perf: unavailable (" + summary.perfStatus +
                   ")\n";
    }
    return out;
}

bool
TraceFilter::matches(const TelemetryEvent &event) const
{
    if ((typeMask & (1u << static_cast<unsigned>(event.type))) == 0)
        return false;
    if (node != -2 && event.node != node)
        return false;
    return event.interval >= minInterval &&
           event.interval <= maxInterval;
}

std::vector<TelemetryEvent>
filterTrace(const std::vector<TelemetryEvent> &events,
            const TraceFilter &filter)
{
    std::vector<TelemetryEvent> out;
    for (const TelemetryEvent &event : events)
        if (filter.matches(event))
            out.push_back(event);
    return out;
}

std::string
diffTraces(const std::vector<TelemetryEvent> &a,
           const std::vector<TelemetryEvent> &b,
           std::size_t maxDetails)
{
    std::string out;

    const TraceSummary sa = summarizeTrace(a);
    const TraceSummary sb = summarizeTrace(b);
    for (std::size_t i = 0; i < kTelemetryEventTypes; ++i) {
        if (sa.typeCounts[i] == sb.typeCounts[i])
            continue;
        const auto type = static_cast<TelemetryEventType>(i);
        if (type == TelemetryEventType::Header ||
            type == TelemetryEventType::PhaseProfile)
            continue;
        out += std::string(telemetryEventTypeName(type)) +
               " count: " + formatJsonNumber(sa.typeCounts[i]) +
               " vs " + formatJsonNumber(sb.typeCounts[i]) + "\n";
    }

    std::vector<const TelemetryEvent *> ea, eb;
    for (const TelemetryEvent &event : a)
        if (!skipInDiff(event))
            ea.push_back(&event);
    for (const TelemetryEvent &event : b)
        if (!skipInDiff(event))
            eb.push_back(&event);

    std::size_t details = 0;
    const std::size_t common = std::min(ea.size(), eb.size());
    for (std::size_t i = 0; i < common && details < maxDetails; ++i) {
        const std::string ka = eventKey(*ea[i]);
        const std::string kb = eventKey(*eb[i]);
        if (ka == kb)
            continue;
        out += "event " +
               formatJsonNumber(static_cast<std::uint64_t>(i)) +
               " differs:\n  a: " + ka + "\n  b: " + kb + "\n";
        ++details;
    }
    if (ea.size() != eb.size())
        out += "event counts differ (excluding header/profile): " +
               formatJsonNumber(
                   static_cast<std::uint64_t>(ea.size())) +
               " vs " +
               formatJsonNumber(
                   static_cast<std::uint64_t>(eb.size())) +
               "\n";
    return out;
}

} // namespace hipster
