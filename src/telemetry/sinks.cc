#include "telemetry/sinks.hh"

#include <utility>

#include "common/json_number.hh"
#include "common/logging.hh"

namespace hipster
{

namespace
{

/** Escape a string for inclusion in a JSON string literal. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char *kHex = "0123456789abcdef";
                out += "\\u00";
                out += kHex[(c >> 4) & 0xf];
                out += kHex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Undo jsonEscape; stops at the closing quote. */
bool
jsonUnescape(const std::string &text, std::size_t &pos,
             std::string &out)
{
    out.clear();
    while (pos < text.size() && text[pos] != '"') {
        char c = text[pos];
        if (c == '\\') {
            if (pos + 1 >= text.size())
                return false;
            char esc = text[pos + 1];
            pos += 2;
            switch (esc) {
            case '"':
                out += '"';
                break;
            case '\\':
                out += '\\';
                break;
            case '/':
                out += '/';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                if (pos + 4 > text.size())
                    return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos + i];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                if (code > 0x7f)
                    return false; // only escapes we emit
                out += static_cast<char>(code);
                pos += 4;
                break;
            }
            default:
                return false;
            }
        } else {
            out += c;
            ++pos;
        }
    }
    return pos < text.size();
}

std::FILE *
openTelemetryFile(const std::string &path, const char *kind)
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        fatal("telemetry: cannot open ", kind, " sink path '", path,
              "' for writing");
    return file;
}

/** RFC 4180 field escape (mirrors CsvWriter). */
std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n\r") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** Pack an event payload as '|'-separated k=v pairs. */
std::string
packPayload(const TelemetryEvent &event)
{
    std::string data;
    for (const auto &kv : event.num) {
        if (!data.empty())
            data += '|';
        data += kv.first;
        data += '=';
        data += formatJsonNumber(kv.second);
    }
    for (const auto &kv : event.str) {
        if (!data.empty())
            data += '|';
        data += kv.first;
        data += '=';
        data += kv.second;
    }
    return data;
}

} // namespace

std::string
telemetryEventToJson(const TelemetryEvent &event)
{
    std::string out = "{\"type\":\"";
    out += telemetryEventTypeName(event.type);
    out += "\",\"interval\":";
    out += formatJsonNumber(event.interval);
    out += ",\"time_s\":";
    out += formatJsonNumber(event.time);
    if (event.node >= 0) {
        out += ",\"node\":";
        out +=
            formatJsonNumber(static_cast<std::uint64_t>(event.node));
    }
    for (const auto &kv : event.num) {
        out += ",\"";
        out += jsonEscape(kv.first);
        out += "\":";
        out += formatJsonNumber(kv.second);
    }
    for (const auto &kv : event.str) {
        out += ",\"";
        out += jsonEscape(kv.first);
        out += "\":\"";
        out += jsonEscape(kv.second);
        out += '"';
    }
    out += '}';
    return out;
}

bool
parseTelemetryEventJson(const std::string &line, TelemetryEvent &out)
{
    out = TelemetryEvent();
    std::size_t pos = 0;
    auto skipWs = [&] {
        while (pos < line.size() &&
               (line[pos] == ' ' || line[pos] == '\t'))
            ++pos;
    };
    skipWs();
    if (pos >= line.size() || line[pos] != '{')
        return false;
    ++pos;
    bool sawType = false;
    bool first = true;
    for (;;) {
        skipWs();
        if (pos < line.size() && line[pos] == '}') {
            ++pos;
            break;
        }
        if (!first) {
            if (pos >= line.size() || line[pos] != ',')
                return false;
            ++pos;
            skipWs();
        }
        first = false;
        if (pos >= line.size() || line[pos] != '"')
            return false;
        ++pos;
        std::string key;
        if (!jsonUnescape(line, pos, key))
            return false;
        ++pos; // closing quote
        skipWs();
        if (pos >= line.size() || line[pos] != ':')
            return false;
        ++pos;
        skipWs();
        if (pos < line.size() && line[pos] == '"') {
            ++pos;
            std::string value;
            if (!jsonUnescape(line, pos, value))
                return false;
            ++pos;
            if (key == "type") {
                if (!parseTelemetryEventType(value, out.type))
                    return false;
                sawType = true;
            } else {
                out.add(key, std::move(value));
            }
        } else {
            double value = 0.0;
            if (!parseJsonNumber(line, pos, value))
                return false;
            if (key == "interval")
                out.interval = static_cast<std::uint64_t>(value);
            else if (key == "time_s")
                out.time = value;
            else if (key == "node")
                out.node = static_cast<int>(value);
            else
                out.add(key, value);
        }
    }
    return sawType;
}

JsonlSink::JsonlSink(const std::string &path)
    : path_(path), file_(openTelemetryFile(path, "jsonl"))
{
}

JsonlSink::~JsonlSink()
{
    if (file_)
        std::fclose(file_);
}

void
JsonlSink::write(const TelemetryEvent &event)
{
    std::string line = telemetryEventToJson(event);
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), file_);
    ++written_;
}

void
JsonlSink::flush()
{
    std::fflush(file_);
}

std::string
JsonlSink::summaryText() const
{
    return "telemetry: " + formatJsonNumber(written_) +
           " events -> " + path_;
}

CsvSink::CsvSink(const std::string &path)
    : path_(path), file_(openTelemetryFile(path, "csv"))
{
    static const char kHeader[] = "type,interval,time_s,node,data\n";
    std::fwrite(kHeader, 1, sizeof(kHeader) - 1, file_);
}

CsvSink::~CsvSink()
{
    if (file_)
        std::fclose(file_);
}

void
CsvSink::write(const TelemetryEvent &event)
{
    std::string row = telemetryEventTypeName(event.type);
    row += ',';
    row += formatJsonNumber(event.interval);
    row += ',';
    row += formatJsonNumber(event.time);
    row += ',';
    if (event.node >= 0)
        row +=
            formatJsonNumber(static_cast<std::uint64_t>(event.node));
    row += ',';
    row += csvEscape(packPayload(event));
    row += '\n';
    std::fwrite(row.data(), 1, row.size(), file_);
    ++written_;
}

void
CsvSink::flush()
{
    std::fflush(file_);
}

std::string
CsvSink::summaryText() const
{
    return "telemetry: " + formatJsonNumber(written_) +
           " events -> " + path_;
}

RingBufferSink::RingBufferSink(std::size_t cap) : cap_(cap)
{
    if (cap_ == 0)
        fatal("telemetry: ring sink capacity must be positive");
}

void
RingBufferSink::write(const TelemetryEvent &event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() == cap_) {
        events_.pop_front();
        ++dropped_;
    }
    events_.push_back(event);
    ++total_;
}

std::uint64_t
RingBufferSink::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

std::uint64_t
RingBufferSink::total() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

std::vector<TelemetryEvent>
RingBufferSink::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<TelemetryEvent>(events_.begin(), events_.end());
}

std::string
RingBufferSink::summaryText() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string text = "telemetry: ring holds " +
                       formatJsonNumber(
                           static_cast<std::uint64_t>(events_.size())) +
                       " of " + formatJsonNumber(total_) + " events";
    if (dropped_ > 0)
        text += " (" + formatJsonNumber(dropped_) +
                " dropped oldest-first)";
    return text;
}

CountersSink::CountersSink()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
}

void
CountersSink::write(const TelemetryEvent &event)
{
    counts_[static_cast<std::size_t>(event.type)].fetch_add(
        1, std::memory_order_relaxed);
}

std::uint64_t
CountersSink::count(TelemetryEventType type) const
{
    return counts_[static_cast<std::size_t>(type)].load(
        std::memory_order_relaxed);
}

std::uint64_t
CountersSink::total() const
{
    std::uint64_t sum = 0;
    for (const auto &c : counts_)
        sum += c.load(std::memory_order_relaxed);
    return sum;
}

std::string
CountersSink::summaryText() const
{
    std::string text = "telemetry counters:";
    for (std::size_t i = 0; i < kTelemetryEventTypes; ++i) {
        const auto type = static_cast<TelemetryEventType>(i);
        const std::uint64_t n = count(type);
        if (n == 0)
            continue;
        text += ' ';
        text += telemetryEventTypeName(type);
        text += '=';
        text += formatJsonNumber(n);
    }
    if (total() == 0)
        text += " (no events)";
    return text;
}

} // namespace hipster
