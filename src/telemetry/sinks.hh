/**
 * @file
 * Concrete telemetry sinks: JSONL and CSV files (numbers through
 * common/json_number so every double round-trips bitwise), a bounded
 * in-memory ring buffer for tests and post-run inspection, and
 * thread-safe per-type counters for sweep-wide tallies.
 */

#ifndef HIPSTER_TELEMETRY_SINKS_HH
#define HIPSTER_TELEMETRY_SINKS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.hh"

namespace hipster
{

/**
 * One JSON object per line, flat and jq-friendly:
 *   {"type":"decision","interval":12,"time_s":12,"node":0,...}
 * Fails fast on an unwritable path, naming the telemetry stage.
 */
class JsonlSink : public TelemetrySink
{
  public:
    explicit JsonlSink(const std::string &path);
    ~JsonlSink() override;

    void write(const TelemetryEvent &event) override;
    void flush() override;
    std::string summaryText() const override;

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint64_t written_ = 0;
};

/**
 * CSV with fixed columns type,interval,time_s,node,data where `data`
 * packs the payload as '|'-separated k=v pairs (numbers formatted
 * via json_number, so a CsvReader round-trips them exactly).
 */
class CsvSink : public TelemetrySink
{
  public:
    explicit CsvSink(const std::string &path);
    ~CsvSink() override;

    void write(const TelemetryEvent &event) override;
    void flush() override;
    std::string summaryText() const override;

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint64_t written_ = 0;
};

/**
 * Bounded in-memory buffer keeping the newest `cap` events; overflow
 * drops oldest-first and counts the drops. Thread-safe so fleet
 * nodes and sweep jobs may share one instance.
 */
class RingBufferSink : public TelemetrySink
{
  public:
    explicit RingBufferSink(std::size_t cap);

    void write(const TelemetryEvent &event) override;
    std::string summaryText() const override;

    /** Events dropped to stay within capacity. */
    std::uint64_t dropped() const;

    /** Events accepted (dropped or retained). */
    std::uint64_t total() const;

    /** Copy of the retained events, oldest first. */
    std::vector<TelemetryEvent> snapshot() const;

  private:
    std::size_t cap_;
    mutable std::mutex mutex_;
    std::deque<TelemetryEvent> events_;
    std::uint64_t dropped_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Per-type event counters; lock-free writes so one instance can be
 * shared across every job of a sweep.
 */
class CountersSink : public TelemetrySink
{
  public:
    CountersSink();

    void write(const TelemetryEvent &event) override;
    std::string summaryText() const override;

    /** Count of events of `type` seen so far. */
    std::uint64_t count(TelemetryEventType type) const;

    /** Total events across all types. */
    std::uint64_t total() const;

  private:
    std::array<std::atomic<std::uint64_t>, kTelemetryEventTypes>
        counts_;
};

/** Serialize one event as a single JSON object (no newline). */
std::string telemetryEventToJson(const TelemetryEvent &event);

/**
 * Parse a JSONL trace line back into an event. Returns false (and
 * leaves `out` unspecified) on malformed input or unknown type.
 */
bool parseTelemetryEventJson(const std::string &line,
                             TelemetryEvent &out);

} // namespace hipster

#endif // HIPSTER_TELEMETRY_SINKS_HH
