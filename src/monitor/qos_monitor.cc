#include "monitor/qos_monitor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hipster
{

LoadBucketQuantizer::LoadBucketQuantizer(double bucket_percent)
    : bucketPercent_(bucket_percent)
{
    if (bucket_percent <= 0.0 || bucket_percent > 100.0)
        fatal("LoadBucketQuantizer: bucket percent must lie in (0, 100]");
}

int
LoadBucketQuantizer::bucket(Fraction load) const
{
    const double percent = std::max(0.0, load) * 100.0;
    const int index = static_cast<int>(percent / bucketPercent_);
    return std::min(index, bucketCount() - 1);
}

int
LoadBucketQuantizer::bucketCount() const
{
    return static_cast<int>(std::ceil(100.0 / bucketPercent_));
}

Fraction
LoadBucketQuantizer::bucketCenter(int index) const
{
    HIPSTER_ASSERT(index >= 0 && index < bucketCount(),
                   "bucket index out of range: ", index);
    return (index + 0.5) * bucketPercent_ / 100.0;
}

QosGuaranteeWindow::QosGuaranteeWindow(std::size_t window)
    : window_(window)
{
    if (window == 0)
        fatal("QosGuaranteeWindow: window must be positive");
}

void
QosGuaranteeWindow::add(bool met)
{
    samples_.push_back(met);
    if (met)
        ++metCount_;
    if (samples_.size() > window_) {
        if (samples_.front())
            --metCount_;
        samples_.pop_front();
    }
}

double
QosGuaranteeWindow::guarantee() const
{
    if (samples_.empty())
        return 1.0;
    return static_cast<double>(metCount_) / samples_.size();
}

void
QosGuaranteeWindow::clear()
{
    samples_.clear();
    metCount_ = 0;
}

} // namespace hipster
