#include "monitor/metrics.hh"

namespace hipster
{

RunSummary
RunSummary::fromSeries(const std::vector<IntervalMetrics> &series)
{
    RunSummary summary;
    summary.intervals = series.size();
    if (series.empty())
        return summary;

    std::size_t met = 0;
    std::size_t violated = 0;
    double tardiness_sum = 0.0;
    double power_sum = 0.0;
    double throughput_sum = 0.0;
    double batch_ips_sum = 0.0;
    std::size_t batch_intervals = 0;

    for (const auto &m : series) {
        if (m.qosViolated()) {
            ++violated;
            tardiness_sum += m.qosRatio();
        } else {
            ++met;
        }
        summary.energy += m.energy;
        power_sum += m.power;
        throughput_sum += m.throughput;
        summary.migrations += m.migrations;
        summary.dvfsTransitions += m.dvfsTransitions;
        summary.dropped += m.dropped;
        if (m.batchPresent) {
            batch_ips_sum += m.batchBigIps + m.batchSmallIps;
            ++batch_intervals;
        }
    }

    summary.qosGuarantee = static_cast<double>(met) / series.size();
    summary.qosTardiness = violated ? tardiness_sum / violated : 0.0;
    summary.meanPower = power_sum / series.size();
    summary.meanThroughput = throughput_sum / series.size();
    summary.meanBatchIps =
        batch_intervals ? batch_ips_sum / batch_intervals : 0.0;
    return summary;
}

double
RunSummary::energyReductionVs(const RunSummary &baseline) const
{
    if (baseline.energy <= 0.0)
        return 0.0;
    return 1.0 - energy / baseline.energy;
}

} // namespace hipster
