/**
 * @file
 * The QoS Monitor (paper Section 3.2/3.7): quantizes the measured
 * load into buckets (the MDP state), assembles per-interval metrics
 * from the app, power and perf-counter readings, and tracks the
 * sliding-window QoS guarantee used to decide when to re-enter the
 * learning phase (Algorithm 2, line 18).
 */

#ifndef HIPSTER_MONITOR_QOS_MONITOR_HH
#define HIPSTER_MONITOR_QOS_MONITOR_HH

#include <deque>

#include "common/units.hh"
#include "monitor/metrics.hh"

namespace hipster
{

/**
 * Quantizes load fractions into discrete buckets 0..T-1 (paper
 * Section 3.1: "Hipster quantizes the load into buckets").
 */
class LoadBucketQuantizer
{
  public:
    /**
     * @param bucket_percent Bucket width as a percentage of max load
     *                       (the paper sweeps 2-9%, Figure 10).
     */
    explicit LoadBucketQuantizer(double bucket_percent = 5.0);

    /** Bucket index of a load fraction (clamped to the top bucket
     * at/above 100%). */
    int bucket(Fraction load) const;

    /** Number of buckets covering [0%, 100%]. */
    int bucketCount() const;

    double bucketPercent() const { return bucketPercent_; }

    /** Center load fraction of bucket `index` (for reporting). */
    Fraction bucketCenter(int index) const;

  private:
    double bucketPercent_;
};

/**
 * Sliding-window QoS guarantee tracker: fraction of the last N
 * samples that met QoS.
 */
class QosGuaranteeWindow
{
  public:
    explicit QosGuaranteeWindow(std::size_t window = 100);

    void add(bool met);

    /** Guarantee over the window; 1.0 while empty (optimistic). */
    double guarantee() const;

    std::size_t size() const { return samples_.size(); }
    std::size_t window() const { return window_; }
    void clear();

  private:
    std::deque<bool> samples_;
    std::size_t window_;
    std::size_t metCount_ = 0;
};

} // namespace hipster

#endif // HIPSTER_MONITOR_QOS_MONITOR_HH
