/**
 * @file
 * Monitoring data model: what the QoS Monitor collects each interval
 * (Section 3.2) and the run-level summary metrics the evaluation
 * reports (QoS guarantee, QoS tardiness, energy reduction —
 * Section 4.2.4 / Table 3).
 */

#ifndef HIPSTER_MONITOR_METRICS_HH
#define HIPSTER_MONITOR_METRICS_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "platform/core_config.hh"

namespace hipster
{

class MetricsSeries;

/**
 * Everything the task managers can observe about one monitoring
 * interval. Produced by the QoSMonitor at the end of each interval;
 * consumed by the policies to make the next decision.
 */
struct IntervalMetrics
{
    Seconds begin = 0.0;
    Seconds end = 0.0;

    /** Offered load as a fraction of the LC app's max capacity. */
    Fraction offeredLoad = 0.0;

    /** Offered rate in reported units (RPS/QPS). */
    Rate offeredRate = 0.0;

    /** Quantized load bucket (Section 3.1: the MDP state w). */
    int loadBucket = 0;

    /** Measured tail latency at the app's QoS percentile (ms). */
    Millis tailLatency = 0.0;

    /** The QoS target (ms). */
    Millis qosTarget = 0.0;

    /** Achieved throughput in reported units. */
    Rate throughput = 0.0;

    /** Mean system power over the interval (W). */
    Watts power = 0.0;

    /** Energy consumed during the interval (J). */
    Joules energy = 0.0;

    /** Aggregate batch IPS on the big cluster (0 without batch). */
    Ips batchBigIps = 0.0;

    /** Aggregate batch IPS on the small cluster. */
    Ips batchSmallIps = 0.0;

    /** Whether batch jobs were present this interval. */
    bool batchPresent = false;

    /** Whether the perf-counter reading was usable (idle erratum). */
    bool ipsValid = true;

    /** Configuration in force during the interval. */
    CoreConfig config;

    /** Core migrations performed when entering this interval. */
    std::uint32_t migrations = 0;

    /** DVFS transitions performed when entering this interval. */
    std::uint32_t dvfsTransitions = 0;

    /** Mean busy fraction of the LC cores. */
    Fraction lcUtilization = 0.0;

    /** Requests dropped (overload waiting-room bound). */
    std::uint64_t dropped = 0;

    /** QoS tardiness = QoScurr / QoStarget (Section 4.2, fn. 3). */
    double
    qosRatio() const
    {
        return qosTarget > 0.0 ? tailLatency / qosTarget : 0.0;
    }

    /** True when the interval violated the QoS target. */
    bool qosViolated() const { return tailLatency > qosTarget; }
};

/**
 * Run-level summary over a series of intervals, matching the metrics
 * of Table 3.
 */
struct RunSummary
{
    std::size_t intervals = 0;

    /** Fraction of intervals meeting QoS (Table 3 "QoS Guarantee"). */
    double qosGuarantee = 0.0;

    /**
     * Mean QoScurr/QoStarget over the *violating* intervals only
     * (Table 3 "QoS Tardiness"); 0 when nothing violated.
     */
    double qosTardiness = 0.0;

    /** Total energy over the run (J). */
    Joules energy = 0.0;

    /** Mean system power (W). */
    Watts meanPower = 0.0;

    /** Total core migrations. */
    std::uint64_t migrations = 0;

    /** Total DVFS transitions. */
    std::uint64_t dvfsTransitions = 0;

    /** Mean achieved throughput (reported units). */
    Rate meanThroughput = 0.0;

    /** Mean aggregate batch IPS (big + small), when collocated. */
    Ips meanBatchIps = 0.0;

    /** Total requests dropped. */
    std::uint64_t dropped = 0;

    /** Build the summary from an interval series. */
    static RunSummary fromSeries(const std::vector<IntervalMetrics> &series);

    /**
     * Column-wise overload for the SoA container; bitwise-identical
     * to the row-wise reduction above (see metrics_series.cc).
     */
    static RunSummary fromSeries(const MetricsSeries &series);

    /**
     * Energy reduction of this run relative to a baseline run
     * (Table 3 reports savings vs. static all-big): 1 - E/E_base.
     */
    double energyReductionVs(const RunSummary &baseline) const;
};

} // namespace hipster

#endif // HIPSTER_MONITOR_METRICS_HH
