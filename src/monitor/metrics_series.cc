#include "monitor/metrics_series.hh"

namespace hipster
{

void
MetricsSeries::reserve(std::size_t n)
{
    begin_.reserve(n);
    end_.reserve(n);
    offeredLoad_.reserve(n);
    offeredRate_.reserve(n);
    loadBucket_.reserve(n);
    tailLatency_.reserve(n);
    qosTarget_.reserve(n);
    throughput_.reserve(n);
    power_.reserve(n);
    energy_.reserve(n);
    batchBigIps_.reserve(n);
    batchSmallIps_.reserve(n);
    batchPresent_.reserve(n);
    ipsValid_.reserve(n);
    config_.reserve(n);
    migrations_.reserve(n);
    dvfsTransitions_.reserve(n);
    lcUtilization_.reserve(n);
    dropped_.reserve(n);
}

void
MetricsSeries::push_back(const IntervalMetrics &m)
{
    begin_.push_back(m.begin);
    end_.push_back(m.end);
    offeredLoad_.push_back(m.offeredLoad);
    offeredRate_.push_back(m.offeredRate);
    loadBucket_.push_back(m.loadBucket);
    tailLatency_.push_back(m.tailLatency);
    qosTarget_.push_back(m.qosTarget);
    throughput_.push_back(m.throughput);
    power_.push_back(m.power);
    energy_.push_back(m.energy);
    batchBigIps_.push_back(m.batchBigIps);
    batchSmallIps_.push_back(m.batchSmallIps);
    batchPresent_.push_back(m.batchPresent ? 1 : 0);
    ipsValid_.push_back(m.ipsValid ? 1 : 0);
    config_.push_back(m.config);
    migrations_.push_back(m.migrations);
    dvfsTransitions_.push_back(m.dvfsTransitions);
    lcUtilization_.push_back(m.lcUtilization);
    dropped_.push_back(m.dropped);
}

void
MetricsSeries::clear()
{
    begin_.clear();
    end_.clear();
    offeredLoad_.clear();
    offeredRate_.clear();
    loadBucket_.clear();
    tailLatency_.clear();
    qosTarget_.clear();
    throughput_.clear();
    power_.clear();
    energy_.clear();
    batchBigIps_.clear();
    batchSmallIps_.clear();
    batchPresent_.clear();
    ipsValid_.clear();
    config_.clear();
    migrations_.clear();
    dvfsTransitions_.clear();
    lcUtilization_.clear();
    dropped_.clear();
}

void
MetricsSeries::shrink_to_fit()
{
    begin_.shrink_to_fit();
    end_.shrink_to_fit();
    offeredLoad_.shrink_to_fit();
    offeredRate_.shrink_to_fit();
    loadBucket_.shrink_to_fit();
    tailLatency_.shrink_to_fit();
    qosTarget_.shrink_to_fit();
    throughput_.shrink_to_fit();
    power_.shrink_to_fit();
    energy_.shrink_to_fit();
    batchBigIps_.shrink_to_fit();
    batchSmallIps_.shrink_to_fit();
    batchPresent_.shrink_to_fit();
    ipsValid_.shrink_to_fit();
    config_.shrink_to_fit();
    migrations_.shrink_to_fit();
    dvfsTransitions_.shrink_to_fit();
    lcUtilization_.shrink_to_fit();
    dropped_.shrink_to_fit();
}

IntervalMetrics
MetricsSeries::operator[](std::size_t i) const
{
    IntervalMetrics m;
    m.begin = begin_[i];
    m.end = end_[i];
    m.offeredLoad = offeredLoad_[i];
    m.offeredRate = offeredRate_[i];
    m.loadBucket = loadBucket_[i];
    m.tailLatency = tailLatency_[i];
    m.qosTarget = qosTarget_[i];
    m.throughput = throughput_[i];
    m.power = power_[i];
    m.energy = energy_[i];
    m.batchBigIps = batchBigIps_[i];
    m.batchSmallIps = batchSmallIps_[i];
    m.batchPresent = batchPresent_[i] != 0;
    m.ipsValid = ipsValid_[i] != 0;
    m.config = config_[i];
    m.migrations = migrations_[i];
    m.dvfsTransitions = dvfsTransitions_[i];
    m.lcUtilization = lcUtilization_[i];
    m.dropped = dropped_[i];
    return m;
}

RunSummary
RunSummary::fromSeries(const MetricsSeries &series)
{
    // Column-wise reduction. Each accumulator visits its column in
    // index order, so every double sum sees exactly the operand
    // sequence of the row-wise vector overload — bitwise-identical
    // summaries (pinned by tests/experiments/test_golden_repin.cc).
    RunSummary summary;
    const std::size_t n = series.size();
    summary.intervals = n;
    if (n == 0)
        return summary;

    std::size_t met = 0;
    std::size_t violated = 0;
    double tardiness_sum = 0.0;
    double power_sum = 0.0;
    double throughput_sum = 0.0;
    double batch_ips_sum = 0.0;
    std::size_t batch_intervals = 0;

    for (std::size_t i = 0; i < n; ++i) {
        const Millis tail = series.tailLatency_[i];
        const Millis target = series.qosTarget_[i];
        if (tail > target) {
            ++violated;
            tardiness_sum += target > 0.0 ? tail / target : 0.0;
        } else {
            ++met;
        }
        summary.energy += series.energy_[i];
        power_sum += series.power_[i];
        throughput_sum += series.throughput_[i];
        summary.migrations += series.migrations_[i];
        summary.dvfsTransitions += series.dvfsTransitions_[i];
        summary.dropped += series.dropped_[i];
        if (series.batchPresent_[i]) {
            batch_ips_sum +=
                series.batchBigIps_[i] + series.batchSmallIps_[i];
            ++batch_intervals;
        }
    }

    summary.qosGuarantee = static_cast<double>(met) / n;
    summary.qosTardiness = violated ? tardiness_sum / violated : 0.0;
    summary.meanPower = power_sum / n;
    summary.meanThroughput = throughput_sum / n;
    summary.meanBatchIps =
        batch_intervals ? batch_ips_sum / batch_intervals : 0.0;
    return summary;
}

} // namespace hipster
