/**
 * @file
 * MetricsSeries: structure-of-arrays storage for a run's interval
 * metrics. A diurnal sweep holds hundreds of thousands of intervals
 * across runs; storing each field in its own contiguous column keeps
 * the per-interval append on the runner's hot loop cache-friendly
 * and lets summaries and reporters stream one column at a time.
 *
 * The container intentionally mimics the std::vector surface the
 * code already uses (push_back / size / operator[] / range-for), so
 * consumers are oblivious to the layout change; operator[] gathers a
 * full IntervalMetrics by value.
 */

#ifndef HIPSTER_MONITOR_METRICS_SERIES_HH
#define HIPSTER_MONITOR_METRICS_SERIES_HH

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "monitor/metrics.hh"

namespace hipster
{

/** Column-major interval-metrics container. */
class MetricsSeries
{
  public:
    using value_type = IntervalMetrics;

    /** Input iterator gathering rows on dereference. */
    class const_iterator
    {
      public:
        using iterator_category = std::input_iterator_tag;
        using value_type = IntervalMetrics;
        using difference_type = std::ptrdiff_t;
        using pointer = const IntervalMetrics *;
        using reference = IntervalMetrics;

        const_iterator(const MetricsSeries *series, std::size_t index)
            : series_(series), index_(index)
        {
        }

        IntervalMetrics operator*() const { return (*series_)[index_]; }

        const_iterator &
        operator++()
        {
            ++index_;
            return *this;
        }

        bool
        operator==(const const_iterator &other) const
        {
            return index_ == other.index_;
        }

        bool
        operator!=(const const_iterator &other) const
        {
            return index_ != other.index_;
        }

      private:
        const MetricsSeries *series_;
        std::size_t index_;
    };

    std::size_t size() const { return begin_.size(); }
    bool empty() const { return begin_.empty(); }

    void reserve(std::size_t n);
    void push_back(const IntervalMetrics &m);
    void clear();
    void shrink_to_fit();

    /** Gather row `i` into a full IntervalMetrics (by value). */
    IntervalMetrics operator[](std::size_t i) const;

    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size()); }

    // Column views for streaming consumers (summaries, reporters).
    const std::vector<Millis> &tailLatencyColumn() const
    {
        return tailLatency_;
    }
    const std::vector<Joules> &energyColumn() const { return energy_; }
    const std::vector<Watts> &powerColumn() const { return power_; }
    const std::vector<Rate> &throughputColumn() const
    {
        return throughput_;
    }

  private:
    friend struct RunSummary;

    std::vector<Seconds> begin_;
    std::vector<Seconds> end_;
    std::vector<Fraction> offeredLoad_;
    std::vector<Rate> offeredRate_;
    std::vector<int> loadBucket_;
    std::vector<Millis> tailLatency_;
    std::vector<Millis> qosTarget_;
    std::vector<Rate> throughput_;
    std::vector<Watts> power_;
    std::vector<Joules> energy_;
    std::vector<Ips> batchBigIps_;
    std::vector<Ips> batchSmallIps_;
    std::vector<std::uint8_t> batchPresent_;
    std::vector<std::uint8_t> ipsValid_;
    std::vector<CoreConfig> config_;
    std::vector<std::uint32_t> migrations_;
    std::vector<std::uint32_t> dvfsTransitions_;
    std::vector<Fraction> lcUtilization_;
    std::vector<std::uint64_t> dropped_;
};

} // namespace hipster

#endif // HIPSTER_MONITOR_METRICS_SERIES_HH
