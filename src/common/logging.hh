/**
 * @file
 * Minimal logging and error-reporting facility in the spirit of
 * gem5's base/logging.hh.
 *
 * `fatal()` reports a user-level error (bad configuration, invalid
 * argument) and throws FatalError; `panic()` reports an internal
 * invariant violation and aborts. `warn()` / `inform()` print to
 * stderr and never stop execution. A global verbosity switch lets
 * benchmarks silence informational output.
 */

#ifndef HIPSTER_COMMON_LOGGING_HH
#define HIPSTER_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace hipster
{

/** Severity levels for runtime log messages. */
enum class LogLevel
{
    Debug,
    Info,
    Warn,
    Error,
    Quiet, ///< suppress everything below fatal/panic
};

/**
 * Exception thrown by fatal(): a condition caused by the user
 * (configuration error, invalid argument) from which the library
 * cannot continue.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Set the global log threshold (messages below it are dropped). */
void setLogLevel(LogLevel level);

/** Current global log threshold. */
LogLevel logLevel();

/** Emit a message at the given level to stderr (if enabled). */
void logMessage(LogLevel level, const std::string &msg);

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

} // namespace detail

/** Report a user-caused error and throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::concat(std::forward<Args>(args)...);
    logMessage(LogLevel::Error, "fatal: " + msg);
    throw FatalError(msg);
}

/** Informational message (suppressed when level > Info). */
template <typename... Args>
void
inform(Args &&...args)
{
    logMessage(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

/** Warning message (suppressed when level > Warn). */
template <typename... Args>
void
warn(Args &&...args)
{
    logMessage(LogLevel::Warn,
               "warn: " + detail::concat(std::forward<Args>(args)...));
}

/** Internal invariant violation: print and abort. */
#define HIPSTER_PANIC(...)                                                   \
    ::hipster::detail::panicImpl(__FILE__, __LINE__,                         \
                                 ::hipster::detail::concat(__VA_ARGS__))

/** Check an internal invariant; panic with a message when violated. */
#define HIPSTER_ASSERT(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::hipster::detail::panicImpl(                                    \
                __FILE__, __LINE__,                                          \
                std::string("assertion failed: " #cond " ") +                \
                    ::hipster::detail::concat(__VA_ARGS__));                 \
        }                                                                    \
    } while (false)

} // namespace hipster

#endif // HIPSTER_COMMON_LOGGING_HH
