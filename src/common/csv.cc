#include "common/csv.hh"

#include "common/logging.hh"

namespace hipster
{

CsvWriter::CsvWriter(const std::string &path)
    : file_(path), out_(&file_)
{
    if (!file_)
        fatal("CsvWriter: cannot open '", path, "' for writing");
}

CsvWriter::CsvWriter(std::ostream &out)
    : out_(&out)
{
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    writeFields(columns);
}

void
CsvWriter::endRow()
{
    writeFields(row_);
    row_.clear();
    ++rowsWritten_;
}

void
CsvWriter::row(const std::vector<std::string> &fields)
{
    writeFields(fields);
    ++rowsWritten_;
}

void
CsvWriter::writeFields(const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            *out_ << ',';
        *out_ << escape(fields[i]);
    }
    *out_ << '\n';
}

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quoting =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quoting)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace hipster
