#include "common/csv.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace hipster
{

CsvWriter::CsvWriter(const std::string &path)
    : file_(path), out_(&file_)
{
    if (!file_)
        fatal("CsvWriter: cannot open '", path, "' for writing");
}

CsvWriter::CsvWriter(std::ostream &out)
    : out_(&out)
{
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    writeFields(columns);
}

void
CsvWriter::endRow()
{
    writeFields(row_);
    row_.clear();
    ++rowsWritten_;
}

void
CsvWriter::row(const std::vector<std::string> &fields)
{
    writeFields(fields);
    ++rowsWritten_;
}

void
CsvWriter::writeFields(const std::vector<std::string> &fields)
{
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            *out_ << ',';
        *out_ << escape(fields[i]);
    }
    *out_ << '\n';
}

std::string
CsvWriter::escape(const std::string &field)
{
    // '\r' must be quoted too: the reader treats an unquoted CR as
    // CRLF line-ending noise and would drop it on the way back in.
    const bool needs_quoting =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quoting)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

CsvReader::CsvReader(const std::string &path)
    : name_(path)
{
    std::ifstream in(path);
    if (!in)
        fatal("CsvReader: cannot open '", path, "' for reading");
    parse(in);
}

CsvReader::CsvReader(std::istream &in, const std::string &name)
    : name_(name)
{
    parse(in);
}

void
CsvReader::parse(std::istream &in)
{
    // RFC 4180 state machine over the whole stream: quoted fields may
    // contain commas, escaped quotes ("") and newlines.
    std::vector<std::vector<std::string>> records;
    std::vector<std::string> fields;
    std::string field;
    bool in_quotes = false;
    bool field_was_quoted = false;
    bool any_char = false;

    const auto endField = [&] {
        fields.push_back(std::move(field));
        field.clear();
        field_was_quoted = false;
    };
    const auto endRecord = [&] {
        endField();
        records.push_back(std::move(fields));
        fields.clear();
        any_char = false;
    };

    char c;
    while (in.get(c)) {
        if (in_quotes) {
            if (c == '"') {
                if (in.peek() == '"') {
                    in.get(c);
                    field += '"';
                } else {
                    in_quotes = false;
                }
            } else {
                field += c;
            }
            any_char = true;
            continue;
        }
        switch (c) {
        case '"':
            if (!field.empty() || field_was_quoted)
                fatal("CsvReader: '", name_, "': stray quote inside "
                      "an unquoted field (record ",
                      records.size() + 1, ")");
            in_quotes = true;
            field_was_quoted = true;
            any_char = true;
            break;
        case ',':
            endField();
            any_char = true;
            break;
        case '\r':
            // Tolerate CRLF line endings only. A stray CR (mid-field
            // or classic-Mac CR-only endings) must not be silently
            // deleted — that would alter cell values.
            if (in.peek() != '\n')
                fatal("CsvReader: '", name_, "': stray carriage "
                      "return (record ", records.size() + 1,
                      "); only LF or CRLF line endings are supported");
            break;
        case '\n':
            if (any_char || !fields.empty())
                endRecord();
            break;
        default:
            field += c;
            any_char = true;
            break;
        }
    }
    if (in_quotes)
        fatal("CsvReader: '", name_, "': unterminated quoted field");
    if (any_char || !fields.empty())
        endRecord(); // final record without trailing newline

    if (records.empty())
        fatal("CsvReader: '", name_, "': empty file (no header row)");
    header_ = std::move(records.front());
    rows_.assign(std::make_move_iterator(records.begin() + 1),
                 std::make_move_iterator(records.end()));
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (rows_[r].size() != header_.size())
            fatal("CsvReader: '", name_, "': row ", r + 1, " has ",
                  rows_[r].size(), " fields, header has ",
                  header_.size());
    }
}

std::size_t
CsvReader::columnIndex(const std::string &column) const
{
    const auto it = std::find(header_.begin(), header_.end(), column);
    if (it == header_.end())
        fatal("CsvReader: '", name_, "': no column named '", column,
              "'");
    return static_cast<std::size_t>(it - header_.begin());
}

const std::vector<std::string> &
CsvReader::row(std::size_t r) const
{
    if (r >= rows_.size())
        fatal("CsvReader: '", name_, "': row ", r, " out of range (",
              rows_.size(), " rows)");
    return rows_[r];
}

const std::string &
CsvReader::cell(std::size_t r, std::size_t c) const
{
    const auto &fields = row(r);
    if (c >= fields.size())
        fatal("CsvReader: '", name_, "': column ", c,
              " out of range in row ", r);
    return fields[c];
}

double
CsvReader::number(std::size_t r, std::size_t c) const
{
    const std::string &text = cell(r, c);
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal("CsvReader: '", name_, "': cell (", r, ",", c, ") = '",
              text, "' is not a number");
    return value;
}

} // namespace hipster
