/**
 * @file
 * A fixed-size thread pool for embarrassingly parallel experiment
 * work (the sweep engine's seed/policy fan-out). Deliberately simple:
 * one FIFO queue, no work stealing, futures for results and exception
 * propagation. Determinism is the caller's job — submit work whose
 * output does not depend on execution order (every sweep job carries
 * its own pre-derived seed), and reduce results in submission order.
 */

#ifndef HIPSTER_COMMON_THREAD_POOL_HH
#define HIPSTER_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/logging.hh"

namespace hipster
{

/**
 * Fixed pool of worker threads draining one FIFO task queue.
 *
 * Destruction is graceful: no new tasks are accepted, every task
 * already queued still runs, and all workers are joined — so futures
 * obtained from submit() are always eventually satisfied and the
 * destructor cannot deadlock with a worker.
 */
class ThreadPool
{
  public:
    /** Hard ceiling on the worker count: far above any sensible
     * fan-out, low enough to reject garbage (e.g. a -1 wrapped to
     * 2^64-1 by a CLI parser) before std::thread creation fails. */
    static constexpr std::size_t kMaxThreads = 512;

    /**
     * @param threads Worker count; 0 is clamped to 1. Throws
     *                FatalError above kMaxThreads.
     */
    explicit ThreadPool(std::size_t threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue a callable; returns a future for its result. An
     * exception thrown by the task is captured and rethrown from
     * future::get(). Throws FatalError once shutdown has begun.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using Result = std::invoke_result_t<F>;
        // std::function requires copyable callables; packaged_task is
        // move-only, so hold it behind a shared_ptr.
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_)
                fatal("ThreadPool: submit() after shutdown");
            queue_.emplace_back([task] { (*task)(); });
        }
        wake_.notify_one();
        return future;
    }

    /**
     * Sensible default worker count for --jobs style flags:
     * hardware_concurrency, or 1 when it is unknown.
     */
    static std::size_t defaultJobs();

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;
};

} // namespace hipster

#endif // HIPSTER_COMMON_THREAD_POOL_HH
