#include "common/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace hipster
{

namespace
{

std::atomic<LogLevel> globalLevel{LogLevel::Warn};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
      case LogLevel::Quiet: return "quiet";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) <
        static_cast<int>(globalLevel.load(std::memory_order_relaxed))) {
        return;
    }
    std::cerr << "[hipster:" << levelName(level) << "] " << msg << "\n";
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "[hipster:panic] " << file << ":" << line << ": " << msg
              << std::endl;
    std::abort();
}

} // namespace detail

} // namespace hipster
