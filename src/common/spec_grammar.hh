/**
 * @file
 * Shared key=value spec-grammar machinery for the workload and
 * platform registries:
 *
 *   spec := name [':' key '=' value (',' key '=' value)*]
 *
 * Each registry entry declares a parameter schema (key, default,
 * valid range, doc string, optional unit); overrides validate
 * fail-fast with errors that enumerate the schema. Values are plain
 * numbers except for time-typed parameters, which also accept
 * us/ms/s suffixes ("qos=300us", "think=1.5s") and normalize to the
 * parameter's canonical unit.
 *
 * The policy and trace registries predate this helper and keep their
 * own (grammar-compatible) parsers; new registries should build on
 * this one.
 */

#ifndef HIPSTER_COMMON_SPEC_GRAMMAR_HH
#define HIPSTER_COMMON_SPEC_GRAMMAR_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace hipster
{

/** Canonical unit a parameter value is normalized to. */
enum class ParamUnit
{
    None,    ///< plain number, no suffix accepted
    TimeMs,  ///< canonical milliseconds; accepts us/ms/s suffixes
    TimeSec, ///< canonical seconds; accepts us/ms/s suffixes
};

/** Schema entry describing one tunable of a registered spec family. */
struct SpecParamInfo
{
    std::string key; ///< override key, e.g. "qos"
    std::string doc; ///< one-line description for the catalogs

    /** Default in the canonical unit (the calibrated value). */
    double defaultValue = 0.0;

    /** Valid range in the canonical unit, inclusive on both ends. */
    double minValue = 0.0;
    double maxValue = 0.0;

    /** Value must be an integer (e.g. core counts). */
    bool integer = false;

    /** Value must be 0 or 1. */
    bool boolean = false;

    /** Canonical unit (enables the us/ms/s suffixes). */
    ParamUnit unit = ParamUnit::None;
};

/**
 * The parsed key=value overrides of one spec. Only explicitly
 * written keys are present; factories fall back to their base
 * parameters for everything else. Values are stored in the
 * parameter's canonical unit.
 */
class SpecParamSet
{
  public:
    bool isSet(const std::string &key) const;

    /** The override for `key`, or `fallback` when not set. */
    double get(const std::string &key, double fallback) const;

    bool getBool(const std::string &key, bool fallback) const;

    /** Record an override (parser only; duplicate keys are a parse
     * error upstream, so keys are unique). */
    void set(const std::string &key, double value);

    /** Whether any override is present. */
    bool empty() const { return values_.empty(); }

  private:
    std::vector<std::pair<std::string, double>> values_;
};

/** Compact numeric rendering for schema/catalog text ("5", "0.85"). */
std::string formatSpecValue(double value);

/** One schema line: "qos=10ms in [0.05ms, 10000ms] — doc". */
std::string specParamLine(const SpecParamInfo &param);

/** "'<name>' parameters:" + one line per schema entry (or "takes no
 * parameters"). Used by unknown-key and bad-value errors. */
std::string specSchemaSummary(const std::string &name,
                              const std::vector<SpecParamInfo> &params);

/** The head of a spec: everything before the first ':'. */
std::string specHead(const std::string &spec);

/** The name token starting at `pos` ([a-z0-9_-]*), or "" when the
 * text there cannot start a spec head (list splitting helper). */
std::string specHeadToken(const std::string &text, std::size_t pos);

/**
 * Parse and validate the "key=value,..." tail of `spec` (everything
 * after the first ':'; absent = no overrides) against `schema`.
 * `kind` names the grammar in errors ("workload", "platform").
 * Throws FatalError enumerating the schema on unknown keys,
 * duplicates, malformed pairs and out-of-range values.
 */
void parseSpecParams(const std::string &kind, const std::string &spec,
                     const std::string &name,
                     const std::vector<SpecParamInfo> &schema,
                     SpecParamSet &out);

/**
 * Splits a CLI spec list using `isHead` to recognize registered
 * names. `;` always separates; a `,` separates only when the text
 * after it heads a registered entry, keeping in-spec key=value
 * commas intact (so "memcached:qos=300us,stall=0.5,websearch"
 * yields the parameterized memcached spec and "websearch").
 */
std::vector<std::string>
splitSpecList(const std::string &list,
              const std::function<bool(const std::string &)> &isHead);

} // namespace hipster

#endif // HIPSTER_COMMON_SPEC_GRAMMAR_HH
