/**
 * @file
 * Build provenance stamped at configure time: git SHA, compiler
 * identity and flags, and build type. Consumed by the perf-harness
 * JSON schema (v2 `provenance` block) and telemetry trace headers so
 * every artifact names the build that produced it.
 */

#ifndef HIPSTER_COMMON_BUILD_INFO_HH
#define HIPSTER_COMMON_BUILD_INFO_HH

namespace hipster
{

/** Short git SHA of the source tree, or "unknown" outside git. */
const char *buildGitSha();

/** Compiler id + version, e.g. "GNU 13.2.0". */
const char *buildCompilerId();

/** C++ flags the build was configured with (base + build-type). */
const char *buildCompilerFlags();

/** CMake build type, e.g. "Release" ("" when unset). */
const char *buildTypeName();

} // namespace hipster

#endif // HIPSTER_COMMON_BUILD_INFO_HH
