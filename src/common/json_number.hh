/**
 * @file
 * Locale-independent JSON number formatting and parsing, built on
 * std::to_chars / std::from_chars. printf("%g")-style emitters and
 * strtod-style parsers obey LC_NUMERIC, so a process running under
 * de_DE.UTF-8 writes "3,14" — invalid JSON — and fails to read the
 * numbers it wrote; stream insertion additionally applies the imbued
 * locale's thousands grouping to integers. The helpers here never
 * consult any locale, and the emitters reject non-finite values fail-
 * fast (JSON has no NaN/Infinity literals, so writing them produces
 * a file no conforming parser accepts).
 */

#ifndef HIPSTER_COMMON_JSON_NUMBER_HH
#define HIPSTER_COMMON_JSON_NUMBER_HH

#include <cstdint>
#include <string>

namespace hipster
{

/**
 * Shortest decimal string that round-trips the exact double (what a
 * JSON emitter should write). Throws FatalError on NaN/Inf — callers
 * must reject non-finite metrics before they reach the file.
 */
std::string formatJsonNumber(double value);

/** Decimal rendering of an unsigned integer, never grouped. */
std::string formatJsonNumber(std::uint64_t value);

/**
 * Parse a JSON number from text[pos..): on success returns the value,
 * advances `pos` past the number and leaves finite semantics to the
 * caller-visible contract — "nan"/"inf" spellings are rejected (they
 * are not JSON). Returns false leaving `pos` untouched when no valid
 * number starts at `pos`.
 */
bool parseJsonNumber(const std::string &text, std::size_t &pos,
                     double &out);

} // namespace hipster

#endif // HIPSTER_COMMON_JSON_NUMBER_HH
