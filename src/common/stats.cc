#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hipster
{

void
SampleStats::add(double value)
{
    samples_.push_back(value);
    sum_ += value;
    dirty_ = true;
}

void
SampleStats::addAll(const std::vector<double> &values)
{
    for (double v : values)
        add(v);
}

void
SampleStats::clear()
{
    samples_.clear();
    sorted_.clear();
    dirty_ = false;
    sum_ = 0.0;
}

double
SampleStats::mean() const
{
    return samples_.empty() ? 0.0 : sum_ / samples_.size();
}

void
SampleStats::ensureSorted() const
{
    if (dirty_ || sorted_.size() != samples_.size()) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
}

double
SampleStats::min() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return sorted_.front();
}

double
SampleStats::max() const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    return sorted_.back();
}

double
SampleStats::stddev() const
{
    const std::size_t n = samples_.size();
    if (n < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : samples_)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / (n - 1));
}

double
SampleStats::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    HIPSTER_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    ensureSorted();
    if (sorted_.size() == 1)
        return sorted_.front();
    const double rank = (p / 100.0) * (sorted_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - lo;
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void
OnlineStats::add(double value)
{
    if (n_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++n_;
    sum_ += value;
    const double delta = value - mean_;
    mean_ += delta / n_;
    m2_ += delta * (value - mean_);
}

void
OnlineStats::clear()
{
    *this = OnlineStats();
}

double
OnlineStats::variance() const
{
    return n_ >= 2 ? m2_ / (n_ - 1) : 0.0;
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const std::size_t total = n_ + other.n_;
    m2_ += other.m2_ +
           delta * delta * (static_cast<double>(n_) * other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    n_ = total;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo)
{
    if (buckets == 0)
        fatal("Histogram requires at least one bucket");
    if (!(hi > lo))
        fatal("Histogram range must be non-empty: [", lo, ", ", hi, ")");
    width_ = (hi - lo) / buckets;
    counts_.assign(buckets, 0);
}

void
Histogram::add(double value)
{
    ++total_;
    if (value < lo_) {
        ++underflow_;
        return;
    }
    const auto idx = static_cast<std::size_t>((value - lo_) / width_);
    if (idx >= counts_.size()) {
        ++overflow_;
        return;
    }
    ++counts_[idx];
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = total_ = 0;
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + width_ * i;
}

double
Histogram::bucketHi(std::size_t i) const
{
    return lo_ + width_ * (i + 1);
}

double
Histogram::percentile(double p) const
{
    HIPSTER_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (total_ == 0)
        return 0.0;
    const double target = (p / 100.0) * total_;
    double cum = static_cast<double>(underflow_);
    if (cum >= target && underflow_ > 0)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cum += counts_[i];
        if (cum >= target)
            return bucketLo(i) + width_ * 0.5;
    }
    return lo_ + width_ * counts_.size();
}

} // namespace hipster
