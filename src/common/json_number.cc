#include "common/json_number.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <system_error>

#include "common/logging.hh"

namespace hipster
{

std::string
formatJsonNumber(double value)
{
    if (!std::isfinite(value))
        fatal("formatJsonNumber: non-finite value (JSON has no "
              "NaN/Infinity literals)");
    // Shortest round-trip form; to_chars ignores the global C locale
    // and any imbued stream locale by construction.
    char buffer[64];
    const auto result =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    if (result.ec != std::errc())
        fatal("formatJsonNumber: to_chars failed");
    return std::string(buffer, result.ptr);
}

std::string
formatJsonNumber(std::uint64_t value)
{
    char buffer[32];
    const auto result =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    if (result.ec != std::errc())
        fatal("formatJsonNumber: to_chars failed");
    return std::string(buffer, result.ptr);
}

bool
parseJsonNumber(const std::string &text, std::size_t &pos, double &out)
{
    if (pos >= text.size())
        return false;
    // from_chars accepts "inf"/"nan" spellings; JSON does not. Accept
    // only the JSON number grammar's first character here, so a file
    // containing a bare NaN fails to parse instead of round-tripping.
    const char first = text[pos];
    if (first != '-' &&
        !std::isdigit(static_cast<unsigned char>(first)))
        return false;
    double value = 0.0;
    const auto result = std::from_chars(text.data() + pos,
                                        text.data() + text.size(),
                                        value);
    if (result.ec != std::errc() || !std::isfinite(value))
        return false;
    pos = static_cast<std::size_t>(result.ptr - text.data());
    out = value;
    return true;
}

} // namespace hipster
