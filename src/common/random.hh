/**
 * @file
 * Deterministic pseudo-random number generation and the distributions
 * used by the workload models.
 *
 * The generator is xoshiro256++, a small, fast, high-quality PRNG.
 * Every stochastic component of the library takes an explicit Rng (or
 * a seed) so that experiments are reproducible bit-for-bit.
 */

#ifndef HIPSTER_COMMON_RANDOM_HH
#define HIPSTER_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace hipster
{

/**
 * SplitMix64 finalizer: a stateless 64-bit mix with excellent
 * avalanche behaviour. Used to expand seeds into generator state and
 * to derive independent per-run seeds from a master seed (the sweep
 * engine), so derived streams are decorrelated and independent of
 * execution order.
 */
std::uint64_t splitMix64(std::uint64_t x);

/**
 * xoshiro256++ pseudo-random generator.
 *
 * Satisfies the essentials of UniformRandomBitGenerator so it can be
 * handed to standard-library distributions as well.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed via SplitMix64 state expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** True with probability p. */
    bool bernoulli(double p);

    /** Exponential variate with the given rate (mean = 1/rate). */
    double exponential(double rate);

    /** Standard normal variate (Box–Muller, cached pair). */
    double normal();

    /** Normal variate with mean/stddev. */
    double normal(double mean, double stddev);

    /**
     * Lognormal variate parameterised by the mean and coefficient of
     * variation of the *resulting* distribution (more convenient for
     * service-time modelling than mu/sigma of the underlying normal).
     */
    double lognormalMeanCv(double mean, double cv);

    /**
     * Fork an independent stream: derives a new generator whose state
     * is decorrelated from this one (used to give each component its
     * own stream from a single experiment seed).
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

/**
 * Zipf(α) sampler over ranks {1..n} using precomputed CDF inversion
 * (binary search). Used for the Web-Search document-popularity model
 * (the paper drives Elasticsearch with a Zipfian distribution).
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Number of ranks (n >= 1).
     * @param alpha Skew parameter (alpha >= 0; 0 is uniform).
     */
    ZipfSampler(std::size_t n, double alpha);

    /** Sample a rank in [1, n]. */
    std::size_t sample(Rng &rng) const;

    /** Probability mass of a given rank (1-based). */
    double pmf(std::size_t rank) const;

    std::size_t size() const { return cdf_.size(); }
    double alpha() const { return alpha_; }

  private:
    std::vector<double> cdf_;
    double alpha_;
};

} // namespace hipster

#endif // HIPSTER_COMMON_RANDOM_HH
