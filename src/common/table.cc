#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace hipster
{

namespace
{

/**
 * Visible width of a UTF-8 string: code points, not bytes. Cells
 * containing multi-byte glyphs (the "±" of mean-±-CI reports) would
 * otherwise be over-counted and break the column alignment.
 */
std::size_t
displayWidth(const std::string &text)
{
    std::size_t width = 0;
    for (unsigned char c : text)
        width += (c & 0xC0) != 0x80; // skip UTF-8 continuation bytes
    return width;
}

} // namespace

std::string
formatFixed(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
formatPercent(double fraction, int precision)
{
    return formatFixed(fraction * 100.0, precision) + "%";
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TextTable requires at least one column");
}

TextTable &
TextTable::newRow()
{
    rows_.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(const std::string &text)
{
    if (rows_.empty())
        newRow();
    HIPSTER_ASSERT(rows_.back().size() < headers_.size(),
                   "row has more cells than headers");
    rows_.back().push_back(text);
    return *this;
}

TextTable &
TextTable::cell(double value, int precision)
{
    return cell(formatFixed(value, precision));
}

TextTable &
TextTable::cell(long long value)
{
    return cell(std::to_string(value));
}

TextTable &
TextTable::percentCell(double fraction, int precision)
{
    return cell(formatPercent(fraction, precision));
}

std::string
TextTable::str() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

void
TextTable::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = displayWidth(headers_[c]);
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], displayWidth(row[c]));

    auto rule = [&] {
        out << '+';
        for (auto w : widths)
            out << std::string(w + 2, '-') << '+';
        out << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        out << '|';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &text = c < cells.size() ? cells[c] : "";
            out << ' ' << text
                << std::string(widths[c] - displayWidth(text), ' ')
                << " |";
        }
        out << '\n';
    };

    rule();
    line(headers_);
    rule();
    for (const auto &row : rows_)
        line(row);
    rule();
}

} // namespace hipster
