#include "common/random.hh"

#include <algorithm>
#include <cmath>

namespace hipster
{

std::uint64_t
splitMix64(std::uint64_t x)
{
    std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace
{

/** SplitMix64 step, used for seeding xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    const std::uint64_t v = x;
    x += 0x9e3779b97f4a7c15ULL;
    return splitMix64(v);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // Avoid the (astronomically unlikely) all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 0x1ULL;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53-bit mantissa => uniform in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    HIPSTER_ASSERT(hi >= lo, "uniform bounds inverted");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    HIPSTER_ASSERT(hi >= lo, "uniformInt bounds inverted");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~0ULL) - ((~0ULL) % span) - 1;
    std::uint64_t v;
    do {
        v = next();
    } while (v > limit);
    return lo + v % span;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double rate)
{
    HIPSTER_ASSERT(rate > 0.0, "exponential rate must be positive");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double z0 = mag * std::cos(2.0 * M_PI * u2);
    const double z1 = mag * std::sin(2.0 * M_PI * u2);
    cachedNormal_ = z1;
    hasCachedNormal_ = true;
    return z0;
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormalMeanCv(double mean, double cv)
{
    HIPSTER_ASSERT(mean > 0.0, "lognormal mean must be positive");
    HIPSTER_ASSERT(cv >= 0.0, "lognormal cv must be non-negative");
    if (cv == 0.0)
        return mean;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(normal(mu, std::sqrt(sigma2)));
}

Rng
Rng::fork()
{
    // Derive a child seed from two fresh draws; fine for our purposes
    // (statistical decorrelation across a handful of components).
    const std::uint64_t a = next();
    const std::uint64_t b = next();
    return Rng(a ^ rotl(b, 32) ^ 0xd1b54a32d192ed03ULL);
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha)
    : alpha_(alpha)
{
    if (n == 0)
        fatal("ZipfSampler requires at least one rank");
    if (alpha < 0.0)
        fatal("ZipfSampler skew must be non-negative, got ", alpha);
    cdf_.resize(n);
    double sum = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
        sum += 1.0 / std::pow(static_cast<double>(k), alpha);
        cdf_[k - 1] = sum;
    }
    for (auto &v : cdf_)
        v /= sum;
    cdf_.back() = 1.0; // guard against rounding
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double
ZipfSampler::pmf(std::size_t rank) const
{
    HIPSTER_ASSERT(rank >= 1 && rank <= cdf_.size(), "rank out of range");
    const double hi = cdf_[rank - 1];
    const double lo = rank >= 2 ? cdf_[rank - 2] : 0.0;
    return hi - lo;
}

} // namespace hipster
