#include "common/thread_pool.hh"

namespace hipster
{

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = 1;
    if (threads > kMaxThreads)
        fatal("ThreadPool: unreasonable thread count ", threads,
              " (max ", kMaxThreads, ")");
    workers_.reserve(threads);
    // If a std::thread fails to spawn partway through, shut down the
    // workers already running before rethrowing — otherwise their
    // joinable std::thread destructors call std::terminate.
    try {
        for (std::size_t i = 0; i < threads; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        wake_.notify_all();
        for (auto &worker : workers_)
            worker.join();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            // Drain the queue even when stopping: submitted futures
            // must always complete — including exceptionally. A task
            // that throws during the drain stores its exception into
            // the future via packaged_task below, exactly as before
            // shutdown began.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        // packaged_task captures any exception into the future.
        task();
    }
}

std::size_t
ThreadPool::defaultJobs()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

} // namespace hipster
