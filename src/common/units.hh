/**
 * @file
 * Unit typedefs and conversion helpers used across the Hipster library.
 *
 * We use plain `double` aliases rather than heavyweight strong types to
 * keep arithmetic ergonomic, but every public API documents the unit of
 * each quantity and the aliases make signatures self-describing.
 */

#ifndef HIPSTER_COMMON_UNITS_HH
#define HIPSTER_COMMON_UNITS_HH

#include <cstdint>

namespace hipster
{

/** Simulated wall-clock time in seconds. */
using Seconds = double;

/** Time in milliseconds (used for latencies, matching the paper). */
using Millis = double;

/** Frequency in GHz (matching the paper's DVFS tables). */
using GHz = double;

/** Supply voltage in volts. */
using Volts = double;

/** Power in watts. */
using Watts = double;

/** Energy in joules. */
using Joules = double;

/** Instructions per second. */
using Ips = double;

/** Request (or query) arrival/service rate in requests per second. */
using Rate = double;

/** A count of CPU instructions or abstract work units. */
using Instructions = double;

/** Fraction in [0, 1] (utilizations, load fractions, probabilities). */
using Fraction = double;

/** Core identifier within a platform (dense, 0-based). */
using CoreId = std::uint32_t;

/** Cluster identifier within a platform (dense, 0-based). */
using ClusterId = std::uint32_t;

/** Convert seconds to milliseconds. */
constexpr Millis
toMillis(Seconds s)
{
    return s * 1e3;
}

/** Convert milliseconds to seconds. */
constexpr Seconds
toSeconds(Millis ms)
{
    return ms * 1e-3;
}

} // namespace hipster

#endif // HIPSTER_COMMON_UNITS_HH
