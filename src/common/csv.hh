/**
 * @file
 * Small CSV writer/reader pair: bench binaries dump figure/table data
 * series alongside the human-readable stdout reports, and the trace
 * replay subsystem loads recorded load curves back in. Both sides
 * speak RFC 4180 quoting, so a file written by CsvWriter always
 * parses back with CsvReader.
 */

#ifndef HIPSTER_COMMON_CSV_HH
#define HIPSTER_COMMON_CSV_HH

#include <fstream>
#include <iosfwd>
#include <sstream>
#include <string>
#include <vector>

namespace hipster
{

/**
 * Streams rows of comma-separated values to a file (or any ostream).
 * Fields containing commas, quotes or newlines are quoted per RFC
 * 4180.
 */
class CsvWriter
{
  public:
    /** Write to an owned file; throws FatalError when unopenable. */
    explicit CsvWriter(const std::string &path);

    /** Write to an external stream (not owned). */
    explicit CsvWriter(std::ostream &out);

    /** Emit the header row. */
    void header(const std::vector<std::string> &columns);

    /** Begin accumulating one row; fields added with add(). */
    template <typename T>
    CsvWriter &
    add(const T &value)
    {
        std::ostringstream oss;
        oss << value;
        row_.push_back(oss.str());
        return *this;
    }

    /** Flush the accumulated row. */
    void endRow();

    /** Convenience: write an entire row at once. */
    void row(const std::vector<std::string> &fields);

    /** Number of data rows written so far (excluding the header). */
    std::size_t rowsWritten() const { return rowsWritten_; }

  private:
    void writeFields(const std::vector<std::string> &fields);
    static std::string escape(const std::string &field);

    std::ofstream file_;
    std::ostream *out_;
    std::vector<std::string> row_;
    std::size_t rowsWritten_ = 0;
};

/**
 * Parses a whole CSV file (or stream) eagerly: the first row is the
 * header, every following row is data. Fails fast with FatalError on
 * unreadable files, missing headers, unterminated quotes and ragged
 * rows (a data row whose field count differs from the header's), so
 * malformed input never silently truncates an experiment.
 */
class CsvReader
{
  public:
    /** Read and parse an entire file; FatalError when unopenable. */
    explicit CsvReader(const std::string &path);

    /** Parse from a stream; `name` labels error messages. */
    explicit CsvReader(std::istream &in,
                       const std::string &name = "<stream>");

    /** Header fields, in file order. */
    const std::vector<std::string> &columns() const { return header_; }

    /** Index of a named column; FatalError when absent. */
    std::size_t columnIndex(const std::string &column) const;

    /** Number of data rows (the header is not counted). */
    std::size_t rows() const { return rows_.size(); }

    /** One data row's fields (unescaped). */
    const std::vector<std::string> &row(std::size_t r) const;

    /** A cell as text. */
    const std::string &cell(std::size_t r, std::size_t c) const;

    /** A cell parsed as a double; FatalError on non-numeric text. */
    double number(std::size_t r, std::size_t c) const;

  private:
    void parse(std::istream &in);

    std::string name_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hipster

#endif // HIPSTER_COMMON_CSV_HH
