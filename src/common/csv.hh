/**
 * @file
 * Small CSV writer used by bench binaries to dump figure/table data
 * series alongside the human-readable stdout reports.
 */

#ifndef HIPSTER_COMMON_CSV_HH
#define HIPSTER_COMMON_CSV_HH

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace hipster
{

/**
 * Streams rows of comma-separated values to a file (or any ostream).
 * Fields containing commas, quotes or newlines are quoted per RFC
 * 4180.
 */
class CsvWriter
{
  public:
    /** Write to an owned file; throws FatalError when unopenable. */
    explicit CsvWriter(const std::string &path);

    /** Write to an external stream (not owned). */
    explicit CsvWriter(std::ostream &out);

    /** Emit the header row. */
    void header(const std::vector<std::string> &columns);

    /** Begin accumulating one row; fields added with add(). */
    template <typename T>
    CsvWriter &
    add(const T &value)
    {
        std::ostringstream oss;
        oss << value;
        row_.push_back(oss.str());
        return *this;
    }

    /** Flush the accumulated row. */
    void endRow();

    /** Convenience: write an entire row at once. */
    void row(const std::vector<std::string> &fields);

    /** Number of data rows written so far (excluding the header). */
    std::size_t rowsWritten() const { return rowsWritten_; }

  private:
    void writeFields(const std::vector<std::string> &fields);
    static std::string escape(const std::string &field);

    std::ofstream file_;
    std::ostream *out_;
    std::vector<std::string> row_;
    std::size_t rowsWritten_ = 0;
};

} // namespace hipster

#endif // HIPSTER_COMMON_CSV_HH
