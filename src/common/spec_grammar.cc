#include "common/spec_grammar.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace hipster
{

namespace
{

/** Unit label appended to rendered values ("" for plain numbers). */
const char *
unitSuffix(ParamUnit unit)
{
    switch (unit) {
    case ParamUnit::TimeMs:
        return "ms";
    case ParamUnit::TimeSec:
        return "s";
    case ParamUnit::None:
        break;
    }
    return "";
}

/** Multiplier converting a suffixed time value into `unit`. */
double
timeFactor(const std::string &suffix, ParamUnit unit)
{
    double to_seconds = 1.0;
    if (suffix == "us")
        to_seconds = 1e-6;
    else if (suffix == "ms")
        to_seconds = 1e-3;
    return unit == ParamUnit::TimeMs ? to_seconds * 1e3 : to_seconds;
}

/**
 * Hard ceiling on time-typed values in their canonical unit: 1e12 ms
 * is ~32 years, 1e12 s is ~32 millennia — far beyond any simulated
 * horizon, low enough to reject garbage like `duration=1e14s` before
 * a wrapped or saturated magnitude reaches a factory.
 */
constexpr double kMaxTimeValue = 1e12;

/**
 * Parse one override value in the canonical unit of `param`. Plain
 * numbers are taken as the canonical unit; time-typed parameters
 * also accept us/ms/s suffixes. Overflowing magnitudes and negative
 * time values fail fast here, before any schema range check, so the
 * error names the real problem even under permissive schemas.
 */
double
parseValue(const std::string &kind, const std::string &spec,
           const SpecParamInfo &param, const std::string &text)
{
    char *end = nullptr;
    errno = 0;
    const double raw = std::strtod(text.c_str(), &end);
    if (text.empty() || end == text.c_str())
        fatal(kind, " spec '", spec, "': value '", text, "' for '",
              param.key, "' is not a number");
    // strtod signals overflow with ERANGE + ±HUGE_VAL (underflow to
    // a denormal also sets ERANGE but is harmless and passes).
    if (errno == ERANGE &&
        (raw >= HUGE_VAL || raw <= -HUGE_VAL))
        fatal(kind, " spec '", spec, "': value '", text, "' for '",
              param.key, "' overflows the representable range");
    const std::string suffix(end);
    double value = raw;
    if (!suffix.empty()) {
        if (param.unit == ParamUnit::None ||
            (suffix != "us" && suffix != "ms" && suffix != "s"))
            fatal(kind, " spec '", spec, "': value '", text, "' for '",
                  param.key, "' has an invalid suffix '", suffix,
                  "'", param.unit == ParamUnit::None
                           ? ""
                           : " (us/ms/s accepted)");
        value = raw * timeFactor(suffix, param.unit);
    }
    if (!std::isfinite(value))
        fatal(kind, " spec '", spec, "': value '", text, "' for '",
              param.key, "' must be finite");
    if (param.unit != ParamUnit::None) {
        if (value < 0.0)
            fatal(kind, " spec '", spec, "': value '", text, "' for '",
                  param.key, "' is a negative duration — time values "
                  "must be >= 0");
        if (value > kMaxTimeValue)
            fatal(kind, " spec '", spec, "': value '", text, "' for '",
                  param.key, "' is beyond the supported time range "
                  "(max ", formatSpecValue(kMaxTimeValue),
                  unitSuffix(param.unit), ")");
    }
    return value;
}

} // namespace

bool
SpecParamSet::isSet(const std::string &key) const
{
    return std::any_of(values_.begin(), values_.end(),
                       [&](const auto &kv) { return kv.first == key; });
}

double
SpecParamSet::get(const std::string &key, double fallback) const
{
    for (const auto &kv : values_) {
        if (kv.first == key)
            return kv.second;
    }
    return fallback;
}

bool
SpecParamSet::getBool(const std::string &key, bool fallback) const
{
    return get(key, fallback ? 1.0 : 0.0) != 0.0;
}

void
SpecParamSet::set(const std::string &key, double value)
{
    values_.emplace_back(key, value);
}

std::string
formatSpecValue(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%g", value);
    return buffer;
}

std::string
specParamLine(const SpecParamInfo &param)
{
    const std::string unit = unitSuffix(param.unit);
    std::string line =
        param.key + "=" + formatSpecValue(param.defaultValue) + unit;
    if (param.boolean)
        line += " (0|1)";
    else
        line += " in [" + formatSpecValue(param.minValue) + unit +
                ", " + formatSpecValue(param.maxValue) + unit + "]";
    if (param.integer)
        line += " (integer)";
    if (!unit.empty())
        line += " (us/ms/s suffixes accepted)";
    return line + " — " + param.doc;
}

std::string
specSchemaSummary(const std::string &name,
                  const std::vector<SpecParamInfo> &params)
{
    if (params.empty())
        return "'" + name + "' takes no parameters";
    std::string out = "'" + name + "' parameters:";
    for (const SpecParamInfo &param : params)
        out += "\n  " + specParamLine(param);
    return out;
}

std::string
specHead(const std::string &spec)
{
    const std::size_t colon = spec.find(':');
    return colon == std::string::npos ? spec : spec.substr(0, colon);
}

std::string
specHeadToken(const std::string &text, std::size_t pos)
{
    std::size_t end = pos;
    while (end < text.size() &&
           (std::islower(static_cast<unsigned char>(text[end])) ||
            std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '_' || text[end] == '-'))
        ++end;
    return text.substr(pos, end - pos);
}

void
parseSpecParams(const std::string &kind, const std::string &spec,
                const std::string &name,
                const std::vector<SpecParamInfo> &schema,
                SpecParamSet &out)
{
    out = SpecParamSet{};
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos)
        return;

    const std::string argText = spec.substr(colon + 1);
    if (argText.empty())
        fatal(kind, " spec '", spec, "': empty parameter list after "
              "':'; ", specSchemaSummary(name, schema));

    std::size_t pos = 0;
    while (pos <= argText.size()) {
        const std::size_t comma = argText.find(',', pos);
        const std::string pair =
            argText.substr(pos, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - pos);
        pos = comma == std::string::npos ? argText.size() + 1
                                         : comma + 1;

        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == pair.size())
            fatal(kind, " spec '", spec, "': malformed override '",
                  pair, "' (expected key=value); ",
                  specSchemaSummary(name, schema));
        const std::string key = pair.substr(0, eq);
        const std::string valueText = pair.substr(eq + 1);

        const auto param_it = std::find_if(
            schema.begin(), schema.end(),
            [&](const SpecParamInfo &p) { return p.key == key; });
        // Name the rejecting stage explicitly: in composed specs
        // (hazard:a+b, trace pipelines) the full text alone doesn't
        // say which stage's schema refused the key.
        if (param_it == schema.end())
            fatal(kind, " spec '", spec, "': unknown key '", key,
                  "' (rejected by ", kind, " '", name, "'); ",
                  specSchemaSummary(name, schema));
        if (out.isSet(key))
            fatal(kind, " spec '", spec, "': duplicate key '", key,
                  "'");

        const double value = parseValue(kind, spec, *param_it,
                                        valueText);
        if (param_it->boolean && value != 0.0 && value != 1.0)
            fatal(kind, " spec '", spec, "': '", key,
                  "' is a flag and takes 0 or 1, got ", valueText);
        if (param_it->integer && std::floor(value) != value)
            fatal(kind, " spec '", spec, "': '", key,
                  "' takes an integer, got ", valueText);
        if (value < param_it->minValue || value > param_it->maxValue)
            fatal(kind, " spec '", spec, "': ", key, "=", valueText,
                  " is out of range; ", specParamLine(*param_it));
        out.set(key, value);
    }
}

std::vector<std::string>
splitSpecList(const std::string &list,
              const std::function<bool(const std::string &)> &isHead)
{
    std::vector<std::string> specs;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= list.size(); ++i) {
        const bool hard_break = i == list.size() || list[i] == ';';
        const bool head_comma = !hard_break && list[i] == ',' &&
                                isHead(specHeadToken(list, i + 1));
        if (!hard_break && !head_comma)
            continue;
        specs.push_back(list.substr(start, i - start));
        start = i + 1;
    }
    return specs;
}

} // namespace hipster
