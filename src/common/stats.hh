/**
 * @file
 * Statistics helpers: exact percentile estimation over a sample
 * buffer, online mean/variance accumulation, and fixed-width
 * histograms. These back the QoS monitor's tail-latency computation
 * and the experiment reports.
 */

#ifndef HIPSTER_COMMON_STATS_HH
#define HIPSTER_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace hipster
{

/**
 * Collects a sample set and answers exact order-statistics queries.
 *
 * Percentiles use the nearest-rank-with-interpolation definition
 * (linear interpolation between closest ranks, the same convention as
 * numpy.percentile's default), which is what the paper's analysis
 * scripts would produce.
 */
class SampleStats
{
  public:
    SampleStats() = default;

    /** Add one observation. */
    void add(double value);

    /** Add many observations. */
    void addAll(const std::vector<double> &values);

    /** Remove all observations. */
    void clear();

    /** Number of observations so far. */
    std::size_t count() const { return samples_.size(); }

    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Minimum observation (0 when empty). */
    double min() const;

    /** Maximum observation (0 when empty). */
    double max() const;

    /** Sum of observations. */
    double sum() const { return sum_; }

    /** Unbiased sample standard deviation (0 when count < 2). */
    double stddev() const;

    /**
     * p-th percentile with linear interpolation, p in [0, 100].
     * Returns 0 when empty.
     */
    double percentile(double p) const;

    /** Read-only access to the raw samples (unsorted). */
    const std::vector<double> &samples() const { return samples_; }

  private:
    /** Sort the scratch copy if new samples arrived since last query. */
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = false;
    double sum_ = 0.0;
};

/**
 * Online (streaming) mean/variance via Welford's algorithm; O(1)
 * memory, suitable for per-interval counters that never need
 * percentiles.
 */
class OnlineStats
{
  public:
    void add(double value);
    void clear();

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const OnlineStats &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Fixed-width histogram over [lo, hi) with under/overflow buckets.
 * Used for latency distribution dumps in the experiment reports.
 */
class Histogram
{
  public:
    /**
     * @param lo      Lower bound of the tracked range.
     * @param hi      Upper bound of the tracked range (hi > lo).
     * @param buckets Number of equal-width buckets (>= 1).
     */
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double value);
    void clear();

    std::size_t count() const { return total_; }
    std::size_t bucketCount() const { return counts_.size(); }
    std::size_t bucket(std::size_t i) const { return counts_.at(i); }
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }

    /** Inclusive lower edge of bucket i. */
    double bucketLo(std::size_t i) const;

    /** Exclusive upper edge of bucket i. */
    double bucketHi(std::size_t i) const;

    /**
     * Approximate p-th percentile from bucket midpoints (p in
     * [0,100]). Underflow counts resolve to `lo`, overflow to `hi`.
     */
    double percentile(double p) const;

  private:
    double lo_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

} // namespace hipster

#endif // HIPSTER_COMMON_STATS_HH
