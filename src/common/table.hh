/**
 * @file
 * ASCII table formatter for bench/example stdout reports. Produces
 * aligned, boxed tables that mirror the rows the paper's tables and
 * figure annotations report.
 */

#ifndef HIPSTER_COMMON_TABLE_HH
#define HIPSTER_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace hipster
{

/**
 * Accumulates rows of string cells and renders them with
 * column-aligned padding. Numeric convenience adders format doubles
 * with a fixed precision.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new (empty) row. */
    TextTable &newRow();

    /** Append a string cell to the current row. */
    TextTable &cell(const std::string &text);

    /** Append a formatted numeric cell (fixed, `precision` digits). */
    TextTable &cell(double value, int precision = 2);

    /** Append an integer cell. */
    TextTable &cell(long long value);

    /** Append a percentage cell, e.g. 0.183 -> "18.3%". */
    TextTable &percentCell(double fraction, int precision = 1);

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Render to a string. */
    std::string str() const;

    /** Render to a stream. */
    void print(std::ostream &out) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision into a string. */
std::string formatFixed(double value, int precision);

/** Format a fraction as a percentage string with '%' suffix. */
std::string formatPercent(double fraction, int precision = 1);

} // namespace hipster

#endif // HIPSTER_COMMON_TABLE_HH
