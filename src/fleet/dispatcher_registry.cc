#include "fleet/dispatcher_registry.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hipster
{

namespace
{

constexpr const char *kPrefix = "dispatch:";

/** The spec with any `dispatch:` prefix removed. */
std::string
stripPrefix(const std::string &spec)
{
    const std::string prefix(kPrefix);
    if (spec.rfind(prefix, 0) == 0)
        return spec.substr(prefix.size());
    return spec;
}

} // namespace

DispatcherRegistry &
DispatcherRegistry::instance()
{
    static DispatcherRegistry registry = [] {
        DispatcherRegistry r;
        r.registerBuiltins();
        return r;
    }();
    return registry;
}

void
DispatcherRegistry::add(DispatcherInfo info, Factory factory)
{
    if (has(info.name))
        fatal("DispatcherRegistry: duplicate dispatcher '", info.name,
              "'");
    entries_.push_back(std::move(info));
    factories_.push_back(std::move(factory));
}

bool
DispatcherRegistry::has(const std::string &name) const
{
    return std::any_of(entries_.begin(), entries_.end(),
                       [&](const DispatcherInfo &e) {
                           return e.name == name;
                       });
}

std::unique_ptr<Dispatcher>
DispatcherRegistry::make(const std::string &spec) const
{
    const std::string body = stripPrefix(spec);
    const std::string head = specHead(body);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].name != head)
            continue;
        SpecParamSet params;
        parseSpecParams("dispatcher", body, head, entries_[i].params,
                        params);
        return factories_[i](params);
    }
    std::string known;
    for (const DispatcherInfo &e : entries_)
        known += (known.empty() ? "" : ", ") + e.name;
    fatal("unknown dispatcher '", head, "' in spec '", spec,
          "'; known dispatchers: ", known,
          " (prefix with 'dispatch:', e.g. dispatch:", entries_.empty()
              ? "round-robin"
              : entries_.front().name,
          ")");
}

std::string
DispatcherRegistry::catalogText() const
{
    std::string out = "Fleet dispatchers (spec grammar: dispatch:name"
                      "[:key=value,...]):\n";
    for (const DispatcherInfo &e : entries_) {
        out += "  " + std::string(kPrefix) + e.name + " — " +
               e.summary + "\n";
        for (const SpecParamInfo &p : e.params)
            out += "      " + specParamLine(p) + "\n";
    }
    return out;
}

void
DispatcherRegistry::registerBuiltins()
{
    add({"round-robin",
         "uniform split: every node gets 1/N of the offered load",
         {}},
        [](const SpecParamSet &) {
            return std::make_unique<RoundRobinDispatcher>();
        });

    add({"least-loaded",
         "share ~ capacity * (1 - last utilization): classic "
         "join-the-least-loaded front end",
         {}},
        [](const SpecParamSet &) {
            return std::make_unique<LeastLoadedDispatcher>();
        });

    add({"power-aware",
         "share ~ capacity * (capacity/TDP)^gamma: concentrates load "
         "on power-efficient nodes",
         {{"gamma", "efficiency exponent (0 = capacity-proportional)",
           1.0, 0.0, 16.0, false, false, ParamUnit::None}}},
        [](const SpecParamSet &params) {
            return std::make_unique<PowerAwareDispatcher>(
                params.get("gamma", 1.0));
        });

    add({"cp",
         "CP/ILP-style greedy quanta assignment scoring predicted "
         "slack and power headroom (after arXiv:2009.10348)",
         {{"quanta", "load quanta assigned greedily per interval",
           64.0, 1.0, 4096.0, true, false, ParamUnit::None},
          {"wslack", "weight of the predicted-slack term", 1.0, 0.0,
           100.0, false, false, ParamUnit::None},
          {"wpower", "weight of the efficiency*headroom term", 0.5,
           0.0, 100.0, false, false, ParamUnit::None},
          {"target", "per-node utilization target the slack is "
                     "measured against",
           0.85, 0.05, 1.0, false, false, ParamUnit::None}}},
        [](const SpecParamSet &params) {
            return std::make_unique<CpDispatcher>(
                static_cast<std::size_t>(params.get("quanta", 64.0)),
                params.get("wslack", 1.0), params.get("wpower", 0.5),
                params.get("target", 0.85));
        });

    add({"cp-migrate",
         "cp extended with per-move cost terms: plans explicit work "
         "moves only while the scoring gain beats the modeled "
         "migration cost (migration-aware)",
         {{"quanta", "load quanta assigned greedily per interval",
           64.0, 1.0, 4096.0, true, false, ParamUnit::None},
          {"wslack", "weight of the predicted-slack term", 1.0, 0.0,
           100.0, false, false, ParamUnit::None},
          {"wpower", "weight of the efficiency*headroom term", 0.5,
           0.0, 100.0, false, false, ParamUnit::None},
          {"target", "per-node utilization target the slack is "
                     "measured against",
           0.85, 0.05, 1.0, false, false, ParamUnit::None},
          {"wcost", "weight of the migration-cost penalty", 20.0, 0.0,
           100.0, false, false, ParamUnit::None},
          {"horizon", "amortization horizon for move latency",
           120.0, 1.0, 1e6, false, false, ParamUnit::TimeSec},
          {"maxmoves", "most quanta moved per settle window", 2.0, 0.0,
           4096.0, true, false, ParamUnit::None}}},
        [](const SpecParamSet &params) {
            return std::make_unique<CpMigrateDispatcher>(
                static_cast<std::size_t>(params.get("quanta", 64.0)),
                params.get("wslack", 1.0), params.get("wpower", 0.5),
                params.get("target", 0.85), params.get("wcost", 20.0),
                params.get("horizon", 120.0),
                static_cast<std::size_t>(
                    params.get("maxmoves", 2.0)));
        });

    add({"rebalance",
         "capacity-proportional routing plus migration-aware drains: "
         "moves resident share off hot or QoS-violating nodes toward "
         "the healthy node with the best cost-adjusted headroom",
         {{"hot", "utilization above which a node is drained", 0.90,
           0.10, 1.0, false, false, ParamUnit::None},
          {"drain", "fraction of a hot node's resident share drained "
                    "per settle window",
           0.10, 0.0, 1.0, false, false, ParamUnit::None},
          {"wcost", "weight of the migration-cost penalty", 20.0, 0.0,
           100.0, false, false, ParamUnit::None},
          {"horizon", "amortization horizon for move latency",
           120.0, 1.0, 1e6, false, false, ParamUnit::TimeSec}}},
        [](const SpecParamSet &params) {
            return std::make_unique<RebalanceDispatcher>(
                params.get("hot", 0.90), params.get("drain", 0.10),
                params.get("wcost", 20.0),
                params.get("horizon", 120.0));
        });
}

std::unique_ptr<Dispatcher>
makeDispatcher(const std::string &spec)
{
    return DispatcherRegistry::instance().make(spec);
}

bool
isDispatcherSpec(const std::string &spec)
{
    try {
        makeDispatcher(spec);
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

std::string
canonicalDispatcherLabel(const std::string &spec)
{
    return std::string(kPrefix) + stripPrefix(spec);
}

std::vector<std::string>
splitDispatcherList(const std::string &list)
{
    return splitSpecList(list, [](const std::string &head) {
        return head == "dispatch" ||
               DispatcherRegistry::instance().has(head);
    });
}

} // namespace hipster
