/**
 * @file
 * Registry for the fleet dispatcher axis. Dispatcher specs ride the
 * shared common/spec_grammar, carry a canonical `dispatch:` prefix
 * so sweep/CSV labels are self-describing ("dispatch:cp:quanta=128"),
 * and fail fast with catalog-enumerating errors exactly like the
 * workload/platform/trace/policy axes:
 *
 *   spec := ['dispatch:'] name [':' key '=' value (',' ...)]
 *
 *   dispatch:round-robin
 *   dispatch:least-loaded
 *   dispatch:power-aware:gamma=2
 *   dispatch:cp:quanta=64,wslack=1,wpower=0.5,target=0.85
 */

#ifndef HIPSTER_FLEET_DISPATCHER_REGISTRY_HH
#define HIPSTER_FLEET_DISPATCHER_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/spec_grammar.hh"
#include "fleet/dispatcher.hh"

namespace hipster
{

/** Catalog entry describing one registered dispatcher family. */
struct DispatcherInfo
{
    std::string name;    ///< grammar head, e.g. "cp"
    std::string summary; ///< one line for --list-dispatchers
    std::vector<SpecParamInfo> params;
};

/**
 * Name-keyed dispatcher factory. A singleton holds the built-ins;
 * custom dispatchers registered at startup become available to the
 * fleet CLI, the fleet sweep axis and the benches at once.
 */
class DispatcherRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Dispatcher>(
        const SpecParamSet &params)>;

    static DispatcherRegistry &instance();

    /** Register a dispatcher; FatalError on duplicate names. */
    void add(DispatcherInfo info, Factory factory);

    bool has(const std::string &name) const;

    /** All registered dispatchers, in registration order. */
    const std::vector<DispatcherInfo> &entries() const
    {
        return entries_;
    }

    /**
     * Build a dispatcher from a spec (with or without the
     * `dispatch:` prefix). Throws FatalError enumerating the catalog
     * on unknown names and the schema on bad parameters.
     */
    std::unique_ptr<Dispatcher> make(const std::string &spec) const;

    /** Human-readable catalog (--list-dispatchers). */
    std::string catalogText() const;

  private:
    DispatcherRegistry() = default;
    void registerBuiltins();

    std::vector<DispatcherInfo> entries_;
    std::vector<Factory> factories_;
};

/** Build a dispatcher from a spec via the global registry. */
std::unique_ptr<Dispatcher> makeDispatcher(const std::string &spec);

/** Non-throwing validation of a dispatcher spec. */
bool isDispatcherSpec(const std::string &spec);

/** The spec with its `dispatch:` prefix enforced (sweep/CSV label). */
std::string canonicalDispatcherLabel(const std::string &spec);

/** Splits a CLI dispatcher list (`;` separated; a `,` separates only
 * before a registered head or the `dispatch:` prefix). */
std::vector<std::string> splitDispatcherList(const std::string &list);

} // namespace hipster

#endif // HIPSTER_FLEET_DISPATCHER_REGISTRY_HH
