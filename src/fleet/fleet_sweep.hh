/**
 * @file
 * Fleet sweep: plugs the multi-node dispatcher axis into the
 * SweepEngine. The dispatcher specs become the policy axis and the
 * fleet label the platform axis, so the existing expansion, seed
 * derivation, scheduling, reduction, CSV writers and ASCII table all
 * work unchanged; each job runs a whole fleet through runFleet() via
 * the engine's jobRunner hook and reports the aggregated fleet
 * series as its ExperimentResult. jobs=1 and jobs=N are
 * bitwise-identical, exactly like single-node sweeps.
 */

#ifndef HIPSTER_FLEET_FLEET_SWEEP_HH
#define HIPSTER_FLEET_FLEET_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "experiments/sweep.hh"
#include "fleet/fleet.hh"

namespace hipster
{

/** Declarative description of a fleet sweep campaign. */
struct FleetSweepSpec
{
    /** The fleet every cell runs: nodes, workload, runner options.
     * Its trace/dispatcher/seed fields are overridden per job. */
    FleetSpec base;

    /** Dispatcher axis (fleet/dispatcher_registry grammar). */
    std::vector<std::string> dispatchers = {"dispatch:round-robin"};

    /** Trace axis (loadgen TraceRegistry grammar). */
    std::vector<std::string> traces = {"diurnal"};

    /** Hazard axis (hazards HazardRegistry grammar); every value is
     * applied fleet-wide, per node (see FleetSpec::hazard). */
    std::vector<std::string> hazards = {"none"};

    /** Migration axis (migration MigrationRegistry grammar). A
     * non-none value is folded into the policy-axis label as
     * "dispatch:...+migrate:..." so the expansion, reduction and CSV
     * layout stay unchanged — campaigns that keep the default
     * {"none"} produce byte-identical output to pre-migration
     * sweeps. */
    std::vector<std::string> migrations = {"none"};

    /** Telemetry spec (telemetry TelemetryRegistry grammar) applied
     * to every fleet run. File sinks fan out per job (".runNNNN"
     * path tags); pathless sinks (ring, counters) are shared
     * thread-safe across the campaign. "none" is tracing off. */
    std::string telemetry = "none";

    /** Repetitions per cell with independently derived seeds. */
    std::size_t seeds = 1;

    /** Master seed all per-run seeds derive from. */
    std::uint64_t masterSeed = 1;

    /** Keep the full fleet interval series of every run. */
    bool keepSeries = true;
};

/** Fleet-only statistics of one run (what RunSummary can't carry). */
struct FleetRunStats
{
    std::size_t jobIndex = 0;
    std::string dispatcher;
    std::string trace;
    std::string hazard = "none";
    std::string migration = "none";
    std::size_t seedIndex = 0;
    double fleetCapacity = 0.0;
    double strandedCapacity = 0.0;

    /** Whole-run migration totals (all zero under migrate:none). */
    MigrationTotals migrationTotals;
};

/** Everything a fleet sweep produced. */
struct FleetSweepResults
{
    /** Standard sweep reduction (cells keyed by dispatcher label on
     * the policy axis); feeds the CSV writers and tables as-is. */
    SweepResults sweep;

    /** Per-run fleet statistics, by job index. */
    std::vector<FleetRunStats> fleet;

    /** The campaign-shared telemetry sink (ring/counters specs only;
     * nullptr otherwise) — CLIs print its summaryText(). */
    std::shared_ptr<TelemetrySink> telemetrySink;

    /** Mean stranded capacity of a (dispatcher, trace) cell; an
     * empty trace matches the first trace swept. Returns -1 when the
     * cell is absent. */
    double meanStranded(const std::string &dispatcher,
                        const std::string &trace = "") const;
};

/**
 * Run the whole campaign across `jobs` worker threads (<= 1 runs
 * inline). `onRun` is invoked once per run, serialized in job-index
 * order (progress reporting).
 */
FleetSweepResults
runFleetSweep(const FleetSweepSpec &spec, std::size_t jobs = 1,
              const std::function<void(const SweepRun &)> &onRun = {});

} // namespace hipster

#endif // HIPSTER_FLEET_FLEET_SWEEP_HH
