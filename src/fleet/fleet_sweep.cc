#include "fleet/fleet_sweep.hh"

#include "common/logging.hh"
#include "fleet/dispatcher_registry.hh"

namespace hipster
{

namespace
{

/** The fleet-level ExperimentResult a job reports back to the sweep
 * engine: the aggregated fleet series under the dispatcher's label,
 * with the actuation totals summed over nodes. */
ExperimentResult
toExperimentResult(const FleetResult &fleet, const FleetSpec &spec,
                   bool keepSeries)
{
    ExperimentResult result;
    result.policyName = fleet.dispatcher;
    result.workloadName = spec.workload;
    result.summary = fleet.summary.fleet;
    for (const FleetNodeResult &node : fleet.nodes) {
        result.migrations += node.result.migrations;
        result.dvfsTransitions += node.result.dvfsTransitions;
        result.simEvents += node.result.simEvents;
    }
    if (keepSeries) {
        result.series.reserve(fleet.fleetSeries.size());
        for (const IntervalMetrics &m : fleet.fleetSeries)
            result.series.push_back(m);
    }
    return result;
}

} // namespace

double
FleetSweepResults::meanStranded(const std::string &dispatcher,
                                const std::string &trace) const
{
    const std::string label = canonicalDispatcherLabel(dispatcher);
    double sum = 0.0;
    std::size_t count = 0;
    std::string firstTrace;
    for (const FleetRunStats &run : fleet) {
        if (firstTrace.empty())
            firstTrace = run.trace;
        const std::string want = trace.empty() ? firstTrace : trace;
        if (run.dispatcher == label && run.trace == want) {
            sum += run.strandedCapacity;
            ++count;
        }
    }
    return count > 0 ? sum / count : -1.0;
}

FleetSweepResults
runFleetSweep(const FleetSweepSpec &spec, std::size_t jobs,
              const std::function<void(const SweepRun &)> &onRun)
{
    if (spec.dispatchers.empty())
        fatal("runFleetSweep: dispatcher axis is empty");
    if (spec.traces.empty())
        fatal("runFleetSweep: trace axis is empty");

    // Validate every axis value once, fail-fast, before any job
    // starts (the engine skips its own validation when jobRunner is
    // set — the policy axis holds dispatcher labels here).
    std::vector<std::string> labels;
    labels.reserve(spec.dispatchers.size());
    for (const std::string &dispatcher : spec.dispatchers)
        labels.push_back(canonicalDispatcherLabel(dispatcher));
    if (spec.hazards.empty())
        fatal("runFleetSweep: hazard axis is empty (use \"none\")");
    {
        FleetSpec probe = spec.base;
        for (const std::string &label : labels) {
            probe.dispatcher = label;
            for (const std::string &trace : spec.traces) {
                probe.trace = trace;
                for (const std::string &hazard : spec.hazards) {
                    probe.hazard = hazard;
                    probe.validate();
                }
            }
        }
    }

    SweepSpec sweep;
    sweep.workloads = {spec.base.workload};
    sweep.platforms = {spec.base.label()};
    sweep.traces = spec.traces;
    sweep.policies = labels;
    sweep.hazards = spec.hazards;
    sweep.seeds = spec.seeds;
    sweep.masterSeed = spec.masterSeed;
    sweep.duration = spec.base.resolvedDuration();
    sweep.runner = spec.base.runner;
    sweep.keepSeries = spec.keepSeries;

    // Pre-sized per-job slot vector: jobRunner instances run
    // concurrently and each writes only its own index, so jobs=1 and
    // jobs=N fill identical vectors. The count mirrors expandJobs():
    // 1 workload x 1 platform x traces x dispatchers x hazards x
    // seeds.
    const std::size_t jobCount = spec.traces.size() * labels.size() *
                                 spec.hazards.size() * spec.seeds;
    auto stats = std::make_shared<std::vector<FleetRunStats>>(jobCount);

    const FleetSpec base = spec.base;
    const bool keepSeries = spec.keepSeries;
    sweep.jobRunner = [base, keepSeries, stats](const SweepJob &job) {
        FleetSpec fleetSpec = base;
        fleetSpec.dispatcher = job.policy;
        fleetSpec.trace = job.trace;
        fleetSpec.hazard = job.hazard;
        fleetSpec.seed = job.seed;
        const FleetResult fleet = runFleet(fleetSpec);
        FleetRunStats &slot = (*stats)[job.index];
        slot.jobIndex = job.index;
        slot.dispatcher = job.policy;
        slot.trace = job.trace;
        slot.hazard = job.hazard;
        slot.seedIndex = job.seedIndex;
        slot.fleetCapacity = fleet.summary.fleetCapacity;
        slot.strandedCapacity = fleet.summary.strandedCapacity;
        return toExperimentResult(fleet, fleetSpec, keepSeries);
    };

    SweepEngine engine(sweep);
    FleetSweepResults results;
    results.sweep = engine.run(jobs, onRun);
    results.fleet = std::move(*stats);
    return results;
}

} // namespace hipster
