#include "fleet/fleet_sweep.hh"

#include "common/logging.hh"
#include "fleet/dispatcher_registry.hh"
#include "migration/migration_registry.hh"
#include "telemetry/telemetry_registry.hh"

namespace hipster
{

namespace
{

/** The fleet-level ExperimentResult a job reports back to the sweep
 * engine: the aggregated fleet series under the dispatcher's label,
 * with the actuation totals summed over nodes. */
ExperimentResult
toExperimentResult(const FleetResult &fleet, const FleetSpec &spec,
                   bool keepSeries)
{
    ExperimentResult result;
    result.policyName = fleet.dispatcher;
    result.workloadName = spec.workload;
    result.summary = fleet.summary.fleet;
    for (const FleetNodeResult &node : fleet.nodes) {
        result.migrations += node.result.migrations;
        result.dvfsTransitions += node.result.dvfsTransitions;
        result.simEvents += node.result.simEvents;
    }
    if (keepSeries) {
        result.series.reserve(fleet.fleetSeries.size());
        for (const IntervalMetrics &m : fleet.fleetSeries)
            result.series.push_back(m);
    }
    return result;
}

/** Marker gluing a migration label onto a dispatcher label on the
 * policy axis ("dispatch:cp+migrate:hexo"). None is never folded, so
 * migration-free campaigns keep the historical label set. */
constexpr const char *kMigrateMarker = "+migrate:";

/** Split a folded policy label back into (dispatcher, migration). */
std::pair<std::string, std::string>
splitFoldedLabel(const std::string &policy)
{
    const std::size_t at = policy.find(kMigrateMarker);
    if (at == std::string::npos)
        return {policy, "none"};
    return {policy.substr(0, at), policy.substr(at + 1)};
}

} // namespace

double
FleetSweepResults::meanStranded(const std::string &dispatcher,
                                const std::string &trace) const
{
    const std::string label = canonicalDispatcherLabel(dispatcher);
    double sum = 0.0;
    std::size_t count = 0;
    std::string firstTrace;
    for (const FleetRunStats &run : fleet) {
        if (firstTrace.empty())
            firstTrace = run.trace;
        const std::string want = trace.empty() ? firstTrace : trace;
        if (run.dispatcher == label && run.trace == want) {
            sum += run.strandedCapacity;
            ++count;
        }
    }
    return count > 0 ? sum / count : -1.0;
}

FleetSweepResults
runFleetSweep(const FleetSweepSpec &spec, std::size_t jobs,
              const std::function<void(const SweepRun &)> &onRun)
{
    if (spec.dispatchers.empty())
        fatal("runFleetSweep: dispatcher axis is empty");
    if (spec.traces.empty())
        fatal("runFleetSweep: trace axis is empty");

    // Validate every axis value once, fail-fast, before any job
    // starts (the engine skips its own validation when jobRunner is
    // set — the policy axis holds dispatcher labels here).
    if (spec.hazards.empty())
        fatal("runFleetSweep: hazard axis is empty (use \"none\")");
    if (spec.migrations.empty())
        fatal("runFleetSweep: migration axis is empty (use \"none\")");
    std::vector<std::string> migrations;
    migrations.reserve(spec.migrations.size());
    for (const std::string &migration : spec.migrations)
        migrations.push_back(canonicalMigrationLabel(migration));
    // Policy-axis labels: dispatcher labels, with every non-none
    // migration folded in (see kMigrateMarker).
    std::vector<std::string> labels;
    labels.reserve(spec.dispatchers.size() * migrations.size());
    for (const std::string &dispatcher : spec.dispatchers) {
        const std::string base = canonicalDispatcherLabel(dispatcher);
        for (const std::string &migration : migrations)
            labels.push_back(migration == "none" ? base
                                                 : base + "+" + migration);
    }
    {
        FleetSpec probe = spec.base;
        for (const std::string &label : labels) {
            const auto [dispatcher, migration] = splitFoldedLabel(label);
            probe.dispatcher = dispatcher;
            probe.migration = migration;
            for (const std::string &trace : spec.traces) {
                probe.trace = trace;
                for (const std::string &hazard : spec.hazards) {
                    probe.hazard = hazard;
                    probe.validate();
                }
            }
        }
    }

    SweepSpec sweep;
    sweep.workloads = {spec.base.workload};
    sweep.platforms = {spec.base.label()};
    sweep.traces = spec.traces;
    sweep.policies = labels;
    sweep.hazards = spec.hazards;
    sweep.seeds = spec.seeds;
    sweep.masterSeed = spec.masterSeed;
    sweep.duration = spec.base.resolvedDuration();
    sweep.runner = spec.base.runner;
    sweep.keepSeries = spec.keepSeries;

    // Pre-sized per-job slot vector: jobRunner instances run
    // concurrently and each writes only its own index, so jobs=1 and
    // jobs=N fill identical vectors. The count mirrors expandJobs():
    // 1 workload x 1 platform x traces x (dispatchers x migrations)
    // x hazards x seeds.
    const std::size_t jobCount = spec.traces.size() * labels.size() *
                                 spec.hazards.size() * spec.seeds;
    auto stats = std::make_shared<std::vector<FleetRunStats>>(jobCount);

    // Telemetry is handled here rather than by the engine: jobRunner
    // campaigns bypass the engine's default wiring, so the per-run
    // contexts (shared pathless sink, ".runNNNN" file fan-out) are
    // built in the job lambda itself.
    const TelemetryConfig telemetryConfig =
        parseTelemetryConfig(spec.telemetry);
    std::shared_ptr<TelemetrySink> sharedSink;
    if (!telemetryConfig.isNone() && telemetryConfig.path.empty())
        sharedSink = makeTelemetrySink(telemetryConfig);

    const FleetSpec base = spec.base;
    const bool keepSeries = spec.keepSeries;
    sweep.jobRunner = [base, keepSeries, stats, telemetryConfig,
                       sharedSink](const SweepJob &job) {
        const auto [dispatcher, migration] = splitFoldedLabel(job.policy);
        FleetSpec fleetSpec = base;
        fleetSpec.dispatcher = dispatcher;
        fleetSpec.migration = migration;
        fleetSpec.trace = job.trace;
        fleetSpec.hazard = job.hazard;
        fleetSpec.seed = job.seed;
        fleetSpec.telemetryContext = makeRunTelemetryContext(
            telemetryConfig, sharedSink, job.index);
        const FleetResult fleet = runFleet(fleetSpec);
        FleetRunStats &slot = (*stats)[job.index];
        slot.jobIndex = job.index;
        slot.dispatcher = dispatcher;
        slot.trace = job.trace;
        slot.hazard = job.hazard;
        slot.migration = fleet.migration;
        slot.seedIndex = job.seedIndex;
        slot.fleetCapacity = fleet.summary.fleetCapacity;
        slot.strandedCapacity = fleet.summary.strandedCapacity;
        slot.migrationTotals = fleet.summary.migration;
        ExperimentResult result =
            toExperimentResult(fleet, fleetSpec, keepSeries);
        // Report the folded label back so sweep cells keyed by the
        // policy axis keep dispatcher and migration distinct.
        result.policyName = job.policy;
        return result;
    };

    SweepEngine engine(sweep);
    FleetSweepResults results;
    results.sweep = engine.run(jobs, onRun);
    results.fleet = std::move(*stats);
    results.telemetrySink = sharedSink;
    return results;
}

} // namespace hipster
