#include "fleet/fleet.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "experiments/experiment_spec.hh"
#include "experiments/scenario.hh"
#include "fleet/dispatcher_registry.hh"
#include "hazards/hazard_registry.hh"
#include "loadgen/trace_registry.hh"
#include "migration/migration_registry.hh"
#include "telemetry/telemetry_registry.hh"
#include "monitor/qos_monitor.hh"
#include "platform/platform_registry.hh"
#include "workloads/service_model.hh"
#include "workloads/workload_registry.hh"

namespace hipster
{

namespace
{

/** Local load is capped here: past 2x a node's capacity the queue is
 * saturated anyway, and an unbounded ratio would let a tiny share on
 * a tiny node explode the DES event count. */
constexpr Fraction kMaxLocalLoad = 2.0;

/** Node-seed stream constant (SplitMix64 golden gamma). */
constexpr std::uint64_t kSeedGamma = 0x9e3779b97f4a7c15ULL;

/** Deterministic per-node seed, independent of every other node. */
std::uint64_t
nodeSeed(std::uint64_t fleetSeed, std::size_t node)
{
    return splitMix64(fleetSeed + kSeedGamma * (node + 1));
}

/** The per-node ExperimentSpec a fleet node resolves to. The trace
 * is a placeholder: every interval's offered load is overridden with
 * the dispatcher's routed share. */
ExperimentSpec
nodeExperiment(const FleetSpec &fleet, const FleetNodeSpec &node,
               std::size_t index)
{
    ExperimentSpec spec;
    spec.workload = fleet.workload;
    spec.platform = node.platform;
    spec.trace = "constant:0";
    spec.policy = node.policy;
    spec.hazard = fleet.hazard;
    spec.duration = fleet.duration;
    spec.durationScale = fleet.durationScale;
    spec.seed = nodeSeed(fleet.seed, index);
    spec.runner = fleet.runner;
    return spec;
}

/** Capacity a node's in-force CoreConfig could serve (fleet load
 * units): the powered fraction of its max capacity. */
double
poweredCapacity(const CoreConfig &config, const ServiceModel &model,
                const LcAppParams &params)
{
    double rate = 0.0;
    if (config.nBig > 0 && config.bigFreq > 0.0)
        rate += config.nBig /
                model.meanServiceTime(CoreType::Big, config.bigFreq);
    if (config.nSmall > 0 && config.smallFreq > 0.0)
        rate += config.nSmall /
                model.meanServiceTime(CoreType::Small, config.smallFreq);
    const double fullRate = params.maxLoad * params.loadScale;
    return fullRate > 0.0 ? rate / fullRate : 0.0;
}

} // namespace

FleetNodeSpec
parseFleetNode(const std::string &text)
{
    FleetNodeSpec node;
    const std::size_t at = text.find('@');
    if (at == std::string::npos) {
        node.platform = text;
    } else {
        node.platform = text.substr(0, at);
        node.policy = text.substr(at + 1);
    }
    if (node.platform.empty() || node.policy.empty())
        fatal("fleet node '", text, "' is malformed — expected "
              "platform[@policy], e.g. juno@hipster-in or "
              "hetero:big=2,little=8@static-big");
    // Fail fast on a bad platform with the catalog-enumerating
    // registry error, like every other spec axis.
    validatePlatformSpec(node.platform);
    return node;
}

std::vector<FleetNodeSpec>
parseFleetNodes(const std::string &list)
{
    std::vector<FleetNodeSpec> nodes;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= list.size(); ++i) {
        if (i < list.size() && list[i] != ';')
            continue;
        const std::string part = list.substr(start, i - start);
        if (!part.empty())
            nodes.push_back(parseFleetNode(part));
        start = i + 1;
    }
    if (nodes.empty())
        fatal("fleet node list '", list, "' is empty — expected a "
              "';'-separated platform[@policy] list");
    return nodes;
}

void
FleetSpec::validate() const
{
    if (nodes.empty())
        fatal("FleetSpec: a fleet needs at least one node");
    if (durationScale <= 0.0)
        fatal("FleetSpec: durationScale must be > 0");
    makeDispatcher(dispatcher); // throws with the catalog on error
    validateMigrationSpec(migration);
    validateTelemetrySpec(telemetry);
    validateTraceSpec(trace, resolvedDuration());
    for (std::size_t i = 0; i < nodes.size(); ++i)
        nodeExperiment(*this, nodes[i], i).validate();
}

Seconds
FleetSpec::resolvedDuration() const
{
    const Seconds base =
        duration > 0.0 ? duration : diurnalDurationFor(workload);
    return base * durationScale;
}

std::string
FleetSpec::label() const
{
    std::string out = "fleet" + std::to_string(nodes.size()) + "[";
    for (std::size_t i = 0; i < nodes.size(); ++i)
        out += (i ? "|" : "") + nodes[i].label();
    return out + "]";
}

std::shared_ptr<const LoadTrace>
FleetNodeResult::shardTrace() const
{
    if (shard.empty())
        return std::make_shared<ConstantTrace>(0.0);
    return std::make_shared<PiecewiseTrace>(shard);
}

double
nodeCapacity(const PlatformSpec &platform, const LcWorkloadDef &workload)
{
    const ServiceModel model(workload.params.demand);
    double rate = 0.0;
    for (const ClusterSpec &cluster : platform.clusters) {
        if (cluster.coreCount == 0)
            continue;
        rate += cluster.coreCount /
                model.meanServiceTime(cluster.type,
                                      cluster.maxFrequency());
    }
    const double fullRate =
        workload.params.maxLoad * workload.params.loadScale;
    if (fullRate <= 0.0)
        fatal("nodeCapacity: workload '", workload.params.name,
              "' has no max load");
    return rate / fullRate;
}

FleetResult
runFleet(const FleetSpec &spec)
{
    spec.validate();
    const Seconds duration = spec.resolvedDuration();
    const Seconds dt = spec.runner.interval;
    const auto intervals =
        static_cast<std::size_t>(duration / dt + 0.5);

    const LcWorkloadDef def = makeWorkloadFromSpec(spec.workload);
    const ServiceModel model(def.params.demand);
    const auto dispatcher = makeDispatcher(spec.dispatcher);
    const auto fleetTrace =
        makeTrace(spec.trace, duration, spec.seed + 100);
    const LoadBucketQuantizer quantizer(spec.runner.reportBucketPercent);

    FleetResult result;
    result.dispatcher = canonicalDispatcherLabel(spec.dispatcher);
    result.migration = canonicalMigrationLabel(spec.migration);

    // --- Build every node: fresh platform, app, policy.
    const std::size_t n = spec.nodes.size();

    // One telemetry sink for the whole fleet: the fleet level emits
    // dispatch/migration events untagged-by-node or per-node, and
    // every node emits its own decisions through a node-tagged view
    // of the same context. Null context = tracing off = bitwise
    // no-op.
    const std::shared_ptr<TelemetryContext> telemetry =
        spec.telemetryContext ? spec.telemetryContext
                              : makeTelemetryContext(spec.telemetry);
    if (telemetry) {
        emitTelemetryHeader(
            *telemetry,
            {{"workload", spec.workload},
             {"fleet", spec.label()},
             {"trace", spec.trace},
             {"dispatcher", result.dispatcher},
             {"hazard", canonicalHazardLabel(spec.hazard)},
             {"migration", result.migration}},
            {{"seed", static_cast<double>(spec.seed)},
             {"duration_s", duration},
             {"interval_s", dt},
             {"nodes", static_cast<double>(n)}});
    }
    std::vector<ExperimentRunner> runners;
    std::vector<std::unique_ptr<TaskPolicy>> policies;
    runners.reserve(n);
    policies.reserve(n);
    result.nodes.resize(n);
    double fleetCapacity = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        ExperimentSpec node = nodeExperiment(spec, spec.nodes[i], i);
        if (telemetry)
            node.telemetryContext =
                telemetry->forNode(static_cast<int>(i));
        runners.push_back(node.makeRunner());
        policies.push_back(node.makePolicyFor(runners[i].platform()));
        result.nodes[i].spec = spec.nodes[i];
        result.nodes[i].capacity =
            nodeCapacity(runners[i].platform().spec(), def);
        result.nodes[i].tdp = runners[i].platform().tdp();
        result.nodes[i].shard.reserve(intervals);
        fleetCapacity += result.nodes[i].capacity;
    }

    // --- Migration: a priced model turns the dispatcher's share
    // vector into explicit moves of resident load (see
    // migration/migration.hh); migrate:none keeps the stateless
    // re-routing path untouched.
    const std::unique_ptr<MigrationModel> migrationModel =
        makeMigrationModel(spec.migration);
    std::unique_ptr<MigrationEngine> migration;
    if (migrationModel) {
        std::vector<std::string> isas(n);
        for (std::size_t i = 0; i < n; ++i)
            isas[i] = runners[i].platform().spec().isa;
        migration = std::make_unique<MigrationEngine>(
            *migrationModel, std::move(isas));
        result.migrationSeries.reserve(intervals);
    }

    // --- Lockstep interval loop: route, step every node, aggregate.
    for (std::size_t i = 0; i < n; ++i)
        runners[i].beginRun(*policies[i], intervals);

    // Rack-level blast radius: one nodefail:blast=K failure downs
    // the whole contiguous rack of K nodes its victim belongs to.
    std::uint32_t blast = 1;
    for (std::size_t i = 0; i < n; ++i) {
        if (runners[i].hazards())
            blast = std::max(blast,
                             runners[i].hazards()->blastRadius());
    }

    std::vector<DispatchNodeView> views(n);
    std::vector<double> shares;
    std::vector<double> norm(n, 0.0);
    std::vector<double> served;
    std::vector<MigrationMove> plannedMoves;
    std::vector<char> down(n, 0);
    result.fleetSeries.reserve(intervals);
    double strandedSum = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        views[i].isa = runners[i].platform().spec().isa;
    for (std::size_t k = 0; k < intervals; ++k) {
        const Seconds t0 = k * dt;
        const Fraction fleetLoad = fleetTrace->at(t0);

        // Failed nodes advertise zero capacity and receive no
        // traffic — the dispatcher re-routes around them until their
        // hazard timeline restores them.
        for (std::size_t i = 0; i < n; ++i) {
            HazardEngine *hazards = runners[i].hazards();
            down[i] = hazards && hazards->nodeDown(t0) ? 1 : 0;
        }
        if (blast > 1) {
            for (std::size_t rack = 0; rack < n; rack += blast) {
                const std::size_t end = std::min(
                    rack + static_cast<std::size_t>(blast), n);
                char any = 0;
                for (std::size_t i = rack; i < end; ++i)
                    any |= down[i];
                for (std::size_t i = rack; i < end; ++i)
                    down[i] = any;
            }
        }

        for (std::size_t i = 0; i < n; ++i) {
            views[i].capacity = down[i] ? 0.0 : result.nodes[i].capacity;
            views[i].tdp = result.nodes[i].tdp;
            views[i].qosTarget = def.params.qosTargetMs;
        }
        dispatcher->route(views, fleetLoad, shares);
        if (shares.size() != n)
            fatal("dispatcher '", dispatcher->name(),
                  "' returned ", shares.size(), " shares for ", n,
                  " nodes");
        std::size_t upCount = 0;
        double shareSum = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double s = shares[i];
            if (!(s >= 0.0) || !std::isfinite(s))
                fatal("dispatcher '", dispatcher->name(),
                      "' returned an invalid share");
            if (down[i]) {
                shares[i] = 0.0;
                continue;
            }
            ++upCount;
            shareSum += s;
        }

        // Normalized target shares. With every share zero, live
        // nodes split the load evenly; a down node gets nothing
        // either way (all-down intervals drop the whole fleet load
        // on the floor).
        for (std::size_t i = 0; i < n; ++i) {
            norm[i] = down[i] ? 0.0
                      : shareSum > 0.0
                          ? shares[i] / shareSum
                          : upCount > 0 ? 1.0 / upCount : 0.0;
        }

        const MigrationIntervalStats *moved = nullptr;
        if (migration) {
            if (dispatcher->migrationAware()) {
                MigrationPlanContext ctx;
                ctx.resident = &migration->resident();
                ctx.model = migrationModel.get();
                ctx.interval = dt;
                ctx.inFlightShare = migration->inFlightShare();
                dispatcher->planMoves(views, fleetLoad, ctx,
                                      plannedMoves);
                moved = &migration->step(k, dt, fleetLoad,
                                         fleetCapacity, norm, down,
                                         &plannedMoves, served);
            } else {
                moved = &migration->step(k, dt, fleetLoad,
                                         fleetCapacity, norm, down,
                                         nullptr, served);
            }
        }

        IntervalMetrics agg;
        agg.begin = t0;
        agg.end = t0 + dt;
        agg.offeredLoad = fleetLoad;
        agg.loadBucket = quantizer.bucket(fleetLoad);
        agg.qosTarget = def.params.qosTargetMs;
        agg.batchPresent = false;
        agg.ipsValid = true;
        double utilizationWeighted = 0.0;
        double bigFreqSum = 0.0, smallFreqSum = 0.0;
        double stranded = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double routed =
                migration ? served[i]
                          : norm[i] * fleetLoad * fleetCapacity;
            const Fraction localLoad =
                result.nodes[i].capacity > 0.0
                    ? std::clamp(routed / result.nodes[i].capacity,
                                 0.0, kMaxLocalLoad)
                    : 0.0;
            result.nodes[i].shard.emplace_back(t0, localLoad);

            if (telemetry &&
                telemetry->wants(TelemetryEventType::Dispatch, k)) {
                TelemetryEvent ev(TelemetryEventType::Dispatch, k, t0);
                ev.node = static_cast<int>(i);
                ev.add("share", norm[i])
                    .add("routed_load", routed)
                    .add("local_load", localLoad)
                    .add("down", down[i] ? 1.0 : 0.0)
                    .add("fleet_load", fleetLoad);
                telemetry->emit(std::move(ev));
            }

            const IntervalMetrics &m = runners[i].stepNext(
                *policies[i], localLoad, down[i] != 0);
            views[i].lastUtilization = m.lcUtilization;
            views[i].lastTailLatency = m.tailLatency;
            views[i].lastPower = m.power;

            agg.offeredRate += m.offeredRate;
            agg.tailLatency = std::max(agg.tailLatency, m.tailLatency);
            agg.throughput += m.throughput;
            agg.power += m.power;
            agg.energy += m.energy;
            agg.ipsValid = agg.ipsValid && m.ipsValid;
            agg.config.nBig += m.config.nBig;
            agg.config.nSmall += m.config.nSmall;
            bigFreqSum += m.config.bigFreq;
            smallFreqSum += m.config.smallFreq;
            agg.migrations += m.migrations;
            agg.dvfsTransitions += m.dvfsTransitions;
            utilizationWeighted +=
                m.lcUtilization * result.nodes[i].capacity;
            agg.dropped += m.dropped;

            const double powered =
                poweredCapacity(m.config, model, def.params);
            stranded += std::max(
                0.0, powered - localLoad * result.nodes[i].capacity);
        }
        agg.config.bigFreq = bigFreqSum / n;
        agg.config.smallFreq = smallFreqSum / n;
        agg.lcUtilization = fleetCapacity > 0.0
                                ? utilizationWeighted / fleetCapacity
                                : 0.0;
        if (fleetCapacity > 0.0)
            strandedSum += stranded / fleetCapacity;
        if (moved != nullptr) {
            if (telemetry &&
                telemetry->wants(TelemetryEventType::Migration, k)) {
                TelemetryEvent ev(TelemetryEventType::Migration, k,
                                  t0);
                ev.add("moves_started",
                       static_cast<double>(moved->movesStarted))
                    .add("in_flight_share", moved->inFlightShare)
                    .add("transit_load", moved->transitLoad)
                    .add("surge_load", moved->surgeLoad)
                    .add("blanked_load", moved->blankedLoad)
                    .add("energy_j", moved->migrationEnergy);
                telemetry->emit(std::move(ev));
            }
            // Transfer energy is billed to the fleet, attributed to
            // the interval the move started in.
            agg.energy += moved->migrationEnergy;
            agg.power += moved->migrationEnergy / dt;
            result.migrationSeries.push_back(*moved);
        }
        result.fleetSeries.push_back(agg);
    }

    for (std::size_t i = 0; i < n; ++i)
        result.nodes[i].result = runners[i].finishRun();

    result.summary.fleet = RunSummary::fromSeries(result.fleetSeries);
    result.summary.fleetCapacity = fleetCapacity;
    result.summary.strandedCapacity =
        intervals > 0 ? strandedSum / intervals : 0.0;
    if (migration)
        result.summary.migration = migration->totals();
    if (telemetry)
        telemetry->sink().flush();
    return result;
}

} // namespace hipster
