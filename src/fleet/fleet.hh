/**
 * @file
 * Fleet-scale simulation: N heterogeneous nodes (each its own
 * platform spec + per-node Hipster/baseline manager) behind a
 * front-end dispatcher. Every monitoring interval the front end
 * samples one fleet-level offered-load trace, asks the dispatcher
 * for a share vector, converts shares into per-node local load
 * fractions (of each node's own capacity) and steps every node in
 * lockstep through the ExperimentRunner incremental API; per-node
 * metrics are aggregated into a fleet interval series and reduced to
 * a FleetSummary (fleet QoS guarantee, total energy, stranded
 * capacity). A fleet run is a pure function of (FleetSpec) — the
 * per-node seeds, the fleet trace and the recorded load shards all
 * derive deterministically from the fleet seed.
 */

#ifndef HIPSTER_FLEET_FLEET_HH
#define HIPSTER_FLEET_FLEET_HH

#include <memory>
#include <string>
#include <vector>

#include "experiments/runner.hh"
#include "fleet/dispatcher.hh"
#include "loadgen/load_trace.hh"
#include "migration/migration.hh"
#include "telemetry/telemetry.hh"

namespace hipster
{

/** One node of the fleet: a platform spec bound to a policy spec. */
struct FleetNodeSpec
{
    std::string platform = "juno";
    std::string policy = "hipster-in";

    /** "platform@policy" (the CLI form). */
    std::string label() const { return platform + "@" + policy; }
};

/** Parse one "platform@policy" binding; a missing "@policy" defaults
 * to hipster-in. Throws FatalError on empty parts. */
FleetNodeSpec parseFleetNode(const std::string &text);

/** Parse a ';'-separated node list. Throws on empty lists. */
std::vector<FleetNodeSpec> parseFleetNodes(const std::string &list);

/** Declarative description of one fleet run. */
struct FleetSpec
{
    std::vector<FleetNodeSpec> nodes;

    /** Workload spec shared by every node (one service, one fleet). */
    std::string workload = "memcached";

    /** Fleet-level offered-load trace spec (fraction of total fleet
     * capacity). */
    std::string trace = "diurnal";

    /** Dispatcher spec (fleet/dispatcher_registry grammar). */
    std::string dispatcher = "dispatch:round-robin";

    /** Hazard spec applied to every node (hazards/hazard_registry
     * grammar). Each node derives independent hazard streams from
     * its own node seed, so failures/bursts are not fleet-synchronous;
     * `nodefail` additionally removes a down node from routing (its
     * capacity reads 0 and its share is forced to 0) until the
     * timeline restores it. */
    std::string hazard = "none";

    /** Work-migration spec (migration/migration_registry grammar).
     * "none" disables migration entirely — the run is then
     * bitwise-identical to the pre-migration fleet. Any other spec
     * prices explicit moves of resident load between nodes: blind
     * dispatchers churn toward their share vector and pay for it,
     * migration-aware ones (cp-migrate, rebalance) plan moves
     * against the modeled cost. */
    std::string migration = "none";

    /** Telemetry spec (telemetry/telemetry_registry grammar) for the
     * whole fleet run: one sink shared by the fleet level (dispatch
     * shares, migration activity) and every node (decisions, DVFS,
     * hazards — each stamped with its node index). "none" is tracing
     * off, bitwise-identical to a run without the axis. */
    std::string telemetry = "none";

    /** Pre-built telemetry context; when set it wins over the
     * `telemetry` spec string (the fleet sweep hands per-run sinks
     * through here). */
    std::shared_ptr<TelemetryContext> telemetryContext;

    /** Run length; 0 = the workload's diurnal default. */
    Seconds duration = 0.0;

    /** Scale factor applied to duration and learning phase. */
    double durationScale = 1.0;

    /** Fleet seed; node seeds and the trace stream derive from it. */
    std::uint64_t seed = 1;

    /** Options forwarded to every node's ExperimentRunner. */
    RunnerOptions runner;

    /** Fail-fast validation of every axis spec (nodes, workload,
     * trace, dispatcher) without running anything. */
    void validate() const;

    /** The run length after defaulting and scaling. */
    Seconds resolvedDuration() const;

    /** Compact fleet label for sweep/CSV cells:
     * "fleet4[juno@hipster-in|...]". */
    std::string label() const;
};

/** What one node produced, plus its routed-load shard. */
struct FleetNodeResult
{
    FleetNodeSpec spec;

    /** Node capacity in fleet load units (multiples of the app's
     * full Table 1 load). */
    double capacity = 0.0;

    /** Node TDP (W). */
    Watts tdp = 0.0;

    /** The node's own run (per-node series + summary). */
    ExperimentResult result;

    /** Interval-start samples of the local load the dispatcher
     * routed here (the node's shard of the fleet trace). */
    std::vector<std::pair<Seconds, Fraction>> shard;

    /** The shard as a LoadTrace view (piecewise-linear through the
     * recorded samples) — replayable through a single-node run. */
    std::shared_ptr<const LoadTrace> shardTrace() const;
};

/** Fleet-level reduction of one run. */
struct FleetSummary
{
    /** Summary over the aggregated fleet interval series. The fleet
     * tail latency of an interval is the max over nodes, so
     * qosGuarantee is the fraction of intervals where EVERY node met
     * the target. */
    RunSummary fleet;

    /** Total fleet capacity (fleet load units). */
    double fleetCapacity = 0.0;

    /**
     * Stranded capacity: mean over intervals of the powered-but-
     * unrouted capacity fraction, sum_i max(0, powered_i - routed_i)
     * / fleetCapacity, where powered_i is what node i's active
     * CoreConfig could serve and routed_i the load dispatched to it.
     * High stranded capacity = the dispatcher keeps nodes powered
     * beyond the load they receive.
     */
    double strandedCapacity = 0.0;

    /** Whole-run migration totals (all zero under migrate:none). */
    MigrationTotals migration;
};

/** Everything one fleet run produced. */
struct FleetResult
{
    /** Canonical dispatcher label ("dispatch:cp"). */
    std::string dispatcher;

    /** Canonical migration label ("none", "migrate:hexo", ...). */
    std::string migration;

    std::vector<FleetNodeResult> nodes;

    /** Aggregated per-interval fleet metrics (see runFleet). */
    std::vector<IntervalMetrics> fleetSeries;

    /** Per-interval migration activity; empty under migrate:none so
     * the fleet series itself stays byte-stable. */
    std::vector<MigrationIntervalStats> migrationSeries;

    FleetSummary summary;
};

/**
 * Node capacity in fleet load units: every core at its cluster's max
 * frequency, divided by the app's full simulated arrival rate. The
 * unit matches offered load, so a node at local load 1.0 receives
 * exactly `capacity` copies of the app's Table 1 max load.
 */
double nodeCapacity(const PlatformSpec &platform,
                    const LcWorkloadDef &workload);

/** Run one fleet campaign (see the file comment for the loop). */
FleetResult runFleet(const FleetSpec &spec);

} // namespace hipster

#endif // HIPSTER_FLEET_FLEET_HH
