/**
 * @file
 * Fleet dispatchers: the front-end routing policies that split one
 * offered-load stream across the nodes of a multi-node fleet each
 * monitoring interval. A dispatcher sees a per-node feedback view
 * (capacity, TDP, last interval's utilization / tail latency /
 * power) and yields a share vector; the fleet driver converts shares
 * into per-node local load fractions and feeds them to each node's
 * own Hipster/baseline manager. Dispatchers are stateless pure
 * functions of (views, fleet load), so fleet runs are deterministic
 * and node order is the only tiebreak.
 */

#ifndef HIPSTER_FLEET_DISPATCHER_HH
#define HIPSTER_FLEET_DISPATCHER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hh"
#include "migration/migration.hh"

namespace hipster
{

/**
 * What a dispatcher may observe about one node when routing an
 * interval: static sizing plus the previous interval's monitor
 * feedback (zeros on the first interval, like every policy's cold
 * start).
 */
struct DispatchNodeView
{
    /** Node capacity in fleet load units: how many copies of the
     * app's full offered load (Table 1 maxLoad) the node can serve
     * with every core at max DVFS. */
    double capacity = 0.0;

    /** Node TDP in watts (power-aware scoring). */
    Watts tdp = 0.0;

    /** LC utilization of the node's previous interval, [0, 1]. */
    Fraction lastUtilization = 0.0;

    /** Tail latency of the previous interval (ms; 0 before any). */
    Millis lastTailLatency = 0.0;

    /** The workload's QoS target (ms). */
    Millis qosTarget = 0.0;

    /** Mean node power of the previous interval (W). */
    Watts lastPower = 0.0;

    /** Node ISA ("arm64", "riscv64", "x86_64"): cross-ISA moves pay
     * the migration model's checkpointed path. */
    std::string isa = "arm64";
};

/**
 * What a migration-aware dispatcher may additionally observe when
 * planning explicit work moves: where the load currently lives and
 * what moving it costs.
 */
struct MigrationPlanContext
{
    /** Resident share of fleet load per node (sums to ~1). */
    const std::vector<double> *resident = nullptr;

    /** Cost model pricing each candidate move. */
    const MigrationModel *model = nullptr;

    /** Lockstep monitoring interval (s). */
    Seconds interval = 1.0;

    /** Share of fleet load currently in transit between nodes.
     * Aware planners treat a non-zero value as "moves outstanding"
     * and plan nothing until the fleet settles — one batch of moves
     * per transit window, so a slow transfer can never pile surges
     * on top of each other. */
    double inFlightShare = 0.0;
};

/**
 * Interface of one routing policy. route() must fill `shares` with
 * one non-negative entry per node summing to 1 (the driver
 * re-normalizes defensively); it is called once per monitoring
 * interval with the fleet-level offered load (fraction of total
 * fleet capacity).
 */
class Dispatcher
{
  public:
    explicit Dispatcher(std::string name) : name_(std::move(name)) {}
    virtual ~Dispatcher() = default;

    /** Registry name, e.g. "cp". */
    const std::string &name() const { return name_; }

    virtual void route(const std::vector<DispatchNodeView> &nodes,
                       Fraction fleetLoad,
                       std::vector<double> &shares) const = 0;

    /**
     * True when this dispatcher plans explicit work moves via
     * planMoves(). Blind dispatchers keep returning a fresh share
     * vector every interval and let the migration engine churn the
     * placement toward it — paying the modeled cost for every move.
     */
    virtual bool migrationAware() const { return false; }

    /**
     * Plan work moves for one interval (only called when
     * migrationAware() and the fleet runs with a migration model).
     * Implementations must emit deterministic, index-ordered moves:
     * node order is the only tiebreak, as with route().
     */
    virtual void planMoves(const std::vector<DispatchNodeView> &nodes,
                           Fraction fleetLoad,
                           const MigrationPlanContext &ctx,
                           std::vector<MigrationMove> &moves) const
    {
        (void)nodes;
        (void)fleetLoad;
        (void)ctx;
        moves.clear();
    }

  private:
    std::string name_;
};

/** Uniform split: the classic per-request round-robin front end
 * (every node sees the same share regardless of size or state). */
class RoundRobinDispatcher : public Dispatcher
{
  public:
    RoundRobinDispatcher() : Dispatcher("round-robin") {}
    void route(const std::vector<DispatchNodeView> &nodes,
               Fraction fleetLoad,
               std::vector<double> &shares) const override;
};

/**
 * Classic least-loaded routing: share proportional to each node's
 * free capacity, capacity * (1 - lastUtilization). On the cold first
 * interval this degrades to capacity-proportional routing.
 */
class LeastLoadedDispatcher : public Dispatcher
{
  public:
    LeastLoadedDispatcher() : Dispatcher("least-loaded") {}
    void route(const std::vector<DispatchNodeView> &nodes,
               Fraction fleetLoad,
               std::vector<double> &shares) const override;
};

/**
 * Power-aware routing: share proportional to
 * capacity * efficiency^gamma, where efficiency is the node's
 * capacity-per-TDP-watt normalized by the best node. gamma=0 is
 * capacity-proportional; larger gamma concentrates load on the most
 * efficient (highest capacity/TDP) nodes.
 */
class PowerAwareDispatcher : public Dispatcher
{
  public:
    explicit PowerAwareDispatcher(double gamma)
        : Dispatcher("power-aware"), gamma_(gamma)
    {
    }
    void route(const std::vector<DispatchNodeView> &nodes,
               Fraction fleetLoad,
               std::vector<double> &shares) const override;

  private:
    double gamma_;
};

/**
 * CP/ILP-flavored dispatcher (after the constraint-programming batch
 * dispatchers of Galleguillos et al., arXiv:2009.10348): the
 * interval's load is divided into `quanta` equal quanta, each
 * assigned greedily to the node maximizing
 *
 *   wslack * slack + wpower * efficiency * headroom
 *
 * where slack = (target * effectiveCapacity - assigned) / capacity
 * measures distance from the per-node utilization target (with the
 * effective capacity derated by qosTarget/lastTail while a node is
 * violating QoS — predicted slack shrinks on struggling nodes),
 * headroom = max(0, 1 - assigned/capacity) is the remaining power
 * headroom proxy, and efficiency is capacity/TDP normalized by the
 * best node. Ties break to the lowest node index, keeping the greedy
 * assignment deterministic.
 */
class CpDispatcher : public Dispatcher
{
  public:
    CpDispatcher(std::size_t quanta, double wslack, double wpower,
                 double target)
        : Dispatcher("cp"), quanta_(quanta), wslack_(wslack),
          wpower_(wpower), target_(target)
    {
    }
    void route(const std::vector<DispatchNodeView> &nodes,
               Fraction fleetLoad,
               std::vector<double> &shares) const override;

  protected:
    CpDispatcher(std::string name, std::size_t quanta, double wslack,
                 double wpower, double target)
        : Dispatcher(std::move(name)), quanta_(quanta),
          wslack_(wslack), wpower_(wpower), target_(target)
    {
    }

    std::size_t quanta_;
    double wslack_;
    double wpower_;
    double target_;
};

/**
 * cp extended with per-move cost terms (the migration-aware variant
 * of the arXiv:2009.10348 dispatcher). Routing is identical to cp;
 * under a migration model it additionally plans explicit moves of
 * one load quantum at a time, from the worst-scoring donor to the
 * best-scoring recipient, but only while the scoring gain exceeds
 *
 *   wcost * (latency(srcIsa, dstIsa)/horizon + energy/100 J)
 *
 * so expensive (large-checkpoint or cross-ISA) moves are correctly
 * declined while cheap ones drain inefficient nodes.
 */
class CpMigrateDispatcher : public CpDispatcher
{
  public:
    CpMigrateDispatcher(std::size_t quanta, double wslack,
                        double wpower, double target, double wcost,
                        Seconds horizon, std::size_t maxMoves)
        : CpDispatcher("cp-migrate", quanta, wslack, wpower, target),
          wcost_(wcost), horizon_(horizon), maxMoves_(maxMoves)
    {
    }

    bool migrationAware() const override { return true; }
    void planMoves(const std::vector<DispatchNodeView> &nodes,
                   Fraction fleetLoad,
                   const MigrationPlanContext &ctx,
                   std::vector<MigrationMove> &moves) const override;

  private:
    double wcost_;
    Seconds horizon_;
    std::size_t maxMoves_;
};

/**
 * Drain-based rebalancer: routes capacity-proportionally, and under
 * a migration model drains a fraction of the resident share off
 * every hot (utilization above `hot`) or QoS-violating node toward
 * the healthy node with the best cost-adjusted headroom — same-ISA
 * destinations win when the model makes cross-ISA moves expensive.
 */
class RebalanceDispatcher : public Dispatcher
{
  public:
    RebalanceDispatcher(double hot, double drain, double wcost,
                        Seconds horizon)
        : Dispatcher("rebalance"), hot_(hot), drain_(drain),
          wcost_(wcost), horizon_(horizon)
    {
    }

    bool migrationAware() const override { return true; }
    void route(const std::vector<DispatchNodeView> &nodes,
               Fraction fleetLoad,
               std::vector<double> &shares) const override;
    void planMoves(const std::vector<DispatchNodeView> &nodes,
                   Fraction fleetLoad,
                   const MigrationPlanContext &ctx,
                   std::vector<MigrationMove> &moves) const override;

  private:
    double hot_;
    double drain_;
    double wcost_;
    Seconds horizon_;
};

} // namespace hipster

#endif // HIPSTER_FLEET_DISPATCHER_HH
