/**
 * @file
 * Fleet dispatchers: the front-end routing policies that split one
 * offered-load stream across the nodes of a multi-node fleet each
 * monitoring interval. A dispatcher sees a per-node feedback view
 * (capacity, TDP, last interval's utilization / tail latency /
 * power) and yields a share vector; the fleet driver converts shares
 * into per-node local load fractions and feeds them to each node's
 * own Hipster/baseline manager. Dispatchers are stateless pure
 * functions of (views, fleet load), so fleet runs are deterministic
 * and node order is the only tiebreak.
 */

#ifndef HIPSTER_FLEET_DISPATCHER_HH
#define HIPSTER_FLEET_DISPATCHER_HH

#include <string>
#include <vector>

#include "common/units.hh"

namespace hipster
{

/**
 * What a dispatcher may observe about one node when routing an
 * interval: static sizing plus the previous interval's monitor
 * feedback (zeros on the first interval, like every policy's cold
 * start).
 */
struct DispatchNodeView
{
    /** Node capacity in fleet load units: how many copies of the
     * app's full offered load (Table 1 maxLoad) the node can serve
     * with every core at max DVFS. */
    double capacity = 0.0;

    /** Node TDP in watts (power-aware scoring). */
    Watts tdp = 0.0;

    /** LC utilization of the node's previous interval, [0, 1]. */
    Fraction lastUtilization = 0.0;

    /** Tail latency of the previous interval (ms; 0 before any). */
    Millis lastTailLatency = 0.0;

    /** The workload's QoS target (ms). */
    Millis qosTarget = 0.0;

    /** Mean node power of the previous interval (W). */
    Watts lastPower = 0.0;
};

/**
 * Interface of one routing policy. route() must fill `shares` with
 * one non-negative entry per node summing to 1 (the driver
 * re-normalizes defensively); it is called once per monitoring
 * interval with the fleet-level offered load (fraction of total
 * fleet capacity).
 */
class Dispatcher
{
  public:
    explicit Dispatcher(std::string name) : name_(std::move(name)) {}
    virtual ~Dispatcher() = default;

    /** Registry name, e.g. "cp". */
    const std::string &name() const { return name_; }

    virtual void route(const std::vector<DispatchNodeView> &nodes,
                       Fraction fleetLoad,
                       std::vector<double> &shares) const = 0;

  private:
    std::string name_;
};

/** Uniform split: the classic per-request round-robin front end
 * (every node sees the same share regardless of size or state). */
class RoundRobinDispatcher : public Dispatcher
{
  public:
    RoundRobinDispatcher() : Dispatcher("round-robin") {}
    void route(const std::vector<DispatchNodeView> &nodes,
               Fraction fleetLoad,
               std::vector<double> &shares) const override;
};

/**
 * Classic least-loaded routing: share proportional to each node's
 * free capacity, capacity * (1 - lastUtilization). On the cold first
 * interval this degrades to capacity-proportional routing.
 */
class LeastLoadedDispatcher : public Dispatcher
{
  public:
    LeastLoadedDispatcher() : Dispatcher("least-loaded") {}
    void route(const std::vector<DispatchNodeView> &nodes,
               Fraction fleetLoad,
               std::vector<double> &shares) const override;
};

/**
 * Power-aware routing: share proportional to
 * capacity * efficiency^gamma, where efficiency is the node's
 * capacity-per-TDP-watt normalized by the best node. gamma=0 is
 * capacity-proportional; larger gamma concentrates load on the most
 * efficient (highest capacity/TDP) nodes.
 */
class PowerAwareDispatcher : public Dispatcher
{
  public:
    explicit PowerAwareDispatcher(double gamma)
        : Dispatcher("power-aware"), gamma_(gamma)
    {
    }
    void route(const std::vector<DispatchNodeView> &nodes,
               Fraction fleetLoad,
               std::vector<double> &shares) const override;

  private:
    double gamma_;
};

/**
 * CP/ILP-flavored dispatcher (after the constraint-programming batch
 * dispatchers of Galleguillos et al., arXiv:2009.10348): the
 * interval's load is divided into `quanta` equal quanta, each
 * assigned greedily to the node maximizing
 *
 *   wslack * slack + wpower * efficiency * headroom
 *
 * where slack = (target * effectiveCapacity - assigned) / capacity
 * measures distance from the per-node utilization target (with the
 * effective capacity derated by qosTarget/lastTail while a node is
 * violating QoS — predicted slack shrinks on struggling nodes),
 * headroom = max(0, 1 - assigned/capacity) is the remaining power
 * headroom proxy, and efficiency is capacity/TDP normalized by the
 * best node. Ties break to the lowest node index, keeping the greedy
 * assignment deterministic.
 */
class CpDispatcher : public Dispatcher
{
  public:
    CpDispatcher(std::size_t quanta, double wslack, double wpower,
                 double target)
        : Dispatcher("cp"), quanta_(quanta), wslack_(wslack),
          wpower_(wpower), target_(target)
    {
    }
    void route(const std::vector<DispatchNodeView> &nodes,
               Fraction fleetLoad,
               std::vector<double> &shares) const override;

  private:
    std::size_t quanta_;
    double wslack_;
    double wpower_;
    double target_;
};

} // namespace hipster

#endif // HIPSTER_FLEET_DISPATCHER_HH
