#include "fleet/dispatcher.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hipster
{

namespace
{

/** Total fleet capacity (fleet load units). */
double
totalCapacity(const std::vector<DispatchNodeView> &nodes)
{
    double total = 0.0;
    for (const DispatchNodeView &node : nodes)
        total += node.capacity;
    return total;
}

/** Normalize `weights` into shares; falls back to a uniform split
 * when every weight vanishes (so a degenerate feedback state never
 * strands the whole load on numerics). */
void
normalize(const std::vector<double> &weights, std::vector<double> &shares)
{
    shares.assign(weights.size(), 0.0);
    double total = 0.0;
    for (const double w : weights)
        total += w;
    if (total <= 0.0) {
        if (!shares.empty())
            shares.assign(shares.size(), 1.0 / shares.size());
        return;
    }
    for (std::size_t i = 0; i < weights.size(); ++i)
        shares[i] = weights[i] / total;
}

/** capacity/TDP of each node normalized by the best node (1 = most
 * efficient); 1.0 everywhere when TDP data is missing. */
std::vector<double>
relativeEfficiency(const std::vector<DispatchNodeView> &nodes)
{
    std::vector<double> eff(nodes.size(), 1.0);
    double best = 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        eff[i] = nodes[i].tdp > 0.0 ? nodes[i].capacity / nodes[i].tdp
                                    : 0.0;
        best = std::max(best, eff[i]);
    }
    if (best <= 0.0)
        return std::vector<double>(nodes.size(), 1.0);
    for (double &e : eff)
        e /= best;
    return eff;
}

} // namespace

void
RoundRobinDispatcher::route(const std::vector<DispatchNodeView> &nodes,
                            Fraction, std::vector<double> &shares) const
{
    shares.assign(nodes.size(), 0.0);
    if (!nodes.empty())
        shares.assign(nodes.size(), 1.0 / nodes.size());
}

void
LeastLoadedDispatcher::route(const std::vector<DispatchNodeView> &nodes,
                             Fraction, std::vector<double> &shares) const
{
    std::vector<double> weights(nodes.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const double freeFraction = std::clamp(
            1.0 - nodes[i].lastUtilization, 0.0, 1.0);
        weights[i] = nodes[i].capacity * freeFraction;
    }
    normalize(weights, shares);
}

void
PowerAwareDispatcher::route(const std::vector<DispatchNodeView> &nodes,
                            Fraction, std::vector<double> &shares) const
{
    const std::vector<double> eff = relativeEfficiency(nodes);
    std::vector<double> weights(nodes.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i)
        weights[i] = nodes[i].capacity * std::pow(eff[i], gamma_);
    normalize(weights, shares);
}

void
CpDispatcher::route(const std::vector<DispatchNodeView> &nodes,
                    Fraction fleetLoad, std::vector<double> &shares) const
{
    shares.assign(nodes.size(), 0.0);
    if (nodes.empty())
        return;
    const double fleetCapacity = totalCapacity(nodes);
    const double load = fleetLoad * fleetCapacity;
    if (load <= 0.0 || fleetCapacity <= 0.0) {
        shares.assign(nodes.size(), 1.0 / nodes.size());
        return;
    }

    const std::vector<double> eff = relativeEfficiency(nodes);
    // Effective capacity: derate a node that violated QoS last
    // interval by how badly it missed — its predicted slack shrinks
    // until it recovers.
    std::vector<double> effective(nodes.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        double derate = 1.0;
        if (nodes[i].qosTarget > 0.0 &&
            nodes[i].lastTailLatency > nodes[i].qosTarget)
            derate = nodes[i].qosTarget / nodes[i].lastTailLatency;
        effective[i] = nodes[i].capacity * derate;
    }

    const double quantum = load / static_cast<double>(quanta_);
    std::vector<double> assigned(nodes.size(), 0.0);
    for (std::size_t q = 0; q < quanta_; ++q) {
        std::size_t bestNode = 0;
        double bestScore = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (nodes[i].capacity <= 0.0)
                continue;
            const double slack =
                (target_ * effective[i] - assigned[i]) /
                nodes[i].capacity;
            const double headroom = std::max(
                0.0, 1.0 - assigned[i] / nodes[i].capacity);
            const double score =
                wslack_ * slack + wpower_ * eff[i] * headroom;
            if (score > bestScore) { // strict: ties keep lowest index
                bestScore = score;
                bestNode = i;
            }
        }
        assigned[bestNode] += quantum;
    }
    for (std::size_t i = 0; i < nodes.size(); ++i)
        shares[i] = assigned[i] / load;
}

} // namespace hipster
