#include "fleet/dispatcher.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hipster
{

namespace
{

/** Total fleet capacity (fleet load units). */
double
totalCapacity(const std::vector<DispatchNodeView> &nodes)
{
    double total = 0.0;
    for (const DispatchNodeView &node : nodes)
        total += node.capacity;
    return total;
}

/** Normalize `weights` into shares; falls back to a uniform split
 * when every weight vanishes (so a degenerate feedback state never
 * strands the whole load on numerics). */
void
normalize(const std::vector<double> &weights, std::vector<double> &shares)
{
    shares.assign(weights.size(), 0.0);
    double total = 0.0;
    for (const double w : weights)
        total += w;
    if (total <= 0.0) {
        if (!shares.empty())
            shares.assign(shares.size(), 1.0 / shares.size());
        return;
    }
    for (std::size_t i = 0; i < weights.size(); ++i)
        shares[i] = weights[i] / total;
}

/** capacity/TDP of each node normalized by the best node (1 = most
 * efficient); 1.0 everywhere when TDP data is missing. */
std::vector<double>
relativeEfficiency(const std::vector<DispatchNodeView> &nodes)
{
    std::vector<double> eff(nodes.size(), 1.0);
    double best = 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        eff[i] = nodes[i].tdp > 0.0 ? nodes[i].capacity / nodes[i].tdp
                                    : 0.0;
        best = std::max(best, eff[i]);
    }
    if (best <= 0.0)
        return std::vector<double>(nodes.size(), 1.0);
    for (double &e : eff)
        e /= best;
    return eff;
}

} // namespace

void
RoundRobinDispatcher::route(const std::vector<DispatchNodeView> &nodes,
                            Fraction, std::vector<double> &shares) const
{
    shares.assign(nodes.size(), 0.0);
    if (!nodes.empty())
        shares.assign(nodes.size(), 1.0 / nodes.size());
}

void
LeastLoadedDispatcher::route(const std::vector<DispatchNodeView> &nodes,
                             Fraction, std::vector<double> &shares) const
{
    std::vector<double> weights(nodes.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const double freeFraction = std::clamp(
            1.0 - nodes[i].lastUtilization, 0.0, 1.0);
        weights[i] = nodes[i].capacity * freeFraction;
    }
    normalize(weights, shares);
}

void
PowerAwareDispatcher::route(const std::vector<DispatchNodeView> &nodes,
                            Fraction, std::vector<double> &shares) const
{
    const std::vector<double> eff = relativeEfficiency(nodes);
    std::vector<double> weights(nodes.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i)
        weights[i] = nodes[i].capacity * std::pow(eff[i], gamma_);
    normalize(weights, shares);
}

void
CpDispatcher::route(const std::vector<DispatchNodeView> &nodes,
                    Fraction fleetLoad, std::vector<double> &shares) const
{
    shares.assign(nodes.size(), 0.0);
    if (nodes.empty())
        return;
    const double fleetCapacity = totalCapacity(nodes);
    const double load = fleetLoad * fleetCapacity;
    if (load <= 0.0 || fleetCapacity <= 0.0) {
        shares.assign(nodes.size(), 1.0 / nodes.size());
        return;
    }

    const std::vector<double> eff = relativeEfficiency(nodes);
    // Effective capacity: derate a node that violated QoS last
    // interval by how badly it missed — its predicted slack shrinks
    // until it recovers.
    std::vector<double> effective(nodes.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        double derate = 1.0;
        if (nodes[i].qosTarget > 0.0 &&
            nodes[i].lastTailLatency > nodes[i].qosTarget)
            derate = nodes[i].qosTarget / nodes[i].lastTailLatency;
        effective[i] = nodes[i].capacity * derate;
    }

    const double quantum = load / static_cast<double>(quanta_);
    std::vector<double> assigned(nodes.size(), 0.0);
    for (std::size_t q = 0; q < quanta_; ++q) {
        std::size_t bestNode = 0;
        double bestScore = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (nodes[i].capacity <= 0.0)
                continue;
            const double slack =
                (target_ * effective[i] - assigned[i]) /
                nodes[i].capacity;
            const double headroom = std::max(
                0.0, 1.0 - assigned[i] / nodes[i].capacity);
            const double score =
                wslack_ * slack + wpower_ * eff[i] * headroom;
            if (score > bestScore) { // strict: ties keep lowest index
                bestScore = score;
                bestNode = i;
            }
        }
        assigned[bestNode] += quantum;
    }
    for (std::size_t i = 0; i < nodes.size(); ++i)
        shares[i] = assigned[i] / load;
}

namespace
{

/**
 * Dimensionless cost of one move: transfer latency against the
 * dispatcher's amortization horizon plus the move energy against a
 * fixed 100 J reference, both scaled by the cost weight.
 */
double
moveCost(const MigrationModel &model, const std::string &srcIsa,
         const std::string &dstIsa, double wcost, Seconds horizon)
{
    constexpr double kEnergyReference = 100.0; // joules
    return wcost * (model.latency(srcIsa, dstIsa) / horizon +
                    model.moveEnergy() / kEnergyReference);
}

} // namespace

void
CpMigrateDispatcher::planMoves(const std::vector<DispatchNodeView> &nodes,
                               Fraction fleetLoad,
                               const MigrationPlanContext &ctx,
                               std::vector<MigrationMove> &moves) const
{
    moves.clear();
    if (nodes.empty() || ctx.resident == nullptr ||
        ctx.model == nullptr || ctx.inFlightShare > 0.0)
        return;
    const double fleetCapacity = totalCapacity(nodes);
    const double load = fleetLoad * fleetCapacity;
    if (load <= 0.0 || fleetCapacity <= 0.0)
        return;

    const std::vector<double> eff = relativeEfficiency(nodes);
    std::vector<double> effective(nodes.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        double derate = 1.0;
        if (nodes[i].qosTarget > 0.0 &&
            nodes[i].lastTailLatency > nodes[i].qosTarget)
            derate = nodes[i].qosTarget / nodes[i].lastTailLatency;
        effective[i] = nodes[i].capacity * derate;
    }

    // Same scoring as cp's greedy assignment, evaluated at the
    // *resident* placement: score(i) rises with predicted slack and
    // power headroom, so moving a quantum from the worst donor to
    // the best recipient yields the largest scoring gain.
    std::vector<double> cur = *ctx.resident;
    const auto score = [&](std::size_t i) {
        const double assigned = cur[i] * load;
        const double slack =
            (target_ * effective[i] - assigned) / nodes[i].capacity;
        const double headroom =
            std::max(0.0, 1.0 - assigned / nodes[i].capacity);
        return wslack_ * slack + wpower_ * eff[i] * headroom;
    };

    const double quantum = 1.0 / static_cast<double>(quanta_);
    for (std::size_t m = 0; m < maxMoves_; ++m) {
        std::size_t dst = nodes.size();
        double dstScore = -std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (nodes[i].capacity <= 0.0)
                continue;
            const double s = score(i);
            if (s > dstScore) { // strict: ties keep lowest index
                dstScore = s;
                dst = i;
            }
        }
        if (dst == nodes.size())
            break;

        std::size_t src = nodes.size();
        double srcScore = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            if (i == dst || nodes[i].capacity <= 0.0 ||
                cur[i] < quantum - 1e-12)
                continue;
            const double s = score(i);
            if (s < srcScore) { // strict: ties keep lowest index
                srcScore = s;
                src = i;
            }
        }
        if (src == nodes.size())
            break;

        const double gain = dstScore - srcScore;
        const double cost =
            moveCost(*ctx.model, nodes[src].isa, nodes[dst].isa,
                     wcost_, horizon_);
        if (gain <= cost)
            break;
        moves.push_back({src, dst, quantum});
        cur[src] -= quantum;
        cur[dst] += quantum;
    }
}

void
RebalanceDispatcher::route(const std::vector<DispatchNodeView> &nodes,
                           Fraction, std::vector<double> &shares) const
{
    std::vector<double> weights(nodes.size(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i)
        weights[i] = nodes[i].capacity;
    normalize(weights, shares);
}

void
RebalanceDispatcher::planMoves(const std::vector<DispatchNodeView> &nodes,
                               Fraction,
                               const MigrationPlanContext &ctx,
                               std::vector<MigrationMove> &moves) const
{
    moves.clear();
    if (nodes.empty() || ctx.resident == nullptr ||
        ctx.model == nullptr || ctx.inFlightShare > 0.0)
        return;
    double maxCapacity = 0.0;
    for (const DispatchNodeView &node : nodes)
        maxCapacity = std::max(maxCapacity, node.capacity);
    if (maxCapacity <= 0.0)
        return;

    const auto unhealthy = [&](std::size_t i) {
        return (nodes[i].qosTarget > 0.0 &&
                nodes[i].lastTailLatency > nodes[i].qosTarget) ||
               nodes[i].lastUtilization > hot_;
    };

    const std::vector<double> &resident = *ctx.resident;
    for (std::size_t s = 0; s < nodes.size(); ++s) {
        if (nodes[s].capacity <= 0.0 || resident[s] <= 0.0 ||
            !unhealthy(s))
            continue;
        const double amount = drain_ * resident[s];
        if (amount < ctx.model->minMoveShare())
            continue;

        // Healthy destination with the best cost-adjusted headroom.
        std::size_t dst = nodes.size();
        double best = 0.0;
        for (std::size_t d = 0; d < nodes.size(); ++d) {
            if (d == s || nodes[d].capacity <= 0.0 || unhealthy(d))
                continue;
            const double headroom =
                std::max(0.0, 1.0 - nodes[d].lastUtilization) *
                nodes[d].capacity / maxCapacity;
            const double net =
                headroom - moveCost(*ctx.model, nodes[s].isa,
                                    nodes[d].isa, wcost_, horizon_);
            if (net > best) { // strict: ties keep lowest index
                best = net;
                dst = d;
            }
        }
        if (dst == nodes.size())
            continue;
        moves.push_back({s, dst, amount});
    }
}

} // namespace hipster
