/**
 * @file
 * Per-core performance counters modelling what the paper reads
 * through `perf` (instructions retired, cycles), including an
 * emulation of the Juno erratum described in Section 3.7: when any
 * core enters an idle state, `perf` returns garbage for *all* cores.
 * The paper's workaround — disabling cpuidle — is modelled by
 * CpuIdleControl.
 */

#ifndef HIPSTER_PLATFORM_PERF_COUNTERS_HH
#define HIPSTER_PLATFORM_PERF_COUNTERS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/random.hh"
#include "common/units.hh"

namespace hipster
{

/** One core's counter snapshot for a monitoring interval. */
struct CoreCounters
{
    Instructions instructions = 0.0;
    double cycles = 0.0;
    Fraction utilization = 0.0;
};

/**
 * Models the Linux cpuidle switch. When enabled (the kernel default)
 * cores that stay idle longer than `idleLatency` enter an idle state,
 * which triggers the Juno perf erratum. HipsterCo disables it, as the
 * paper does, to obtain trustworthy IPS readings.
 */
class CpuIdleControl
{
  public:
    /** @param idle_latency Idle residency before entering an idle
     * state (the paper cites 3500 us). */
    explicit CpuIdleControl(Seconds idle_latency = 3500e-6)
        : idleLatency_(idle_latency)
    {}

    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }
    Seconds idleLatency() const { return idleLatency_; }

    /**
     * Whether a core that was idle for `idle_time` seconds within an
     * interval would have entered an idle state.
     */
    bool
    wouldEnterIdle(Seconds idle_time) const
    {
        return enabled_ && idle_time > idleLatency_;
    }

  private:
    bool enabled_ = true;
    Seconds idleLatency_;
};

/**
 * Bank of per-core counters. Workload models deposit instruction and
 * cycle counts each interval; readers obtain either valid snapshots
 * or — when the idle erratum fires — garbage values, which they must
 * avoid by disabling cpuidle first (as the paper does).
 */
class PerfCounterBank
{
  public:
    /**
     * @param core_count     Number of cores to track.
     * @param emulate_errata Emulate the Juno idle-state perf bug.
     * @param seed           Seed for the garbage-value generator.
     */
    explicit PerfCounterBank(std::size_t core_count,
                             bool emulate_errata = true,
                             std::uint64_t seed = 0xC0FFEE);

    std::size_t coreCount() const { return counters_.size(); }

    /** Reset the interval accumulators (call at interval start). */
    void beginInterval();

    /** Deposit executed work for one core during the interval. */
    void record(CoreId core, Instructions instructions, double cycles,
                Fraction utilization);

    /**
     * Mark that a core was idle for `idle_time` seconds within the
     * interval; with cpuidle enabled this may poison the whole bank
     * (the erratum affects *all* cores).
     */
    void noteIdle(CoreId core, Seconds idle_time,
                  const CpuIdleControl &cpuidle);

    /**
     * Read one core's counters. Returns nullopt when the erratum
     * poisoned this interval and `emulate_errata` is on — mimicking
     * the garbage that real perf returns (callers cannot distinguish
     * garbage from data, so the bank refuses instead; the QoS monitor
     * treats nullopt as "reading unusable").
     */
    std::optional<CoreCounters> read(CoreId core) const;

    /**
     * Raw read that returns garbage numbers when poisoned, exactly
     * like the real bug. Only used by tests demonstrating why the
     * workaround is necessary.
     */
    CoreCounters readRaw(CoreId core);

    /** Whether the current interval's readings are poisoned. */
    bool poisoned() const { return poisoned_; }

  private:
    std::vector<CoreCounters> counters_;
    bool emulateErrata_;
    bool poisoned_ = false;
    Rng garbage_;
};

} // namespace hipster

#endif // HIPSTER_PLATFORM_PERF_COUNTERS_HH
