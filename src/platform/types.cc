#include "platform/types.hh"

#include <cstdio>

namespace hipster
{

const char *
coreTypeLetter(CoreType type)
{
    return type == CoreType::Big ? "B" : "S";
}

const char *
coreTypeName(CoreType type)
{
    return type == CoreType::Big ? "big" : "small";
}

std::string
formatGHz(GHz freq)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", freq);
    return buf;
}

} // namespace hipster
