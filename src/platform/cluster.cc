#include "platform/cluster.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hipster
{

namespace
{

bool
sameFreq(GHz a, GHz b)
{
    return std::abs(a - b) < 1e-9;
}

} // namespace

GHz
ClusterSpec::maxFrequency() const
{
    HIPSTER_ASSERT(!opps.empty(), "cluster '", name, "' has no OPPs");
    return opps.back().frequency;
}

GHz
ClusterSpec::minFrequency() const
{
    HIPSTER_ASSERT(!opps.empty(), "cluster '", name, "' has no OPPs");
    return opps.front().frequency;
}

std::size_t
ClusterSpec::oppIndex(GHz frequency) const
{
    for (std::size_t i = 0; i < opps.size(); ++i) {
        if (sameFreq(opps[i].frequency, frequency))
            return i;
    }
    fatal("cluster '", name, "': frequency ", frequency,
          " GHz not in OPP table");
}

Volts
ClusterSpec::voltageAt(GHz frequency) const
{
    return opps[oppIndex(frequency)].voltage;
}

void
ClusterSpec::validate() const
{
    if (coreCount == 0)
        fatal("cluster '", name, "' must have at least one core");
    if (opps.empty())
        fatal("cluster '", name, "' must have at least one OPP");
    if (microbenchIpc <= 0.0)
        fatal("cluster '", name, "' needs positive microbenchIpc");
    for (std::size_t i = 0; i < opps.size(); ++i) {
        if (opps[i].frequency <= 0.0 || opps[i].voltage <= 0.0)
            fatal("cluster '", name, "': OPP ", i,
                  " has non-positive frequency or voltage");
        if (i > 0 && opps[i].frequency <= opps[i - 1].frequency)
            fatal("cluster '", name,
                  "': OPP table must be sorted ascending by frequency");
        if (i > 0 && opps[i].voltage < opps[i - 1].voltage)
            fatal("cluster '", name,
                  "': voltage must be non-decreasing with frequency");
    }
}

Cluster::Cluster(ClusterId id, ClusterSpec spec)
    : id_(id), spec_(std::move(spec))
{
    spec_.validate();
    // Boot at the highest OPP, like Linux's "performance" governor on
    // a freshly booted Juno.
    oppIndex_ = spec_.opps.size() - 1;
}

bool
Cluster::setFrequency(GHz frequency)
{
    const std::size_t idx = spec_.oppIndex(frequency);
    if (idx == oppIndex_)
        return false;
    oppIndex_ = idx;
    return true;
}

} // namespace hipster
