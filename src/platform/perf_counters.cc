#include "platform/perf_counters.hh"

#include "common/logging.hh"

namespace hipster
{

PerfCounterBank::PerfCounterBank(std::size_t core_count,
                                 bool emulate_errata, std::uint64_t seed)
    : counters_(core_count), emulateErrata_(emulate_errata), garbage_(seed)
{
    if (core_count == 0)
        fatal("PerfCounterBank requires at least one core");
}

void
PerfCounterBank::beginInterval()
{
    for (auto &c : counters_)
        c = CoreCounters{};
    poisoned_ = false;
}

void
PerfCounterBank::record(CoreId core, Instructions instructions,
                        double cycles, Fraction utilization)
{
    HIPSTER_ASSERT(core < counters_.size(), "core id out of range: ", core);
    counters_[core].instructions += instructions;
    counters_[core].cycles += cycles;
    counters_[core].utilization = utilization;
}

void
PerfCounterBank::noteIdle(CoreId core, Seconds idle_time,
                          const CpuIdleControl &cpuidle)
{
    HIPSTER_ASSERT(core < counters_.size(), "core id out of range: ", core);
    if (emulateErrata_ && cpuidle.wouldEnterIdle(idle_time))
        poisoned_ = true;
}

std::optional<CoreCounters>
PerfCounterBank::read(CoreId core) const
{
    HIPSTER_ASSERT(core < counters_.size(), "core id out of range: ", core);
    if (poisoned_)
        return std::nullopt;
    return counters_[core];
}

CoreCounters
PerfCounterBank::readRaw(CoreId core)
{
    HIPSTER_ASSERT(core < counters_.size(), "core id out of range: ", core);
    if (!poisoned_)
        return counters_[core];
    // The erratum produces implausible values; emulate with large
    // random counts so naive consumers visibly misbehave.
    CoreCounters garbage;
    garbage.instructions = static_cast<double>(garbage_.next() % (1ULL << 48));
    garbage.cycles = static_cast<double>(garbage_.next() % (1ULL << 48));
    garbage.utilization = garbage_.uniform();
    return garbage;
}

} // namespace hipster
