/**
 * @file
 * The Platform ties together clusters, DVFS, the power model, energy
 * meters and perf counters, and exposes the actuation interface the
 * task managers use: apply a CoreConfig (core affinity + cluster
 * DVFS), with realistic actuation costs.
 *
 * The default factory builds the paper's evaluation board, an ARM
 * Juno R1 (2x Cortex-A57 big + 4x Cortex-A53 small); a generic
 * builder composes arbitrary two-type platforms.
 */

#ifndef HIPSTER_PLATFORM_PLATFORM_HH
#define HIPSTER_PLATFORM_PLATFORM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/units.hh"
#include "platform/cluster.hh"
#include "platform/core_config.hh"
#include "platform/energy_meter.hh"
#include "platform/perf_counters.hh"
#include "platform/power_model.hh"

namespace hipster
{

/** Actuation latencies of the platform/OS control interfaces. */
struct ActuationCosts
{
    /**
     * Latency of one cluster DVFS transition (acpi-cpufreq write).
     * Prior work cited by the paper puts this at microseconds.
     */
    Seconds dvfsTransition = 100e-6;

    /**
     * Latency of migrating the LC workload's threads onto a
     * different core set (sched_setaffinity + cache warm-up). The
     * paper, citing Rubik, notes this is milliseconds — far more
     * costly than DVFS.
     */
    Seconds coreMigration = 2e-3;
};

/** Full static description of a platform. */
struct PlatformSpec
{
    std::string name;
    std::vector<ClusterSpec> clusters;
    std::vector<ClusterPowerParams> power;
    Watts restOfSystem = 0.0;
    ActuationCosts costs;

    /**
     * Instruction-set architecture of the node. Work migrating
     * between nodes of different ISAs must take the checkpointed
     * (HEXO-style) path in the migration model; same-ISA moves take
     * the warm path. One of "arm64", "riscv64", "x86_64".
     */
    std::string isa = "arm64";

    /** Emulate the Juno perf-counter idle erratum (Section 3.7). */
    bool emulatePerfErrata = true;

    void validate() const;
};

/** True when `isa` is one of the recognised ISA names. */
bool isKnownIsa(const std::string &isa);

/** Cost report returned by Platform::applyConfig. */
struct ActuationResult
{
    /** Number of cores that entered/left the LC allocation. */
    std::uint32_t migratedCores = 0;

    /** Number of clusters whose OPP changed. */
    std::uint32_t dvfsTransitions = 0;

    /** Total actuation latency implied by the changes. */
    Seconds latency = 0.0;

    bool
    changedAnything() const
    {
        return migratedCores > 0 || dvfsTransitions > 0;
    }
};

/**
 * Runtime platform instance.
 *
 * Core numbering is dense and cluster-major: the big cluster's cores
 * come first, then the small cluster's (matching Juno's logical CPU
 * numbering with the big cluster listed first). The LC workload is
 * always packed onto the lowest-numbered cores of each cluster; this
 * mirrors the deterministic affinity masks the paper's user-space
 * manager sets via sched_setaffinity.
 */
class Platform
{
  public:
    explicit Platform(PlatformSpec spec);

    /** The paper's evaluation platform: ARM Juno R1. */
    static PlatformSpec junoR1();

    const PlatformSpec &spec() const { return spec_; }
    const std::string &name() const { return spec_.name; }

    /** All clusters (index = ClusterId). */
    const std::vector<Cluster> &clusters() const { return clusters_; }

    /** Cluster holding the given core type; throws if absent. */
    const Cluster &cluster(CoreType type) const;

    /** Number of cores of one type. */
    std::uint32_t coreCount(CoreType type) const;

    /** Total core count across clusters. */
    std::uint32_t totalCores() const;

    /** Core type of a global core id. */
    CoreType coreType(CoreId core) const;

    /** Cluster id of a global core id. */
    ClusterId clusterOf(CoreId core) const;

    /** Global core ids of one cluster. */
    std::vector<CoreId> coresOf(CoreType type) const;

    /**
     * Validate that a configuration is realizable here (core counts
     * within cluster sizes, frequencies present in OPP tables,
     * non-empty).
     */
    bool isValidConfig(const CoreConfig &config) const;

    /**
     * Apply a configuration: pin the LC workload to `config.nBig` big
     * + `config.nSmall` small cores and program cluster frequencies.
     * Frequencies of clusters with no LC core are left untouched (the
     * policy layer decides what to do with them — Algorithm 2 lines
     * 8-13).
     *
     * Throws FatalError on invalid configurations.
     */
    ActuationResult applyConfig(const CoreConfig &config);

    /**
     * Program one cluster's frequency directly (used by the policies
     * for the non-LC cluster). Returns true when it changed.
     */
    bool setClusterFrequency(CoreType type, GHz frequency);

    /** Currently applied LC configuration. */
    const CoreConfig &currentConfig() const { return current_; }

    /** Global core ids currently allocated to the LC workload. */
    const std::vector<CoreId> &lcCores() const { return lcCores_; }

    /** Global core ids not allocated to the LC workload. */
    const std::vector<CoreId> &spareCores() const { return spareCores_; }

    /** Effective frequency currently programmed for a core. */
    GHz coreFrequency(CoreId core) const;

    /** Power model (immutable). */
    const PowerModel &powerModel() const { return *power_; }

    /** System TDP per the power model. */
    Watts tdp() const;

    /**
     * Compute system power for a per-cluster activity snapshot and
     * charge it to the energy meter for `duration` seconds. Returns
     * the system power used.
     */
    Watts accountEnergy(const std::vector<ClusterActivity> &activity,
                        Seconds duration);

    /** Energy meter (paper: Juno energy registers). */
    const EnergyMeter &energyMeter() const { return meter_; }
    EnergyMeter &energyMeter() { return meter_; }

    /** Perf counter bank (paper: perf instructions counters). */
    PerfCounterBank &perfCounters() { return counters_; }
    const PerfCounterBank &perfCounters() const { return counters_; }

    /** cpuidle control (Section 3.7 workaround). */
    CpuIdleControl &cpuIdle() { return cpuIdle_; }
    const CpuIdleControl &cpuIdle() const { return cpuIdle_; }

    /** Cumulative count of LC core migrations across applyConfig. */
    std::uint64_t totalMigrations() const { return totalMigrations_; }

    /** Cumulative count of DVFS transitions across applyConfig. */
    std::uint64_t totalDvfsTransitions() const { return totalDvfs_; }

  private:
    Cluster &clusterMutable(CoreType type);
    void rebuildCoreSets();

    PlatformSpec spec_;
    std::vector<Cluster> clusters_;
    std::unique_ptr<PowerModel> power_;
    EnergyMeter meter_;
    PerfCounterBank counters_;
    CpuIdleControl cpuIdle_;

    CoreConfig current_;
    std::vector<CoreId> lcCores_;
    std::vector<CoreId> spareCores_;
    /** First global core id of each cluster. */
    std::vector<CoreId> clusterBase_;

    std::uint64_t totalMigrations_ = 0;
    std::uint64_t totalDvfs_ = 0;
};

} // namespace hipster

#endif // HIPSTER_PLATFORM_PLATFORM_HH
