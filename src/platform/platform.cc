#include "platform/platform.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hipster
{

bool
isKnownIsa(const std::string &isa)
{
    return isa == "arm64" || isa == "riscv64" || isa == "x86_64";
}

void
PlatformSpec::validate() const
{
    if (clusters.empty())
        fatal("platform '", name, "' needs at least one cluster");
    if (clusters.size() != power.size())
        fatal("platform '", name,
              "': power params must match cluster count");
    bool seen_big = false, seen_small = false;
    for (const auto &c : clusters) {
        c.validate();
        if (c.type == CoreType::Big) {
            if (seen_big)
                fatal("platform '", name,
                      "' may have at most one big cluster");
            seen_big = true;
        } else {
            if (seen_small)
                fatal("platform '", name,
                      "' may have at most one small cluster");
            seen_small = true;
        }
    }
    if (!isKnownIsa(isa))
        fatal("platform '", name, "': unknown isa '", isa,
              "' (expected arm64, riscv64 or x86_64)");
    if (restOfSystem < 0.0)
        fatal("platform '", name, "': negative rest-of-system power");
    if (costs.dvfsTransition < 0.0 || costs.coreMigration < 0.0)
        fatal("platform '", name, "': negative actuation cost");
}

Platform::Platform(PlatformSpec spec)
    : spec_(std::move(spec)),
      meter_(spec_.clusters.size()),
      counters_(1, false) // placeholder; rebuilt below once validated
{
    spec_.validate();
    ClusterId id = 0;
    CoreId base = 0;
    for (const auto &cspec : spec_.clusters) {
        clusterBase_.push_back(base);
        clusters_.emplace_back(id++, cspec);
        base += cspec.coreCount;
    }
    power_ = std::make_unique<PowerModel>(spec_.power, spec_.restOfSystem);
    meter_ = EnergyMeter(clusters_.size());
    counters_ = PerfCounterBank(totalCores(), spec_.emulatePerfErrata);

    // Boot configuration: everything on the big cluster at max DVFS
    // when one exists (like the paper's static baseline), otherwise
    // all small cores.
    CoreConfig boot;
    for (const auto &cluster : clusters_) {
        if (cluster.spec().type == CoreType::Big) {
            boot.nBig = cluster.spec().coreCount;
            boot.bigFreq = cluster.spec().maxFrequency();
        } else {
            boot.smallFreq = cluster.spec().maxFrequency();
            if (boot.nBig == 0)
                boot.nSmall = cluster.spec().coreCount;
        }
    }
    if (boot.nBig > 0)
        boot.nSmall = 0;
    current_ = boot;
    applyConfig(boot);
    totalMigrations_ = 0;
    totalDvfs_ = 0;
}

PlatformSpec
Platform::junoR1()
{
    PlatformSpec spec;
    spec.name = "ARM Juno R1";

    // Big cluster: 2x Cortex-A57, per-cluster DVFS 0.60-1.15 GHz.
    // The three OPPs match the paper's figures (0.60 / 0.90 / 1.15).
    ClusterSpec big;
    big.name = "Cortex-A57";
    big.type = CoreType::Big;
    big.coreCount = 2;
    // Table 2: one big core at 1.15 GHz retires 2138 MIPS on the
    // compute microbenchmark => IPC ~= 1.86.
    big.microbenchIpc = 1.86;
    big.l2Bytes = 2ULL * 1024 * 1024;
    big.opps = {
        {0.60, 0.82},
        {0.90, 0.95},
        {1.15, 1.09},
    };

    // Small cluster: 4x Cortex-A53, fixed 0.65 GHz.
    // Table 2: one small core at 0.65 GHz retires 826 MIPS => IPC
    // ~= 1.27.
    ClusterSpec small;
    small.name = "Cortex-A53";
    small.type = CoreType::Small;
    small.coreCount = 4;
    small.microbenchIpc = 1.27;
    small.l2Bytes = 1ULL * 1024 * 1024;
    small.opps = {
        {0.65, 0.82},
    };

    spec.clusters = {big, small};

    // Power calibration (see DESIGN.md "Calibration anchors"):
    // solving Table 2's four anchor points with a 0.76 W
    // rest-of-system floor yields ~0.68 W per active big core plus
    // ~0.18 W big-cluster uncore, and ~0.16 W per active small core
    // plus ~0.03 W small-cluster uncore, all at max DVFS. We split
    // each core's power 30% static / 70% dynamic at the top OPP.
    ClusterPowerParams big_power;
    big_power.core.refVoltage = 1.09;
    big_power.core.staticAtRef = 0.204;                  // 30% of 0.68
    big_power.core.dynCoeff = 0.476 / (1.09 * 1.09 * 1.15);
    big_power.core.idleActivity = 0.06;
    big_power.uncoreAtRef = 0.18;

    ClusterPowerParams small_power;
    small_power.core.refVoltage = 0.82;
    small_power.core.staticAtRef = 0.048;                // 30% of 0.16
    small_power.core.dynCoeff = 0.112 / (0.82 * 0.82 * 0.65);
    small_power.core.idleActivity = 0.06;
    small_power.uncoreAtRef = 0.03;

    spec.power = {big_power, small_power};
    spec.restOfSystem = 0.76;
    spec.costs = ActuationCosts{};
    spec.isa = "arm64";
    spec.emulatePerfErrata = true;
    return spec;
}

const Cluster &
Platform::cluster(CoreType type) const
{
    for (const auto &c : clusters_) {
        if (c.spec().type == type)
            return c;
    }
    fatal("platform '", spec_.name, "' has no ", coreTypeName(type),
          " cluster");
}

Cluster &
Platform::clusterMutable(CoreType type)
{
    for (auto &c : clusters_) {
        if (c.spec().type == type)
            return c;
    }
    fatal("platform '", spec_.name, "' has no ", coreTypeName(type),
          " cluster");
}

std::uint32_t
Platform::coreCount(CoreType type) const
{
    for (const auto &c : clusters_) {
        if (c.spec().type == type)
            return c.spec().coreCount;
    }
    return 0;
}

std::uint32_t
Platform::totalCores() const
{
    std::uint32_t total = 0;
    for (const auto &c : clusters_)
        total += c.spec().coreCount;
    return total;
}

CoreType
Platform::coreType(CoreId core) const
{
    return clusters_[clusterOf(core)].spec().type;
}

ClusterId
Platform::clusterOf(CoreId core) const
{
    HIPSTER_ASSERT(core < totalCores(), "core id out of range: ", core);
    for (std::size_t i = clusters_.size(); i-- > 0;) {
        if (core >= clusterBase_[i])
            return static_cast<ClusterId>(i);
    }
    HIPSTER_PANIC("unreachable");
}

std::vector<CoreId>
Platform::coresOf(CoreType type) const
{
    std::vector<CoreId> out;
    for (std::size_t i = 0; i < clusters_.size(); ++i) {
        if (clusters_[i].spec().type != type)
            continue;
        for (std::uint32_t k = 0; k < clusters_[i].spec().coreCount; ++k)
            out.push_back(clusterBase_[i] + k);
    }
    return out;
}

bool
Platform::isValidConfig(const CoreConfig &config) const
{
    if (config.empty())
        return false;
    if (config.nBig > coreCount(CoreType::Big))
        return false;
    if (config.nSmall > coreCount(CoreType::Small))
        return false;
    if (config.nBig > 0) {
        const auto &spec = cluster(CoreType::Big).spec();
        bool found = false;
        for (const auto &opp : spec.opps)
            found |= std::abs(opp.frequency - config.bigFreq) < 1e-9;
        if (!found)
            return false;
    }
    if (config.nSmall > 0) {
        const auto &spec = cluster(CoreType::Small).spec();
        bool found = false;
        for (const auto &opp : spec.opps)
            found |= std::abs(opp.frequency - config.smallFreq) < 1e-9;
        if (!found)
            return false;
    }
    return true;
}

ActuationResult
Platform::applyConfig(const CoreConfig &config)
{
    if (!isValidConfig(config))
        fatal("applyConfig: configuration ", config.label(),
              " is not realizable on ", spec_.name);

    ActuationResult result;

    // DVFS transitions for clusters hosting LC cores.
    if (config.nBig > 0) {
        if (clusterMutable(CoreType::Big).setFrequency(config.bigFreq))
            ++result.dvfsTransitions;
    }
    if (config.nSmall > 0) {
        if (clusterMutable(CoreType::Small).setFrequency(config.smallFreq))
            ++result.dvfsTransitions;
    }

    // Affinity change: LC cores are packed onto the lowest-numbered
    // cores of each cluster, so the delta is just the count change
    // per cluster.
    const auto migrated = [](std::uint32_t before, std::uint32_t after) {
        return before > after ? before - after : after - before;
    };
    result.migratedCores = migrated(current_.nBig, config.nBig) +
                           migrated(current_.nSmall, config.nSmall);

    result.latency = result.dvfsTransitions * spec_.costs.dvfsTransition +
                     (result.migratedCores > 0 ? spec_.costs.coreMigration
                                               : 0.0);

    current_ = config;
    rebuildCoreSets();
    totalMigrations_ += result.migratedCores;
    totalDvfs_ += result.dvfsTransitions;
    return result;
}

bool
Platform::setClusterFrequency(CoreType type, GHz frequency)
{
    const bool changed = clusterMutable(type).setFrequency(frequency);
    if (changed)
        ++totalDvfs_;
    return changed;
}

GHz
Platform::coreFrequency(CoreId core) const
{
    return clusters_[clusterOf(core)].frequency();
}

Watts
Platform::tdp() const
{
    return power_->tdp(clusters_);
}

Watts
Platform::accountEnergy(const std::vector<ClusterActivity> &activity,
                        Seconds duration)
{
    std::vector<Watts> cluster_power(clusters_.size());
    for (std::size_t i = 0; i < clusters_.size(); ++i)
        cluster_power[i] = power_->clusterPower(clusters_[i], activity[i]);
    meter_.accumulate(cluster_power, power_->restOfSystem(), duration);
    Watts total = power_->restOfSystem();
    for (Watts p : cluster_power)
        total += p;
    return total;
}

void
Platform::rebuildCoreSets()
{
    lcCores_.clear();
    spareCores_.clear();
    for (std::size_t i = 0; i < clusters_.size(); ++i) {
        const auto &cspec = clusters_[i].spec();
        const std::uint32_t lc_count =
            cspec.type == CoreType::Big ? current_.nBig : current_.nSmall;
        for (std::uint32_t k = 0; k < cspec.coreCount; ++k) {
            const CoreId core = clusterBase_[i] + k;
            if (k < lc_count) {
                lcCores_.push_back(core);
            } else {
                spareCores_.push_back(core);
            }
        }
    }
}

} // namespace hipster
