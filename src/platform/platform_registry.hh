/**
 * @file
 * Platform registry: every hardware platform the CLIs, sweep engine
 * and bench binaries can name, plus a key=value spec grammar that
 * makes the board shape — core counts, frequencies, IPCs, power —
 * a first-class sweep axis:
 *
 *   spec := name [':' key '=' value (',' key '=' value)*]
 *
 * Examples:
 *   juno
 *   juno:big=4,little=8
 *   hetero:big=16,little=32,bigfreq=2.8
 *
 * Each registered platform declares a parameter schema (key,
 * default, valid range, doc string); overrides validate fail-fast —
 * an unknown key or out-of-range value enumerates the schema, an
 * unknown platform enumerates the catalog — and a bare name
 * reproduces the calibrated board exactly (the default `juno` is
 * bit-identical to Platform::junoR1()). The produced PlatformSpec is
 * a pure function of the spec string, so sweep campaigns over the
 * platform axis stay bitwise-reproducible.
 */

#ifndef HIPSTER_PLATFORM_PLATFORM_REGISTRY_HH
#define HIPSTER_PLATFORM_PLATFORM_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "common/spec_grammar.hh"
#include "platform/platform.hh"

namespace hipster
{

/** Catalog entry describing one registered platform family. */
struct PlatformInfo
{
    std::string name;                 ///< canonical spec head
    std::vector<std::string> aliases; ///< alternate heads
    std::string display;              ///< report name, e.g. "Juno R1"
    std::string summary;              ///< one-line description
    std::string paperRef;             ///< e.g. "Section 4.1; Table 2"

    std::vector<SpecParamInfo> params;
};

/**
 * Name-keyed factory for platform descriptions. A singleton holds
 * the built-ins (the paper's Juno R1 plus a parameterized
 * server-class part); custom platforms can be registered at startup
 * and become available to every consumer (CLIs, sweeps, benches) at
 * once.
 */
class PlatformRegistry
{
  public:
    /** Builds a platform description from the parsed overrides. */
    using Factory =
        std::function<PlatformSpec(const SpecParamSet &params)>;

    /** The process-wide registry with the built-ins installed. */
    static PlatformRegistry &instance();

    /** Register a platform; FatalError on duplicate names/aliases or
     * a null factory. */
    void registerPlatform(PlatformInfo info, Factory factory);

    /** Whether `name` heads a registered platform (canonical or
     * alias; spec arguments are not accepted here). */
    bool hasPlatform(const std::string &name) const;

    /** All registered platforms, in registration order. */
    const std::vector<PlatformInfo> &platforms() const
    {
        return platforms_;
    }

    /** Catalog entry for a canonical name or alias; nullptr when
     * unknown. */
    const PlatformInfo *findPlatform(const std::string &name) const;

    /**
     * Parse and validate a spec against the schema without building
     * anything: resolves the head (canonical or alias) and checks
     * every key and range. Throws FatalError with the catalog
     * (unknown platform) or the platform's schema (unknown key / bad
     * value).
     */
    const PlatformInfo &parseSpec(const std::string &spec,
                                  SpecParamSet &out) const;

    /** Build a fully parameterized platform description from a spec
     * string (PlatformSpec::validate() has already passed). */
    PlatformSpec make(const std::string &spec) const;

    /** Human-readable catalog: every platform with aliases and full
     * parameter schema (--list-platforms). */
    std::string catalogText() const;

    /** Compact enumeration used in unknown-platform errors. */
    std::string knownPlatformsSummary() const;

  private:
    PlatformRegistry() = default;
    void registerBuiltins();

    std::vector<PlatformInfo> platforms_;
    std::vector<Factory> factories_;
};

/** Build a platform description from a spec via the global registry. */
PlatformSpec makePlatformFromSpec(const std::string &spec);

/**
 * Fail-fast spec validation: parses the spec, builds the description
 * and runs PlatformSpec::validate(), throwing the same FatalError
 * PlatformRegistry::make would, so campaigns reject bad cells before
 * any runs start.
 */
void validatePlatformSpec(const std::string &spec);

/** Non-throwing validatePlatformSpec(). */
bool isPlatformSpec(const std::string &spec);

/**
 * Splits a CLI platform list into specs. `;` always separates; a `,`
 * separates only when the text after it heads a registered platform
 * (so `juno:big=4,little=8,hetero` yields the parameterized juno
 * spec and `hetero`).
 */
std::vector<std::string> splitPlatformList(const std::string &list);

} // namespace hipster

#endif // HIPSTER_PLATFORM_PLATFORM_REGISTRY_HH
