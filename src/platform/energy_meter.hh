/**
 * @file
 * Energy meter modelling the Juno R1's on-board energy registers,
 * which report accumulated energy separately for the big cluster,
 * the small cluster, and the rest of the system (the `sys` register).
 */

#ifndef HIPSTER_PLATFORM_ENERGY_METER_HH
#define HIPSTER_PLATFORM_ENERGY_METER_HH

#include <vector>

#include "common/units.hh"

namespace hipster
{

/**
 * Integrates per-domain power over time. Domains 0..N-1 are the
 * platform's clusters; domain N is the rest of the system. The
 * Platform calls accumulate() once per simulated interval; monitors
 * read totals or per-interval deltas, exactly like the separate
 * process the paper uses to poll the Juno's registers.
 */
class EnergyMeter
{
  public:
    /** @param cluster_count Number of cluster domains to track. */
    explicit EnergyMeter(std::size_t cluster_count);

    /**
     * Add `duration` seconds at the given per-cluster powers plus
     * rest-of-system power.
     */
    void accumulate(const std::vector<Watts> &cluster_power,
                    Watts rest_power, Seconds duration);

    /** Total energy of one cluster domain since construction/reset. */
    Joules clusterEnergy(std::size_t cluster) const;

    /** Total rest-of-system energy. */
    Joules restEnergy() const { return restEnergy_; }

    /** Total system energy (all domains). */
    Joules totalEnergy() const;

    /** Total elapsed (integrated) time. */
    Seconds elapsed() const { return elapsed_; }

    /** Mean system power over the integrated window (0 if empty). */
    Watts meanPower() const;

    /** Reset all accumulators to zero. */
    void reset();

  private:
    std::vector<Joules> clusterEnergy_;
    Joules restEnergy_ = 0.0;
    Seconds elapsed_ = 0.0;
};

} // namespace hipster

#endif // HIPSTER_PLATFORM_ENERGY_METER_HH
