/**
 * @file
 * Analytic power model for a heterogeneous multicore, calibrated to
 * the paper's Table 2 measurements of the ARM Juno R1.
 *
 * Per-core power is split into a voltage-dependent static part and a
 * C*V^2*f dynamic part scaled by utilization. Each active cluster
 * adds an "uncore" term (shared L2, clock tree), and the rest of the
 * system (memory controller, interconnect, I/O) adds a constant
 * floor. This decomposition reproduces the Table 2 anchor points:
 *
 *   big cluster (2 cores, 1.15 GHz, 100% util):  2.30 W system
 *   one big core            (1.15 GHz, 100%):    1.62 W system
 *   small cluster (4 cores, 0.65 GHz, 100%):     1.43 W system
 *   one small core          (0.65 GHz, 100%):    0.95 W system
 */

#ifndef HIPSTER_PLATFORM_POWER_MODEL_HH
#define HIPSTER_PLATFORM_POWER_MODEL_HH

#include <vector>

#include "common/units.hh"
#include "platform/cluster.hh"

namespace hipster
{

/** Calibration constants for one core type. */
struct CorePowerParams
{
    /**
     * Effective switched capacitance coefficient: dynamic power at
     * full utilization is dynCoeff * V^2 * f (W, with V in volts and
     * f in GHz).
     */
    double dynCoeff = 0.0;

    /**
     * Static (leakage) power at the reference voltage; scales
     * linearly with V.
     */
    Watts staticAtRef = 0.0;

    /** Reference voltage for staticAtRef. */
    Volts refVoltage = 1.0;

    /** Fraction of full dynamic power consumed by an idle (but
     * powered) core in the cluster, modelling clock-gating residue. */
    double idleActivity = 0.05;
};

/** Calibration constants for one cluster's shared resources. */
struct ClusterPowerParams
{
    CorePowerParams core;

    /** Uncore (shared L2, clock distribution) power when the cluster
     * has at least one powered core; scales like static power. */
    Watts uncoreAtRef = 0.0;
};

/**
 * Per-cluster utilization snapshot handed to the power model each
 * interval: how many cores are powered and the mean utilization of
 * the powered cores.
 */
struct ClusterActivity
{
    /** Number of cores that are powered (allocated to any workload). */
    std::uint32_t activeCores = 0;

    /** Mean busy fraction of the powered cores in [0, 1]. */
    Fraction utilization = 0.0;
};

/**
 * System power model: maps (per-cluster OPP, per-cluster activity)
 * to watts. Immutable once constructed; the Platform owns one.
 */
class PowerModel
{
  public:
    /**
     * @param cluster_params One entry per cluster, same order as the
     *                       platform's clusters.
     * @param rest_of_system Constant power of everything outside the
     *                       clusters (W).
     */
    PowerModel(std::vector<ClusterPowerParams> cluster_params,
               Watts rest_of_system);

    /** Power of one cluster at a given OPP and activity. */
    Watts clusterPower(const ClusterSpec &spec,
                       const ClusterPowerParams &params, const Opp &opp,
                       const ClusterActivity &activity) const;

    /** Power of cluster `id` given the runtime cluster state. */
    Watts clusterPower(const Cluster &cluster,
                       const ClusterActivity &activity) const;

    /**
     * Total system power: sum of cluster powers plus the
     * rest-of-system floor.
     */
    Watts systemPower(const std::vector<Cluster> &clusters,
                      const std::vector<ClusterActivity> &activity) const;

    Watts restOfSystem() const { return restOfSystem_; }

    const ClusterPowerParams &params(ClusterId id) const;

    /**
     * Thermal design power: system power with every cluster at its
     * highest OPP and 100% utilization. Used by the paper's
     * Power-reward (Algorithm 1, line 5).
     */
    Watts tdp(const std::vector<Cluster> &clusters) const;

  private:
    std::vector<ClusterPowerParams> params_;
    Watts restOfSystem_;
};

} // namespace hipster

#endif // HIPSTER_PLATFORM_POWER_MODEL_HH
