#include "platform/power_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hipster
{

PowerModel::PowerModel(std::vector<ClusterPowerParams> cluster_params,
                       Watts rest_of_system)
    : params_(std::move(cluster_params)), restOfSystem_(rest_of_system)
{
    if (params_.empty())
        fatal("PowerModel requires at least one cluster");
    if (restOfSystem_ < 0.0)
        fatal("PowerModel rest-of-system power must be non-negative");
    for (const auto &p : params_) {
        if (p.core.dynCoeff < 0.0 || p.core.staticAtRef < 0.0 ||
            p.core.refVoltage <= 0.0 || p.uncoreAtRef < 0.0) {
            fatal("PowerModel cluster parameters must be non-negative "
                  "with positive reference voltage");
        }
        if (p.core.idleActivity < 0.0 || p.core.idleActivity > 1.0)
            fatal("PowerModel idleActivity must lie in [0, 1]");
    }
}

Watts
PowerModel::clusterPower(const ClusterSpec &spec,
                         const ClusterPowerParams &params, const Opp &opp,
                         const ClusterActivity &activity) const
{
    HIPSTER_ASSERT(activity.activeCores <= spec.coreCount,
                   "more active cores than the cluster has");
    if (activity.activeCores == 0)
        return 0.0; // cluster power-gated
    const double vscale = opp.voltage / params.core.refVoltage;
    const Watts static_per_core = params.core.staticAtRef * vscale;
    const Watts dyn_full =
        params.core.dynCoeff * opp.voltage * opp.voltage * opp.frequency;
    const Fraction util =
        std::clamp(activity.utilization, 0.0, 1.0);
    const double activity_factor =
        params.core.idleActivity + (1.0 - params.core.idleActivity) * util;
    const Watts per_core = static_per_core + dyn_full * activity_factor;
    const Watts uncore = params.uncoreAtRef * vscale;
    return uncore + per_core * activity.activeCores;
}

Watts
PowerModel::clusterPower(const Cluster &cluster,
                         const ClusterActivity &activity) const
{
    const Opp opp{cluster.frequency(), cluster.voltage()};
    return clusterPower(cluster.spec(), params(cluster.id()), opp,
                        activity);
}

Watts
PowerModel::systemPower(const std::vector<Cluster> &clusters,
                        const std::vector<ClusterActivity> &activity) const
{
    HIPSTER_ASSERT(clusters.size() == activity.size(),
                   "activity vector size mismatch");
    Watts total = restOfSystem_;
    for (std::size_t i = 0; i < clusters.size(); ++i)
        total += clusterPower(clusters[i], activity[i]);
    return total;
}

const ClusterPowerParams &
PowerModel::params(ClusterId id) const
{
    HIPSTER_ASSERT(id < params_.size(), "cluster id out of range: ", id);
    return params_[id];
}

Watts
PowerModel::tdp(const std::vector<Cluster> &clusters) const
{
    Watts total = restOfSystem_;
    for (const auto &cluster : clusters) {
        const auto &spec = cluster.spec();
        const Opp top = spec.opps.back();
        total += clusterPower(spec, params(cluster.id()), top,
                              {spec.coreCount, 1.0});
    }
    return total;
}

} // namespace hipster
