/**
 * @file
 * Enumeration and ordering of the configuration (action) space: all
 * realizable CoreConfigs of a platform, the paper's canonical
 * 13-state subset (Figure 2c), and the microbenchmark-based
 * power-efficiency ordering used by the heuristic mapper
 * (Section 3.3).
 */

#ifndef HIPSTER_PLATFORM_CONFIG_SPACE_HH
#define HIPSTER_PLATFORM_CONFIG_SPACE_HH

#include <vector>

#include "platform/core_config.hh"
#include "platform/platform.hh"

namespace hipster
{

/**
 * Helpers to build and order the set of candidate configurations.
 * All functions are pure with respect to the platform.
 */
class ConfigSpace
{
  public:
    /**
     * Enumerate every non-empty configuration realizable on the
     * platform: nBig in [0, NB] x nSmall in [0, NS] x big OPPs x
     * small OPPs, with unused-cluster frequencies normalized to that
     * cluster's minimum OPP so duplicates collapse.
     */
    static std::vector<CoreConfig> enumerate(const Platform &platform);

    /**
     * The 13 canonical states of the paper's Figure 2c (Juno R1
     * only): 1S..4S at 0.65, 2B/1B3S/2B2S at 0.60/0.90/1.15 with 2B
     * appearing at every big OPP. Throws when the platform cannot
     * realize them.
     */
    static std::vector<CoreConfig> paperStates(const Platform &platform);

    /**
     * Peak instruction throughput (IPS) of a configuration on the
     * characterization microbenchmark: sum over allocated cores of
     * microbenchIpc * frequency. This is the "performance" half of
     * the Section 3.3 characterization.
     */
    static Ips peakIps(const Platform &platform, const CoreConfig &config);

    /**
     * Predicted system power of a configuration at full utilization
     * of the allocated cores (unallocated clusters power-gated) — the
     * "power" half of the Section 3.3 characterization.
     */
    static Watts fullLoadPower(const Platform &platform,
                               const CoreConfig &config);

    /**
     * Order configurations the way the heuristic mapper's state
     * machine expects (Section 3.3): "approximately from highest to
     * lowest power efficiency", i.e. ascending peak performance with
     * power as the tie-breaker, so that "next-higher power state"
     * always adds capability.
     */
    static std::vector<CoreConfig>
    orderForHeuristic(const Platform &platform,
                      std::vector<CoreConfig> configs);

    /**
     * Of the configurations whose peak IPS differs by < epsilon,
     * keep only the one with the least full-load power. Thins the
     * enumerate() output into a useful heuristic ladder on platforms
     * without a published Figure 2c.
     */
    static std::vector<CoreConfig>
    paretoPrune(const Platform &platform, std::vector<CoreConfig> configs,
                double ips_epsilon = 0.02);

    /**
     * The default action ladder of a platform: the paper's canonical
     * Figure 2c states when the platform realizes them (the Juno R1
     * and any juno:big=...,little=... widening), otherwise a
     * Pareto-pruned automatic derivation from the full enumeration —
     * so every registered platform works with every policy out of
     * the box.
     */
    static std::vector<CoreConfig> defaultLadder(const Platform &platform);

    /**
     * The baseline policy's configuration subset (Octopus-Man):
     * exclusively big or exclusively small cores, always at the
     * highest DVFS.
     */
    static std::vector<CoreConfig>
    octopusManStates(const Platform &platform);
};

} // namespace hipster

#endif // HIPSTER_PLATFORM_CONFIG_SPACE_HH
