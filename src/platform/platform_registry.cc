#include "platform/platform_registry.hh"

#include <cstdint>

#include "common/logging.hh"

namespace hipster
{

namespace
{

/**
 * An evenly spaced OPP ladder from `floor x top` to `top` GHz with
 * linearly interpolated voltages — the shape of real cpufreq tables
 * when no measured table exists for a made-up part. `steps == 1`
 * yields a fixed-frequency cluster at `top` (like the Juno A53s).
 */
std::vector<Opp>
syntheticOpps(double top, std::size_t steps, double floor,
              double v_lo, double v_hi)
{
    std::vector<Opp> opps;
    for (std::size_t i = 0; i < steps; ++i) {
        const double t =
            steps == 1 ? 1.0
                       : static_cast<double>(i) /
                             static_cast<double>(steps - 1);
        const double frac = floor + (1.0 - floor) * t;
        opps.push_back({top * frac, v_lo + (v_hi - v_lo) * t});
    }
    return opps;
}

} // namespace

PlatformRegistry &
PlatformRegistry::instance()
{
    static PlatformRegistry registry = [] {
        PlatformRegistry r;
        r.registerBuiltins();
        return r;
    }();
    return registry;
}

void
PlatformRegistry::registerPlatform(PlatformInfo info, Factory factory)
{
    if (hasPlatform(info.name))
        fatal("PlatformRegistry: platform '", info.name,
              "' already registered");
    for (const std::string &alias : info.aliases) {
        if (hasPlatform(alias))
            fatal("PlatformRegistry: alias '", alias,
                  "' already registered");
    }
    if (!factory)
        fatal("PlatformRegistry: null factory for '", info.name, "'");
    platforms_.push_back(std::move(info));
    factories_.push_back(std::move(factory));
}

bool
PlatformRegistry::hasPlatform(const std::string &name) const
{
    return findPlatform(name) != nullptr;
}

const PlatformInfo *
PlatformRegistry::findPlatform(const std::string &name) const
{
    for (const PlatformInfo &platform : platforms_) {
        if (platform.name == name)
            return &platform;
        for (const std::string &alias : platform.aliases) {
            if (alias == name)
                return &platform;
        }
    }
    return nullptr;
}

std::string
PlatformRegistry::knownPlatformsSummary() const
{
    std::string out = "registered platforms:";
    for (const PlatformInfo &platform : platforms_) {
        out += "\n  " + platform.name;
        for (const std::string &alias : platform.aliases)
            out += " (alias: " + alias + ")";
        if (!platform.params.empty()) {
            out += " — keys:";
            for (std::size_t i = 0; i < platform.params.size(); ++i)
                out += (i == 0 ? " " : ", ") + platform.params[i].key;
        }
    }
    out += "\nparameterize with ':key=value,...', e.g. "
           "juno:big=4,little=8; see --list-platforms";
    return out;
}

std::string
PlatformRegistry::catalogText() const
{
    std::string out = "registered platforms "
                      "(spec: name[:key=value,...]):\n";
    for (const PlatformInfo &platform : platforms_) {
        out += "\n" + platform.name;
        for (const std::string &alias : platform.aliases)
            out += " (alias: " + alias + ")";
        out += " — " + platform.display + ": " + platform.summary;
        if (!platform.paperRef.empty())
            out += " [" + platform.paperRef + "]";
        out += "\n";
        if (platform.params.empty()) {
            out += "    (no parameters)\n";
            continue;
        }
        for (const SpecParamInfo &param : platform.params)
            out += "    " + specParamLine(param) + "\n";
    }
    out += "\na bare name reproduces the calibrated board exactly; "
           "the produced\ndescription is a pure function of the spec, "
           "so platform-axis sweeps stay\nbitwise-reproducible.\n";
    return out;
}

const PlatformInfo &
PlatformRegistry::parseSpec(const std::string &spec,
                            SpecParamSet &out) const
{
    if (spec.empty())
        fatal("empty platform spec; ", knownPlatformsSummary());

    const std::string head = specHead(spec);
    const PlatformInfo *info = findPlatform(head);
    if (info == nullptr)
        fatal("unknown platform '", head, "' in spec '", spec, "'; ",
              knownPlatformsSummary());

    parseSpecParams("platform", spec, info->name, info->params, out);
    return *info;
}

PlatformSpec
PlatformRegistry::make(const std::string &spec) const
{
    SpecParamSet params;
    const PlatformInfo &info = parseSpec(spec, params);
    const std::size_t index =
        static_cast<std::size_t>(&info - platforms_.data());
    PlatformSpec built = factories_[index](params);
    built.validate();
    return built;
}

void
PlatformRegistry::registerBuiltins()
{
    {
        PlatformInfo info;
        info.name = "juno";
        info.aliases = {"juno-r1"};
        info.display = "ARM Juno R1";
        info.summary =
            "the paper's evaluation board: Cortex-A57 big cluster "
            "(three OPPs) + Cortex-A53 small cluster (fixed clock), "
            "power calibrated to Table 2";
        info.paperRef = "Section 4.1; Table 2";
        info.params = {
            {"big", "big (Cortex-A57) core count", 2.0, 1.0, 64.0,
             true, false, ParamUnit::None},
            {"little", "small (Cortex-A53) core count", 4.0, 1.0,
             256.0, true, false, ParamUnit::None},
            {"rest", "rest-of-system power in watts", 0.76, 0.0,
             1000.0, false, false, ParamUnit::None},
        };
        registerPlatform(info, [](const SpecParamSet &set) {
            PlatformSpec spec = Platform::junoR1();
            spec.clusters[0].coreCount = static_cast<std::uint32_t>(
                set.get("big", spec.clusters[0].coreCount));
            spec.clusters[1].coreCount = static_cast<std::uint32_t>(
                set.get("little", spec.clusters[1].coreCount));
            spec.restOfSystem = set.get("rest", spec.restOfSystem);
            return spec;
        });
    }

    {
        PlatformInfo info;
        info.name = "hetero";
        info.aliases = {"server"};
        info.display = "Hetero server";
        info.summary =
            "parameterized server-class big.LITTLE part: core "
            "counts, top frequencies, OPP ladder depth and IPCs are "
            "all spec keys; the heuristic ladder is derived "
            "automatically (no Figure 2c to copy from)";
        info.paperRef = "";
        info.params = {
            {"big", "big core count", 4.0, 1.0, 64.0, true, false,
             ParamUnit::None},
            {"little", "small core count", 8.0, 1.0, 256.0, true,
             false, ParamUnit::None},
            {"bigfreq", "top big-cluster frequency in GHz", 2.5, 0.5,
             5.0, false, false, ParamUnit::None},
            {"littlefreq", "top small-cluster frequency in GHz", 1.2,
             0.2, 3.0, false, false, ParamUnit::None},
            {"bigopps", "big-cluster OPP ladder depth", 4.0, 1.0,
             8.0, true, false, ParamUnit::None},
            {"littleopps", "small-cluster OPP ladder depth", 2.0,
             1.0, 8.0, true, false, ParamUnit::None},
            {"bigipc", "big-core microbenchmark IPC", 2.2, 0.1, 10.0,
             false, false, ParamUnit::None},
            {"littleipc", "small-core microbenchmark IPC", 1.4, 0.1,
             10.0, false, false, ParamUnit::None},
            {"rest", "rest-of-system power in watts", 1.5, 0.0,
             1000.0, false, false, ParamUnit::None},
        };
        registerPlatform(info, [](const SpecParamSet &set) {
            PlatformSpec spec;
            const auto big_count = static_cast<std::uint32_t>(
                set.get("big", 4.0));
            const auto little_count = static_cast<std::uint32_t>(
                set.get("little", 8.0));
            spec.name = "Hetero server " + std::to_string(big_count) +
                        "B+" + std::to_string(little_count) + "S";

            ClusterSpec big;
            big.name = "BigCore";
            big.type = CoreType::Big;
            big.coreCount = big_count;
            big.microbenchIpc = set.get("bigipc", 2.2);
            big.l2Bytes = 4ULL << 20;
            big.opps = syntheticOpps(
                set.get("bigfreq", 2.5),
                static_cast<std::size_t>(set.get("bigopps", 4.0)),
                /*floor=*/0.4, /*v_lo=*/0.80, /*v_hi=*/1.12);

            ClusterSpec small;
            small.name = "SmallCore";
            small.type = CoreType::Small;
            small.coreCount = little_count;
            small.microbenchIpc = set.get("littleipc", 1.4);
            small.l2Bytes = 2ULL << 20;
            small.opps = syntheticOpps(
                set.get("littlefreq", 1.2),
                static_cast<std::size_t>(set.get("littleopps", 2.0)),
                /*floor=*/0.67, /*v_lo=*/0.78, /*v_hi=*/0.88);

            spec.clusters = {big, small};

            ClusterPowerParams big_power;
            big_power.core.refVoltage = 1.12;
            big_power.core.staticAtRef = 0.35;
            big_power.core.dynCoeff = 0.50;
            big_power.uncoreAtRef = 0.40;

            ClusterPowerParams small_power;
            small_power.core.refVoltage = 0.88;
            small_power.core.staticAtRef = 0.08;
            small_power.core.dynCoeff = 0.22;
            small_power.uncoreAtRef = 0.10;

            spec.power = {big_power, small_power};
            spec.restOfSystem = set.get("rest", 1.5);
            spec.isa = "x86_64";
            // No Juno perf-counter idle erratum on a made-up server
            // part (Section 3.7 is board-specific).
            spec.emulatePerfErrata = false;
            return spec;
        });
    }

    {
        PlatformInfo info;
        info.name = "montecimone";
        info.aliases = {"mc", "riscv"};
        info.display = "Monte Cimone RISC-V node";
        info.summary =
            "SiFive Freedom U740 board from the Monte Cimone RISC-V "
            "cluster: four dual-issue in-order U74 application cores "
            "plus one S7 monitor core, with the board power envelope "
            "calibrated to the published 2.5 W idle / ~5.9 W loaded "
            "measurements; isa=riscv64";
        info.paperRef = "arXiv:2205.03725; arXiv:2503.18543";
        info.params = {
            {"u74", "U74 application core count", 4.0, 1.0, 64.0,
             true, false, ParamUnit::None},
            {"freq", "top U74 frequency in GHz", 1.2, 0.4, 2.0,
             false, false, ParamUnit::None},
            {"opps", "U74 OPP ladder depth", 3.0, 1.0, 8.0, true,
             false, ParamUnit::None},
            {"ipc", "U74 compute-microbenchmark IPC", 1.4, 0.1, 10.0,
             false, false, ParamUnit::None},
            {"s7", "S7 monitor core count", 1.0, 1.0, 4.0, true,
             false, ParamUnit::None},
            {"rest", "rest-of-system power in watts", 0.90, 0.0,
             1000.0, false, false, ParamUnit::None},
        };
        registerPlatform(info, [](const SpecParamSet &set) {
            PlatformSpec spec;
            const auto u74_count = static_cast<std::uint32_t>(
                set.get("u74", 4.0));
            spec.name = "Monte Cimone U740 " +
                        std::to_string(u74_count) + "xU74";

            // U74 application cluster: dual-issue in-order rv64gc,
            // up to 1.2 GHz on the FU740; the three-step ladder
            // mirrors the cpufreq table Monte Cimone exposes.
            ClusterSpec big;
            big.name = "SiFive-U74";
            big.type = CoreType::Big;
            big.coreCount = u74_count;
            big.microbenchIpc = set.get("ipc", 1.4);
            big.l2Bytes = 2ULL << 20;
            big.opps = syntheticOpps(
                set.get("freq", 1.2),
                static_cast<std::size_t>(set.get("opps", 3.0)),
                /*floor=*/0.5, /*v_lo=*/0.75, /*v_hi=*/0.90);

            // S7 monitor core: a single in-order embedded core at a
            // fixed clock, usable as the "small" cluster.
            ClusterSpec small;
            small.name = "SiFive-S7";
            small.type = CoreType::Small;
            small.coreCount =
                static_cast<std::uint32_t>(set.get("s7", 1.0));
            small.microbenchIpc = 0.8;
            small.l2Bytes = 1ULL << 20;
            small.opps = {{1.0, 0.75}};

            spec.clusters = {big, small};

            // Power split so that the modeled board lands on the
            // Monte Cimone measurements: ~2.5 W at idle and ~5.9 W
            // under full load once DDR and peripherals (the `rest`
            // key) are included.
            ClusterPowerParams big_power;
            big_power.core.refVoltage = 0.90;
            big_power.core.staticAtRef = 0.06;
            big_power.core.dynCoeff = 0.30;
            big_power.uncoreAtRef = 0.15;

            ClusterPowerParams small_power;
            small_power.core.refVoltage = 0.75;
            small_power.core.staticAtRef = 0.04;
            small_power.core.dynCoeff = 0.15;
            small_power.uncoreAtRef = 0.04;

            spec.power = {big_power, small_power};
            spec.restOfSystem = set.get("rest", 0.90);
            spec.isa = "riscv64";
            spec.emulatePerfErrata = false;
            return spec;
        });
    }
}

PlatformSpec
makePlatformFromSpec(const std::string &spec)
{
    return PlatformRegistry::instance().make(spec);
}

void
validatePlatformSpec(const std::string &spec)
{
    makePlatformFromSpec(spec); // builds + PlatformSpec::validate()
}

bool
isPlatformSpec(const std::string &spec)
{
    try {
        validatePlatformSpec(spec);
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

std::vector<std::string>
splitPlatformList(const std::string &list)
{
    const PlatformRegistry &registry = PlatformRegistry::instance();
    return splitSpecList(list, [&](const std::string &head) {
        return registry.hasPlatform(head);
    });
}

} // namespace hipster
