/**
 * @file
 * Basic platform vocabulary: core types and operating performance
 * points (OPPs).
 */

#ifndef HIPSTER_PLATFORM_TYPES_HH
#define HIPSTER_PLATFORM_TYPES_HH

#include <string>

#include "common/units.hh"

namespace hipster
{

/**
 * Kind of core in a heterogeneous (big.LITTLE-style) system.
 *
 * `Big` models a high-performance out-of-order core (Cortex-A57 on
 * the paper's Juno R1); `Small` models a low-power in-order core
 * (Cortex-A53).
 */
enum class CoreType
{
    Big,
    Small,
};

/** Short name used in configuration labels: "B" / "S". */
const char *coreTypeLetter(CoreType type);

/** Human-readable name: "big" / "small". */
const char *coreTypeName(CoreType type);

/**
 * One operating performance point of a DVFS domain: a frequency and
 * the supply voltage required to sustain it.
 */
struct Opp
{
    GHz frequency = 0.0;
    Volts voltage = 0.0;

    bool
    operator==(const Opp &other) const
    {
        return frequency == other.frequency && voltage == other.voltage;
    }
};

/** Format a frequency like the paper's labels, e.g. 0.9 -> "0.90". */
std::string formatGHz(GHz freq);

} // namespace hipster

#endif // HIPSTER_PLATFORM_TYPES_HH
