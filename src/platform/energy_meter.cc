#include "platform/energy_meter.hh"

#include "common/logging.hh"

namespace hipster
{

EnergyMeter::EnergyMeter(std::size_t cluster_count)
    : clusterEnergy_(cluster_count, 0.0)
{
}

void
EnergyMeter::accumulate(const std::vector<Watts> &cluster_power,
                        Watts rest_power, Seconds duration)
{
    HIPSTER_ASSERT(cluster_power.size() == clusterEnergy_.size(),
                   "cluster power vector size mismatch");
    HIPSTER_ASSERT(duration >= 0.0, "negative duration");
    for (std::size_t i = 0; i < cluster_power.size(); ++i)
        clusterEnergy_[i] += cluster_power[i] * duration;
    restEnergy_ += rest_power * duration;
    elapsed_ += duration;
}

Joules
EnergyMeter::clusterEnergy(std::size_t cluster) const
{
    HIPSTER_ASSERT(cluster < clusterEnergy_.size(),
                   "cluster index out of range");
    return clusterEnergy_[cluster];
}

Joules
EnergyMeter::totalEnergy() const
{
    Joules total = restEnergy_;
    for (Joules e : clusterEnergy_)
        total += e;
    return total;
}

Watts
EnergyMeter::meanPower() const
{
    return elapsed_ > 0.0 ? totalEnergy() / elapsed_ : 0.0;
}

void
EnergyMeter::reset()
{
    for (auto &e : clusterEnergy_)
        e = 0.0;
    restEnergy_ = 0.0;
    elapsed_ = 0.0;
}

} // namespace hipster
