/**
 * @file
 * Cluster specification and runtime state. A cluster is a set of
 * identical cores sharing an L2 cache and a DVFS domain, mirroring
 * the Juno R1's A57 (big) and A53 (small) clusters.
 */

#ifndef HIPSTER_PLATFORM_CLUSTER_HH
#define HIPSTER_PLATFORM_CLUSTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "platform/types.hh"

namespace hipster
{

/**
 * Static description of one cluster: its core type, core count,
 * microarchitectural throughput, cache size, and the OPP (DVFS)
 * table.
 */
struct ClusterSpec
{
    /** Marketing/model name, e.g. "Cortex-A57". */
    std::string name;

    /** Heterogeneity class of the cores. */
    CoreType type = CoreType::Small;

    /** Number of cores in the cluster. */
    std::uint32_t coreCount = 0;

    /**
     * Peak IPC of a core on the compute-bound stress microbenchmark
     * used for characterization (paper Section 3.3 / Table 2).
     * Workload models scale this with their own per-type factors.
     */
    double microbenchIpc = 1.0;

    /** Shared L2 cache size in bytes (contention modelling). */
    std::uint64_t l2Bytes = 0;

    /**
     * OPP table, sorted ascending by frequency. A fixed-frequency
     * cluster (the Juno's A53s) has a single entry.
     */
    std::vector<Opp> opps;

    /** Highest available frequency. */
    GHz maxFrequency() const;

    /** Lowest available frequency. */
    GHz minFrequency() const;

    /** Index of the OPP with the given frequency; throws if absent. */
    std::size_t oppIndex(GHz frequency) const;

    /** Voltage at the given frequency; throws if absent. */
    Volts voltageAt(GHz frequency) const;

    /** Validate internal consistency; throws FatalError on error. */
    void validate() const;
};

/**
 * Mutable per-cluster runtime state owned by the Platform: the
 * currently programmed OPP.
 */
class Cluster
{
  public:
    Cluster(ClusterId id, ClusterSpec spec);

    ClusterId id() const { return id_; }
    const ClusterSpec &spec() const { return spec_; }

    /** Currently programmed frequency. */
    GHz frequency() const { return spec_.opps[oppIndex_].frequency; }

    /** Currently programmed voltage. */
    Volts voltage() const { return spec_.opps[oppIndex_].voltage; }

    /** Index of the current OPP in the spec table. */
    std::size_t oppIndex() const { return oppIndex_; }

    /**
     * Program the OPP with the given frequency. Returns true when the
     * frequency actually changed. Throws FatalError when the
     * frequency is not in the OPP table.
     */
    bool setFrequency(GHz frequency);

  private:
    ClusterId id_;
    ClusterSpec spec_;
    std::size_t oppIndex_ = 0;
};

} // namespace hipster

#endif // HIPSTER_PLATFORM_CLUSTER_HH
