#include "platform/core_config.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "platform/types.hh"

namespace hipster
{

std::string
CoreConfig::label() const
{
    std::string out;
    if (nBig > 0)
        out += std::to_string(nBig) + "B";
    if (nSmall > 0)
        out += std::to_string(nSmall) + "S";
    if (out.empty())
        out = "0";
    const GHz freq = nBig > 0 ? bigFreq : smallFreq;
    out += "-" + formatGHz(freq);
    return out;
}

std::string
CoreConfig::fullLabel() const
{
    std::string out;
    if (nBig > 0)
        out += std::to_string(nBig) + "B";
    if (nSmall > 0)
        out += std::to_string(nSmall) + "S";
    if (out.empty())
        out = "0";
    out += "-";
    if (nBig > 0)
        out += formatGHz(bigFreq);
    if (nBig > 0 && nSmall > 0)
        out += "/";
    if (nSmall > 0)
        out += formatGHz(smallFreq);
    return out;
}

bool
CoreConfig::operator==(const CoreConfig &other) const
{
    return nBig == other.nBig && nSmall == other.nSmall &&
           bigFreq == other.bigFreq && smallFreq == other.smallFreq;
}

bool
CoreConfig::operator<(const CoreConfig &other) const
{
    if (nBig != other.nBig)
        return nBig < other.nBig;
    if (nSmall != other.nSmall)
        return nSmall < other.nSmall;
    if (bigFreq != other.bigFreq)
        return bigFreq < other.bigFreq;
    return smallFreq < other.smallFreq;
}

CoreConfig
parseCoreConfig(const std::string &label, GHz small_freq)
{
    CoreConfig config;
    config.smallFreq = small_freq;

    std::size_t i = 0;
    auto parse_count = [&]() -> std::uint32_t {
        std::size_t start = i;
        while (i < label.size() && std::isdigit(label[i]))
            ++i;
        if (i == start)
            fatal("parseCoreConfig: expected digit at position ", start,
                  " in '", label, "'");
        return static_cast<std::uint32_t>(
            std::strtoul(label.substr(start, i - start).c_str(), nullptr,
                         10));
    };

    bool saw_any = false;
    while (i < label.size() && label[i] != '-') {
        const std::uint32_t count = parse_count();
        if (i >= label.size())
            fatal("parseCoreConfig: truncated label '", label, "'");
        if (label[i] == 'B') {
            config.nBig = count;
        } else if (label[i] == 'S') {
            config.nSmall = count;
        } else {
            fatal("parseCoreConfig: unexpected '", std::string(1, label[i]),
                  "' in '", label, "'");
        }
        ++i;
        saw_any = true;
    }
    if (!saw_any)
        fatal("parseCoreConfig: no core counts in '", label, "'");
    if (i >= label.size() || label[i] != '-')
        fatal("parseCoreConfig: missing frequency suffix in '", label, "'");
    ++i;
    const double freq = std::strtod(label.c_str() + i, nullptr);
    if (freq <= 0.0)
        fatal("parseCoreConfig: bad frequency in '", label, "'");
    if (config.nBig > 0) {
        config.bigFreq = freq;
    } else {
        config.smallFreq = freq;
    }
    return config;
}

std::size_t
CoreConfigHash::operator()(const CoreConfig &config) const
{
    // Frequencies come from small OPP tables, so hashing their
    // rounded millihertz representation is stable.
    const auto freq_key = [](GHz f) {
        return static_cast<std::size_t>(std::llround(f * 1000.0));
    };
    std::size_t h = config.nBig;
    h = h * 31 + config.nSmall;
    h = h * 1009 + freq_key(config.bigFreq);
    h = h * 1009 + freq_key(config.smallFreq);
    return h;
}

} // namespace hipster
