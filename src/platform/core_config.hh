/**
 * @file
 * CoreConfig: the action space element of Hipster — how many big and
 * small cores the latency-critical workload gets and the DVFS point
 * of each cluster.
 */

#ifndef HIPSTER_PLATFORM_CORE_CONFIG_HH
#define HIPSTER_PLATFORM_CORE_CONFIG_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/units.hh"

namespace hipster
{

/**
 * A core-mapping + DVFS configuration for the latency-critical
 * workload, e.g. "2B2S-0.90" = 2 big cores and 2 small cores with the
 * big cluster clocked at 0.90 GHz.
 *
 * Frequencies refer to the *cluster* DVFS domain (the Juno's DVFS is
 * per-cluster): `bigFreq` applies to the big cluster whenever
 * `nBig > 0`, and `smallFreq` to the small cluster whenever
 * `nSmall > 0`. On the Juno R1 the small cluster is fixed at
 * 0.65 GHz, so the paper's labels carry only the big frequency.
 */
struct CoreConfig
{
    std::uint32_t nBig = 0;
    std::uint32_t nSmall = 0;
    GHz bigFreq = 0.0;
    GHz smallFreq = 0.0;

    /** Total number of cores allocated to the LC workload. */
    std::uint32_t totalCores() const { return nBig + nSmall; }

    /** True when no core is allocated (an invalid action). */
    bool empty() const { return totalCores() == 0; }

    /** True when the LC workload occupies exactly one core type. */
    bool
    singleCoreType() const
    {
        return (nBig == 0) != (nSmall == 0);
    }

    /**
     * Paper-style label, e.g. "2B2S-0.90", "4S-0.65", "2B-1.15".
     * Zero-count core types are omitted; the trailing frequency is
     * the big-cluster frequency when big cores are used, otherwise
     * the small-cluster frequency (matching Figure 2c's axis labels).
     */
    std::string label() const;

    /**
     * Unambiguous label carrying both cluster frequencies, e.g.
     * "2B2S-0.90/0.65". label() is ambiguous on platforms where a
     * mixed config can pair one big OPP with several small OPPs;
     * this variant never is.
     */
    std::string fullLabel() const;

    bool operator==(const CoreConfig &other) const;

    /**
     * Lexicographic order (nBig, nSmall, bigFreq, smallFreq); used
     * only to keep containers deterministic, not as a performance
     * order.
     */
    bool operator<(const CoreConfig &other) const;
};

/**
 * Parse a label produced by CoreConfig::label(). The small-cluster
 * frequency cannot be recovered from labels that include big cores,
 * so the caller provides the platform's small frequency.
 *
 * Throws FatalError on malformed labels.
 */
CoreConfig parseCoreConfig(const std::string &label, GHz small_freq);

/** Hash functor so CoreConfig can key unordered containers. */
struct CoreConfigHash
{
    std::size_t operator()(const CoreConfig &config) const;
};

} // namespace hipster

#endif // HIPSTER_PLATFORM_CORE_CONFIG_HH
