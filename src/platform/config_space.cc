#include "platform/config_space.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hipster
{

std::vector<CoreConfig>
ConfigSpace::enumerate(const Platform &platform)
{
    const std::uint32_t max_big = platform.coreCount(CoreType::Big);
    const std::uint32_t max_small = platform.coreCount(CoreType::Small);

    std::vector<GHz> big_freqs{0.0};
    if (max_big > 0) {
        big_freqs.clear();
        for (const auto &opp : platform.cluster(CoreType::Big).spec().opps)
            big_freqs.push_back(opp.frequency);
    }
    std::vector<GHz> small_freqs{0.0};
    if (max_small > 0) {
        small_freqs.clear();
        for (const auto &opp :
             platform.cluster(CoreType::Small).spec().opps) {
            small_freqs.push_back(opp.frequency);
        }
    }

    std::vector<CoreConfig> out;
    for (std::uint32_t nb = 0; nb <= max_big; ++nb) {
        for (std::uint32_t ns = 0; ns <= max_small; ++ns) {
            if (nb + ns == 0)
                continue;
            // Unused clusters: pin the frequency to the minimum OPP
            // so that equivalent configs deduplicate.
            const auto bfs = nb > 0 ? big_freqs
                                    : std::vector<GHz>{big_freqs.front()};
            const auto sfs = ns > 0 ? small_freqs
                                    : std::vector<GHz>{small_freqs.front()};
            for (GHz bf : bfs) {
                for (GHz sf : sfs) {
                    CoreConfig config{nb, ns, bf, sf};
                    out.push_back(config);
                }
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

namespace
{

/** Figure 2c's y-axis, bottom to top. */
constexpr const char *kPaperStateLabels[] = {
    "1S-0.65",   "2S-0.65",   "3S-0.65",  "2B-0.60",  "1B3S-0.60",
    "4S-0.65",   "2B2S-0.60", "1B3S-0.90", "2B-0.90", "2B2S-0.90",
    "1B3S-1.15", "2B2S-1.15", "2B-1.15",
};

GHz
smallMinFrequency(const Platform &platform)
{
    return platform.coreCount(CoreType::Small) > 0
               ? platform.cluster(CoreType::Small).spec().minFrequency()
               : 0.0;
}

} // namespace

std::vector<CoreConfig>
ConfigSpace::paperStates(const Platform &platform)
{
    const GHz small_freq = smallMinFrequency(platform);
    std::vector<CoreConfig> out;
    for (const char *label : kPaperStateLabels) {
        CoreConfig config = parseCoreConfig(label, small_freq);
        if (!platform.isValidConfig(config))
            fatal("paperStates: ", label, " is not realizable on ",
                  platform.name());
        out.push_back(config);
    }
    return out;
}

Ips
ConfigSpace::peakIps(const Platform &platform, const CoreConfig &config)
{
    Ips total = 0.0;
    if (config.nBig > 0) {
        const auto &spec = platform.cluster(CoreType::Big).spec();
        total += config.nBig * spec.microbenchIpc * config.bigFreq * 1e9;
    }
    if (config.nSmall > 0) {
        const auto &spec = platform.cluster(CoreType::Small).spec();
        total +=
            config.nSmall * spec.microbenchIpc * config.smallFreq * 1e9;
    }
    return total;
}

Watts
ConfigSpace::fullLoadPower(const Platform &platform,
                           const CoreConfig &config)
{
    const auto &model = platform.powerModel();
    Watts total = model.restOfSystem();
    for (const auto &cluster : platform.clusters()) {
        const auto &spec = cluster.spec();
        const std::uint32_t active = spec.type == CoreType::Big
                                         ? config.nBig
                                         : config.nSmall;
        if (active == 0)
            continue;
        const GHz freq = spec.type == CoreType::Big ? config.bigFreq
                                                    : config.smallFreq;
        const Opp opp{freq, spec.voltageAt(freq)};
        total += model.clusterPower(spec, model.params(cluster.id()), opp,
                                    {active, 1.0});
    }
    return total;
}

std::vector<CoreConfig>
ConfigSpace::orderForHeuristic(const Platform &platform,
                               std::vector<CoreConfig> configs)
{
    std::stable_sort(
        configs.begin(), configs.end(),
        [&](const CoreConfig &a, const CoreConfig &b) {
            const Ips ia = peakIps(platform, a);
            const Ips ib = peakIps(platform, b);
            if (std::abs(ia - ib) > 1e-6 * std::max(ia, ib))
                return ia < ib;
            return fullLoadPower(platform, a) < fullLoadPower(platform, b);
        });
    return configs;
}

std::vector<CoreConfig>
ConfigSpace::paretoPrune(const Platform &platform,
                         std::vector<CoreConfig> configs,
                         double ips_epsilon)
{
    auto ordered = orderForHeuristic(platform, std::move(configs));
    std::vector<CoreConfig> out;
    for (const auto &config : ordered) {
        const Ips ips = peakIps(platform, config);
        const Watts power = fullLoadPower(platform, config);
        if (!out.empty()) {
            const Ips prev_ips = peakIps(platform, out.back());
            const bool near_equal =
                std::abs(ips - prev_ips) <=
                ips_epsilon * std::max(ips, prev_ips);
            if (near_equal) {
                if (power < fullLoadPower(platform, out.back()))
                    out.back() = config;
                continue;
            }
        }
        out.push_back(config);
    }
    return out;
}

std::vector<CoreConfig>
ConfigSpace::defaultLadder(const Platform &platform)
{
    // The canonical Figure 2c subset needs the Juno's exact OPPs and
    // at least its 2+4 core counts; widened junos still realize it.
    // Anything else gets an automatically derived ladder, like the
    // paper's deployment stage would characterize a new board.
    const GHz small_freq = smallMinFrequency(platform);
    const bool paper_realizable = std::all_of(
        std::begin(kPaperStateLabels), std::end(kPaperStateLabels),
        [&](const char *label) {
            return platform.isValidConfig(
                parseCoreConfig(label, small_freq));
        });
    if (paper_realizable)
        return paperStates(platform);
    return paretoPrune(platform, enumerate(platform),
                       /*ips_epsilon=*/0.10);
}

std::vector<CoreConfig>
ConfigSpace::octopusManStates(const Platform &platform)
{
    std::vector<CoreConfig> out;
    const std::uint32_t max_small = platform.coreCount(CoreType::Small);
    const std::uint32_t max_big = platform.coreCount(CoreType::Big);
    GHz small_max = 0.0, big_max = 0.0;
    if (max_small > 0)
        small_max = platform.cluster(CoreType::Small).spec().maxFrequency();
    if (max_big > 0)
        big_max = platform.cluster(CoreType::Big).spec().maxFrequency();

    for (std::uint32_t ns = 1; ns <= max_small; ++ns)
        out.push_back(CoreConfig{0, ns, 0.0, small_max});
    for (std::uint32_t nb = 1; nb <= max_big; ++nb)
        out.push_back(CoreConfig{nb, 0, big_max, small_max});
    return orderForHeuristic(platform, std::move(out));
}

} // namespace hipster
