/**
 * @file
 * Heterogeneous multi-server FCFS queueing system — the substrate on
 * which the latency-critical services (Memcached, Web-Search) are
 * simulated.
 *
 * Requests carry a two-component service demand: compute instructions
 * (scale with core speed = IPC x frequency) and memory-stall time
 * (does not scale with frequency, but inflates under shared-resource
 * contention). Servers model cores; the server set and speeds can be
 * reconfigured mid-simulation (core migrations and DVFS changes), and
 * in-flight requests are rescheduled accordingly — including
 * migration of partially executed requests back to the queue when
 * their core is taken away, which is what makes core transitions
 * "far more costly than DVFS changes" (Kasture et al., cited in
 * Section 2 of the paper).
 */

#ifndef HIPSTER_SIM_QUEUEING_HH
#define HIPSTER_SIM_QUEUEING_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "common/units.hh"
#include "sim/event_queue.hh"

namespace hipster
{

/** A request's service demand and identity. */
struct Request
{
    /** Absolute arrival (submission) time. */
    Seconds arrival = 0.0;

    /** Compute portion: instructions to retire. */
    Instructions computeInsn = 0.0;

    /** Memory-stall portion: seconds, frequency-independent. */
    Seconds memStall = 0.0;

    /** Closed-loop user issuing the request (0 for open loop). */
    std::uint64_t userId = 0;
};

/** A finished request with its timing. */
struct CompletedRequest
{
    Seconds arrival = 0.0;
    Seconds started = 0.0;
    Seconds completed = 0.0;
    std::uint64_t userId = 0;

    /** Sojourn time (queueing + service). */
    Seconds latency() const { return completed - arrival; }
};

/** One simulated server (a core allocated to the LC workload). */
struct ServerSpec
{
    /** Effective instruction retirement rate for this app (IPS). */
    Ips instructionRate = 0.0;

    /** Multiplier on the memory-stall portion (>= 1 under
     * contention). */
    double stallScale = 1.0;

    /** Platform core backing this server (perf-counter attribution). */
    CoreId core = 0;
};

/** Per-interval accounting for one server. */
struct ServerUsage
{
    CoreId core = 0;
    Seconds busyTime = 0.0;
    Instructions instructions = 0.0;
};

/**
 * The queueing system. Drives departures through an external
 * EventQueue supplied by the owner, so arrival sources and the
 * service network share one clock.
 */
class QueueingSystem
{
  public:
    using CompletionCallback =
        std::function<void(const CompletedRequest &)>;

    /**
     * @param events    Shared event queue (not owned).
     * @param max_queue Waiting-room bound; arrivals beyond it are
     *                  dropped (counted), modelling request timeouts
     *                  under extreme overload.
     */
    explicit QueueingSystem(
        EventQueue &events,
        std::size_t max_queue = std::numeric_limits<std::size_t>::max());

    /**
     * Replace the server set at time `now`. In-flight requests on
     * surviving servers are rescaled to the new speed; requests on
     * removed servers return to the *front* of the queue (their
     * arrival stamps are preserved, so their eventual latency
     * includes the disruption). Newly added idle servers immediately
     * pull waiting work.
     */
    void configure(const std::vector<ServerSpec> &servers, Seconds now);

    /**
     * Freeze all servers until `until` (actuation stall: core
     * migration or DVFS transition latency). In-flight completions
     * are pushed back by the stall.
     */
    void stall(Seconds now, Seconds until);

    /**
     * Submit a request at time `request.arrival`. Must be invoked
     * when simulated time reaches the arrival (i.e. from an event
     * scheduled on the shared EventQueue at `request.arrival`);
     * submitting future arrivals eagerly corrupts FCFS timing.
     */
    void submit(const Request &request);

    /** Invoked for every completed request. */
    void setCompletionCallback(CompletionCallback callback);

    /** Number of requests waiting (not in service). */
    std::size_t queueLength() const { return queue_.size(); }

    /** Number of requests currently in service. */
    std::size_t inService() const;

    /** Total arrivals dropped due to the waiting-room bound. */
    std::uint64_t dropped() const { return dropped_; }

    /** Number of configured servers. */
    std::size_t serverCount() const { return servers_.size(); }

    /**
     * Snapshot and reset per-interval usage accounting. `now` is the
     * interval end; busy periods extending past `now` are charged up
     * to `now` only.
     */
    std::vector<ServerUsage> harvestUsage(Seconds now);

    /** Drain everything (fresh start, e.g. between experiments). */
    void reset();

  private:
    struct InFlight
    {
        Request request;
        Seconds started = 0.0;       ///< first time it entered service
        Instructions remainInsn = 0.0;
        Seconds remainStall = 0.0;
    };

    struct Server
    {
        ServerSpec spec;
        bool busy = false;
        InFlight work;
        Seconds departAt = 0.0;
        std::uint64_t epoch = 0;     ///< invalidates stale departures
        Seconds busySince = 0.0;
        Seconds busyAccum = 0.0;
        Instructions insnAccum = 0.0;
    };

    /** Service time of remaining work on a given server. */
    static Seconds serviceTime(const Server &server, const InFlight &work);

    /** Put a request into service on an idle server. */
    void startService(std::size_t idx, InFlight work, Seconds now);

    /** Schedule (or reschedule) the departure event for a server. */
    void scheduleDeparture(std::size_t idx);

    /** Handle a departure event for a server at a given epoch. */
    void onDeparture(std::size_t idx, std::uint64_t epoch, Seconds now);

    /** Account the executed portion when service is interrupted. */
    void chargePartialProgress(Server &server, Seconds now);

    /** Fastest idle server, or SIZE_MAX when all busy. */
    std::size_t pickIdleServer() const;

    /** Dispatch queued work to any idle servers. */
    void dispatch(Seconds now);

    EventQueue &events_;
    std::vector<Server> servers_;
    std::deque<InFlight> queue_;
    std::size_t maxQueue_;
    std::uint64_t dropped_ = 0;
    CompletionCallback onComplete_;
};

} // namespace hipster

#endif // HIPSTER_SIM_QUEUEING_HH
