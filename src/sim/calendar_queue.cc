#include "sim/calendar_queue.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hipster
{

namespace
{

/** Initial geometry: small calendar, quarter-second days. */
constexpr std::size_t kInitialBuckets = 16;
constexpr double kInitialWidth = 0.25;

/** Bounds keeping floor(when / width) castable to int64. */
constexpr double kMinWidth = 1e-9;
constexpr double kMaxVirtual = 4.0e18;

} // namespace

CalendarQueue::CalendarQueue()
    : buckets_(kInitialBuckets), width_(kInitialWidth)
{
}

std::int64_t
CalendarQueue::virtualBucket(Seconds when) const
{
    const double q = std::floor(when / width_);
    if (q >= kMaxVirtual)
        return static_cast<std::int64_t>(kMaxVirtual);
    if (q <= -kMaxVirtual)
        return -static_cast<std::int64_t>(kMaxVirtual);
    return static_cast<std::int64_t>(q);
}

std::size_t
CalendarQueue::bucketIndex(std::int64_t vb) const
{
    const auto n = static_cast<std::int64_t>(buckets_.size());
    return static_cast<std::size_t>(((vb % n) + n) % n);
}

void
CalendarQueue::insert(Seconds when, std::uint64_t seq, Handler handler)
{
    HIPSTER_ASSERT(std::isfinite(when),
                   "CalendarQueue: non-finite event time");
    if (size_ + 1 > 2 * buckets_.size())
        rebuild(2 * buckets_.size());

    Event event;
    event.when = when;
    event.seq = seq;
    event.vb = virtualBucket(when);
    event.handler = std::move(handler);

    // Keep the cursor at or below every stored event's virtual
    // bucket, so the forward scan in locateMin() never skips one.
    if (size_ == 0 || event.vb < cursor_)
        cursor_ = event.vb;

    std::vector<Event> &bucket = buckets_[bucketIndex(event.vb)];
    const auto pos = std::upper_bound(bucket.begin(), bucket.end(),
                                      event, laterThan);
    bucket.insert(pos, std::move(event));
    ++size_;
}

void
CalendarQueue::locateMin() const
{
    HIPSTER_ASSERT(size_ > 0, "locateMin on empty calendar queue");
    // Walk forward one day at a time. An event with vb == cursor_ can
    // only live in bucket cursor_ % n, and vb < cursor_ is excluded
    // by the insert/pop invariant, so a bucket whose earliest entry
    // is from a later year can be skipped outright.
    for (std::size_t lap = 0; lap < buckets_.size(); ++lap) {
        const std::vector<Event> &bucket = buckets_[bucketIndex(cursor_)];
        if (!bucket.empty() && bucket.back().vb <= cursor_)
            return;
        ++cursor_;
    }
    // Sparse year: jump straight to the earliest event. Each bucket
    // is sorted, so the global minimum is the least of the backs.
    const Event *min = nullptr;
    for (const std::vector<Event> &bucket : buckets_) {
        if (bucket.empty())
            continue;
        if (!min || laterThan(*min, bucket.back()))
            min = &bucket.back();
    }
    HIPSTER_ASSERT(min != nullptr, "calendar queue lost its events");
    cursor_ = min->vb;
}

Seconds
CalendarQueue::minTime() const
{
    locateMin();
    return buckets_[bucketIndex(cursor_)].back().when;
}

CalendarQueue::Popped
CalendarQueue::popMin()
{
    locateMin();
    std::vector<Event> &bucket = buckets_[bucketIndex(cursor_)];
    Popped popped;
    popped.when = bucket.back().when;
    popped.handler = std::move(bucket.back().handler);
    bucket.pop_back();
    --size_;
    if (buckets_.size() > kInitialBuckets && size_ < buckets_.size() / 4)
        rebuild(buckets_.size() / 2);
    return popped;
}

void
CalendarQueue::rebuild(std::size_t buckets)
{
    std::vector<Event> events;
    events.reserve(size_);
    for (std::vector<Event> &bucket : buckets_) {
        for (Event &event : bucket)
            events.push_back(std::move(event));
        bucket.clear();
    }
    buckets_.assign(std::max(buckets, kInitialBuckets), {});

    if (!events.empty()) {
        // Re-derive the day length from the live span: ~3x the mean
        // inter-event gap, the classic calendar-queue sizing rule.
        auto [lo, hi] = std::minmax_element(
            events.begin(), events.end(),
            [](const Event &a, const Event &b) { return a.when < b.when; });
        const double span = hi->when - lo->when;
        if (span > 0.0) {
            width_ = std::max(3.0 * span /
                                  static_cast<double>(events.size()),
                              kMinWidth);
        }
        std::sort(events.begin(), events.end(), laterThan);
        cursor_ = virtualBucket(events.back().when);
        for (Event &event : events) {
            event.vb = virtualBucket(event.when);
            buckets_[bucketIndex(event.vb)].push_back(std::move(event));
        }
    }
}

void
CalendarQueue::clear()
{
    buckets_.assign(kInitialBuckets, {});
    width_ = kInitialWidth;
    size_ = 0;
    cursor_ = 0;
}

} // namespace hipster
