#include "sim/queueing.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hipster
{

QueueingSystem::QueueingSystem(EventQueue &events, std::size_t max_queue)
    : events_(events), maxQueue_(max_queue)
{
}

Seconds
QueueingSystem::serviceTime(const Server &server, const InFlight &work)
{
    HIPSTER_ASSERT(server.spec.instructionRate > 0.0,
                   "server has zero instruction rate");
    return work.remainInsn / server.spec.instructionRate +
           work.remainStall * server.spec.stallScale;
}

void
QueueingSystem::configure(const std::vector<ServerSpec> &servers,
                          Seconds now)
{
    // Collect in-flight work from servers that disappear (shrink) and
    // re-queue it at the front, preserving FIFO order among the
    // displaced requests.
    std::vector<InFlight> displaced;
    for (std::size_t i = servers.size(); i < servers_.size(); ++i) {
        Server &server = servers_[i];
        if (server.busy) {
            chargePartialProgress(server, now);
            displaced.push_back(server.work);
            server.busy = false;
            ++server.epoch;
        }
    }
    // Sort displaced requests by original arrival so re-queue order
    // is deterministic.
    std::stable_sort(displaced.begin(), displaced.end(),
                     [](const InFlight &a, const InFlight &b) {
                         return a.request.arrival < b.request.arrival;
                     });
    for (auto it = displaced.rbegin(); it != displaced.rend(); ++it)
        queue_.push_front(*it);

    // Preserve usage accounting for surviving servers across the
    // reconfiguration; shrink/grow the vector afterwards.
    const std::size_t surviving = std::min(servers.size(), servers_.size());
    for (std::size_t i = 0; i < surviving; ++i) {
        Server &server = servers_[i];
        const bool speed_changed =
            server.spec.instructionRate != servers[i].instructionRate ||
            server.spec.stallScale != servers[i].stallScale;
        if (server.busy && speed_changed) {
            chargePartialProgress(server, now);
            server.spec = servers[i];
            server.busySince = now;
            server.departAt = now + serviceTime(server, server.work);
            ++server.epoch;
            scheduleDeparture(i);
        } else {
            server.spec = servers[i];
        }
    }
    servers_.resize(servers.size());
    for (std::size_t i = surviving; i < servers.size(); ++i) {
        servers_[i] = Server{};
        servers_[i].spec = servers[i];
    }

    dispatch(now);
}

void
QueueingSystem::stall(Seconds now, Seconds until)
{
    if (until <= now)
        return;
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        Server &server = servers_[i];
        if (!server.busy)
            continue;
        // The stall contributes no progress: push the departure back
        // and do not count the paused span as busy execution.
        chargePartialProgress(server, now);
        server.busySince = until;
        server.departAt = until + serviceTime(server, server.work);
        ++server.epoch;
        scheduleDeparture(i);
    }
}

void
QueueingSystem::submit(const Request &request)
{
    InFlight work;
    work.request = request;
    work.remainInsn = request.computeInsn;
    work.remainStall = request.memStall;

    const std::size_t idle = pickIdleServer();
    if (idle != static_cast<std::size_t>(-1)) {
        startService(idle, work, request.arrival);
        return;
    }
    if (queue_.size() >= maxQueue_) {
        ++dropped_;
        return;
    }
    queue_.push_back(work);
}

void
QueueingSystem::setCompletionCallback(CompletionCallback callback)
{
    onComplete_ = std::move(callback);
}

std::size_t
QueueingSystem::inService() const
{
    std::size_t count = 0;
    for (const auto &server : servers_)
        count += server.busy ? 1 : 0;
    return count;
}

std::vector<ServerUsage>
QueueingSystem::harvestUsage(Seconds now)
{
    std::vector<ServerUsage> out;
    out.reserve(servers_.size());
    for (auto &server : servers_) {
        if (server.busy) {
            // Convert the executed span into progress: the remaining
            // work shrinks and the accounting window restarts at
            // `now`. The in-flight departure event stays valid
            // because the speed is unchanged (serviceTime(remaining)
            // == departAt - now afterwards).
            chargePartialProgress(server, now);
            server.busySince = now;
        }
        out.push_back({server.spec.core, server.busyAccum,
                       server.insnAccum});
        server.busyAccum = 0.0;
        server.insnAccum = 0.0;
    }
    return out;
}

void
QueueingSystem::reset()
{
    for (auto &server : servers_) {
        server.busy = false;
        ++server.epoch;
        server.busyAccum = 0.0;
        server.insnAccum = 0.0;
    }
    queue_.clear();
    dropped_ = 0;
}

void
QueueingSystem::startService(std::size_t idx, InFlight work, Seconds now)
{
    Server &server = servers_[idx];
    HIPSTER_ASSERT(!server.busy, "startService on busy server");
    server.busy = true;
    if (work.started == 0.0 && work.remainInsn == work.request.computeInsn)
        work.started = now;
    server.work = work;
    server.busySince = now;
    server.departAt = now + serviceTime(server, server.work);
    ++server.epoch;
    scheduleDeparture(idx);
}

void
QueueingSystem::scheduleDeparture(std::size_t idx)
{
    Server &server = servers_[idx];
    const std::uint64_t epoch = server.epoch;
    const Seconds when = server.departAt;
    events_.schedule(when, [this, idx, epoch](Seconds now) {
        onDeparture(idx, epoch, now);
    });
}

void
QueueingSystem::onDeparture(std::size_t idx, std::uint64_t epoch,
                            Seconds now)
{
    if (idx >= servers_.size())
        return; // server removed since scheduling
    Server &server = servers_[idx];
    if (!server.busy || server.epoch != epoch)
        return; // stale event

    // Account the final service span.
    server.busyAccum += std::max(0.0, now - server.busySince);
    server.insnAccum += server.work.remainInsn;
    server.busy = false;
    ++server.epoch;

    if (onComplete_) {
        CompletedRequest done;
        done.arrival = server.work.request.arrival;
        done.started = server.work.started;
        done.completed = now;
        done.userId = server.work.request.userId;
        onComplete_(done);
    }

    if (!queue_.empty()) {
        InFlight next = queue_.front();
        queue_.pop_front();
        if (next.started == 0.0 &&
            next.remainInsn == next.request.computeInsn) {
            next.started = now;
        }
        startService(idx, next, now);
    }
}

void
QueueingSystem::chargePartialProgress(Server &server, Seconds now)
{
    HIPSTER_ASSERT(server.busy, "chargePartialProgress on idle server");
    const Seconds span = std::max(0.0, now - server.busySince);
    const Seconds total = serviceTime(server, server.work);
    const double frac =
        total > 0.0 ? std::min(1.0, span / total) : 1.0;
    server.busyAccum += span;
    server.insnAccum += server.work.remainInsn * frac;
    server.work.remainInsn *= (1.0 - frac);
    server.work.remainStall *= (1.0 - frac);
}

std::size_t
QueueingSystem::pickIdleServer() const
{
    std::size_t best = static_cast<std::size_t>(-1);
    Ips best_rate = -1.0;
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        if (!servers_[i].busy &&
            servers_[i].spec.instructionRate > best_rate) {
            best = i;
            best_rate = servers_[i].spec.instructionRate;
        }
    }
    return best;
}

void
QueueingSystem::dispatch(Seconds now)
{
    while (!queue_.empty()) {
        const std::size_t idle = pickIdleServer();
        if (idle == static_cast<std::size_t>(-1))
            break;
        InFlight next = queue_.front();
        queue_.pop_front();
        if (next.started == 0.0 &&
            next.remainInsn == next.request.computeInsn) {
            next.started = now;
        }
        startService(idle, next, now);
    }
}

} // namespace hipster
