#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace hipster
{

EventQueue::EventQueue(Backend backend) : backend_(backend) {}

void
EventQueue::schedule(Seconds when, Handler handler)
{
    if (backend_ == Backend::Calendar) {
        calendar_.insert(when, nextSeq_++, std::move(handler));
    } else {
        heap_.push(Entry{when, nextSeq_++, std::move(handler)});
    }
}

Seconds
EventQueue::nextTime() const
{
    HIPSTER_ASSERT(!empty(), "nextTime on empty queue");
    return backend_ == Backend::Calendar ? calendar_.minTime()
                                         : heap_.top().when;
}

Seconds
EventQueue::runOne()
{
    HIPSTER_ASSERT(!empty(), "runOne on empty queue");
    ++processed_;
    if (backend_ == Backend::Calendar) {
        CalendarQueue::Popped popped = calendar_.popMin();
        popped.handler(popped.when);
        return popped.when;
    }
    // priority_queue::top returns const&; we must copy before pop.
    Entry entry = heap_.top();
    heap_.pop();
    entry.handler(entry.when);
    return entry.when;
}

std::size_t
EventQueue::runUntil(Seconds until)
{
    std::size_t count = 0;
    while (!empty() && nextTime() <= until) {
        runOne();
        ++count;
    }
    return count;
}

void
EventQueue::clear()
{
    calendar_.clear();
    while (!heap_.empty())
        heap_.pop();
}

} // namespace hipster
