#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace hipster
{

void
EventQueue::schedule(Seconds when, Handler handler)
{
    heap_.push(Entry{when, nextSeq_++, std::move(handler)});
}

Seconds
EventQueue::nextTime() const
{
    HIPSTER_ASSERT(!heap_.empty(), "nextTime on empty queue");
    return heap_.top().when;
}

Seconds
EventQueue::runOne()
{
    HIPSTER_ASSERT(!heap_.empty(), "runOne on empty queue");
    // priority_queue::top returns const&; we must copy before pop.
    Entry entry = heap_.top();
    heap_.pop();
    ++processed_;
    entry.handler(entry.when);
    return entry.when;
}

std::size_t
EventQueue::runUntil(Seconds until)
{
    std::size_t count = 0;
    while (!heap_.empty() && heap_.top().when <= until) {
        runOne();
        ++count;
    }
    return count;
}

void
EventQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
}

} // namespace hipster
