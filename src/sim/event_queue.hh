/**
 * @file
 * Generic discrete-event simulation core: a timestamped event queue
 * with stable FIFO ordering among simultaneous events, and a small
 * simulation clock wrapper. Two interchangeable backends sit behind
 * the one interface: the original time-ordered binary heap and the
 * calendar queue (sim/calendar_queue), which is the default on the
 * hot path. Both pop in the identical (when, seq) total order, so
 * simulations are bitwise-independent of the backend choice.
 */

#ifndef HIPSTER_SIM_EVENT_QUEUE_HH
#define HIPSTER_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.hh"
#include "sim/calendar_queue.hh"

namespace hipster
{

/**
 * Event queue facade. Events scheduled for the same time fire in
 * insertion order (a sequence number breaks ties), which keeps
 * simulations deterministic.
 */
class EventQueue
{
  public:
    using Handler = std::function<void(Seconds now)>;

    /** Priority-queue implementation choice. */
    enum class Backend
    {
        /** Binary min-heap: the O(log n) reference implementation. */
        TimeOrdered,

        /** Calendar queue: amortized O(1) insert/pop (the default). */
        Calendar,
    };

    explicit EventQueue(Backend backend = Backend::Calendar);

    Backend backend() const { return backend_; }

    /** Schedule `handler` to fire at absolute time `when`. */
    void schedule(Seconds when, Handler handler);

    /** True when no events are pending. */
    bool
    empty() const
    {
        return backend_ == Backend::Calendar ? calendar_.empty()
                                             : heap_.empty();
    }

    /** Number of pending events. */
    std::size_t
    size() const
    {
        return backend_ == Backend::Calendar ? calendar_.size()
                                             : heap_.size();
    }

    /** Timestamp of the earliest pending event. */
    Seconds nextTime() const;

    /**
     * Pop and run the earliest event. Returns its timestamp. Must
     * not be called on an empty queue.
     */
    Seconds runOne();

    /**
     * Run events until the queue empties or the next event is later
     * than `until`. Events at exactly `until` run. Returns the number
     * of events processed.
     */
    std::size_t runUntil(Seconds until);

    /** Drop all pending events. */
    void clear();

    /** Total events processed since construction. */
    std::uint64_t processed() const { return processed_; }

  private:
    struct Entry
    {
        Seconds when;
        std::uint64_t seq;
        Handler handler;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Backend backend_;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    CalendarQueue calendar_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t processed_ = 0;
};

} // namespace hipster

#endif // HIPSTER_SIM_EVENT_QUEUE_HH
