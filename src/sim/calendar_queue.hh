/**
 * @file
 * Calendar queue (Brown 1988): a bucketed ladder of timestamped
 * events with amortized O(1) insert and pop-min, replacing the
 * binary heap on the simulator's hottest path. Events map to
 * buckets by floor(when / width) modulo the bucket count ("day of
 * year"); popping scans forward from a cursor day, and the bucket
 * count/width adapt to the queue size and event-time span.
 *
 * Pop order is the same total order the time-ordered heap uses —
 * (when, seq) ascending — so the two backends are interchangeable
 * event-for-event; tests/sim/test_calendar_queue.cc pins that
 * equivalence under randomized interleavings.
 */

#ifndef HIPSTER_SIM_CALENDAR_QUEUE_HH
#define HIPSTER_SIM_CALENDAR_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hh"

namespace hipster
{

/**
 * The bucketed ladder. Stores (when, seq, handler) events; `seq` is
 * the insertion sequence number the owner assigns, which breaks
 * same-timestamp ties FIFO exactly like the heap backend.
 */
class CalendarQueue
{
  public:
    using Handler = std::function<void(Seconds)>;

    CalendarQueue();

    /** Insert an event; `seq` must be unique and increasing. */
    void insert(Seconds when, std::uint64_t seq, Handler handler);

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /**
     * Timestamp of the earliest event. Must not be called empty.
     * Advances the internal cursor (amortized work shared with the
     * following popMin), which is logically const.
     */
    Seconds minTime() const;

    /** An extracted event. */
    struct Popped
    {
        Seconds when = 0.0;
        Handler handler;
    };

    /** Remove and return the earliest event (FIFO on ties). Must not
     * be called empty. */
    Popped popMin();

    /** Drop all events; bucket geometry resets to the initial one. */
    void clear();

    /** Current number of buckets (testing/tuning aid). */
    std::size_t bucketCount() const { return buckets_.size(); }

    /** Current bucket width in seconds (testing/tuning aid). */
    double bucketWidth() const { return width_; }

  private:
    struct Event
    {
        Seconds when = 0.0;
        std::uint64_t seq = 0;
        std::int64_t vb = 0; ///< virtual bucket = floor(when / width)
        Handler handler;
    };

    /** Strict (when, seq) order; buckets are kept sorted descending
     * so the bucket's earliest event is at back(). */
    static bool
    laterThan(const Event &a, const Event &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.seq > b.seq;
    }

    /** Virtual bucket of a timestamp under the current width. */
    std::int64_t virtualBucket(Seconds when) const;

    /** Physical bucket index of a virtual bucket. */
    std::size_t bucketIndex(std::int64_t vb) const;

    /**
     * Advance the cursor to the bucket holding the earliest event.
     * Scans at most one full "year" of buckets, then falls back to a
     * direct search. Requires size_ > 0.
     */
    void locateMin() const;

    /** Re-bucket everything into `buckets` buckets with a width
     * derived from the current event-time span. */
    void rebuild(std::size_t buckets);

    std::vector<std::vector<Event>> buckets_;
    std::size_t size_ = 0;
    double width_;

    /**
     * Cursor day: the invariant is that no stored event has a
     * virtual bucket below it. Mutable because locating the minimum
     * advances it (amortization state, not observable ordering
     * state).
     */
    mutable std::int64_t cursor_ = 0;
};

} // namespace hipster

#endif // HIPSTER_SIM_CALENDAR_QUEUE_HH
