/**
 * @file
 * Work migration between fleet nodes.
 *
 * The fleet layer (PR 7) routes *new* load every interval; this
 * subsystem lets dispatchers *move running work* between nodes. A
 * MigrationModel prices a move — checkpoint size, serialize /
 * transfer / restore bandwidths, a warm same-ISA path and a
 * HEXO-style checkpointed cross-ISA path — and a MigrationEngine
 * executes planned moves interval-by-interval inside the fleet's
 * lockstep loop: load share in transit is neither served nor billed
 * to the source node, arrives after the modeled latency as a surge,
 * and is blanked when the destination is down on arrival.
 */

#ifndef HIPSTER_MIGRATION_MIGRATION_HH
#define HIPSTER_MIGRATION_MIGRATION_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace hipster
{

/**
 * Cost model for moving work between nodes. All latencies derive
 * from one checkpoint image: serialize on the source, transfer over
 * the fleet network, restore on the destination. Same-ISA moves pay
 * `warm` times the base latency (process state ships mostly as-is);
 * cross-ISA moves pay `xisa` times the base latency (HEXO-style
 * checkpoint transformation at both ends).
 */
class MigrationModel
{
  public:
    MigrationModel(std::string label, double checkpointMb,
                   double serializeMbps, double transferMbps,
                   double restoreMbps, double warmFactor,
                   double crossIsaFactor, double joulesPerMb,
                   double minMoveShare);

    /** Canonical spec label, e.g. "migrate:hexo:ckpt=64". */
    const std::string &label() const { return label_; }

    /** Serialize + transfer + restore latency of one checkpoint. */
    Seconds baseLatency() const;

    /** One-way latency of a move between the two ISAs. */
    Seconds latency(const std::string &srcIsa,
                    const std::string &dstIsa) const;

    /** Energy charged to the fleet per transfer event. */
    Joules moveEnergy() const;

    /**
     * Smallest share a blind (non-migration-aware) dispatcher will
     * bother moving; deltas below this stick to their current node,
     * which is what makes churn under a costed model hysteretic.
     */
    double minMoveShare() const { return minMoveShare_; }

    /**
     * True when every move between the given ISAs is free: zero
     * latency and zero energy. A model that is free for all ISAs in
     * a fleet degrades migration to plain re-routing.
     */
    bool freeBetween(const std::string &srcIsa,
                     const std::string &dstIsa) const;

    double checkpointMb() const { return checkpointMb_; }
    double warmFactor() const { return warmFactor_; }
    double crossIsaFactor() const { return crossIsaFactor_; }
    double joulesPerMb() const { return joulesPerMb_; }

  private:
    std::string label_;
    double checkpointMb_;
    double serializeMbps_;
    double transferMbps_;
    double restoreMbps_;
    double warmFactor_;
    double crossIsaFactor_;
    double joulesPerMb_;
    double minMoveShare_;
};

/** One planned move of fleet-load share between two nodes. */
struct MigrationMove
{
    std::size_t from = 0;
    std::size_t to = 0;
    /** Fraction of total fleet load to move (share units). */
    double share = 0.0;
};

/** Per-interval migration activity, reported alongside the fleet
 *  interval metrics. */
struct MigrationIntervalStats
{
    /** Transfer events started this interval. */
    std::uint32_t movesStarted = 0;

    /** Share of fleet load in transit at the end of the interval. */
    double inFlightShare = 0.0;

    /** Load quanta deferred in transit this interval (load x time). */
    double transitLoad = 0.0;

    /** Deferred load served on arrival this interval. */
    double surgeLoad = 0.0;

    /** Deferred load blanked by a down destination this interval. */
    double blankedLoad = 0.0;

    /** Energy billed to transfers started this interval. */
    Joules migrationEnergy = 0.0;
};

/** Whole-run migration totals, folded into the fleet summary. */
struct MigrationTotals
{
    std::uint64_t moves = 0;
    double meanInFlightShare = 0.0;
    double transitLoad = 0.0;
    double surgeLoad = 0.0;
    double blankedLoad = 0.0;
    Joules energy = 0.0;
};

/**
 * Executes migrations inside the fleet lockstep loop.
 *
 * The engine tracks the *resident* share of fleet load placed on
 * each node. Every interval the fleet hands it the dispatcher's
 * normalized target shares; the gap between resident and target is
 * closed by explicit moves — either planned by a migration-aware
 * dispatcher, or derived here for blind dispatchers (who churn
 * freely toward their target and pay for it). Moves with a non-zero
 * latency become in-flight transfers: their share is served nowhere
 * until it arrives, at which point the deferred load is served as a
 * surge on the destination (or blanked if the destination is down).
 *
 * Conservation invariant, every interval: the resident shares, the
 * in-flight transfer shares and the re-pool backlog sum to exactly
 * the total routable share (1, or 0 while every node is down).
 */
class MigrationEngine
{
  public:
    MigrationEngine(const MigrationModel &model,
                    std::vector<std::string> nodeIsa);

    /**
     * Advance one lockstep interval.
     *
     * `target` must be the same normalized share vector the fleet
     * would use without migration (down nodes zeroed, sums to 1
     * while any node is up). `plannedMoves` is null for blind
     * dispatchers — the engine derives churn moves itself — and
     * points at the dispatcher's plan for migration-aware ones.
     * `served[i]` receives the absolute load each node must serve
     * this interval (resident share plus any arrival surge).
     */
    const MigrationIntervalStats &
    step(std::size_t interval, Seconds dt, Fraction fleetLoad,
         double fleetCapacity, const std::vector<double> &target,
         const std::vector<char> &down,
         const std::vector<MigrationMove> *plannedMoves,
         std::vector<double> &served);

    /** Resident share per node (after the last step). */
    const std::vector<double> &resident() const { return resident_; }

    /** Share currently in transit between nodes. */
    double inFlightShare() const;

    /** Share waiting to be re-pooled (only while all nodes down). */
    double pooledShare() const { return pendingPool_; }

    const MigrationModel &model() const { return model_; }
    const std::vector<std::string> &nodeIsa() const { return isa_; }

    /** Whole-run totals; meanInFlightShare is per completed step. */
    MigrationTotals totals() const;

  private:
    struct Transfer
    {
        std::size_t from;
        std::size_t to;
        double share;
        std::size_t arriveInterval;
        /** Load quanta accrued while this transfer was in flight. */
        double deferred;
    };

    void deriveMoves(const std::vector<double> &target,
                     const std::vector<char> &down,
                     std::vector<MigrationMove> &out) const;
    void applyMoves(std::size_t interval, Seconds dt,
                    const std::vector<MigrationMove> &moves,
                    const std::vector<char> &down);

    const MigrationModel &model_;
    std::vector<std::string> isa_;
    std::vector<double> resident_;
    std::vector<double> surge_;
    std::vector<Transfer> transfers_;
    std::vector<MigrationMove> scratchMoves_;
    double pendingPool_ = 0.0;
    bool allFree_ = false;
    bool placed_ = false;
    std::size_t steps_ = 0;
    double inFlightShareSum_ = 0.0;
    MigrationIntervalStats stats_;
    MigrationTotals totals_;
};

} // namespace hipster

#endif // HIPSTER_MIGRATION_MIGRATION_HH
