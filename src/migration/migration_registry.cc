#include "migration/migration_registry.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hipster
{

namespace
{

constexpr const char *kPrefix = "migrate:";

/** The spec with any `migrate:` prefix removed. */
std::string
stripPrefix(const std::string &spec)
{
    const std::string prefix(kPrefix);
    if (spec.rfind(prefix, 0) == 0)
        return spec.substr(prefix.size());
    return spec;
}

} // namespace

MigrationRegistry &
MigrationRegistry::instance()
{
    static MigrationRegistry registry = [] {
        MigrationRegistry r;
        r.registerBuiltins();
        return r;
    }();
    return registry;
}

void
MigrationRegistry::add(MigrationInfo info, Factory factory)
{
    if (has(info.name) || info.name == "none")
        fatal("MigrationRegistry: duplicate migration family '",
              info.name, "'");
    for (const std::string &alias : info.aliases) {
        if (has(alias) || alias == "none")
            fatal("MigrationRegistry: duplicate migration alias '",
                  alias, "'");
    }
    if (!factory)
        fatal("MigrationRegistry: null factory for '", info.name,
              "'");
    entries_.push_back(std::move(info));
    factories_.push_back(std::move(factory));
}

bool
MigrationRegistry::has(const std::string &name) const
{
    return std::any_of(
        entries_.begin(), entries_.end(),
        [&](const MigrationInfo &e) {
            return e.name == name ||
                   std::find(e.aliases.begin(), e.aliases.end(),
                             name) != e.aliases.end();
        });
}

std::unique_ptr<MigrationModel>
MigrationRegistry::make(const std::string &spec) const
{
    if (isNoneMigration(spec))
        return nullptr;

    const std::string body = stripPrefix(spec);
    const std::string head = specHead(body);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const MigrationInfo &e = entries_[i];
        const bool match =
            e.name == head ||
            std::find(e.aliases.begin(), e.aliases.end(), head) !=
                e.aliases.end();
        if (!match)
            continue;
        SpecParamSet params;
        parseSpecParams("migration", body, e.name, e.params, params);
        return factories_[i](canonicalMigrationLabel(spec), params);
    }
    std::string known = "none";
    for (const MigrationInfo &e : entries_)
        known += ", " + e.name;
    fatal("unknown migration family '", head, "' in spec '", spec,
          "'; known migrations: ", known,
          " (prefix with 'migrate:', e.g. migrate:",
          entries_.empty() ? "hexo" : entries_.front().name, ")");
}

std::string
MigrationRegistry::catalogText() const
{
    std::string out =
        "Work migration (spec grammar: migrate:name[:key=value,...],"
        " or none):\n";
    out += "  none — no migration: dispatchers re-route new load "
           "only (bitwise-identical\n      to the pre-migration "
           "fleet)\n";
    for (const MigrationInfo &e : entries_) {
        out += "  " + std::string(kPrefix) + e.name;
        for (const std::string &alias : e.aliases)
            out += " (alias: " + alias + ")";
        out += " — " + e.summary;
        if (!e.paperRef.empty())
            out += " [" + e.paperRef + "]";
        out += "\n";
        for (const SpecParamInfo &p : e.params)
            out += "      " + specParamLine(p) + "\n";
    }
    return out;
}

void
MigrationRegistry::registerBuiltins()
{
    {
        MigrationInfo info;
        info.name = "hexo";
        info.aliases = {"checkpoint"};
        info.summary =
            "checkpointed migration: serialize + transfer + restore "
            "one checkpoint image per move; same-ISA moves take the "
            "warm path, cross-ISA moves pay the HEXO-style "
            "transformation factor";
        info.paperRef = "HEXO/popcorn-compiler; arXiv:2205.03725";
        info.params = {
            {"ckpt", "checkpoint image size in MB", 64.0, 0.0,
             65536.0, false, false, ParamUnit::None},
            {"serialize", "source-side serialize bandwidth in MB/s",
             400.0, 1.0, 1e6, false, false, ParamUnit::None},
            {"bw", "network transfer bandwidth in MB/s", 117.0, 1.0,
             1e6, false, false, ParamUnit::None},
            {"restore", "destination-side restore bandwidth in MB/s",
             400.0, 1.0, 1e6, false, false, ParamUnit::None},
            {"warm", "same-ISA latency factor (0 = free warm moves)",
             0.25, 0.0, 10.0, false, false, ParamUnit::None},
            {"xisa", "cross-ISA latency factor (checkpoint "
                     "transformation at both ends)",
             2.0, 0.0, 100.0, false, false, ParamUnit::None},
            {"joules", "energy billed per checkpoint MB moved", 0.02,
             0.0, 1000.0, false, false, ParamUnit::None},
            {"minmove", "smallest share a blind dispatcher will "
                        "move (churn hysteresis)",
             0.02, 0.0, 1.0, false, false, ParamUnit::None},
        };
        add(info, [](const std::string &label,
                     const SpecParamSet &set) {
            return std::make_unique<MigrationModel>(
                label, set.get("ckpt", 64.0),
                set.get("serialize", 400.0), set.get("bw", 117.0),
                set.get("restore", 400.0), set.get("warm", 0.25),
                set.get("xisa", 2.0), set.get("joules", 0.02),
                set.get("minmove", 0.02));
        });
    }

    {
        MigrationInfo info;
        info.name = "instant";
        info.aliases = {"free"};
        info.summary =
            "zero-latency, zero-energy moves: an upper bound that "
            "degrades migration to plain re-routing";
        info.paperRef = "";
        info.params = {};
        add(info, [](const std::string &label, const SpecParamSet &) {
            return std::make_unique<MigrationModel>(
                label, /*checkpointMb=*/0.0, /*serializeMbps=*/1.0,
                /*transferMbps=*/1.0, /*restoreMbps=*/1.0,
                /*warmFactor=*/0.0, /*crossIsaFactor=*/0.0,
                /*joulesPerMb=*/0.0, /*minMoveShare=*/0.0);
        });
    }
}

std::unique_ptr<MigrationModel>
makeMigrationModel(const std::string &spec)
{
    return MigrationRegistry::instance().make(spec);
}

bool
isNoneMigration(const std::string &spec)
{
    const std::string body = stripPrefix(spec);
    return body.empty() || body == "none";
}

void
validateMigrationSpec(const std::string &spec)
{
    makeMigrationModel(spec);
}

bool
isMigrationSpec(const std::string &spec)
{
    try {
        validateMigrationSpec(spec);
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

std::string
canonicalMigrationLabel(const std::string &spec)
{
    if (isNoneMigration(spec))
        return "none";
    return std::string(kPrefix) + stripPrefix(spec);
}

std::vector<std::string>
splitMigrationList(const std::string &list)
{
    return splitSpecList(list, [](const std::string &head) {
        return head == "migrate" || head == "none" ||
               MigrationRegistry::instance().has(head);
    });
}

} // namespace hipster
