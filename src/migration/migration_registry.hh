/**
 * @file
 * Registry for the work-migration axis — the seventh spec axis.
 * Migration specs ride the shared common/spec_grammar, carry a
 * canonical `migrate:` prefix so sweep/CSV labels are
 * self-describing, and fail fast with catalog-enumerating errors
 * exactly like the trace/policy/workload/platform/dispatch/hazard
 * axes:
 *
 *   spec := 'none' | ['migrate:'] name [':' key '=' value (',' ...)]
 *
 *   none
 *   migrate:hexo
 *   migrate:hexo:ckpt=256,bw=117,xisa=2
 *   migrate:instant
 */

#ifndef HIPSTER_MIGRATION_MIGRATION_REGISTRY_HH
#define HIPSTER_MIGRATION_MIGRATION_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/spec_grammar.hh"
#include "migration/migration.hh"

namespace hipster
{

/** Catalog entry describing one registered migration family. */
struct MigrationInfo
{
    std::string name;                 ///< grammar head, e.g. "hexo"
    std::vector<std::string> aliases; ///< alternate heads
    std::string summary;              ///< one line for the catalog
    std::string paperRef;             ///< grounding citation
    std::vector<SpecParamInfo> params;
};

/**
 * Name-keyed migration-model factory. A singleton holds the
 * built-ins; custom models registered at startup become available
 * to the fleet CLI, the fleet sweep axis and the benches at once.
 */
class MigrationRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<MigrationModel>(
        const std::string &label, const SpecParamSet &params)>;

    static MigrationRegistry &instance();

    /** Register a family; FatalError on duplicate names/aliases. */
    void add(MigrationInfo info, Factory factory);

    bool has(const std::string &name) const;

    /** All registered families, in registration order. */
    const std::vector<MigrationInfo> &entries() const
    {
        return entries_;
    }

    /**
     * Build a migration model from a spec (with or without the
     * `migrate:` prefix). Returns nullptr for "none". Throws
     * FatalError enumerating the catalog on unknown names and the
     * schema on bad parameters.
     */
    std::unique_ptr<MigrationModel>
    make(const std::string &spec) const;

    /** Human-readable catalog (--list-migrations). */
    std::string catalogText() const;

  private:
    MigrationRegistry() = default;
    void registerBuiltins();

    std::vector<MigrationInfo> entries_;
    std::vector<Factory> factories_;
};

/** Build a migration model from a spec via the global registry;
 *  nullptr for "none". */
std::unique_ptr<MigrationModel>
makeMigrationModel(const std::string &spec);

/** True when the spec disables migration entirely. */
bool isNoneMigration(const std::string &spec);

/** Throws FatalError when the spec does not parse. */
void validateMigrationSpec(const std::string &spec);

/** Non-throwing validation of a migration spec. */
bool isMigrationSpec(const std::string &spec);

/** "none", or the spec with its `migrate:` prefix enforced. */
std::string canonicalMigrationLabel(const std::string &spec);

/** Splits a CLI migration list (`;` separated; a `,` separates only
 * before a registered head, `none`, or the `migrate:` prefix). */
std::vector<std::string> splitMigrationList(const std::string &list);

} // namespace hipster

#endif // HIPSTER_MIGRATION_MIGRATION_REGISTRY_HH
