#include "migration/migration.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hipster
{

MigrationModel::MigrationModel(std::string label, double checkpointMb,
                               double serializeMbps,
                               double transferMbps, double restoreMbps,
                               double warmFactor, double crossIsaFactor,
                               double joulesPerMb, double minMoveShare)
    : label_(std::move(label)),
      checkpointMb_(checkpointMb),
      serializeMbps_(serializeMbps),
      transferMbps_(transferMbps),
      restoreMbps_(restoreMbps),
      warmFactor_(warmFactor),
      crossIsaFactor_(crossIsaFactor),
      joulesPerMb_(joulesPerMb),
      minMoveShare_(minMoveShare)
{
    HIPSTER_ASSERT(checkpointMb_ >= 0.0 && warmFactor_ >= 0.0 &&
                       crossIsaFactor_ >= 0.0 && joulesPerMb_ >= 0.0 &&
                       minMoveShare_ >= 0.0,
                   "migration model '", label_, "': negative parameter");
    HIPSTER_ASSERT(serializeMbps_ > 0.0 && transferMbps_ > 0.0 &&
                       restoreMbps_ > 0.0,
                   "migration model '", label_,
                   "': bandwidths must be positive");
}

Seconds
MigrationModel::baseLatency() const
{
    if (checkpointMb_ <= 0.0)
        return 0.0;
    return checkpointMb_ / serializeMbps_ +
           checkpointMb_ / transferMbps_ +
           checkpointMb_ / restoreMbps_;
}

Seconds
MigrationModel::latency(const std::string &srcIsa,
                        const std::string &dstIsa) const
{
    const double factor =
        srcIsa == dstIsa ? warmFactor_ : crossIsaFactor_;
    return baseLatency() * factor;
}

Joules
MigrationModel::moveEnergy() const
{
    return checkpointMb_ * joulesPerMb_;
}

bool
MigrationModel::freeBetween(const std::string &srcIsa,
                            const std::string &dstIsa) const
{
    return latency(srcIsa, dstIsa) <= 0.0 && moveEnergy() <= 0.0;
}

MigrationEngine::MigrationEngine(const MigrationModel &model,
                                 std::vector<std::string> nodeIsa)
    : model_(model),
      isa_(std::move(nodeIsa)),
      resident_(isa_.size(), 0.0),
      surge_(isa_.size(), 0.0)
{
    HIPSTER_ASSERT(!isa_.empty(),
                   "MigrationEngine needs at least one node");
    allFree_ = true;
    for (const std::string &src : isa_) {
        for (const std::string &dst : isa_) {
            if (!model_.freeBetween(src, dst))
                allFree_ = false;
        }
    }
}

double
MigrationEngine::inFlightShare() const
{
    double total = 0.0;
    for (const Transfer &t : transfers_)
        total += t.share;
    return total;
}

MigrationTotals
MigrationEngine::totals() const
{
    MigrationTotals out = totals_;
    out.meanInFlightShare =
        steps_ > 0
            ? inFlightShareSum_ / static_cast<double>(steps_)
            : 0.0;
    return out;
}

const MigrationIntervalStats &
MigrationEngine::step(std::size_t interval, Seconds dt,
                      Fraction fleetLoad, double fleetCapacity,
                      const std::vector<double> &target,
                      const std::vector<char> &down,
                      const std::vector<MigrationMove> *plannedMoves,
                      std::vector<double> &served)
{
    const std::size_t n = resident_.size();
    HIPSTER_ASSERT(target.size() == n && down.size() == n,
                   "MigrationEngine::step: vector size mismatch");
    HIPSTER_ASSERT(dt > 0.0, "MigrationEngine::step: dt must be > 0");
    stats_ = MigrationIntervalStats{};
    served.assign(n, 0.0);

    // Initial placement: wherever the dispatcher routes first.
    if (!placed_) {
        resident_ = target;
        placed_ = true;
    }

    // Down nodes lose their resident share back to the front end.
    double pool = pendingPool_;
    pendingPool_ = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (down[i] && resident_[i] != 0.0) {
            pool += resident_[i];
            resident_[i] = 0.0;
        }
    }

    // Arrivals: transfers whose latency has elapsed land now. A
    // destination downed mid-flight blanks the deferred load and
    // re-pools the share.
    std::size_t keep = 0;
    for (std::size_t ti = 0; ti < transfers_.size(); ++ti) {
        Transfer &t = transfers_[ti];
        if (t.arriveInterval > interval) {
            transfers_[keep++] = t;
            continue;
        }
        if (down[t.to]) {
            pool += t.share;
            stats_.blankedLoad += t.deferred;
        } else {
            resident_[t.to] += t.share;
            surge_[t.to] += t.deferred;
        }
    }
    transfers_.resize(keep);

    // Re-pool orphaned share over up nodes, proportional to the
    // dispatcher's target (uniform if the target is all-zero). With
    // every node down the pool waits for the next interval.
    if (pool > 0.0) {
        double weight = 0.0;
        std::size_t up = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!down[i]) {
                weight += target[i];
                ++up;
            }
        }
        if (up == 0) {
            pendingPool_ = pool;
        } else if (weight > 0.0) {
            for (std::size_t i = 0; i < n; ++i) {
                if (!down[i])
                    resident_[i] += pool * (target[i] / weight);
            }
        } else {
            const double each = pool / static_cast<double>(up);
            for (std::size_t i = 0; i < n; ++i) {
                if (!down[i])
                    resident_[i] += each;
            }
        }
    }

    // Close the resident->target gap. A free model under a blind
    // dispatcher degrades to stateless routing: adopt the target
    // wholesale so the result is bitwise-identical to migrate:none.
    if (plannedMoves == nullptr && allFree_) {
        resident_ = target;
    } else if (plannedMoves == nullptr) {
        scratchMoves_.clear();
        deriveMoves(target, down, scratchMoves_);
        applyMoves(interval, dt, scratchMoves_, down);
    } else {
        applyMoves(interval, dt, *plannedMoves, down);
    }

    // In-flight transfers defer their load: not served anywhere,
    // not billed to the source, delivered as a surge on arrival.
    double inFlight = 0.0;
    for (Transfer &t : transfers_) {
        const double deferred =
            t.share * fleetLoad * fleetCapacity * dt;
        t.deferred += deferred;
        stats_.transitLoad += deferred;
        inFlight += t.share;
    }
    stats_.inFlightShare = inFlight;

    for (std::size_t i = 0; i < n; ++i) {
        double load = resident_[i] * fleetLoad * fleetCapacity;
        if (surge_[i] != 0.0) {
            load += surge_[i] / dt;
            stats_.surgeLoad += surge_[i];
            surge_[i] = 0.0;
        }
        served[i] = load;
    }

    totals_.transitLoad += stats_.transitLoad;
    totals_.surgeLoad += stats_.surgeLoad;
    totals_.blankedLoad += stats_.blankedLoad;
    inFlightShareSum_ += inFlight;
    ++steps_;
    return stats_;
}

void
MigrationEngine::deriveMoves(const std::vector<double> &target,
                             const std::vector<char> &down,
                             std::vector<MigrationMove> &out) const
{
    const std::size_t n = resident_.size();
    const double floor = model_.minMoveShare();

    // Surplus/deficit nodes in index order; deltas at or below the
    // model's move floor stick to their current node (hysteresis).
    std::vector<std::size_t> sources, sinks;
    std::vector<double> surplus, deficit;
    for (std::size_t i = 0; i < n; ++i) {
        if (down[i])
            continue;
        const double delta = target[i] - resident_[i];
        if (delta > floor) {
            sinks.push_back(i);
            deficit.push_back(delta);
        } else if (-delta > floor) {
            sources.push_back(i);
            surplus.push_back(-delta);
        }
    }

    std::size_t si = 0, di = 0;
    while (si < sources.size() && di < sinks.size()) {
        const double amount = std::min(surplus[si], deficit[di]);
        out.push_back({sources[si], sinks[di], amount});
        surplus[si] -= amount;
        deficit[di] -= amount;
        if (surplus[si] <= 1e-15)
            ++si;
        if (deficit[di] <= 1e-15)
            ++di;
    }
}

void
MigrationEngine::applyMoves(std::size_t interval, Seconds dt,
                            const std::vector<MigrationMove> &moves,
                            const std::vector<char> &down)
{
    const std::size_t n = resident_.size();
    for (const MigrationMove &mv : moves) {
        if (mv.from >= n || mv.to >= n || mv.from == mv.to ||
            !std::isfinite(mv.share) || mv.share < 0.0)
            fatal("MigrationEngine: malformed move (", mv.from, " -> ",
                  mv.to, ", share ", mv.share, ")");
        if (mv.share == 0.0 || down[mv.to] || down[mv.from])
            continue;
        const double amount = std::min(mv.share, resident_[mv.from]);
        if (amount <= 0.0)
            continue;
        const Seconds latency =
            model_.latency(isa_[mv.from], isa_[mv.to]);
        resident_[mv.from] -= amount;
        ++stats_.movesStarted;
        ++totals_.moves;
        const Joules energy = model_.moveEnergy();
        stats_.migrationEnergy += energy;
        totals_.energy += energy;
        if (latency <= 0.0) {
            resident_[mv.to] += amount;
        } else {
            const auto hops = static_cast<std::size_t>(
                std::ceil(latency / dt));
            transfers_.push_back(
                {mv.from, mv.to, amount,
                 interval + std::max<std::size_t>(hops, 1), 0.0});
        }
    }
}

} // namespace hipster
