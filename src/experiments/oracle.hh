/**
 * @file
 * HetCmpOracle: the offline best-configuration search behind the
 * paper's motivation study (Figures 2 and 3). For every load level
 * it measures each candidate configuration with a short steady-state
 * simulation and — among the configurations meeting QoS — selects
 * the one with the least power, exactly the selection rule of
 * Section 2 ("among the configurations where the QoS is met at each
 * load level, the configuration with the least power consumption is
 * selected").
 */

#ifndef HIPSTER_EXPERIMENTS_ORACLE_HH
#define HIPSTER_EXPERIMENTS_ORACLE_HH

#include <optional>
#include <vector>

#include "experiments/runner.hh"
#include "platform/config_space.hh"

namespace hipster
{

/** Steady-state measurement of one (load, configuration) pair. */
struct ConfigMeasurement
{
    CoreConfig config;
    Fraction load = 0.0;

    /** Fraction of measured intervals meeting the QoS target. */
    double qosFraction = 0.0;

    /** Median per-interval tail latency (ms). */
    Millis tailLatency = 0.0;

    /** Mean system power (W). */
    Watts power = 0.0;

    /** Mean achieved throughput (reported units). */
    Rate throughput = 0.0;

    /** Throughput per watt (the y-axis of Figure 2a/2b). */
    double throughputPerWatt = 0.0;

    /** QoS-met decision at the oracle's required confidence. */
    bool feasible = false;
};

/** One row of the oracle's state machine (Figure 2c). */
struct OracleEntry
{
    Fraction load = 0.0;
    std::optional<ConfigMeasurement> best; ///< empty when infeasible
};

/** Oracle tunables. */
struct OracleOptions
{
    /** Warm-up simulated seconds discarded before measuring. */
    Seconds warmup = 5.0;

    /** Measured simulated seconds per (load, config) pair. */
    Seconds measure = 20.0;

    /** Fraction of intervals that must meet QoS for feasibility. */
    double qosFractionRequired = 0.90;

    /** Monitoring interval. */
    Seconds interval = 1.0;

    std::uint64_t seed = 7;
};

/** Offline exhaustive configuration search. */
class HetCmpOracle
{
  public:
    HetCmpOracle(const PlatformSpec &spec, LcWorkloadDef def,
                 OracleOptions options = {});

    /** Measure one (load, configuration) pair. */
    ConfigMeasurement measure(Fraction load, const CoreConfig &config);

    /**
     * Best configuration at one load among `candidates`: the least
     * power among feasible ones; empty when none is feasible.
     */
    OracleEntry bestConfig(Fraction load,
                           const std::vector<CoreConfig> &candidates);

    /**
     * Best configuration per load level: the per-workload state
     * machine of Figure 2c.
     */
    std::vector<OracleEntry>
    stateMachine(const std::vector<Fraction> &loads,
                 const std::vector<CoreConfig> &candidates);

  private:
    PlatformSpec spec_;
    LcWorkloadDef def_;
    OracleOptions options_;
};

} // namespace hipster

#endif // HIPSTER_EXPERIMENTS_ORACLE_HH
