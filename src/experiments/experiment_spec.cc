#include "experiments/experiment_spec.hh"

#include "common/logging.hh"
#include "core/policy_registry.hh"
#include "experiments/scenario.hh"
#include "hazards/hazard_registry.hh"
#include "loadgen/trace_registry.hh"
#include "platform/platform_registry.hh"
#include "telemetry/telemetry_registry.hh"
#include "workloads/workload_registry.hh"

namespace hipster
{

void
ExperimentSpec::validate() const
{
    validateWorkloadSpec(workload);
    validatePlatformSpec(platform);
    if (durationScale <= 0.0)
        fatal("ExperimentSpec: durationScale must be > 0");
    validateTraceSpec(trace, resolvedDuration());
    validatePolicySpec(policy);
    validateHazardSpec(hazard);
    validateTelemetrySpec(telemetry);
}

Seconds
ExperimentSpec::resolvedDuration() const
{
    const Seconds base =
        duration > 0.0 ? duration : diurnalDurationFor(workload);
    return base * durationScale;
}

HipsterParams
ExperimentSpec::baseHipsterParams() const
{
    HipsterParams params = tunedHipsterParams(workload);
    params.learningPhase =
        ScenarioDefaults::learningPhase * durationScale;
    return params;
}

ExperimentRunner
ExperimentSpec::makeRunner() const
{
    const Seconds length = resolvedDuration();
    ExperimentRunner experiment(
        makePlatformFromSpec(platform), makeWorkloadFromSpec(workload),
        makeTraceByName(trace, length, seed + 100), seed, runner);
    experiment.setHazards(
        makeHazardEngine(hazard, hazardEngineSeed(seed)));
    experiment.setTelemetry(telemetryContext ? telemetryContext
                                             : makeTelemetryContext(
                                                   telemetry));
    return experiment;
}

std::unique_ptr<TaskPolicy>
ExperimentSpec::makePolicyFor(const Platform &platform_instance) const
{
    return makePolicy(policy, platform_instance, baseHipsterParams());
}

ExperimentResult
ExperimentSpec::run(
    const std::function<void(const IntervalMetrics &)> &observer) const
{
    ExperimentRunner experiment = makeRunner();
    const auto task_policy = makePolicyFor(experiment.platform());
    if (experiment.telemetry()) {
        emitTelemetryHeader(*experiment.telemetry(),
                            {{"workload", workload},
                             {"platform", platform},
                             {"trace", trace},
                             {"policy", policy},
                             {"hazard", canonicalHazardLabel(hazard)}},
                            {{"seed", static_cast<double>(seed)},
                             {"duration_s", resolvedDuration()},
                             {"interval_s", runner.interval}});
    }
    return experiment.run(*task_policy, resolvedDuration(), observer);
}

} // namespace hipster
