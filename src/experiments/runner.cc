#include "experiments/runner.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hipster
{

ExperimentRunner::ExperimentRunner(const PlatformSpec &spec,
                                   LcWorkloadDef def,
                                   std::shared_ptr<const LoadTrace> trace,
                                   std::uint64_t seed,
                                   RunnerOptions options)
    : spec_(spec), def_(std::move(def)), trace_(std::move(trace)),
      seed_(seed), options_(options), contention_(options.contention),
      reportQuantizer_(options.reportBucketPercent)
{
    if (!trace_)
        fatal("ExperimentRunner: load trace is null");
    if (options_.interval <= 0.0)
        fatal("ExperimentRunner: interval must be positive");
    platform_ = std::make_unique<Platform>(spec_);
    app_ = std::make_unique<LatencyCriticalApp>(def_.params, seed_);
}

void
ExperimentRunner::setBatch(std::shared_ptr<BatchWorkload> batch)
{
    batch_ = std::move(batch);
}

void
ExperimentRunner::setHazards(std::unique_ptr<HazardEngine> hazards)
{
    hazards_ = std::move(hazards);
    if (hazards_)
        hazards_->bind(platform_->tdp());
}

void
ExperimentRunner::setTelemetry(std::shared_ptr<TelemetryContext> telemetry)
{
    telemetry_ = std::move(telemetry);
}

const std::vector<ServerSpec> &
ExperimentRunner::buildServers(const std::vector<ClusterPressure> &pressure)
{
    serversScratch_.clear();
    const ServiceModel &model = app_->serviceModel();
    for (CoreId core : platform_->lcCores()) {
        ServerSpec server;
        server.core = core;
        const CoreType type = platform_->coreType(core);
        server.instructionRate =
            model.instructionRate(type, platform_->coreFrequency(core));
        server.stallScale = contention_.lcStallScale(
            pressure, platform_->clusterOf(core),
            def_.traits.stallSensitivity);
        serversScratch_.push_back(server);
    }
    return serversScratch_;
}

ExperimentResult
ExperimentRunner::run(
    TaskPolicy &policy, Seconds duration,
    const std::function<void(const IntervalMetrics &)> &observer)
{
    const auto intervals = static_cast<std::size_t>(
        duration / options_.interval + 0.5);
    beginRun(policy, intervals);
    for (std::size_t k = 0; k < intervals; ++k) {
        const IntervalMetrics &last = stepNext(policy);
        if (observer)
            observer(last);
    }
    return finishRun();
}

void
ExperimentRunner::beginRun(TaskPolicy &policy,
                           std::size_t expectedIntervals)
{
    if (runActive_)
        fatal("ExperimentRunner: beginRun while a run is active "
              "(missing finishRun)");
    platform_->energyMeter().reset();
    app_->reset();
    lastLcUtilization_ = 0.0;
    wasDown_ = false;
    wasForcedDown_ = false;
    policyStarted_ = false;
    if (hazards_)
        hazards_->reset();

    pending_ = ExperimentResult{};
    pending_.policyName = policy.name();
    pending_.workloadName = def_.params.name;
    pending_.series.reserve(expectedIntervals);
    stepIndex_ = 0;
    runActive_ = true;

    profile_ = PhaseProfile{};
    lastArrivalSeconds_ = 0.0;
    lastRunIntervalSeconds_ = 0.0;
    startSimEvents_ = app_->eventsProcessed();
    perfSession_.reset();
    if (telemetry_ && telemetry_->config().perfCounters) {
        perfSession_ = std::make_unique<PerfCounterSession>();
        profile_.perfStatus =
            perfSession_->ok() ? "ok" : perfSession_->reason();
    }
}

const IntervalMetrics &
ExperimentRunner::stepNext(TaskPolicy &policy,
                           std::optional<Fraction> offeredOverride,
                           bool forceDown)
{
    if (!runActive_)
        fatal("ExperimentRunner: stepNext without beginRun");
    // Hazard effects are drawn before the policy acts, once per
    // interval and in interval order, so every hazard stream is a
    // pure function of (seed, interval index).
    HazardEffects fx;
    if (hazards_) {
        fx = hazards_->intervalEffects(stepIndex_,
                                       stepIndex_ * options_.interval,
                                       options_.interval);
    }
    if (fx.down || forceDown) {
        // Node failed (own hazard, or blanked by a neighbor's blast
        // radius): the task manager neither observes nor decides,
        // nothing executes and nothing is metered. The crash kills
        // all in-flight requests (the app restarts empty).
        const Seconds t0 = stepIndex_ * options_.interval;
        if (!wasDown_)
            app_->reset();
        wasDown_ = true;
        wasForcedDown_ = forceDown && !fx.down;
        if (batch_)
            batch_->setSuspended(true);
        lastLcUtilization_ = 0.0;
        lastMetrics_ = downInterval(t0, t0 + options_.interval);
        if (hazards_)
            hazards_->observePower(0.0, options_.interval);
        if (telemetry_ &&
            telemetry_->wants(TelemetryEventType::Hazard, stepIndex_)) {
            TelemetryEvent event(TelemetryEventType::Hazard,
                                 stepIndex_, t0);
            event.add("down", 1.0);
            event.add("forced", forceDown && !fx.down ? 1.0 : 0.0);
            telemetry_->emit(std::move(event));
        }
        ++stepIndex_;
        pending_.series.push_back(lastMetrics_);
        return lastMetrics_;
    }
    wasDown_ = false;
    // Restoring from a forced (blast-radius) blank reboots cold when
    // the hazard spec reboots restores; the node's own timeline was
    // never active, so fx.reboot cannot fire for it.
    if (wasForcedDown_) {
        wasForcedDown_ = false;
        if (hazards_ && hazards_->rebootOnRestore())
            fx.reboot = true;
    }

    if (telemetry_ &&
        (fx.reboot || fx.oppCapSteps > 0 || fx.dvfsDenied ||
         fx.dvfsLatency > 0.0 || fx.pressure > 0.0) &&
        telemetry_->wants(TelemetryEventType::Hazard, stepIndex_)) {
        TelemetryEvent event(TelemetryEventType::Hazard, stepIndex_,
                             stepIndex_ * options_.interval);
        event.add("down", 0.0);
        event.add("reboot", fx.reboot ? 1.0 : 0.0);
        event.add("opp_cap_steps",
                  static_cast<double>(fx.oppCapSteps));
        event.add("dvfs_denied", fx.dvfsDenied ? 1.0 : 0.0);
        event.add("dvfs_latency_s", fx.dvfsLatency);
        event.add("pressure", fx.pressure);
        telemetry_->emit(std::move(event));
    }

    Decision decision;
    bool initialDecision = false;
    PhaseTimer policyTimer;
    policyTimer.start();
    if (!policyStarted_ || fx.reboot) {
        // First live interval, or the node restored from a crash
        // with a cold task manager: the policy (re)starts from its
        // initial state.
        if (fx.reboot)
            policy.reset();
        decision = policy.initialDecision();
        initialDecision = true;
        policyStarted_ = true;
    } else {
        decision = policy.decide(lastMetrics_);
    }
    profile_.policySeconds += policyTimer.lap();

    if (telemetry_ &&
        telemetry_->wants(TelemetryEventType::Decision, stepIndex_)) {
        TelemetryEvent event(TelemetryEventType::Decision, stepIndex_,
                             stepIndex_ * options_.interval);
        event.add("initial", initialDecision ? 1.0 : 0.0);
        if (!initialDecision) {
            event.add("observed_load", lastMetrics_.offeredLoad);
            event.add("load_bucket",
                      static_cast<double>(lastMetrics_.loadBucket));
            event.add("observed_tail_ms", lastMetrics_.tailLatency);
            event.add("target_ms", lastMetrics_.qosTarget);
            event.add("observed_power_w", lastMetrics_.power);
        }
        event.add("n_big",
                  static_cast<double>(decision.config.nBig));
        event.add("big_ghz", decision.config.bigFreq);
        event.add("n_small",
                  static_cast<double>(decision.config.nSmall));
        event.add("small_ghz", decision.config.smallFreq);
        event.add("run_batch", decision.runBatch ? 1.0 : 0.0);
        telemetry_->emit(std::move(event));
    }

    PhaseTimer stepTimer;
    stepTimer.start();
    lastMetrics_ = stepInterval(stepIndex_, decision, offeredOverride, fx);
    const double stepSeconds = stepTimer.lap();
    const double arrivalTotal = app_->arrivalGenSeconds();
    const double arrivalSeconds = arrivalTotal - lastArrivalSeconds_;
    lastArrivalSeconds_ = arrivalTotal;
    profile_.arrivalGenSeconds += arrivalSeconds;
    profile_.eventLoopSeconds +=
        std::max(0.0, lastRunIntervalSeconds_ - arrivalSeconds);
    profile_.metricsSeconds +=
        std::max(0.0, stepSeconds - lastRunIntervalSeconds_);

    if (telemetry_ &&
        (lastMetrics_.dvfsTransitions > 0 || fx.dvfsDenied) &&
        telemetry_->wants(TelemetryEventType::Dvfs, stepIndex_)) {
        TelemetryEvent event(TelemetryEventType::Dvfs, stepIndex_,
                             stepIndex_ * options_.interval);
        event.add("transitions",
                  static_cast<double>(lastMetrics_.dvfsTransitions));
        event.add("denied", fx.dvfsDenied ? 1.0 : 0.0);
        event.add("latency_s", fx.dvfsLatency);
        event.add("big_ghz", lastMetrics_.config.bigFreq);
        event.add("small_ghz", lastMetrics_.config.smallFreq);
        telemetry_->emit(std::move(event));
    }

    ++stepIndex_;
    pending_.series.push_back(lastMetrics_);
    return lastMetrics_;
}

ExperimentResult
ExperimentRunner::finishRun()
{
    if (!runActive_)
        fatal("ExperimentRunner: finishRun without beginRun");
    runActive_ = false;
    pending_.summary = RunSummary::fromSeries(pending_.series);
    pending_.migrations = platform_->totalMigrations();
    pending_.dvfsTransitions = platform_->totalDvfsTransitions();
    pending_.simEvents = app_->eventsProcessed();

    profile_.intervals = stepIndex_;
    profile_.simEvents = app_->eventsProcessed() - startSimEvents_;
    if (perfSession_) {
        profile_.perfAvailable = perfSession_->ok();
        perfSession_->stop(profile_.cycles, profile_.instructions);
        perfSession_.reset();
    }
    pending_.profile = profile_;

    if (telemetry_ && telemetry_->wants(TelemetryEventType::PhaseProfile,
                                        stepIndex_)) {
        TelemetryEvent event(TelemetryEventType::PhaseProfile,
                             stepIndex_,
                             stepIndex_ * options_.interval);
        event.add("intervals",
                  static_cast<double>(profile_.intervals));
        event.add("sim_events",
                  static_cast<double>(profile_.simEvents));
        event.add("arrival_gen_s", profile_.arrivalGenSeconds);
        event.add("event_loop_s", profile_.eventLoopSeconds);
        event.add("policy_s", profile_.policySeconds);
        event.add("metrics_s", profile_.metricsSeconds);
        event.add("total_s", profile_.totalSeconds());
        event.add("events_per_sec", profile_.eventsPerSecond());
        event.add("cycles", static_cast<double>(profile_.cycles));
        event.add("instructions",
                  static_cast<double>(profile_.instructions));
        event.add("perf_available",
                  profile_.perfAvailable ? 1.0 : 0.0);
        event.add("perf_status", profile_.perfStatus);
        telemetry_->emit(std::move(event));
        telemetry_->sink().flush();
    }
    return std::move(pending_);
}

IntervalMetrics
ExperimentRunner::downInterval(Seconds t0, Seconds t1)
{
    IntervalMetrics metrics;
    metrics.begin = t0;
    metrics.end = t1;
    metrics.loadBucket = reportQuantizer_.bucket(0.0);
    metrics.qosTarget = def_.params.qosTargetMs;
    return metrics;
}

IntervalMetrics
ExperimentRunner::stepInterval(std::size_t k, const Decision &requested,
                               std::optional<Fraction> offeredOverride,
                               const HazardEffects &fx)
{
    const Seconds t0 = k * options_.interval;
    const Seconds t1 = t0 + options_.interval;
    const Seconds dt = options_.interval;

    // --- Let the hazards shape what the actuation layer can do.
    Decision decision = requested;
    if (fx.oppCapSteps > 0) {
        // Thermal throttle: the firmware governor removes OPP steps
        // from the top of every ladder; requests above the cap are
        // clamped (min of two table frequencies is a table entry).
        const auto cap = [&](CoreType type, GHz freq) {
            const auto &opps = platform_->cluster(type).spec().opps;
            const std::size_t top = opps.size() - 1;
            const auto steps = std::min<std::size_t>(fx.oppCapSteps, top);
            return std::min(freq, opps[top - steps].frequency);
        };
        if (decision.config.nBig > 0)
            decision.config.bigFreq =
                cap(CoreType::Big, decision.config.bigFreq);
        if (decision.config.nSmall > 0)
            decision.config.smallFreq =
                cap(CoreType::Small, decision.config.smallFreq);
        if (decision.spareBigFreq &&
            platform_->coreCount(CoreType::Big) > 0)
            decision.spareBigFreq =
                cap(CoreType::Big, *decision.spareBigFreq);
        if (decision.spareSmallFreq &&
            platform_->coreCount(CoreType::Small) > 0)
            decision.spareSmallFreq =
                cap(CoreType::Small, *decision.spareSmallFreq);
    }
    if (fx.dvfsDenied) {
        // The cpufreq writes are dropped this interval: clusters keep
        // their current OPPs (migrations still happen — affinity is a
        // different interface).
        if (decision.config.nBig > 0)
            decision.config.bigFreq =
                platform_->cluster(CoreType::Big).frequency();
        if (decision.config.nSmall > 0)
            decision.config.smallFreq =
                platform_->cluster(CoreType::Small).frequency();
        decision.spareBigFreq = std::nullopt;
        decision.spareSmallFreq = std::nullopt;
    }

    // --- Actuate.
    ActuationResult actuation = platform_->applyConfig(decision.config);
    if (decision.spareBigFreq &&
        platform_->coreCount(CoreType::Big) > 0 &&
        decision.config.nBig == 0) {
        if (platform_->setClusterFrequency(CoreType::Big,
                                           *decision.spareBigFreq)) {
            ++actuation.dvfsTransitions;
        }
    }
    if (decision.spareSmallFreq &&
        platform_->coreCount(CoreType::Small) > 0 &&
        decision.config.nSmall == 0) {
        if (platform_->setClusterFrequency(CoreType::Small,
                                           *decision.spareSmallFreq)) {
            ++actuation.dvfsTransitions;
        }
    }
    if (fx.dvfsLatency > 0.0 && actuation.dvfsTransitions > 0)
        actuation.latency += fx.dvfsLatency * actuation.dvfsTransitions;

    // --- Batch assignment and contention pressures.
    const bool batch_running = batch_ && decision.runBatch;
    if (batch_)
        batch_->setSuspended(!decision.runBatch);
    if (batch_ && options_.disableCpuIdleWithBatch)
        platform_->cpuIdle().setEnabled(false);

    const std::vector<CoreId> &spare = platform_->spareCores();
    std::vector<ClusterPressure> &pressure = pressureScratch_;
    pressure.assign(platform_->clusters().size(), ClusterPressure{});
    if (batch_running)
        pressure = batch_->pressureOn(*platform_, spare);
    // LC pressure (utilization-weighted, lagged one interval).
    for (CoreId core : platform_->lcCores()) {
        pressure[platform_->clusterOf(core)].lc +=
            def_.traits.memPressure * lastLcUtilization_;
    }
    if (fx.pressure > 0.0) {
        // Co-tenant interference: contention no policy action can
        // evict, riding the same batch-pressure term of the model.
        for (ClusterPressure &p : pressure)
            p.batch += fx.pressure;
    }

    // --- Step the LC app.
    platform_->perfCounters().beginInterval();
    PhaseTimer eventTimer;
    eventTimer.start();
    app_->configure(buildServers(pressure), t0, actuation.latency);
    const Fraction offered =
        offeredOverride ? *offeredOverride : trace_->at(t0);
    LcIntervalStats lc = app_->runInterval(t0, t1, offered);
    lastRunIntervalSeconds_ = eventTimer.lap();
    lastLcUtilization_ = lc.utilization;

    for (const auto &use : lc.usage) {
        platform_->perfCounters().record(
            use.core, use.instructions,
            platform_->coreFrequency(use.core) * 1e9 * use.busyTime,
            use.busyTime / dt);
        const Seconds idle = dt - use.busyTime;
        platform_->perfCounters().noteIdle(use.core, idle,
                                           platform_->cpuIdle());
    }

    // --- Step the batch workload.
    BatchIntervalStats batch_stats;
    if (batch_running) {
        batch_stats = batch_->runInterval(*platform_, spare, contention_,
                                          pressure, dt);
    } else {
        for (CoreId core : spare)
            platform_->perfCounters().noteIdle(core, dt,
                                               platform_->cpuIdle());
    }

    // --- Power accounting. A cluster is powered when any of its
    // cores is allocated (LC) or running batch work; powered-but-idle
    // cores burn static power, which is what keeps the Figure 1
    // baseline above 60% of peak at low load.
    std::vector<ClusterActivity> &activity = activityScratch_;
    std::vector<Seconds> &busy = busyScratch_;
    std::vector<std::uint32_t> &allocated = allocatedScratch_;
    activity.assign(platform_->clusters().size(), ClusterActivity{});
    busy.assign(platform_->clusters().size(), 0.0);
    allocated.assign(platform_->clusters().size(), 0);
    for (const auto &use : lc.usage) {
        busy[platform_->clusterOf(use.core)] += use.busyTime;
    }
    for (CoreId core : platform_->lcCores())
        ++allocated[platform_->clusterOf(core)];
    if (batch_running) {
        for (CoreId core : spare) {
            ++allocated[platform_->clusterOf(core)];
            busy[platform_->clusterOf(core)] += dt;
        }
    }
    for (std::size_t i = 0; i < activity.size(); ++i) {
        const std::uint32_t cluster_cores =
            platform_->clusters()[i].spec().coreCount;
        if (allocated[i] == 0) {
            activity[i] = {0, 0.0}; // power-gated
            continue;
        }
        activity[i].activeCores = cluster_cores;
        activity[i].utilization =
            std::clamp(busy[i] / (dt * cluster_cores), 0.0, 1.0);
    }
    const Watts power = platform_->accountEnergy(activity, dt);
    if (hazards_)
        hazards_->observePower(power, dt);

    // --- Read perf counters the way the paper's monitor does.
    Ips bips = 0.0, sips = 0.0;
    bool ips_valid = true;
    if (batch_running) {
        for (CoreId core : spare) {
            const auto counters = platform_->perfCounters().read(core);
            if (!counters) {
                ips_valid = false;
                break;
            }
            if (platform_->coreType(core) == CoreType::Big) {
                bips += counters->instructions / dt;
            } else {
                sips += counters->instructions / dt;
            }
        }
        if (!ips_valid) {
            bips = 0.0;
            sips = 0.0;
        }
    }

    // --- Assemble the monitor view.
    IntervalMetrics metrics;
    metrics.begin = t0;
    metrics.end = t1;
    metrics.offeredLoad = offered;
    metrics.offeredRate = lc.offeredRate;
    metrics.loadBucket = reportQuantizer_.bucket(offered);
    metrics.tailLatency = lc.tailLatency;
    metrics.qosTarget = def_.params.qosTargetMs;
    metrics.throughput = lc.throughput;
    metrics.power = power;
    metrics.energy = power * dt;
    metrics.batchBigIps = bips;
    metrics.batchSmallIps = sips;
    metrics.batchPresent = batch_running;
    metrics.ipsValid = ips_valid;
    metrics.config = decision.config;
    metrics.migrations = actuation.migratedCores;
    metrics.dvfsTransitions = actuation.dvfsTransitions;
    metrics.lcUtilization = lc.utilization;
    metrics.dropped = lc.dropped;
    return metrics;
}

} // namespace hipster
