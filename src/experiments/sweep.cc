#include "experiments/sweep.hh"

#include <algorithm>
#include <cmath>
#include <future>
#include <ostream>

#include "common/random.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/policy_registry.hh"
#include "experiments/experiment_spec.hh"
#include "hazards/hazard_registry.hh"
#include "loadgen/trace_registry.hh"
#include "platform/platform_registry.hh"
#include "telemetry/telemetry_registry.hh"
#include "workloads/workload_registry.hh"

namespace hipster
{

namespace
{

/** Golden-ratio increment separating the cell and repetition streams
 * fed into the SplitMix64 finalizer. */
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

/** Whether any run swept a real hazard. Hazard-free campaigns keep
 * the historical CSV/table layout byte-for-byte (the column only
 * appears when it carries information), so the pinned sweep CSVs in
 * golden_pins.inc stay valid. */
bool
sweptHazards(const SweepResults &results)
{
    return std::any_of(results.runs.begin(), results.runs.end(),
                       [](const SweepRun &run) {
                           return !isNoneHazard(run.job.hazard);
                       });
}

std::vector<double>
collect(const std::vector<const RunSummary *> &summaries,
        double (*get)(const RunSummary &))
{
    std::vector<double> xs;
    xs.reserve(summaries.size());
    for (const RunSummary *s : summaries)
        xs.push_back(get(*s));
    return xs;
}

} // namespace

std::string
formatMeanCi(const Estimate &e, int precision, double scale)
{
    if (e.n < 2)
        return formatFixed(e.mean * scale, precision);
    return formatFixed(e.mean * scale, precision) + " ±" +
           formatFixed(e.ci95 * scale, precision);
}

double
tCritical95(std::size_t df)
{
    // Two-sided 95% (upper 97.5% point) of Student's t.
    static const double table[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (df == 0)
        return 0.0;
    if (df <= sizeof(table) / sizeof(table[0]))
        return table[df - 1];
    return 1.960;
}

Estimate
Estimate::of(const std::vector<double> &samples)
{
    Estimate e;
    e.n = samples.size();
    if (e.n == 0)
        return e;
    double sum = 0.0;
    for (double x : samples)
        sum += x;
    e.mean = sum / static_cast<double>(e.n);
    if (e.n < 2)
        return e;
    double m2 = 0.0;
    for (double x : samples)
        m2 += (x - e.mean) * (x - e.mean);
    e.stddev = std::sqrt(m2 / static_cast<double>(e.n - 1));
    e.ci95 = tCritical95(e.n - 1) * e.stddev /
             std::sqrt(static_cast<double>(e.n));
    return e;
}

SweepEngine::SweepEngine(SweepSpec spec) : spec_(std::move(spec))
{
    if (spec_.workloads.empty())
        fatal("SweepSpec: no workloads");
    if (spec_.platforms.empty())
        fatal("SweepSpec: no platforms");
    if (spec_.traces.empty())
        fatal("SweepSpec: no traces");
    if (spec_.policies.empty())
        fatal("SweepSpec: no policies");
    if (spec_.hazards.empty())
        fatal("SweepSpec: no hazards (use \"none\")");
    if (spec_.seeds == 0)
        fatal("SweepSpec: seeds must be >= 1");
    if (spec_.seeds > SweepSpec::kMaxSeeds)
        fatal("SweepSpec: unreasonable seed count ", spec_.seeds,
              " (max ", SweepSpec::kMaxSeeds, ")");
    if (spec_.durationScale <= 0.0)
        fatal("SweepSpec: durationScale must be > 0");
    // Fail fast on typo'd names: a bad cell at the tail of a long
    // campaign must not surface only after hours of good runs. A
    // custom jobRunner interprets the names itself (ablations use
    // synthetic labels), so only the default wiring is checked.
    if (!spec_.jobRunner) {
        // Workload and platform specs validate against the registry
        // schemas, so a typo'd key or out-of-range value is rejected
        // with the schema/catalog enumerated.
        for (const auto &workload : spec_.workloads)
            validateWorkloadSpec(workload);
        for (const auto &platform : spec_.platforms)
            validatePlatformSpec(platform);
        // Validate every trace against the actual run duration(s) it
        // will pair with: splice lengths that don't fit the run must
        // fail here, not after hours of good cells. Durations are
        // deduplicated so a replay CSV is not parsed once per
        // workload. Throws with the full catalog on unknown names.
        std::vector<Seconds> durations;
        for (const auto &workload : spec_.workloads) {
            const Seconds base = spec_.duration > 0.0
                                     ? spec_.duration
                                     : diurnalDurationFor(workload);
            const Seconds scaled = base * spec_.durationScale;
            if (std::find(durations.begin(), durations.end(), scaled) ==
                durations.end())
                durations.push_back(scaled);
        }
        for (const auto &trace : spec_.traces) {
            for (const Seconds scaled : durations)
                validateTraceSpec(trace, scaled);
        }
        // Policy specs validate against the registry schema, so a
        // typo'd key or out-of-range value is rejected with the
        // schema/catalog enumerated, before any job runs.
        for (const auto &policy : spec_.policies)
            validatePolicySpec(policy);
        // Hazard specs validate against the registry schemas, with
        // the catalog enumerated on unknown names.
        for (const auto &hazard : spec_.hazards)
            validateHazardSpec(hazard);
    }
    // The telemetry spec applies to jobRunner campaigns too (the
    // hook receives its context via telemetryForJob), so it is
    // parsed unconditionally. Pathless sinks are built once here
    // and shared by every job; file sinks open lazily per job so a
    // campaign never holds thousands of descriptors.
    telemetryConfig_ = parseTelemetryConfig(spec_.telemetry);
    if (!telemetryConfig_.isNone() && telemetryConfig_.path.empty())
        sharedTelemetrySink_ = makeTelemetrySink(telemetryConfig_);
}

std::uint64_t
SweepEngine::seedForRun(std::uint64_t masterSeed, std::size_t seedIndex)
{
    // Two finalizer rounds keyed by the repetition index: fixed at
    // expansion time, independent of scheduling, and — deliberately —
    // independent of the cell, so every cell reuses the same seed
    // set and cross-cell comparisons are paired (common random
    // numbers).
    const std::uint64_t x = splitMix64(
        masterSeed + kGolden * (static_cast<std::uint64_t>(seedIndex) + 1));
    return splitMix64(x + kGolden);
}

std::vector<SweepJob>
SweepEngine::expandJobs() const
{
    std::vector<SweepJob> jobs;
    jobs.reserve(spec_.workloads.size() * spec_.platforms.size() *
                 spec_.traces.size() * spec_.policies.size() *
                 spec_.hazards.size() * spec_.seeds);
    std::size_t cell = 0;
    for (const auto &workload : spec_.workloads) {
        for (const auto &platform : spec_.platforms) {
            for (const auto &trace : spec_.traces) {
                for (const auto &policy : spec_.policies) {
                    for (const auto &hazard : spec_.hazards) {
                        for (std::size_t s = 0; s < spec_.seeds; ++s) {
                            SweepJob job;
                            job.index = jobs.size();
                            job.cell = cell;
                            job.workload = workload;
                            job.platform = platform;
                            job.trace = trace;
                            job.policy = policy;
                            job.hazard = hazard;
                            job.seedIndex = s;
                            job.seed = seedForRun(spec_.masterSeed, s);
                            jobs.push_back(std::move(job));
                        }
                        ++cell;
                    }
                }
            }
        }
    }
    return jobs;
}

ExperimentResult
SweepEngine::runJob(const SweepJob &job) const
{
    if (spec_.jobRunner)
        return spec_.jobRunner(job);

    // One declarative ExperimentSpec per job: the same wiring the
    // CLIs use, so a sweep cell and a single run are the same
    // experiment.
    ExperimentSpec experiment;
    experiment.workload = job.workload;
    experiment.platform = job.platform;
    experiment.trace = job.trace;
    experiment.policy = job.policy;
    experiment.hazard = job.hazard;
    experiment.duration = spec_.duration;
    experiment.durationScale = spec_.durationScale;
    experiment.seed = job.seed;
    experiment.runner = spec_.runner;
    experiment.telemetryContext = telemetryForJob(job.index);
    return experiment.run();
}

std::shared_ptr<TelemetryContext>
SweepEngine::telemetryForJob(std::size_t runIndex) const
{
    return makeRunTelemetryContext(telemetryConfig_,
                                   sharedTelemetrySink_, runIndex);
}

SweepResults
SweepEngine::run(std::size_t jobs,
                 const std::function<void(const SweepRun &)> &onRun) const
{
    const std::vector<SweepJob> jobList = expandJobs();

    SweepResults results;
    results.runs.resize(jobList.size());

    // Free the per-interval series at the end of the job itself (not
    // at collection time): with many in-flight jobs the completed-
    // but-uncollected results would otherwise hold every series in
    // future state and peak memory would match keepSeries=true.
    const auto executeJob = [this](const SweepJob &job) {
        ExperimentResult result = runJob(job);
        if (!spec_.keepSeries && job.seedIndex != 0) {
            result.series.clear();
            result.series.shrink_to_fit();
        }
        return result;
    };

    if (jobs <= 1) {
        for (std::size_t i = 0; i < jobList.size(); ++i) {
            results.runs[i] =
                SweepRun{jobList[i], executeJob(jobList[i])};
            if (onRun)
                onRun(results.runs[i]);
        }
    } else {
        ThreadPool pool(jobs);
        std::vector<std::future<ExperimentResult>> futures;
        futures.reserve(jobList.size());
        for (const SweepJob &job : jobList)
            futures.push_back(pool.submit(
                [&executeJob, &job] { return executeJob(job); }));
        // Collect by job index: results land in expansion order no
        // matter which worker finished first, and onRun observes the
        // same deterministic sequence as the sequential path.
        for (std::size_t i = 0; i < jobList.size(); ++i) {
            results.runs[i] = SweepRun{jobList[i], futures[i].get()};
            if (onRun)
                onRun(results.runs[i]);
        }
    }

    // Reduce each cell in expansion order.
    const std::size_t cellCount =
        spec_.workloads.size() * spec_.platforms.size() *
        spec_.traces.size() * spec_.policies.size() *
        spec_.hazards.size();
    results.cells.resize(cellCount);
    std::vector<std::vector<const RunSummary *>> perCell(cellCount);
    for (const SweepRun &run : results.runs) {
        AggregateSummary &cell = results.cells[run.job.cell];
        if (cell.runs == 0) {
            cell.workload = run.job.workload;
            cell.platform = run.job.platform;
            cell.trace = run.job.trace;
            cell.policy = run.job.policy;
            cell.hazard = run.job.hazard;
            cell.policyDisplay = run.result.policyName;
        }
        ++cell.runs;
        perCell[run.job.cell].push_back(&run.result.summary);
    }
    for (std::size_t c = 0; c < cellCount; ++c) {
        AggregateSummary &cell = results.cells[c];
        const auto &summaries = perCell[c];
        cell.qosGuarantee = Estimate::of(collect(
            summaries, [](const RunSummary &s) { return s.qosGuarantee; }));
        cell.qosTardiness = Estimate::of(collect(
            summaries, [](const RunSummary &s) { return s.qosTardiness; }));
        cell.energy = Estimate::of(collect(
            summaries, [](const RunSummary &s) { return s.energy; }));
        cell.meanPower = Estimate::of(collect(
            summaries, [](const RunSummary &s) { return s.meanPower; }));
        cell.meanThroughput = Estimate::of(
            collect(summaries, [](const RunSummary &s) {
                return s.meanThroughput;
            }));
        cell.migrations = Estimate::of(
            collect(summaries, [](const RunSummary &s) {
                return static_cast<double>(s.migrations);
            }));
        cell.dvfsTransitions = Estimate::of(
            collect(summaries, [](const RunSummary &s) {
                return static_cast<double>(s.dvfsTransitions);
            }));
    }
    return results;
}

const AggregateSummary *
SweepResults::find(const std::string &policy, const std::string &workload,
                   const std::string &trace,
                   const std::string &platform) const
{
    for (const AggregateSummary &cell : cells) {
        if (cell.policy == policy && cell.workload == workload &&
            (trace.empty() || cell.trace == trace) &&
            (platform.empty() || cell.platform == platform))
            return &cell;
    }
    return nullptr;
}

const ExperimentResult *
SweepResults::representative(const std::string &policy,
                             const std::string &workload,
                             const std::string &trace,
                             const std::string &platform) const
{
    for (const SweepRun &run : runs) {
        if (run.job.seedIndex == 0 && run.job.policy == policy &&
            run.job.workload == workload &&
            (trace.empty() || run.job.trace == trace) &&
            (platform.empty() || run.job.platform == platform))
            return &run.result;
    }
    return nullptr;
}

void
writeRunsCsv(CsvWriter &csv, const SweepResults &results)
{
    const bool withHazards = sweptHazards(results);
    std::vector<std::string> header = {
        "workload", "platform", "trace", "policy"};
    if (withHazards)
        header.push_back("hazard");
    for (const char *column :
         {"seed_index", "seed", "qos_guarantee_pct", "qos_tardiness",
          "energy_j", "mean_power_w", "mean_throughput", "migrations",
          "dvfs_transitions", "dropped"})
        header.push_back(column);
    csv.header(header);
    for (const SweepRun &run : results.runs) {
        const RunSummary &s = run.result.summary;
        csv.add(run.job.workload)
            .add(run.job.platform)
            .add(run.job.trace)
            .add(run.job.policy);
        if (withHazards)
            csv.add(run.job.hazard);
        csv.add(run.job.seedIndex)
            .add(run.job.seed)
            .add(s.qosGuarantee * 100.0)
            .add(s.qosTardiness)
            .add(s.energy)
            .add(s.meanPower)
            .add(s.meanThroughput)
            .add(s.migrations)
            .add(s.dvfsTransitions)
            .add(s.dropped)
            .endRow();
    }
}

void
writeAggregateCsv(CsvWriter &csv, const SweepResults &results)
{
    const bool withHazards = sweptHazards(results);
    std::vector<std::string> header = {
        "workload", "platform", "trace", "policy"};
    if (withHazards)
        header.push_back("hazard");
    for (const char *column :
         {"runs", "qos_guarantee_mean_pct", "qos_guarantee_ci95_pct",
          "qos_tardiness_mean", "qos_tardiness_ci95", "energy_mean_j",
          "energy_stddev_j", "energy_ci95_j", "mean_power_w",
          "mean_throughput", "migrations_mean", "migrations_ci95",
          "dvfs_transitions_mean"})
        header.push_back(column);
    csv.header(header);
    for (const AggregateSummary &cell : results.cells) {
        csv.add(cell.workload)
            .add(cell.platform)
            .add(cell.trace)
            .add(cell.policy);
        if (withHazards)
            csv.add(cell.hazard);
        csv.add(cell.runs)
            .add(cell.qosGuarantee.mean * 100.0)
            .add(cell.qosGuarantee.ci95 * 100.0)
            .add(cell.qosTardiness.mean)
            .add(cell.qosTardiness.ci95)
            .add(cell.energy.mean)
            .add(cell.energy.stddev)
            .add(cell.energy.ci95)
            .add(cell.meanPower.mean)
            .add(cell.meanThroughput.mean)
            .add(cell.migrations.mean)
            .add(cell.migrations.ci95)
            .add(cell.dvfsTransitions.mean)
            .endRow();
    }
}

void
printAggregateTable(std::ostream &out, const SweepResults &results)
{
    bool withHazards = false;
    for (const AggregateSummary &cell : results.cells)
        withHazards = withHazards || !isNoneHazard(cell.hazard);
    std::vector<std::string> columns = {"workload", "platform", "trace",
                                        "policy"};
    if (withHazards)
        columns.push_back("hazard");
    for (const char *column : {"runs", "QoS guar. (%)", "tardiness",
                               "energy (J)", "power (W)", "migrations"})
        columns.push_back(column);
    TextTable table(columns);
    for (const AggregateSummary &cell : results.cells) {
        // Parameterized specs print verbatim: two cells of the same
        // family (e.g. a bucket-width ablation) must stay
        // distinguishable per row, which the display name alone
        // ("HipsterIn") cannot do.
        const bool parameterized =
            cell.policy.find(':') != std::string::npos;
        auto &row = table.newRow()
                        .cell(cell.workload)
                        .cell(cell.platform)
                        .cell(cell.trace)
                        .cell(!parameterized &&
                                      !cell.policyDisplay.empty()
                                  ? cell.policyDisplay
                                  : cell.policy);
        if (withHazards)
            row.cell(cell.hazard);
        row.cell(static_cast<long long>(cell.runs))
            .cell(formatMeanCi(cell.qosGuarantee, 1, 100.0))
            .cell(formatMeanCi(cell.qosTardiness, 2))
            .cell(formatMeanCi(cell.energy, 0))
            .cell(formatMeanCi(cell.meanPower, 2))
            .cell(formatMeanCi(cell.migrations, 1));
    }
    table.print(out);
}

} // namespace hipster
