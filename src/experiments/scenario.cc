#include "experiments/scenario.hh"

#include <algorithm>

#include "common/logging.hh"
#include "loadgen/trace_families.hh"
#include "loadgen/trace_registry.hh"

namespace hipster
{

std::shared_ptr<const LoadTrace>
diurnalTrace(Seconds duration, std::uint64_t seed, Fraction low,
             Fraction high)
{
    return makeNoisyDiurnal(duration, seed, low, high);
}

std::shared_ptr<const LoadTrace>
rampTrace50to100()
{
    return std::make_shared<RampTrace>(0.50, 1.00, /*t0=*/5.0,
                                       /*length=*/175.0);
}

std::shared_ptr<const LoadTrace>
makeTraceByName(const std::string &name, Seconds duration,
                std::uint64_t seed)
{
    return makeTrace(name, duration, seed);
}

bool
isTraceName(const std::string &name)
{
    return isTraceSpec(name);
}

bool
isPolicyName(const std::string &name)
{
    // Keep in sync with makePolicy below (includes the alias).
    static const std::vector<std::string> names = {
        "static-big", "static-small", "octopus-man", "heuristic",
        "hipster-in", "hipster-co",   "hipster",
    };
    return std::find(names.begin(), names.end(), name) != names.end();
}

Seconds
diurnalDurationFor(const std::string &workload)
{
    if (workload == "memcached")
        return ScenarioDefaults::memcachedDiurnal;
    return ScenarioDefaults::webSearchDiurnal;
}

HipsterParams
tunedHipsterParams(const std::string &workload)
{
    HipsterParams params;
    // Bucket widths from the Figure 10 sweep on our substrate:
    // Memcached's open-loop noise needs coarser buckets to stay
    // above the QoS floor; Web-Search tolerates finer control.
    params.bucketPercent = workload == "memcached" ? 8.0 : 5.0;
    params.learningPhase = ScenarioDefaults::learningPhase;
    return params;
}

std::unique_ptr<TaskPolicy>
makePolicy(const std::string &name, const Platform &platform,
           const HipsterParams &hipster_params,
           const OctopusManParams &octopus_params)
{
    if (name == "static-big") {
        return std::make_unique<StaticPolicy>(StaticPolicy::allBig(
            platform, hipster_params.variant));
    }
    if (name == "static-small") {
        return std::make_unique<StaticPolicy>(StaticPolicy::allSmall(
            platform, hipster_params.variant));
    }
    if (name == "octopus-man") {
        OctopusManParams params = octopus_params;
        params.variant = hipster_params.variant;
        return std::make_unique<OctopusManPolicy>(platform, params);
    }
    if (name == "heuristic") {
        return std::make_unique<HeuristicOnlyPolicy>(
            platform, hipster_params.zones, hipster_params.variant);
    }
    if (name == "hipster-in" || name == "hipster") {
        HipsterParams params = hipster_params;
        params.variant = PolicyVariant::Interactive;
        return std::make_unique<HipsterPolicy>(platform, params);
    }
    if (name == "hipster-co") {
        HipsterParams params = hipster_params;
        params.variant = PolicyVariant::Collocated;
        return std::make_unique<HipsterPolicy>(platform, params);
    }
    fatal("makePolicy: unknown policy '", name, "'");
}

const std::vector<std::string> &
tablePolicyNames()
{
    static const std::vector<std::string> names = {
        "static-big", "static-small", "heuristic", "octopus-man",
        "hipster-in",
    };
    return names;
}

ExperimentRunner
makeDiurnalRunner(const std::string &workload, Seconds duration,
                  std::uint64_t seed)
{
    return ExperimentRunner(Platform::junoR1(),
                            lcWorkloadByName(workload),
                            diurnalTrace(duration, seed), seed);
}

} // namespace hipster
