#include "experiments/scenario.hh"

#include "common/logging.hh"
#include "core/policy_registry.hh"
#include "loadgen/trace_families.hh"
#include "loadgen/trace_registry.hh"
#include "platform/platform_registry.hh"
#include "workloads/workload_registry.hh"

namespace hipster
{

std::shared_ptr<const LoadTrace>
diurnalTrace(Seconds duration, std::uint64_t seed, Fraction low,
             Fraction high)
{
    return makeNoisyDiurnal(duration, seed, low, high);
}

std::shared_ptr<const LoadTrace>
rampTrace50to100()
{
    return std::make_shared<RampTrace>(0.50, 1.00, /*t0=*/5.0,
                                       /*length=*/175.0);
}

std::shared_ptr<const LoadTrace>
makeTraceByName(const std::string &name, Seconds duration,
                std::uint64_t seed)
{
    return makeTrace(name, duration, seed);
}

bool
isTraceName(const std::string &name)
{
    return isTraceSpec(name);
}

bool
isPolicyName(const std::string &name)
{
    return isPolicySpec(name);
}

Seconds
diurnalDurationFor(const std::string &workload)
{
    SpecParamSet params;
    return WorkloadRegistry::instance()
        .parseSpec(workload, params)
        .diurnalDuration;
}

HipsterParams
tunedHipsterParams(const std::string &workload)
{
    // Bucket widths from the Figure 10 sweep on our substrate (e.g.
    // Memcached's open-loop noise needs coarser buckets to stay
    // above the QoS floor) live in the workload catalog.
    SpecParamSet set;
    HipsterParams params;
    params.bucketPercent = WorkloadRegistry::instance()
                               .parseSpec(workload, set)
                               .tunedBucketPercent;
    params.learningPhase = ScenarioDefaults::learningPhase;
    return params;
}

bool
isWorkloadName(const std::string &name)
{
    return isWorkloadSpec(name);
}

bool
isPlatformName(const std::string &name)
{
    return isPlatformSpec(name);
}

std::unique_ptr<TaskPolicy>
makePolicy(const std::string &name, const Platform &platform,
           const HipsterParams &hipster_params,
           const OctopusManParams &octopus_params)
{
    return makePolicyFromSpec(
        name, PolicyRegistry::BuildContext{platform, hipster_params,
                                           octopus_params});
}

const std::vector<std::string> &
tablePolicyNames()
{
    static const std::vector<std::string> names =
        PolicyRegistry::instance().table3Names();
    return names;
}

ExperimentRunner
makeDiurnalRunner(const std::string &workload, Seconds duration,
                  std::uint64_t seed)
{
    // Registry-backed default wiring. The trace keeps the legacy
    // seed (no +100 fork) so the figure benches reproduce their
    // historical series.
    return ExperimentRunner(makePlatformFromSpec("juno"),
                            makeWorkloadFromSpec(workload),
                            diurnalTrace(duration, seed), seed);
}

} // namespace hipster
