/**
 * @file
 * Canned experiment scenarios shared by the bench binaries, examples
 * and integration tests: the paper's diurnal runs (Section 4.1: a
 * 36-hour day compressed so one hour lasts one minute), the Figure 8
 * ramp, and policy factories keyed by the names the evaluation uses.
 */

#ifndef HIPSTER_EXPERIMENTS_SCENARIO_HH
#define HIPSTER_EXPERIMENTS_SCENARIO_HH

#include <memory>
#include <string>
#include <vector>

#include "core/baselines.hh"
#include "core/hipster_policy.hh"
#include "experiments/runner.hh"

namespace hipster
{

/** Standard run lengths used by the paper's figures. Per-workload
 * diurnal lengths live in the WorkloadRegistry catalog — resolve
 * them with diurnalDurationFor(). */
struct ScenarioDefaults
{
    /** Learning phase (Section 4.1). */
    static constexpr Seconds learningPhase = 500.0;

    /** Learning phase for the Figure 9 study. */
    static constexpr Seconds shortLearningPhase = 200.0;
};

/**
 * The diurnal trace used throughout the evaluation: a compressed day
 * with mild per-interval noise, spanning ~5%..95% of max capacity.
 */
std::shared_ptr<const LoadTrace>
diurnalTrace(Seconds duration, std::uint64_t seed = 11,
             Fraction low = 0.05, Fraction high = 0.95);

/** The Figure 8 stimulus: 50% -> 100% over 175 s. */
std::shared_ptr<const LoadTrace> rampTrace50to100();

/**
 * Load-trace factory keyed on the spec grammar of the loadgen
 * TraceRegistry (see loadgen/trace_registry.hh): every registered
 * family ("diurnal", "ramp", "spike", "constant:<frac>", "mmpp:...",
 * "flashcrowd:...", "sine:...", "replay:<csv>") plus the transform
 * combinators ("|scale:...", "|clip:...", ...) and '+' splicing. The
 * seed only perturbs the stochastic stages. Throws FatalError on
 * unknown or malformed specs, enumerating the registered specs.
 */
std::shared_ptr<const LoadTrace> makeTraceByName(const std::string &name,
                                                 Seconds duration,
                                                 std::uint64_t seed);

/** Whether makeTraceByName() accepts the spec (fail-fast checks).
 * Alias for loadgen isTraceSpec(). */
bool isTraceName(const std::string &name);

/** Whether makePolicy() accepts the spec (fail-fast checks).
 * Alias for the core PolicyRegistry's isPolicySpec(). */
bool isPolicyName(const std::string &name);

/** Whether lcWorkloadByName() accepts the spec (fail-fast checks).
 * Alias for the workloads WorkloadRegistry's isWorkloadSpec(). */
bool isWorkloadName(const std::string &name);

/** Whether makePlatformFromSpec() accepts the spec (fail-fast
 * checks). Alias for the PlatformRegistry's isPlatformSpec(). */
bool isPlatformName(const std::string &name);

/**
 * Diurnal run length appropriate for a workload spec, resolved
 * through the WorkloadRegistry (aliases and parameterized specs
 * included). Throws FatalError on unknown workloads, enumerating
 * the catalog.
 */
Seconds diurnalDurationFor(const std::string &workload);

/**
 * Hipster tunables chosen at "deployment stage" per workload
 * (Section 3.2: the bucket size is picked to maximize energy savings
 * subject to a QoS-guarantee floor; Figure 10 shows the sweep),
 * resolved through the WorkloadRegistry like diurnalDurationFor().
 */
HipsterParams tunedHipsterParams(const std::string &workload);

/**
 * Policy factory keyed on the spec grammar of the core
 * PolicyRegistry (see core/policy_registry.hh): every registered
 * policy name and alias ("static-big", "static-small", "octopus-man"
 * / "octopus", "heuristic", "hipster-in" / "hipster", "hipster-co"),
 * optionally parameterized with ":key=value,..." overrides (e.g.
 * "hipster-in:bucket=8,learn=600", "octopus-man:up=0.85,down=0.6")
 * that apply on top of the passed-in base parameters. Throws
 * FatalError on unknown or malformed specs, enumerating the catalog
 * (unknown policy) or the policy's schema (unknown key / bad value).
 */
std::unique_ptr<TaskPolicy>
makePolicy(const std::string &name, const Platform &platform,
           const HipsterParams &hipster_params = {},
           const OctopusManParams &octopus_params = {});

/** The Table 3 policy list, in row order (registry-derived). */
const std::vector<std::string> &tablePolicyNames();

/**
 * Convenience: build a runner for a named workload ("memcached" /
 * "websearch") on the Juno R1 with the standard diurnal trace.
 */
ExperimentRunner makeDiurnalRunner(const std::string &workload,
                                   Seconds duration,
                                   std::uint64_t seed = 1);

} // namespace hipster

#endif // HIPSTER_EXPERIMENTS_SCENARIO_HH
