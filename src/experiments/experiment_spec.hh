/**
 * @file
 * ExperimentSpec: one fully declarative experiment — a workload spec
 * x platform spec x trace spec x policy spec x duration x seed. The
 * four axis strings use the registry grammars (workloads/
 * workload_registry, platform/platform_registry, loadgen/
 * trace_registry, core/policy_registry), so any scenario the
 * registries can express is a one-line spec instead of a new C++
 * entry point:
 *
 *   ExperimentSpec spec;
 *   spec.workload = "memcached:qos=300us,stall=0.5";
 *   spec.platform = "juno:big=4,little=8";
 *   spec.trace    = "mmpp:0.2,0.9,45";
 *   spec.policy   = "hipster-in:bucket=8";
 *   auto result   = spec.run();
 *
 * The scenario helpers, both CLIs and the sweep engine's default job
 * wiring all build runs through this struct; a given spec + seed is
 * bitwise-reproducible.
 */

#ifndef HIPSTER_EXPERIMENTS_EXPERIMENT_SPEC_HH
#define HIPSTER_EXPERIMENTS_EXPERIMENT_SPEC_HH

#include <functional>
#include <memory>
#include <string>

#include "core/hipster_policy.hh"
#include "experiments/runner.hh"

namespace hipster
{

/** Declarative description of one experiment run. */
struct ExperimentSpec
{
    /** Workload spec (workloads/workload_registry grammar). */
    std::string workload = "memcached";

    /** Platform spec (platform/platform_registry grammar). */
    std::string platform = "juno";

    /** Trace spec (loadgen/trace_registry grammar). */
    std::string trace = "diurnal";

    /** Policy spec (core/policy_registry grammar). */
    std::string policy = "hipster-in";

    /** Hazard spec (hazards/hazard_registry grammar). "none" is the
     * perfectly behaved substrate, bitwise-identical to a run
     * without hazard support. */
    std::string hazard = "none";

    /** Telemetry spec (telemetry/telemetry_registry grammar).
     * "none" is tracing off — the bitwise no-op default. */
    std::string telemetry = "none";

    /**
     * Pre-built telemetry context; when set it wins over the
     * `telemetry` spec string. The hook sweep engines use to hand
     * each job a per-run sink (suffixed file path) or a shared
     * thread-safe one (counters/ring).
     */
    std::shared_ptr<TelemetryContext> telemetryContext;

    /** Run length; 0 = the workload's diurnal default. */
    Seconds duration = 0.0;

    /** Scale factor applied to the duration and the default learning
     * phase (the bench binaries' --quick). */
    double durationScale = 1.0;

    /** Seed for all stochastic components; the trace stream is
     * forked at seed + 100 so repetitions see independent noise. */
    std::uint64_t seed = 1;

    /** Options forwarded to the ExperimentRunner. */
    RunnerOptions runner;

    /**
     * Fail-fast validation of all five axis specs (and the splice
     * lengths of the trace against the resolved duration) without
     * building anything, throwing the FatalError the corresponding
     * registry would — campaigns reject bad cells before any runs
     * start.
     */
    void validate() const;

    /** The run length after defaulting and scaling. */
    Seconds resolvedDuration() const;

    /**
     * The workload-tuned Hipster base parameters this spec's policy
     * overrides apply on top of (deployment tuning per Section 3.2,
     * learning phase scaled with durationScale).
     */
    HipsterParams baseHipsterParams() const;

    /** Build the runner: fresh platform + workload + trace. */
    ExperimentRunner makeRunner() const;

    /** Build the policy for a platform (overrides on top of
     * baseHipsterParams()). */
    std::unique_ptr<TaskPolicy>
    makePolicyFor(const Platform &platform_instance) const;

    /** Build and run the whole experiment. */
    ExperimentResult
    run(const std::function<void(const IntervalMetrics &)> &observer =
            {}) const;
};

} // namespace hipster

#endif // HIPSTER_EXPERIMENTS_EXPERIMENT_SPEC_HH
