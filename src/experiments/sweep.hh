/**
 * @file
 * SweepEngine: parallel multi-seed experiment campaigns with
 * deterministic aggregation.
 *
 * A declarative SweepSpec (workloads x platforms x traces x policies
 * x N seeds — every axis a registry spec string) is expanded into
 * independent jobs; each job's seed is derived from the master seed
 * with the SplitMix64 finalizer, so the seed — and therefore the
 * run's result — depends only on the job's position in the
 * expansion, never on thread count or execution order. Jobs fan out
 * over a common/ThreadPool, each running one ExperimentSpec through
 * the default wiring; results are collected by job index, and every
 * (workload, platform, trace, policy) cell is reduced in that fixed
 * order into an AggregateSummary (mean / stddev / 95% confidence
 * interval for the Table 3 metrics). `jobs=1` and `jobs=N` are
 * bitwise-identical.
 */

#ifndef HIPSTER_EXPERIMENTS_SWEEP_HH
#define HIPSTER_EXPERIMENTS_SWEEP_HH

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "experiments/runner.hh"
#include "experiments/scenario.hh"
#include "telemetry/telemetry.hh"

namespace hipster
{

/** One unit of sweep work: a fully resolved run. */
struct SweepJob
{
    /** Position in the expansion (also the reduction order). */
    std::size_t index = 0;

    /** Index of the (workload, platform, trace, policy, hazard) cell
     * this run feeds. */
    std::size_t cell = 0;

    std::string workload;
    std::string platform;
    std::string trace;
    std::string policy;
    std::string hazard = "none";

    /** Which repetition within the cell (0 .. seeds-1). */
    std::size_t seedIndex = 0;

    /** Run seed derived via SplitMix64 from the master seed. */
    std::uint64_t seed = 0;
};

/** Declarative description of a sweep campaign. */
struct SweepSpec
{
    /** Workload specs (workloads WorkloadRegistry grammar): bare
     * names or parameterized, e.g. "memcached:qos=300us". */
    std::vector<std::string> workloads = {"memcached"};

    /** Platform specs (platform PlatformRegistry grammar): bare
     * names or parameterized, e.g. "juno:big=4,little=8". Each spec
     * is its own sweep cell, so board-shape studies are ordinary
     * axes. */
    std::vector<std::string> platforms = {"juno"};

    /** Trace specs (loadgen TraceRegistry grammar). */
    std::vector<std::string> traces = {"diurnal"};

    /** Policy specs (core PolicyRegistry grammar): bare names or
     * parameterized, e.g. "hipster-in:bucket=8". Each spec is its
     * own sweep cell, so parameter ablations are ordinary axes. */
    std::vector<std::string> policies = {"hipster-in"};

    /** Hazard specs (hazards HazardRegistry grammar): "none" or
     * composed adversity, e.g. "hazard:thermal+interference". Each
     * spec is its own sweep cell, so resilience studies pair every
     * hazard against every policy under common random numbers. */
    std::vector<std::string> hazards = {"none"};

    /**
     * Telemetry spec (telemetry TelemetryRegistry grammar) applied
     * to every run. "none" is tracing off — jobs get a null context
     * and the campaign is bitwise-identical to a build without the
     * axis. File sinks fan out per run (path gains a ".runNNNN"
     * tag); pathless sinks (ring, counters) are shared thread-safe
     * across all jobs.
     */
    std::string telemetry = "none";

    /** Hard ceiling on repetitions per cell: far above any real
     * campaign, low enough to reject a "-1" wrapped to 2^64-1 by a
     * CLI parser before job expansion tries to allocate. */
    static constexpr std::size_t kMaxSeeds = 1000000;

    /** Repetitions per cell with independently derived seeds. */
    std::size_t seeds = 1;

    /** Master seed all per-run seeds derive from. */
    std::uint64_t masterSeed = 1;

    /** Run length; 0 = the workload's diurnal default. */
    Seconds duration = 0.0;

    /** Scale factor applied to duration and the default learning
     * phase (the bench binaries' --quick). */
    double durationScale = 1.0;

    /** Options forwarded to every ExperimentRunner. */
    RunnerOptions runner;

    /**
     * Keep the full interval series of every run. When false, only
     * the representative (seedIndex 0) series of each cell survives
     * — campaigns with many seeds otherwise hold every per-interval
     * record in memory although the aggregates and CSV reporters
     * read only the summaries. Series are dropped as each job
     * finishes, so the run() observer also sees empty series for
     * non-representative runs.
     */
    bool keepSeries = true;

    /**
     * Hook: replace the default job execution entirely (custom
     * multi-phase runs, collocation setups). The engine still owns
     * expansion, seed derivation, scheduling and aggregation. Runs
     * concurrently — must not touch shared mutable state.
     */
    std::function<ExperimentResult(const SweepJob &)> jobRunner;
};

/**
 * Mean / spread / 95% confidence half-width of one metric over the
 * repetitions of a cell (Student-t interval; see tCritical95()).
 */
struct Estimate
{
    std::size_t n = 0;
    double mean = 0.0;
    double stddev = 0.0; ///< unbiased sample stddev (0 when n < 2)
    double ci95 = 0.0;   ///< half-width of the 95% CI (0 when n < 2)

    double lo() const { return mean - ci95; }
    double hi() const { return mean + ci95; }

    /** Reduce a sample vector (order-sensitive: callers pass samples
     * in job-index order so aggregates are bitwise-reproducible). */
    static Estimate of(const std::vector<double> &samples);
};

/**
 * Two-sided 95% Student-t critical value for `df` degrees of
 * freedom (exact table for df <= 30, 1.96 asymptote beyond).
 */
double tCritical95(std::size_t df);

/**
 * "mean ±ci" cell text (just the mean when n < 2), with an optional
 * scale factor applied to both (e.g. 100 for fractions-as-percent).
 */
std::string formatMeanCi(const Estimate &e, int precision,
                         double scale = 1.0);

/** Reduced statistics of one (workload, platform, trace, policy)
 * cell. */
struct AggregateSummary
{
    std::string workload;
    std::string platform;
    std::string trace;
    std::string policy;
    std::string hazard = "none";

    /** Human-readable policy name from the runs (e.g. "HipsterIn"). */
    std::string policyDisplay;

    /** Runs reduced into this cell. */
    std::size_t runs = 0;

    Estimate qosGuarantee;
    Estimate qosTardiness;
    Estimate energy;
    Estimate meanPower;
    Estimate meanThroughput;
    Estimate migrations;
    Estimate dvfsTransitions;
};

/** One completed run with the job that produced it. */
struct SweepRun
{
    SweepJob job;
    ExperimentResult result;
};

/** Everything a sweep produced, in deterministic order. */
struct SweepResults
{
    /** All runs, sorted by job index. */
    std::vector<SweepRun> runs;

    /** One aggregate per cell, in cell order. */
    std::vector<AggregateSummary> cells;

    /**
     * Cell lookup; an empty trace/platform matches the first
     * trace/platform swept. Returns nullptr when absent.
     */
    const AggregateSummary *find(const std::string &policy,
                                 const std::string &workload,
                                 const std::string &trace = "",
                                 const std::string &platform = "") const;

    /**
     * The representative run of a cell (seedIndex 0) for series
     * dumps. Returns nullptr when absent.
     */
    const ExperimentResult *
    representative(const std::string &policy, const std::string &workload,
                   const std::string &trace = "",
                   const std::string &platform = "") const;
};

/** Expands, schedules and reduces sweep campaigns. */
class SweepEngine
{
  public:
    explicit SweepEngine(SweepSpec spec);

    const SweepSpec &spec() const { return spec_; }

    /** All jobs in expansion order (workload-major, then platform,
     * then trace, then policy, then hazard, then seed index), each
     * with its derived seed. */
    std::vector<SweepJob> expandJobs() const;

    /**
     * Per-run seed derivation: a pure function of the master seed
     * and the repetition index alone. Every cell runs the same seed
     * set (common random numbers), so cross-policy deltas at equal
     * seedIndex are paired — the same trace noise and service-time
     * draws hit both arms of an A/B comparison.
     */
    static std::uint64_t seedForRun(std::uint64_t masterSeed,
                                    std::size_t seedIndex);

    /**
     * Execute one job with the default ExperimentSpec wiring (fresh
     * registry-built platform + workload + trace + factory policy),
     * or the spec's jobRunner hook when set. Thread-safe.
     */
    ExperimentResult runJob(const SweepJob &job) const;

    /**
     * The telemetry context job `runIndex` emits through: nullptr
     * when the campaign's telemetry is "none", the campaign-shared
     * sink for pathless kinds (ring, counters), else a fresh file
     * sink on the ".runNNNN"-suffixed path. Thread-safe.
     */
    std::shared_ptr<TelemetryContext>
    telemetryForJob(std::size_t runIndex) const;

    /** The campaign-wide shared sink (ring/counters only; nullptr
     * for file sinks and "none") — CLIs print its summaryText(). */
    const std::shared_ptr<TelemetrySink> &sharedTelemetrySink() const
    {
        return sharedTelemetrySink_;
    }

    /** The parsed campaign telemetry configuration. */
    const TelemetryConfig &telemetryConfig() const
    {
        return telemetryConfig_;
    }

    /**
     * Run the whole campaign across `jobs` worker threads (<= 1 runs
     * inline) and reduce. `onRun`, when given, is invoked once per
     * run, serialized in job-index order.
     */
    SweepResults
    run(std::size_t jobs = 1,
        const std::function<void(const SweepRun &)> &onRun = {}) const;

  private:
    SweepSpec spec_;
    TelemetryConfig telemetryConfig_;
    std::shared_ptr<TelemetrySink> sharedTelemetrySink_;
};

/** Per-run CSV: one row per (cell, seed) run. A `hazard` column
 * appears only when the campaign swept a non-"none" hazard, so
 * hazard-free campaigns keep their historical byte layout. */
void writeRunsCsv(CsvWriter &csv, const SweepResults &results);

/** Aggregate CSV: one row per cell with mean/stddev/ci95 columns
 * (same conditional `hazard` column as writeRunsCsv). */
void writeAggregateCsv(CsvWriter &csv, const SweepResults &results);

/** ASCII aggregate report: one row per cell, "mean ± ci" cells
 * (same conditional hazard column as the CSVs). */
void printAggregateTable(std::ostream &out, const SweepResults &results);

} // namespace hipster

#endif // HIPSTER_EXPERIMENTS_SWEEP_HH
