#include "experiments/oracle.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"
#include "core/baselines.hh"

namespace hipster
{

HetCmpOracle::HetCmpOracle(const PlatformSpec &spec, LcWorkloadDef def,
                           OracleOptions options)
    : spec_(spec), def_(std::move(def)), options_(options)
{
    if (options_.measure <= 0.0 || options_.warmup < 0.0)
        fatal("HetCmpOracle: invalid warmup/measure windows");
    if (options_.qosFractionRequired <= 0.0 ||
        options_.qosFractionRequired > 1.0) {
        fatal("HetCmpOracle: qosFractionRequired must lie in (0, 1]");
    }
}

ConfigMeasurement
HetCmpOracle::measure(Fraction load, const CoreConfig &config)
{
    RunnerOptions run_options;
    run_options.interval = options_.interval;
    ExperimentRunner runner(
        spec_, def_, std::make_shared<ConstantTrace>(load),
        options_.seed, run_options);
    StaticPolicy policy(runner.platform(), config);

    const Seconds total = options_.warmup + options_.measure;
    ExperimentResult result = runner.run(policy, total);

    const auto warmup_intervals = static_cast<std::size_t>(
        options_.warmup / options_.interval + 0.5);

    ConfigMeasurement out;
    out.config = config;
    out.load = load;

    SampleStats tails;
    std::size_t met = 0, counted = 0;
    double power_sum = 0.0, throughput_sum = 0.0;
    for (std::size_t k = warmup_intervals; k < result.series.size(); ++k) {
        const IntervalMetrics &m = result.series[k];
        tails.add(m.tailLatency);
        if (!m.qosViolated())
            ++met;
        ++counted;
        power_sum += m.power;
        throughput_sum += m.throughput;
    }
    if (counted == 0)
        fatal("HetCmpOracle: measurement window too short");

    out.qosFraction = static_cast<double>(met) / counted;
    out.tailLatency = tails.percentile(50.0);
    out.power = power_sum / counted;
    out.throughput = throughput_sum / counted;
    out.throughputPerWatt =
        out.power > 0.0 ? out.throughput / out.power : 0.0;
    out.feasible = out.qosFraction >= options_.qosFractionRequired;
    return out;
}

OracleEntry
HetCmpOracle::bestConfig(Fraction load,
                         const std::vector<CoreConfig> &candidates)
{
    OracleEntry entry;
    entry.load = load;
    for (const auto &config : candidates) {
        ConfigMeasurement m = measure(load, config);
        if (!m.feasible)
            continue;
        if (!entry.best || m.power < entry.best->power)
            entry.best = m;
    }
    return entry;
}

std::vector<OracleEntry>
HetCmpOracle::stateMachine(const std::vector<Fraction> &loads,
                           const std::vector<CoreConfig> &candidates)
{
    std::vector<OracleEntry> out;
    out.reserve(loads.size());
    for (Fraction load : loads)
        out.push_back(bestConfig(load, candidates));
    return out;
}

} // namespace hipster
