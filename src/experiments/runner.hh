/**
 * @file
 * ExperimentRunner: the closed loop of Figure 4. Every monitoring
 * interval it (1) asks the policy for a decision, (2) actuates core
 * affinity + DVFS on the platform, (3) steps the latency-critical
 * app and any batch workload through the interval under the
 * contention model, (4) meters power/energy and perf counters, and
 * (5) assembles the IntervalMetrics the policy will see next.
 */

#ifndef HIPSTER_EXPERIMENTS_RUNNER_HH
#define HIPSTER_EXPERIMENTS_RUNNER_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/policy.hh"
#include "hazards/hazard.hh"
#include "loadgen/load_trace.hh"
#include "monitor/metrics.hh"
#include "monitor/metrics_series.hh"
#include "monitor/qos_monitor.hh"
#include "platform/platform.hh"
#include "telemetry/perf_probe.hh"
#include "telemetry/phase_profiler.hh"
#include "telemetry/telemetry.hh"
#include "workloads/apps.hh"
#include "workloads/batch.hh"
#include "workloads/contention.hh"
#include "workloads/latency_app.hh"

namespace hipster
{

/** Result of one experiment run. */
struct ExperimentResult
{
    std::string policyName;
    std::string workloadName;
    MetricsSeries series;
    RunSummary summary;

    /** Total LC core migrations over the run. */
    std::uint64_t migrations = 0;

    /** Total cluster DVFS transitions over the run. */
    std::uint64_t dvfsTransitions = 0;

    /** Simulation events processed by the LC app's event queue. */
    std::uint64_t simEvents = 0;

    /** Self-instrumentation: where the run's wall-clock went.
     * Observation only — never part of pinned outputs. */
    PhaseProfile profile;
};

/** Knobs of the experiment loop. */
struct RunnerOptions
{
    /** Monitoring interval (paper: 1 s). */
    Seconds interval = 1.0;

    /** Bucket width used for the informational loadBucket field in
     * the metrics (policies quantize internally). */
    double reportBucketPercent = 5.0;

    /** Contention-model coefficients (collocation only). */
    ContentionParams contention;

    /** Disable cpuidle while batch jobs run, as the paper does to
     * work around the Juno perf erratum (Section 3.7). */
    bool disableCpuIdleWithBatch = true;
};

/**
 * Owns the wiring of one experiment: a platform instance, an LC app,
 * a load trace, and optionally a batch workload.
 */
class ExperimentRunner
{
  public:
    /**
     * @param spec  Platform description (a fresh Platform is built
     *              so runs are isolated).
     * @param def   LC workload definition (params + traits).
     * @param trace Offered-load trace.
     * @param seed  Seed for all stochastic components.
     */
    ExperimentRunner(const PlatformSpec &spec, LcWorkloadDef def,
                     std::shared_ptr<const LoadTrace> trace,
                     std::uint64_t seed, RunnerOptions options = {});

    /** Attach a batch workload (enables collocation). */
    void setBatch(std::shared_ptr<BatchWorkload> batch);

    /**
     * Attach a hazard engine (nullptr = perfectly behaved substrate;
     * the loop is then bitwise-identical to a runner without hazard
     * support). The engine is bound to the platform's TDP and reset
     * by every beginRun, so one runner can host many runs.
     */
    void setHazards(std::unique_ptr<HazardEngine> hazards);

    /** The attached hazard engine, or nullptr. */
    const HazardEngine *hazards() const { return hazards_.get(); }
    HazardEngine *hazards() { return hazards_.get(); }

    /**
     * Attach a telemetry context (nullptr = tracing off, the
     * default). Emission is observation-only: it draws no RNG and
     * reorders no events, so a traced run is bitwise-identical to an
     * untraced one.
     */
    void setTelemetry(std::shared_ptr<TelemetryContext> telemetry);

    /** The attached telemetry context, or nullptr. */
    const std::shared_ptr<TelemetryContext> &telemetry() const
    {
        return telemetry_;
    }

    Platform &platform() { return *platform_; }
    const Platform &platform() const { return *platform_; }
    LatencyCriticalApp &app() { return *app_; }
    const LcWorkloadDef &workload() const { return def_; }
    const RunnerOptions &options() const { return options_; }

    /**
     * Run `duration` seconds under `policy` and return the series +
     * summary. The platform's meters are reset at the start.
     *
     * @param observer Optional per-interval callback (time-series
     *                 dumps for the figure benches).
     */
    ExperimentResult
    run(TaskPolicy &policy, Seconds duration,
        const std::function<void(const IntervalMetrics &)> &observer = {});

    /**
     * Incremental stepping API — the same closed loop as run(), but
     * driven one interval at a time by an external clock (the fleet
     * dispatcher advances every node in lockstep and feeds each one
     * its routed share of the fleet trace). run() is implemented on
     * top of these three calls, so both drivers are bitwise
     * identical per interval.
     *
     * beginRun resets the platform meters, the app and the interval
     * counter; `expectedIntervals` only pre-sizes the series (0 is
     * fine).
     */
    void beginRun(TaskPolicy &policy, std::size_t expectedIntervals = 0);

    /**
     * Step one monitoring interval: ask `policy` for its decision
     * (initialDecision on the first step, decide(previous metrics)
     * after), actuate, simulate, meter. When `offeredOverride` is
     * set it replaces the trace lookup for this interval — the hook
     * the fleet front-end uses to route its per-node load share —
     * otherwise the run's own trace is sampled at interval start,
     * exactly as run() always has. `forceDown` blanks the interval
     * as if the node's own hazard had failed it — the hook the
     * fleet uses for rack-level blast radius, where a *neighbor's*
     * failure downs this node; restore reboots the task manager
     * cold when the hazard spec says restores do. Returns the
     * interval's metrics (valid until the next step).
     */
    const IntervalMetrics &
    stepNext(TaskPolicy &policy,
             std::optional<Fraction> offeredOverride = std::nullopt,
             bool forceDown = false);

    /** Finish an incremental run: summarize the stepped intervals
     * and return the same ExperimentResult run() would. */
    ExperimentResult finishRun();

    /** Intervals stepped since beginRun. */
    std::size_t stepsTaken() const { return stepIndex_; }

  private:
    IntervalMetrics stepInterval(std::size_t k, const Decision &decision,
                                 std::optional<Fraction> offeredOverride,
                                 const HazardEffects &fx);

    /** The all-zero metrics of an interval spent failed (hazard
     * `nodefail`): nothing executes, nothing is metered. */
    IntervalMetrics downInterval(Seconds t0, Seconds t1);

    /**
     * Build the LC server set for the current platform state into
     * the reusable scratch buffer (valid until the next call).
     */
    const std::vector<ServerSpec> &
    buildServers(const std::vector<ClusterPressure> &pressure);

    PlatformSpec spec_;
    LcWorkloadDef def_;
    std::shared_ptr<const LoadTrace> trace_;
    std::uint64_t seed_;
    RunnerOptions options_;

    std::unique_ptr<Platform> platform_;
    std::unique_ptr<LatencyCriticalApp> app_;
    std::shared_ptr<BatchWorkload> batch_;
    std::unique_ptr<HazardEngine> hazards_;
    std::shared_ptr<TelemetryContext> telemetry_;
    ContentionModel contention_;
    LoadBucketQuantizer reportQuantizer_;

    /** LC utilization of the previous interval (pressure lag). */
    Fraction lastLcUtilization_ = 0.0;

    // Incremental-run state (beginRun/stepNext/finishRun).
    bool runActive_ = false;
    bool wasDown_ = false;
    bool wasForcedDown_ = false;
    bool policyStarted_ = false;
    std::size_t stepIndex_ = 0;
    IntervalMetrics lastMetrics_;
    ExperimentResult pending_;

    // Self-instrumentation (telemetry/phase_profiler.hh): phase
    // wall-clock accumulators for the current run. Always on — a
    // handful of steady_clock reads per interval — but never part of
    // any pinned output.
    PhaseProfile profile_;
    double lastArrivalSeconds_ = 0.0;
    double lastRunIntervalSeconds_ = 0.0;
    std::uint64_t startSimEvents_ = 0;
    std::unique_ptr<PerfCounterSession> perfSession_;

    // Per-interval scratch, preallocated once and reused so the
    // interval loop stays allocation-free (see stepInterval).
    std::vector<ServerSpec> serversScratch_;
    std::vector<ClusterPressure> pressureScratch_;
    std::vector<ClusterActivity> activityScratch_;
    std::vector<Seconds> busyScratch_;
    std::vector<std::uint32_t> allocatedScratch_;
};

} // namespace hipster

#endif // HIPSTER_EXPERIMENTS_RUNNER_HH
