#include "loadgen/arrival_batch.hh"

namespace hipster
{

void
drawPoissonArrivals(Rng &rng, Seconds t0, Seconds t1, Rate rate,
                    std::vector<Seconds> &out)
{
    out.clear();
    if (rate <= 0.0)
        return;
    Seconds t = t0 + rng.exponential(rate);
    while (t < t1) {
        out.push_back(t);
        t += rng.exponential(rate);
    }
}

} // namespace hipster
