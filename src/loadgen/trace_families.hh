/**
 * @file
 * Extended load-trace families and transform combinators for the
 * trace-synthesis subsystem: bursty MMPP load, flash crowds,
 * sinusoidal/periodic load, CSV replay of recorded traces, and the
 * wrappers (scale, offset, clip, additive jitter, repeat, splice)
 * that perturb or concatenate any base trace. Every family keeps the
 * LoadTrace contract: `at()` is a pure function of time (and the
 * construction seed), finite and non-negative.
 */

#ifndef HIPSTER_LOADGEN_TRACE_FAMILIES_HH
#define HIPSTER_LOADGEN_TRACE_FAMILIES_HH

#include <memory>
#include <string>
#include <vector>

#include "loadgen/load_trace.hh"

namespace hipster
{

/**
 * Two-state Markov-modulated load ("MMPP-style" burstiness): the
 * level alternates between `lo` and `hi` with exponentially
 * distributed sojourn times of mean `switchMean` seconds. The state
 * timeline is precomputed from the seed over `horizon` seconds and
 * wraps periodically beyond it, so `at()` is a pure O(log n)
 * function of time.
 */
class MmppTrace : public LoadTrace
{
  public:
    MmppTrace(Fraction lo, Fraction hi, Seconds switch_mean,
              std::uint64_t seed, Seconds horizon);
    Fraction at(Seconds t) const override;
    Seconds duration() const override { return horizon_; }

    /** Number of precomputed state sojourns (testing aid). */
    std::size_t segments() const { return starts_.size(); }

  private:
    Fraction lo_, hi_;
    Seconds horizon_;
    std::vector<Seconds> starts_;  ///< sojourn start times, sorted
    std::vector<bool> highState_;  ///< state of each sojourn
};

/**
 * Flash crowd: steady `base` load until `t0`, a linear surge to
 * `peak` over `rise` seconds, a plateau of `hold` seconds, then an
 * exponential decay back towards `base` with time constant `decay`
 * (defaults to `rise`). Models the "sudden load spikes" of Section 2
 * with an explicit build-up and aftermath.
 */
class FlashCrowdTrace : public LoadTrace
{
  public:
    FlashCrowdTrace(Fraction base, Fraction peak, Seconds t0,
                    Seconds rise, Seconds hold, Seconds decay = 0.0);
    Fraction at(Seconds t) const override;
    Seconds duration() const override;

  private:
    Fraction base_, peak_;
    Seconds t0_, rise_, hold_, decay_;
};

/** Sinusoidal load: mean + amp * sin(2*pi*(t/period) + phase),
 * clamped to >= 0. A smooth periodic stimulus between the diurnal
 * day and a constant. */
class SineTrace : public LoadTrace
{
  public:
    SineTrace(Fraction mean, Fraction amp, Seconds period,
              double phase = 0.0);
    Fraction at(Seconds t) const override;
    Seconds duration() const override { return period_; }

  private:
    Fraction mean_, amp_;
    Seconds period_;
    double phase_;
};

/**
 * Replays a recorded trace from (time_s, load) samples with linear
 * interpolation between them (constant before the first and after
 * the last sample). `fromCsv` loads the samples from a CSV file
 * written by `writeTraceCsv` (or any file with `time_s` and `load`
 * columns), failing fast on malformed input.
 */
class ReplayTrace : public LoadTrace
{
  public:
    explicit ReplayTrace(std::vector<std::pair<Seconds, Fraction>> samples);

    /** Load samples from a CSV file; FatalError on unreadable files,
     * missing columns, non-numeric cells or unsorted times.
     * Successfully parsed files are cached (keyed on path + size +
     * mtime), so a sweep building the trace once per run parses the
     * file only once; rewriting the file invalidates the entry. */
    static std::shared_ptr<const ReplayTrace>
    fromCsv(const std::string &path);

    Fraction at(Seconds t) const override;
    Seconds duration() const override { return curve_.duration(); }

    std::size_t samples() const { return sampleCount_; }

  private:
    std::size_t sampleCount_; ///< declared first: curve_ consumes the vector
    PiecewiseTrace curve_;
};

/**
 * Samples `trace` every `step` seconds over [0, length] and writes
 * the samples as a `time_s,load` CSV to `path` with full double
 * precision (17 significant digits), so `replay:<path>` reproduces
 * the sampled values bit-for-bit.
 */
void writeTraceCsv(const std::string &path, const LoadTrace &trace,
                   Seconds step, Seconds length);

/** Multiplies an inner trace by a constant factor >= 0. */
class ScaleTrace : public LoadTrace
{
  public:
    ScaleTrace(std::shared_ptr<const LoadTrace> inner, double factor);
    Fraction at(Seconds t) const override;
    Seconds duration() const override { return inner_->duration(); }

  private:
    std::shared_ptr<const LoadTrace> inner_;
    double factor_;
};

/** Adds a constant offset to an inner trace, clamping at 0 so the
 * non-negativity invariant survives negative offsets. */
class OffsetTrace : public LoadTrace
{
  public:
    OffsetTrace(std::shared_ptr<const LoadTrace> inner, double delta);
    Fraction at(Seconds t) const override;
    Seconds duration() const override { return inner_->duration(); }

  private:
    std::shared_ptr<const LoadTrace> inner_;
    double delta_;
};

/** Clamps an inner trace into [lo, hi]. */
class ClipTrace : public LoadTrace
{
  public:
    ClipTrace(std::shared_ptr<const LoadTrace> inner, Fraction lo,
              Fraction hi);
    Fraction at(Seconds t) const override;
    Seconds duration() const override { return inner_->duration(); }

  private:
    std::shared_ptr<const LoadTrace> inner_;
    Fraction lo_, hi_;
};

/**
 * Additive per-interval Gaussian jitter: inner + N(0, sigma) drawn
 * once per `interval`, clamped to [0, cap]. The additive counterpart
 * of the multiplicative NoisyTrace; deterministic for a given seed
 * (noise is keyed on the interval index).
 */
class JitterTrace : public LoadTrace
{
  public:
    JitterTrace(std::shared_ptr<const LoadTrace> inner, double sigma,
                Seconds interval, std::uint64_t seed,
                Fraction cap = 1.2);
    Fraction at(Seconds t) const override;
    Seconds duration() const override { return inner_->duration(); }

  private:
    std::shared_ptr<const LoadTrace> inner_;
    double sigma_;
    Seconds interval_;
    std::uint64_t seed_;
    Fraction cap_;
};

/** Repeats the first `period` seconds of an inner trace forever
 * (time is wrapped modulo the period). */
class RepeatTrace : public LoadTrace
{
  public:
    RepeatTrace(std::shared_ptr<const LoadTrace> inner, Seconds period);
    Fraction at(Seconds t) const override;
    Seconds duration() const override { return period_; }

  private:
    std::shared_ptr<const LoadTrace> inner_;
    Seconds period_;
};

/**
 * Concatenates traces in time: segment k plays for its length with a
 * local clock starting at 0. The final segment may be open-ended
 * (length 0) and then plays for the rest of time.
 */
class SpliceTrace : public LoadTrace
{
  public:
    struct Segment
    {
        std::shared_ptr<const LoadTrace> trace;
        Seconds length = 0.0; ///< 0 = open-ended (last segment only)
    };

    explicit SpliceTrace(std::vector<Segment> segments);
    Fraction at(Seconds t) const override;
    Seconds duration() const override;

  private:
    std::vector<Segment> segments_;
};

/**
 * The evaluation's standard noisy diurnal composition (a DiurnalTrace
 * wrapped in mild multiplicative per-second noise), shared by the
 * scenario helpers and the "diurnal" registry entry so both build
 * bit-identical traces from the same seed.
 */
std::shared_ptr<const LoadTrace>
makeNoisyDiurnal(Seconds duration, std::uint64_t seed,
                 Fraction low = 0.05, Fraction high = 0.95);

} // namespace hipster

#endif // HIPSTER_LOADGEN_TRACE_FAMILIES_HH
