/**
 * @file
 * Batched Poisson arrival generation. Instead of drawing one
 * exponential gap inside every arrival's event handler (a chain of
 * heap-allocating closures on the simulator's hottest path), the
 * whole interval's arrival timestamps are precomputed in one tight
 * loop and pre-scheduled up front — the same trick MmppTrace uses
 * for its precomputed state sojourns.
 *
 * The RNG call sequence is identical to the handler-chained form:
 * one exponential draw per arrival plus the final draw that crosses
 * the interval end. Golden-scenario pins (tests/experiments/
 * test_golden_repin.cc) hold this bitwise.
 */

#ifndef HIPSTER_LOADGEN_ARRIVAL_BATCH_HH
#define HIPSTER_LOADGEN_ARRIVAL_BATCH_HH

#include <vector>

#include "common/random.hh"
#include "common/units.hh"

namespace hipster
{

/**
 * Draw the timestamps of a Poisson process with rate `rate` over
 * [t0, t1) into `out` (cleared first; capacity is reused across
 * calls). The first arrival is t0 plus one exponential gap, each
 * subsequent arrival adds another; the draw that lands at or beyond
 * t1 is consumed but not emitted, exactly mirroring the sequential
 * per-event formulation.
 */
void drawPoissonArrivals(Rng &rng, Seconds t0, Seconds t1, Rate rate,
                         std::vector<Seconds> &out);

} // namespace hipster

#endif // HIPSTER_LOADGEN_ARRIVAL_BATCH_HH
