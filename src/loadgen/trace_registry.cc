#include "loadgen/trace_registry.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/random.hh"
#include "loadgen/trace_families.hh"

namespace hipster
{

namespace
{

/** Stream separation constant for per-stage seed derivation. */
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

/** Placeholder horizon when a caller passes no positive duration. */
constexpr Seconds kFallbackDuration = 600.0;

double
parseNumber(const std::string &text, const std::string &stage,
            const std::string &what)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end == text.c_str() || *end != '\0')
        fatal("trace ", stage, ": ", what, " '", text,
              "' is not a number");
    // strtod happily parses "nan"/"inf"; a non-finite argument would
    // poison at()'s finite-and-non-negative invariant downstream.
    if (!std::isfinite(value))
        fatal("trace ", stage, ": ", what, " '", text,
              "' must be finite");
    return value;
}

/** Comma-split an argument string ("" -> no args). */
std::vector<std::string>
splitArgs(const std::string &text)
{
    std::vector<std::string> args;
    if (text.empty())
        return args;
    std::size_t pos = 0;
    while (true) {
        const std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos) {
            args.push_back(text.substr(pos));
            return args;
        }
        args.push_back(text.substr(pos, comma - pos));
        pos = comma + 1;
    }
}

/** Numeric args with per-family defaults: args[i] overrides
 * defaults[i]; an empty arg slot keeps the default. `stage` names the
 * rejecting pipeline stage in errors ("family 'mmpp'",
 * "transform 'scale'") so composed specs point at the culprit. */
std::vector<double>
numericArgs(const std::vector<std::string> &args,
            const std::vector<double> &defaults,
            const std::string &stage)
{
    std::vector<double> values = defaults;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i].empty())
            continue;
        values[i] = parseNumber(args[i], stage,
                                "argument " + std::to_string(i + 1));
    }
    return values;
}

/** The family-name token starting at `pos` ([a-z0-9_-]*), or "" when
 * the text there cannot start a family head. */
std::string
headToken(const std::string &text, std::size_t pos)
{
    std::size_t end = pos;
    while (end < text.size() &&
           (std::islower(static_cast<unsigned char>(text[end])) ||
            std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '_' || text[end] == '-'))
        ++end;
    return text.substr(pos, end - pos);
}

/** Whether the family heading the segment at `start` takes its
 * argument text verbatim (replay paths). */
bool
segmentTakesRawArgs(const std::string &text, std::size_t start,
                    const TraceRegistry &registry)
{
    const std::string head = headToken(text, start);
    for (const TraceFamilyInfo &family : registry.families()) {
        if (family.name == head)
            return family.rawArgs;
    }
    return false;
}

/** Whether text[start, end) finishes with an '@<number>' length
 * suffix — the only unambiguous way to end a raw-path segment. */
bool
endsWithLengthSuffix(const std::string &text, std::size_t start,
                     std::size_t end)
{
    const std::size_t at = text.rfind('@', end == 0 ? 0 : end - 1);
    if (at == std::string::npos || at < start || at + 1 >= end)
        return false;
    const std::string suffix = text.substr(at + 1, end - at - 1);
    char *parse_end = nullptr;
    std::strtod(suffix.c_str(), &parse_end);
    return parse_end != suffix.c_str() && *parse_end == '\0';
}

/** Split `text` on `sep`, but only where the following text starts a
 * registered family (so separators inside arguments survive). A
 * segment whose family takes a raw path (replay) swallows separators
 * too — a file named `day+ramp.csv` stays one segment — unless an
 * explicit '@<seconds>' length has already terminated the path. */
std::vector<std::string>
splitOnFamilyBoundary(const std::string &text, char sep,
                      const TraceRegistry &registry)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != sep || i + 1 >= text.size())
            continue;
        const std::string head = headToken(text, i + 1);
        if (head.empty() || !registry.hasFamily(head))
            continue;
        if (segmentTakesRawArgs(text, start, registry) &&
            !endsWithLengthSuffix(text, start, i))
            continue;
        parts.push_back(text.substr(start, i - start));
        start = i + 1;
    }
    parts.push_back(text.substr(start));
    return parts;
}

struct Segment
{
    std::string pipeline;
    Seconds length = 0.0; ///< 0 = no explicit '@' length
};

/** Split a segment string into its pipeline and optional '@<len>'
 * suffix. Only a fully numeric suffix counts, so '@' inside replay
 * paths survives. */
Segment
parseSegment(const std::string &text, const std::string &spec)
{
    Segment segment;
    segment.pipeline = text;
    const std::size_t at = text.rfind('@');
    if (at == std::string::npos || at + 1 == text.size())
        return segment;
    const std::string suffix = text.substr(at + 1);
    char *end = nullptr;
    const double length = std::strtod(suffix.c_str(), &end);
    if (end == suffix.c_str() || *end != '\0')
        return segment; // not a length suffix; leave intact
    if (!(length > 0.0) || !std::isfinite(length))
        fatal("trace spec '", spec, "': segment length '", suffix,
              "' must be a positive finite number");
    segment.pipeline = text.substr(0, at);
    segment.length = length;
    return segment;
}

} // namespace

TraceRegistry &
TraceRegistry::instance()
{
    static TraceRegistry registry = [] {
        TraceRegistry r;
        r.registerBuiltins();
        return r;
    }();
    return registry;
}

void
TraceRegistry::registerFamily(TraceFamilyInfo info, Factory factory)
{
    if (hasFamily(info.name))
        fatal("TraceRegistry: family '", info.name,
              "' already registered");
    if (!factory)
        fatal("TraceRegistry: null factory for '", info.name, "'");
    families_.push_back(std::move(info));
    factories_.push_back(std::move(factory));
}

void
TraceRegistry::registerTransform(TraceTransformInfo info,
                                 Transform transform)
{
    if (hasTransform(info.name))
        fatal("TraceRegistry: transform '", info.name,
              "' already registered");
    if (!transform)
        fatal("TraceRegistry: null transform for '", info.name, "'");
    transforms_.push_back(std::move(info));
    transformFns_.push_back(std::move(transform));
}

bool
TraceRegistry::hasFamily(const std::string &name) const
{
    return std::any_of(families_.begin(), families_.end(),
                       [&](const TraceFamilyInfo &f) {
                           return f.name == name;
                       });
}

bool
TraceRegistry::hasTransform(const std::string &name) const
{
    return std::any_of(transforms_.begin(), transforms_.end(),
                       [&](const TraceTransformInfo &t) {
                           return t.name == name;
                       });
}

std::string
TraceRegistry::knownSpecsSummary() const
{
    std::string out = "registered trace specs:";
    for (const TraceFamilyInfo &f : families_)
        out += "\n  " + f.signature + " — " + f.summary;
    out += "\ntransforms (append with '|', e.g. diurnal|scale:0.8):";
    for (const TraceTransformInfo &t : transforms_)
        out += "\n  " + t.signature + " — " + t.summary;
    out += "\nsplice segments with '+' and '@<seconds>' lengths, "
           "e.g. constant:0.3@120+ramp";
    return out;
}

std::string
TraceRegistry::catalogText() const
{
    return knownSpecsSummary() + "\n";
}

std::shared_ptr<const LoadTrace>
TraceRegistry::makePipeline(const std::string &pipeline,
                            const std::string &spec, Seconds duration,
                            std::uint64_t seed) const
{
    if (pipeline.empty())
        fatal("trace spec '", spec, "': empty pipeline segment");

    // Stage 0 is the base family, later stages are transforms.
    std::vector<std::string> stages;
    std::size_t pos = 0;
    while (true) {
        const std::size_t bar = pipeline.find('|', pos);
        if (bar == std::string::npos) {
            stages.push_back(pipeline.substr(pos));
            break;
        }
        stages.push_back(pipeline.substr(pos, bar - pos));
        pos = bar + 1;
    }

    const auto splitStage =
        [&](const std::string &stage) -> std::pair<std::string, std::string> {
        const std::size_t colon = stage.find(':');
        if (colon == std::string::npos)
            return {stage, ""};
        return {stage.substr(0, colon), stage.substr(colon + 1)};
    };

    const auto [familyName, familyArgText] = splitStage(stages[0]);
    const auto family_it = std::find_if(
        families_.begin(), families_.end(),
        [&, name = familyName](const TraceFamilyInfo &f) {
            return f.name == name;
        });
    if (family_it == families_.end())
        fatal("unknown trace family '", familyName, "' in spec '", spec,
              "'; ", knownSpecsSummary());
    const TraceFamilyInfo &family = *family_it;

    std::vector<std::string> familyArgs;
    if (family.rawArgs) {
        if (!familyArgText.empty())
            familyArgs.push_back(familyArgText);
    } else {
        familyArgs = splitArgs(familyArgText);
    }
    if (familyArgs.size() < family.minArgs ||
        familyArgs.size() > family.maxArgs)
        fatal("trace spec '", spec, "': family '", familyName,
              "' takes ",
              family.minArgs == family.maxArgs
                  ? std::to_string(family.minArgs)
                  : std::to_string(family.minArgs) + ".." +
                        std::to_string(family.maxArgs),
              " argument(s), got ", familyArgs.size(), "; usage: ",
              family.signature);

    const Seconds span = duration > 0.0 ? duration : kFallbackDuration;
    const std::size_t familyIndex =
        static_cast<std::size_t>(family_it - families_.begin());
    auto trace = factories_[familyIndex](familyArgs, span, seed);

    for (std::size_t i = 1; i < stages.size(); ++i) {
        const auto [transformName, argText] = splitStage(stages[i]);
        const auto it = std::find_if(
            transforms_.begin(), transforms_.end(),
            [&, name = transformName](const TraceTransformInfo &t) {
                return t.name == name;
            });
        if (it == transforms_.end()) {
            if (hasFamily(transformName))
                fatal("trace spec '", spec, "': '", transformName,
                      "' is a base family and can only start a "
                      "pipeline; to concatenate traces use '+'");
            fatal("unknown trace transform '", transformName,
                  "' in spec '", spec, "'; ", knownSpecsSummary());
        }
        const TraceTransformInfo &info = *it;
        const auto args = splitArgs(argText);
        if (args.size() < info.minArgs || args.size() > info.maxArgs)
            fatal("trace spec '", spec, "': transform '", transformName,
                  "' takes ",
                  info.minArgs == info.maxArgs
                      ? std::to_string(info.minArgs)
                      : std::to_string(info.minArgs) + ".." +
                            std::to_string(info.maxArgs),
                  " argument(s), got ", args.size(), "; usage: ",
                  info.signature);
        // Each stochastic stage gets its own decorrelated stream so
        // stacked noise stages never reuse the base seed.
        const std::uint64_t stage_seed =
            splitMix64(seed + kGolden * static_cast<std::uint64_t>(i));
        const std::size_t idx =
            static_cast<std::size_t>(it - transforms_.begin());
        trace = transformFns_[idx](std::move(trace), args, stage_seed);
    }
    return trace;
}

std::shared_ptr<const LoadTrace>
TraceRegistry::make(const std::string &spec, Seconds duration,
                    std::uint64_t seed) const
{
    if (spec.empty())
        fatal("empty trace spec; ", knownSpecsSummary());

    const std::vector<std::string> parts =
        splitOnFamilyBoundary(spec, '+', *this);
    if (parts.size() == 1) {
        const Segment segment = parseSegment(parts[0], spec);
        const Seconds span =
            segment.length > 0.0 ? segment.length : duration;
        return makePipeline(segment.pipeline, spec, span, seed);
    }

    // Splice: every segment needs a length; the last may omit it and
    // takes the rest of the run.
    std::vector<Segment> segments;
    Seconds explicit_total = 0.0;
    for (const std::string &part : parts) {
        segments.push_back(parseSegment(part, spec));
        explicit_total += segments.back().length;
    }
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
        if (segments[i].length <= 0.0)
            fatal("trace spec '", spec, "': splice segment ", i + 1,
                  " needs an '@<seconds>' length (only the last "
                  "segment may omit it)");
    }

    const Seconds span = duration > 0.0 ? duration : kFallbackDuration;
    // Every segment must start inside the run: a splice whose tail
    // never plays would silently report first-segment results under
    // the full spec's label. (A lone segment's '@<len>' can exceed
    // the run — that deliberately views a longer trace's prefix.)
    Seconds segment_start = 0.0;
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
        segment_start += segments[i].length;
        if (segment_start >= span)
            fatal("trace spec '", spec, "': splice segment ", i + 2,
                  " would start at ", segment_start,
                  " s, beyond the ", span,
                  " s run — it would never play");
    }
    std::vector<SpliceTrace::Segment> built;
    for (std::size_t i = 0; i < segments.size(); ++i) {
        Seconds length = segments[i].length;
        if (length <= 0.0) {
            // Open-ended tail: takes the rest of the run (positive —
            // the reachability check above guarantees the last
            // segment starts inside the span).
            length = span - explicit_total;
        }
        // Per-segment seed streams keep spliced stochastic segments
        // independent of each other.
        const std::uint64_t segment_seed = splitMix64(
            seed + kGolden * static_cast<std::uint64_t>(i + 1));
        built.push_back(SpliceTrace::Segment{
            makePipeline(segments[i].pipeline, spec, length,
                         segment_seed),
            i + 1 == segments.size() && segments[i].length <= 0.0
                ? 0.0
                : length});
    }
    return std::make_shared<SpliceTrace>(std::move(built));
}

void
TraceRegistry::registerBuiltins()
{
    registerFamily(
        {"constant", "constant:<level>",
         "fixed offered load (fraction of max capacity)", "constant:0.5",
         false, 1, 1, false},
        [](const std::vector<std::string> &args, Seconds,
           std::uint64_t) -> std::shared_ptr<const LoadTrace> {
            const auto v = numericArgs(args, {0.0}, "family 'constant'");
            return std::make_shared<ConstantTrace>(v[0]);
        });

    registerFamily(
        {"ramp", "ramp[:from,to,t0,length]",
         "linear ramp (defaults: the Figure 8 50%->100% over 175 s)",
         "ramp", false, 0, 4, false},
        [](const std::vector<std::string> &args, Seconds,
           std::uint64_t) -> std::shared_ptr<const LoadTrace> {
            const auto v =
                numericArgs(args, {0.50, 1.00, 5.0, 175.0}, "family 'ramp'");
            return std::make_shared<RampTrace>(v[0], v[1], v[2], v[3]);
        });

    registerFamily(
        {"diurnal", "diurnal[:low,high]",
         "compressed Figure 1 day with mild per-second noise",
         "diurnal", true, 0, 2, false},
        [](const std::vector<std::string> &args, Seconds duration,
           std::uint64_t seed) -> std::shared_ptr<const LoadTrace> {
            const auto v = numericArgs(args, {0.05, 0.95}, "family 'diurnal'");
            return makeNoisyDiurnal(duration, seed, v[0], v[1]);
        });

    registerFamily(
        {"spike", "spike[:t0_frac,width_frac,height]",
         "diurnal day plus a decaying load spike (Section 2)", "spike",
         false, 0, 3, false},
        [](const std::vector<std::string> &args, Seconds duration,
           std::uint64_t) -> std::shared_ptr<const LoadTrace> {
            const auto v =
                numericArgs(args, {0.7, 0.05, 0.40}, "family 'spike'");
            auto day =
                std::make_shared<DiurnalTrace>(duration, 0.05, 0.80);
            return std::make_shared<SpikeTrace>(day, duration * v[0],
                                                duration * v[1], v[2]);
        });

    registerFamily(
        {"sine", "sine[:mean,amp,period,phase]",
         "sinusoidal load, clamped at 0 (defaults: 0.5±0.35, 4 "
         "cycles per run)",
         "sine:0.5,0.3,240", false, 0, 4, false},
        [](const std::vector<std::string> &args, Seconds duration,
           std::uint64_t) -> std::shared_ptr<const LoadTrace> {
            const auto v = numericArgs(
                args, {0.5, 0.35, duration / 4.0, 0.0}, "family 'sine'");
            return std::make_shared<SineTrace>(v[0], v[1], v[2], v[3]);
        });

    registerFamily(
        {"mmpp", "mmpp[:lo,hi,switch]",
         "two-state Markov-modulated load with exponential sojourns "
         "(bursty)",
         "mmpp:0.2,0.9,45", true, 0, 3, false},
        [](const std::vector<std::string> &args, Seconds duration,
           std::uint64_t seed) -> std::shared_ptr<const LoadTrace> {
            const auto v =
                numericArgs(args, {0.15, 0.85, 45.0}, "family 'mmpp'");
            return std::make_shared<MmppTrace>(v[0], v[1], v[2], seed,
                                               duration);
        });

    registerFamily(
        {"flashcrowd", "flashcrowd[:base,peak,t0,rise,hold,decay]",
         "steady load, sudden surge to a plateau, exponential "
         "aftermath",
         "flashcrowd:0.2,0.9,120,30,60", false, 0, 6, false},
        [](const std::vector<std::string> &args, Seconds duration,
           std::uint64_t) -> std::shared_ptr<const LoadTrace> {
            const auto v = numericArgs(args,
                                       {0.2, 0.95, duration * 0.3,
                                        duration * 0.05,
                                        duration * 0.15, 0.0},
                                       "family 'flashcrowd'");
            return std::make_shared<FlashCrowdTrace>(v[0], v[1], v[2],
                                                     v[3], v[4], v[5]);
        });

    registerFamily(
        {"replay", "replay:<csv-path>",
         "replay a recorded trace (CSV with time_s and load columns)",
         "", false, 1, 1, true},
        [](const std::vector<std::string> &args, Seconds,
           std::uint64_t) -> std::shared_ptr<const LoadTrace> {
            return ReplayTrace::fromCsv(args[0]);
        });

    registerTransform(
        {"scale", "scale:<factor>", "multiply the load by a constant",
         false, 1, 1},
        [](std::shared_ptr<const LoadTrace> inner,
           const std::vector<std::string> &args, std::uint64_t) {
            const auto v = numericArgs(args, {1.0}, "transform 'scale'");
            return std::static_pointer_cast<const LoadTrace>(
                std::make_shared<ScaleTrace>(std::move(inner), v[0]));
        });

    registerTransform(
        {"offset", "offset:<delta>",
         "add a constant (clamped at 0)", false, 1, 1},
        [](std::shared_ptr<const LoadTrace> inner,
           const std::vector<std::string> &args, std::uint64_t) {
            const auto v = numericArgs(args, {0.0}, "transform 'offset'");
            return std::static_pointer_cast<const LoadTrace>(
                std::make_shared<OffsetTrace>(std::move(inner), v[0]));
        });

    registerTransform(
        {"clip", "clip:<lo,hi>", "clamp the load into [lo, hi]", false,
         2, 2},
        [](std::shared_ptr<const LoadTrace> inner,
           const std::vector<std::string> &args, std::uint64_t) {
            const auto v = numericArgs(args, {0.0, 1.0}, "transform 'clip'");
            // Fail fast with the band spelled out: an inverted band
            // would otherwise clamp every sample to a constant (or
            // worse — std::clamp with hi < lo is undefined).
            if (v[0] > v[1])
                fatal("trace transform 'clip': lo ", v[0], " > hi ",
                      v[1], " — the band [lo, hi] must be ordered");
            return std::static_pointer_cast<const LoadTrace>(
                std::make_shared<ClipTrace>(std::move(inner), v[0],
                                            v[1]));
        });

    registerTransform(
        {"noise", "noise:<sigma[,interval,cap]>",
         "multiplicative per-interval Gaussian noise", true, 1, 3},
        [](std::shared_ptr<const LoadTrace> inner,
           const std::vector<std::string> &args, std::uint64_t seed) {
            const auto v = numericArgs(args, {0.05, 1.0, 1.2}, "transform 'noise'");
            if (v[2] < 0.0)
                fatal("trace transform 'noise': cap ", v[2],
                      " is negative — the load clamp is [0, cap]");
            return std::static_pointer_cast<const LoadTrace>(
                std::make_shared<NoisyTrace>(std::move(inner), v[0],
                                             v[1], seed, v[2]));
        });

    registerTransform(
        {"jitter", "jitter:<sigma[,interval,cap]>",
         "additive per-interval Gaussian jitter", true, 1, 3},
        [](std::shared_ptr<const LoadTrace> inner,
           const std::vector<std::string> &args, std::uint64_t seed) {
            const auto v =
                numericArgs(args, {0.05, 1.0, 1.2}, "transform 'jitter'");
            if (v[2] < 0.0)
                fatal("trace transform 'jitter': cap ", v[2],
                      " is negative — the load clamp is [0, cap]");
            return std::static_pointer_cast<const LoadTrace>(
                std::make_shared<JitterTrace>(std::move(inner), v[0],
                                              v[1], seed, v[2]));
        });

    registerTransform(
        {"repeat", "repeat:<period>",
         "loop the first <period> seconds forever", false, 1, 1},
        [](std::shared_ptr<const LoadTrace> inner,
           const std::vector<std::string> &args, std::uint64_t) {
            const auto v = numericArgs(args, {60.0}, "transform 'repeat'");
            return std::static_pointer_cast<const LoadTrace>(
                std::make_shared<RepeatTrace>(std::move(inner), v[0]));
        });
}

std::shared_ptr<const LoadTrace>
makeTrace(const std::string &spec, Seconds duration, std::uint64_t seed)
{
    return TraceRegistry::instance().make(spec, duration, seed);
}

void
validateTraceSpec(const std::string &spec, Seconds duration)
{
    // Construct and discard: cheap for every synthetic family and
    // deliberately I/O-checking for replay, so a missing file fails
    // before a campaign starts.
    makeTrace(spec, duration > 0.0 ? duration : kFallbackDuration,
              /*seed=*/0);
}

bool
isTraceSpec(const std::string &spec)
{
    try {
        validateTraceSpec(spec);
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

std::vector<std::string>
splitTraceList(const std::string &list)
{
    const TraceRegistry &registry = TraceRegistry::instance();
    std::vector<std::string> specs;
    std::size_t start = 0;
    // The start of the '+'-segment a position sits in, so the raw-
    // path comma rule below agrees with the splice splitter: a comma
    // after "replay:a.csv@10+diurnal" separates normally, while one
    // inside an unterminated replay path is swallowed.
    const auto activeSegmentStart = [&](std::size_t spec_start,
                                        std::size_t pos) {
        const auto parts = splitOnFamilyBoundary(
            list.substr(spec_start, pos - spec_start), '+', registry);
        return spec_start + (pos - spec_start) - parts.back().size();
    };
    for (std::size_t i = 0; i <= list.size(); ++i) {
        const bool hard_break = i == list.size() || list[i] == ';';
        bool family_comma = false;
        if (!hard_break && list[i] == ',' &&
            registry.hasFamily(headToken(list, i + 1))) {
            // Swallow the comma only inside a raw replay path that
            // no '@<seconds>' length has terminated yet (file names
            // may contain commas; ';' always separates).
            const std::size_t seg = activeSegmentStart(start, i);
            family_comma = !segmentTakesRawArgs(list, seg, registry) ||
                           endsWithLengthSuffix(list, seg, i);
        }
        if (!hard_break && !family_comma)
            continue;
        specs.push_back(list.substr(start, i - start));
        start = i + 1;
    }
    return specs;
}

} // namespace hipster
