/**
 * @file
 * Load traces: time-varying offered load as a fraction of an
 * application's maximum capacity. The diurnal synthesizer reproduces
 * the paper's Figure 1 pattern (a Google Web-Search day compressed so
 * one hour becomes one minute, varying between ~5% and ~95% of max
 * capacity); ramps and spikes reproduce the Figure 8 stimulus and
 * the "sudden load spikes" discussed in Section 2.
 */

#ifndef HIPSTER_LOADGEN_LOAD_TRACE_HH
#define HIPSTER_LOADGEN_LOAD_TRACE_HH

#include <memory>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "common/units.hh"

namespace hipster
{

/** A deterministic load curve over time. */
class LoadTrace
{
  public:
    virtual ~LoadTrace() = default;

    /** Offered load fraction at absolute time `t` (clamped to >=0). */
    virtual Fraction at(Seconds t) const = 0;

    /** Natural duration of the trace (0 = unbounded/periodic). */
    virtual Seconds duration() const { return 0.0; }
};

/** Constant load. */
class ConstantTrace : public LoadTrace
{
  public:
    explicit ConstantTrace(Fraction level);
    Fraction at(Seconds t) const override;

  private:
    Fraction level_;
};

/** Linear ramp from `from` to `to` over [t0, t0+length], constant
 * outside. Reproduces the Figure 8 stimulus (50% -> 100% over
 * 175 s). */
class RampTrace : public LoadTrace
{
  public:
    RampTrace(Fraction from, Fraction to, Seconds t0, Seconds length);
    Fraction at(Seconds t) const override;
    Seconds duration() const override { return t0_ + length_; }

  private:
    Fraction from_, to_;
    Seconds t0_, length_;
};

/** Piecewise-linear trace through (time, load) breakpoints. */
class PiecewiseTrace : public LoadTrace
{
  public:
    /** Breakpoints must be sorted by time and non-empty. */
    explicit PiecewiseTrace(
        std::vector<std::pair<Seconds, Fraction>> points);
    Fraction at(Seconds t) const override;
    Seconds duration() const override;

  private:
    std::vector<std::pair<Seconds, Fraction>> points_;
};

/**
 * Synthetic diurnal day: a smooth day/night oscillation with a
 * morning and an evening peak, compressed to `duration` seconds.
 * Matches the qualitative shape of the paper's Figure 1 (min ~5%,
 * max ~95%, two humps).
 */
class DiurnalTrace : public LoadTrace
{
  public:
    /**
     * @param duration     Length of the compressed "day".
     * @param low, high    Load range.
     * @param eveningBias  Relative height of the second hump [0,1].
     */
    DiurnalTrace(Seconds duration, Fraction low = 0.05,
                 Fraction high = 0.95, double evening_bias = 0.85);
    Fraction at(Seconds t) const override;
    Seconds duration() const override { return duration_; }

  private:
    Seconds duration_;
    Fraction low_, high_;
    double eveningBias_;
};

/**
 * Adds a transient spike of `height` extra load at `t0` decaying
 * over `width` seconds on top of an inner trace ("sudden load
 * spikes", Section 2).
 */
class SpikeTrace : public LoadTrace
{
  public:
    SpikeTrace(std::shared_ptr<const LoadTrace> inner, Seconds t0,
               Seconds width, Fraction height);
    Fraction at(Seconds t) const override;
    Seconds duration() const override;

  private:
    std::shared_ptr<const LoadTrace> inner_;
    Seconds t0_, width_;
    Fraction height_;
};

/**
 * Multiplicative per-interval noise on an inner trace: the load seen
 * in interval k is inner * N(1, sigma), clamped to [0, cap].
 * Deterministic for a given seed (noise is keyed on the interval
 * index).
 */
class NoisyTrace : public LoadTrace
{
  public:
    NoisyTrace(std::shared_ptr<const LoadTrace> inner, double sigma,
               Seconds interval, std::uint64_t seed, Fraction cap = 1.2);
    Fraction at(Seconds t) const override;
    Seconds duration() const override;

  private:
    std::shared_ptr<const LoadTrace> inner_;
    double sigma_;
    Seconds interval_;
    std::uint64_t seed_;
    Fraction cap_;
};

} // namespace hipster

#endif // HIPSTER_LOADGEN_LOAD_TRACE_HH
