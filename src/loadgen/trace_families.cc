#include "loadgen/trace_families.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>

#include "common/csv.hh"
#include "common/logging.hh"

namespace hipster
{

namespace
{

/** Hard ceiling on precomputed MMPP sojourns: generous for any real
 * horizon/switch combination, low enough to reject a degenerate
 * switch mean before the timeline allocation explodes. */
constexpr std::size_t kMaxMmppSegments = 1 << 20;

std::string
formatFullPrecision(double x)
{
    // 17 significant digits: enough for strtod() to reproduce the
    // exact double, so CSV dumps replay bit-for-bit.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", x);
    return buf;
}

} // namespace

MmppTrace::MmppTrace(Fraction lo, Fraction hi, Seconds switch_mean,
                     std::uint64_t seed, Seconds horizon)
    : lo_(lo), hi_(hi), horizon_(horizon)
{
    if (lo < 0.0 || hi < lo)
        fatal("MmppTrace: need 0 <= lo <= hi");
    if (switch_mean <= 0.0)
        fatal("MmppTrace: switch mean must be positive");
    if (horizon <= 0.0)
        fatal("MmppTrace: horizon must be positive");
    // Precompute the alternating state timeline over one horizon;
    // at() wraps beyond it so the trace is defined for all t.
    Rng rng(splitMix64(seed + 0x6d6d7070ULL)); // "mmpp"
    bool high = rng.bernoulli(0.5);
    Seconds t = 0.0;
    while (t < horizon_) {
        starts_.push_back(t);
        highState_.push_back(high);
        // Floor each sojourn so a tiny exponential draw cannot stall
        // the sweep; the floor is far below any control interval.
        const Seconds sojourn =
            std::max(rng.exponential(1.0 / switch_mean),
                     1e-4 * switch_mean);
        t += sojourn;
        high = !high;
        if (starts_.size() > kMaxMmppSegments)
            fatal("MmppTrace: switch mean ", switch_mean,
                  " too small for horizon ", horizon_);
    }
}

Fraction
MmppTrace::at(Seconds t) const
{
    double wrapped = std::fmod(std::max(0.0, t), horizon_);
    auto hi = std::upper_bound(starts_.begin(), starts_.end(), wrapped);
    const std::size_t idx =
        static_cast<std::size_t>(hi - starts_.begin()) - 1;
    return highState_[idx] ? hi_ : lo_;
}

FlashCrowdTrace::FlashCrowdTrace(Fraction base, Fraction peak,
                                 Seconds t0, Seconds rise, Seconds hold,
                                 Seconds decay)
    : base_(base), peak_(peak), t0_(t0), rise_(rise), hold_(hold),
      decay_(decay > 0.0 ? decay : rise)
{
    if (base < 0.0 || peak < base)
        fatal("FlashCrowdTrace: need 0 <= base <= peak");
    if (rise <= 0.0)
        fatal("FlashCrowdTrace: rise must be positive");
    if (hold < 0.0)
        fatal("FlashCrowdTrace: negative hold");
    if (t0 < 0.0)
        fatal("FlashCrowdTrace: negative t0");
}

Fraction
FlashCrowdTrace::at(Seconds t) const
{
    if (t <= t0_)
        return base_;
    if (t < t0_ + rise_)
        return base_ + (peak_ - base_) * (t - t0_) / rise_;
    const Seconds plateau_end = t0_ + rise_ + hold_;
    if (t <= plateau_end)
        return peak_;
    return base_ +
           (peak_ - base_) * std::exp(-(t - plateau_end) / decay_);
}

Seconds
FlashCrowdTrace::duration() const
{
    // Through the plateau plus a few decay constants: where the
    // aftermath has essentially settled back to the base load.
    return t0_ + rise_ + hold_ + 5.0 * decay_;
}

SineTrace::SineTrace(Fraction mean, Fraction amp, Seconds period,
                     double phase)
    : mean_(mean), amp_(amp), period_(period), phase_(phase)
{
    if (mean < 0.0)
        fatal("SineTrace: negative mean");
    if (amp < 0.0)
        fatal("SineTrace: negative amplitude");
    if (period <= 0.0)
        fatal("SineTrace: period must be positive");
}

Fraction
SineTrace::at(Seconds t) const
{
    const double value =
        mean_ + amp_ * std::sin(2.0 * M_PI * t / period_ + phase_);
    return std::max(0.0, value);
}

ReplayTrace::ReplayTrace(
    std::vector<std::pair<Seconds, Fraction>> samples)
    : sampleCount_(samples.size()), curve_(std::move(samples))
{
}

namespace
{

/** Parsed-file cache for replay traces: a sweep builds the trace
 * once per run, and re-parsing a long recorded CSV for every job
 * (and again for fail-fast validation) is pure waste — the parsed
 * trace is immutable and seed-invariant. Entries are invalidated
 * when the file's size or mtime changes; files whose mtime is within
 * the last ~2 s are never cached at all, so a rewrite inside one
 * mtime tick (coarse-granularity filesystems) cannot serve stale
 * samples, and a rewrite racing the parse is caught by re-statting
 * before insertion. */
struct ReplayCacheEntry
{
    std::uintmax_t size = 0;
    std::filesystem::file_time_type mtime;
    std::shared_ptr<const ReplayTrace> trace;
};

std::mutex replayCacheMutex;
std::map<std::string, ReplayCacheEntry> replayCache;

struct ReplayFileStamp
{
    bool ok = false;
    std::uintmax_t size = 0;
    std::filesystem::file_time_type mtime;

    bool
    operator==(const ReplayFileStamp &other) const
    {
        return ok && other.ok && size == other.size &&
               mtime == other.mtime;
    }
};

ReplayFileStamp
statReplayFile(const std::string &path)
{
    ReplayFileStamp stamp;
    std::error_code size_ec, mtime_ec;
    stamp.size = std::filesystem::file_size(path, size_ec);
    stamp.mtime = std::filesystem::last_write_time(path, mtime_ec);
    stamp.ok = !size_ec && !mtime_ec;
    return stamp;
}

bool
settledLongEnoughToCache(const ReplayFileStamp &stamp)
{
    using clock = std::filesystem::file_time_type::clock;
    return stamp.ok &&
           clock::now() - stamp.mtime > std::chrono::seconds(2);
}

} // namespace

std::shared_ptr<const ReplayTrace>
ReplayTrace::fromCsv(const std::string &path)
{
    const ReplayFileStamp before = statReplayFile(path);
    if (settledLongEnoughToCache(before)) {
        std::lock_guard<std::mutex> lock(replayCacheMutex);
        const auto it = replayCache.find(path);
        if (it != replayCache.end() &&
            it->second.size == before.size &&
            it->second.mtime == before.mtime)
            return it->second.trace;
    }

    CsvReader reader(path);
    const std::size_t time_col = reader.columnIndex("time_s");
    const std::size_t load_col = reader.columnIndex("load");
    if (reader.rows() == 0)
        fatal("ReplayTrace: '", path, "' has no data rows");
    std::vector<std::pair<Seconds, Fraction>> samples;
    samples.reserve(reader.rows());
    for (std::size_t r = 0; r < reader.rows(); ++r) {
        const Seconds t = reader.number(r, time_col);
        const Fraction load = reader.number(r, load_col);
        if (!std::isfinite(t) || !std::isfinite(load))
            fatal("ReplayTrace: non-finite sample in '", path,
                  "' row ", r + 1);
        if (!samples.empty() && t <= samples.back().first)
            fatal("ReplayTrace: time_s must be strictly increasing in '",
                  path, "' (row ", r + 1, ")");
        if (load < 0.0)
            fatal("ReplayTrace: negative load in '", path, "' row ",
                  r + 1);
        samples.emplace_back(t, load);
    }
    auto trace = std::make_shared<ReplayTrace>(std::move(samples));
    // Cache only when the file was stable across the parse and has
    // not been touched recently (see the cache comment above).
    const ReplayFileStamp after = statReplayFile(path);
    if (after == before && settledLongEnoughToCache(after)) {
        std::lock_guard<std::mutex> lock(replayCacheMutex);
        replayCache[path] =
            ReplayCacheEntry{after.size, after.mtime, trace};
    }
    return trace;
}

Fraction
ReplayTrace::at(Seconds t) const
{
    return curve_.at(t);
}

void
writeTraceCsv(const std::string &path, const LoadTrace &trace,
              Seconds step, Seconds length)
{
    if (step <= 0.0)
        fatal("writeTraceCsv: step must be positive");
    if (length <= 0.0)
        fatal("writeTraceCsv: length must be positive");
    CsvWriter csv(path);
    csv.header({"time_s", "load"});
    // Integer step count: accumulating `t += step` drifts for long
    // traces or small steps and would drop the final sample.
    const auto samples =
        static_cast<std::size_t>(length / step + 1e-9) + 1;
    for (std::size_t i = 0; i < samples; ++i) {
        const Seconds t = static_cast<double>(i) * step;
        csv.add(formatFullPrecision(t))
            .add(formatFullPrecision(trace.at(t)))
            .endRow();
    }
}

ScaleTrace::ScaleTrace(std::shared_ptr<const LoadTrace> inner,
                       double factor)
    : inner_(std::move(inner)), factor_(factor)
{
    if (!inner_)
        fatal("ScaleTrace: inner trace is null");
    if (factor < 0.0)
        fatal("ScaleTrace: negative factor");
}

Fraction
ScaleTrace::at(Seconds t) const
{
    return inner_->at(t) * factor_;
}

OffsetTrace::OffsetTrace(std::shared_ptr<const LoadTrace> inner,
                         double delta)
    : inner_(std::move(inner)), delta_(delta)
{
    if (!inner_)
        fatal("OffsetTrace: inner trace is null");
}

Fraction
OffsetTrace::at(Seconds t) const
{
    return std::max(0.0, inner_->at(t) + delta_);
}

ClipTrace::ClipTrace(std::shared_ptr<const LoadTrace> inner, Fraction lo,
                     Fraction hi)
    : inner_(std::move(inner)), lo_(lo), hi_(hi)
{
    if (!inner_)
        fatal("ClipTrace: inner trace is null");
    // NaN bounds pass ordered comparisons, so check finiteness first
    // (std::clamp with an unordered band is undefined behaviour).
    if (!std::isfinite(lo) || !std::isfinite(hi))
        fatal("ClipTrace: bounds must be finite");
    if (lo < 0.0 || hi < lo)
        fatal("ClipTrace: need 0 <= lo <= hi");
}

Fraction
ClipTrace::at(Seconds t) const
{
    return std::clamp(inner_->at(t), lo_, hi_);
}

JitterTrace::JitterTrace(std::shared_ptr<const LoadTrace> inner,
                         double sigma, Seconds interval,
                         std::uint64_t seed, Fraction cap)
    : inner_(std::move(inner)), sigma_(sigma), interval_(interval),
      seed_(seed), cap_(cap)
{
    if (!inner_)
        fatal("JitterTrace: inner trace is null");
    if (sigma < 0.0)
        fatal("JitterTrace: negative sigma");
    if (interval <= 0.0)
        fatal("JitterTrace: interval must be positive");
    // A negative (or NaN) cap would invert at()'s [0, cap] clamp —
    // undefined behaviour that can return a negative load.
    if (!(cap >= 0.0) || !std::isfinite(cap))
        fatal("JitterTrace: cap must be finite and >= 0");
}

Fraction
JitterTrace::at(Seconds t) const
{
    const Fraction base = inner_->at(t);
    if (sigma_ == 0.0)
        return std::clamp(base, 0.0, cap_);
    // Keyed on the interval index (same scheme as NoisyTrace) so the
    // trace is a pure function of time for a fixed seed.
    const auto bucket = static_cast<std::uint64_t>(
        std::floor(std::max(0.0, t) / interval_));
    Rng rng(seed_ ^ (bucket * 0x9e3779b97f4a7c15ULL + 0x7654321ULL));
    return std::clamp(base + rng.normal(0.0, sigma_), 0.0, cap_);
}

RepeatTrace::RepeatTrace(std::shared_ptr<const LoadTrace> inner,
                         Seconds period)
    : inner_(std::move(inner)), period_(period)
{
    if (!inner_)
        fatal("RepeatTrace: inner trace is null");
    if (period <= 0.0)
        fatal("RepeatTrace: period must be positive");
}

Fraction
RepeatTrace::at(Seconds t) const
{
    double wrapped = std::fmod(t, period_);
    if (wrapped < 0.0)
        wrapped += period_;
    return inner_->at(wrapped);
}

SpliceTrace::SpliceTrace(std::vector<Segment> segments)
    : segments_(std::move(segments))
{
    if (segments_.empty())
        fatal("SpliceTrace: needs at least one segment");
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        if (!segments_[i].trace)
            fatal("SpliceTrace: segment ", i, " trace is null");
        if (segments_[i].length < 0.0)
            fatal("SpliceTrace: segment ", i, " has negative length");
        if (segments_[i].length == 0.0 && i + 1 != segments_.size())
            fatal("SpliceTrace: only the last segment may be "
                  "open-ended");
    }
}

Fraction
SpliceTrace::at(Seconds t) const
{
    Seconds local = std::max(0.0, t);
    for (std::size_t i = 0; i + 1 < segments_.size(); ++i) {
        if (local < segments_[i].length)
            return segments_[i].trace->at(local);
        local -= segments_[i].length;
    }
    return segments_.back().trace->at(local);
}

Seconds
SpliceTrace::duration() const
{
    Seconds total = 0.0;
    for (const Segment &seg : segments_)
        total += seg.length > 0.0 ? seg.length
                                  : seg.trace->duration();
    return total;
}

std::shared_ptr<const LoadTrace>
makeNoisyDiurnal(Seconds duration, std::uint64_t seed, Fraction low,
                 Fraction high)
{
    auto day = std::make_shared<DiurnalTrace>(duration, low, high);
    return std::make_shared<NoisyTrace>(day, /*sigma=*/0.04,
                                        /*interval=*/1.0, seed,
                                        /*cap=*/1.05);
}

} // namespace hipster
