#include "loadgen/load_trace.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace hipster
{

ConstantTrace::ConstantTrace(Fraction level)
    : level_(level)
{
    if (level < 0.0)
        fatal("ConstantTrace: negative load level");
}

Fraction
ConstantTrace::at(Seconds) const
{
    return level_;
}

RampTrace::RampTrace(Fraction from, Fraction to, Seconds t0,
                     Seconds length)
    : from_(from), to_(to), t0_(t0), length_(length)
{
    if (from < 0.0 || to < 0.0)
        fatal("RampTrace: negative load level");
    if (length <= 0.0)
        fatal("RampTrace: ramp length must be positive");
}

Fraction
RampTrace::at(Seconds t) const
{
    if (t <= t0_)
        return from_;
    if (t >= t0_ + length_)
        return to_;
    const double frac = (t - t0_) / length_;
    return from_ + (to_ - from_) * frac;
}

PiecewiseTrace::PiecewiseTrace(
    std::vector<std::pair<Seconds, Fraction>> points)
    : points_(std::move(points))
{
    if (points_.empty())
        fatal("PiecewiseTrace: needs at least one breakpoint");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].first <= points_[i - 1].first)
            fatal("PiecewiseTrace: breakpoints must be strictly "
                  "increasing in time");
    }
    for (const auto &[t, load] : points_) {
        if (load < 0.0)
            fatal("PiecewiseTrace: negative load at t=", t);
    }
}

Fraction
PiecewiseTrace::at(Seconds t) const
{
    if (t <= points_.front().first)
        return points_.front().second;
    if (t >= points_.back().first)
        return points_.back().second;
    // Find the segment containing t.
    auto hi = std::upper_bound(
        points_.begin(), points_.end(), t,
        [](Seconds value, const auto &p) { return value < p.first; });
    auto lo = hi - 1;
    const double frac = (t - lo->first) / (hi->first - lo->first);
    return lo->second + (hi->second - lo->second) * frac;
}

Seconds
PiecewiseTrace::duration() const
{
    return points_.back().first;
}

DiurnalTrace::DiurnalTrace(Seconds duration, Fraction low, Fraction high,
                           double evening_bias)
    : duration_(duration), low_(low), high_(high),
      eveningBias_(evening_bias)
{
    if (duration <= 0.0)
        fatal("DiurnalTrace: duration must be positive");
    if (low < 0.0 || high < low)
        fatal("DiurnalTrace: need 0 <= low <= high");
    if (evening_bias < 0.0 || evening_bias > 1.0)
        fatal("DiurnalTrace: eveningBias must lie in [0, 1]");
}

Fraction
DiurnalTrace::at(Seconds t) const
{
    // Wrap into one "day".
    double phase = std::fmod(t, duration_) / duration_; // [0, 1)
    if (phase < 0.0)
        phase += 1.0;
    // Two Gaussian humps (morning ~0.35, evening ~0.75 of the day)
    // on top of a gentle day/night cosine. The hump-dominated mix
    // keeps most of the day in the valleys with two pronounced
    // peaks, matching the Figure 1 profile (load sits at 5-40% of
    // capacity for the majority of the day). Normalized to [0, 1],
    // then mapped to [low, high].
    const auto hump = [](double x, double center, double width) {
        const double d = (x - center) / width;
        return std::exp(-0.5 * d * d);
    };
    const double base = 0.5 - 0.5 * std::cos(2.0 * M_PI * phase);
    const double morning = hump(phase, 0.35, 0.08);
    const double evening = eveningBias_ * hump(phase, 0.75, 0.10);
    double shape = 0.30 * base + 0.70 * std::max(morning, evening);
    shape = std::clamp(shape, 0.0, 1.0);
    return low_ + (high_ - low_) * shape;
}

SpikeTrace::SpikeTrace(std::shared_ptr<const LoadTrace> inner, Seconds t0,
                       Seconds width, Fraction height)
    : inner_(std::move(inner)), t0_(t0), width_(width), height_(height)
{
    if (!inner_)
        fatal("SpikeTrace: inner trace is null");
    if (width <= 0.0)
        fatal("SpikeTrace: width must be positive");
    if (height < 0.0)
        fatal("SpikeTrace: negative spike height");
}

Fraction
SpikeTrace::at(Seconds t) const
{
    Fraction load = inner_->at(t);
    if (t >= t0_) {
        const double decay = std::exp(-(t - t0_) / width_);
        load += height_ * decay;
    }
    return load;
}

Seconds
SpikeTrace::duration() const
{
    return inner_->duration();
}

NoisyTrace::NoisyTrace(std::shared_ptr<const LoadTrace> inner,
                       double sigma, Seconds interval, std::uint64_t seed,
                       Fraction cap)
    : inner_(std::move(inner)), sigma_(sigma), interval_(interval),
      seed_(seed), cap_(cap)
{
    if (!inner_)
        fatal("NoisyTrace: inner trace is null");
    if (sigma < 0.0)
        fatal("NoisyTrace: negative sigma");
    if (interval <= 0.0)
        fatal("NoisyTrace: interval must be positive");
    // A negative (or NaN) cap would invert at()'s [0, cap] clamp —
    // undefined behaviour that can return a negative load.
    if (!(cap >= 0.0) || !std::isfinite(cap))
        fatal("NoisyTrace: cap must be finite and >= 0");
}

Fraction
NoisyTrace::at(Seconds t) const
{
    const Fraction base = inner_->at(t);
    if (sigma_ == 0.0)
        return base;
    // Key the noise on the interval index so the trace is a pure
    // function of time for a fixed seed.
    const auto bucket =
        static_cast<std::uint64_t>(std::floor(std::max(0.0, t) /
                                              interval_));
    Rng rng(seed_ ^ (bucket * 0x9e3779b97f4a7c15ULL + 0x1234567ULL));
    const double factor = rng.normal(1.0, sigma_);
    return std::clamp(base * factor, 0.0, cap_);
}

Seconds
NoisyTrace::duration() const
{
    return inner_->duration();
}

} // namespace hipster
