/**
 * @file
 * Trace-synthesis registry: every load-trace family the CLIs, sweep
 * engine and bench binaries can name, plus a small composable spec
 * grammar for building perturbed or concatenated traces from a
 * string:
 *
 *   spec      := segment ('+' segment)*          (splice in time)
 *   segment   := pipeline ['@' <seconds>]        (segment length)
 *   pipeline  := family ('|' transform)*         (wrap combinators)
 *   family    := name [':' arg (',' arg)*]       (e.g. mmpp:0.2,0.9,45)
 *   transform := name ':' arg (',' arg)*         (e.g. scale:0.8)
 *
 * Examples:
 *   mmpp:0.2,0.9,45
 *   flashcrowd:0.2,0.95,120,30,60
 *   sine:0.5,0.3,240|noise:0.05
 *   diurnal|clip:0.1,0.8
 *   constant:0.3@120+ramp@200+constant:0.9
 *   replay:traces/day1.csv
 *
 * The registry is the single source of truth consulted by
 * experiments/scenario's makeTraceByName, the sweep engine's
 * fail-fast validation, both CLIs and the bench binaries, so a newly
 * registered family is immediately sweepable everywhere.
 */

#ifndef HIPSTER_LOADGEN_TRACE_REGISTRY_HH
#define HIPSTER_LOADGEN_TRACE_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "loadgen/load_trace.hh"

namespace hipster
{

/** Catalog entry describing one registered base trace family. */
struct TraceFamilyInfo
{
    std::string name;      ///< grammar head, e.g. "mmpp"
    std::string signature; ///< e.g. "mmpp[:lo,hi,switch]"
    std::string summary;   ///< one-line description for --list-traces
    std::string example;   ///< canonical example spec ("" = needs a file)
    bool stochastic = false; ///< uses the seed (varies across seeds)
    std::size_t minArgs = 0;
    std::size_t maxArgs = 0;
    bool rawArgs = false; ///< pass the arg string verbatim (paths)
};

/** Catalog entry describing one registered transform combinator. */
struct TraceTransformInfo
{
    std::string name;
    std::string signature;
    std::string summary;
    bool stochastic = false;
    std::size_t minArgs = 0;
    std::size_t maxArgs = 0;
};

/**
 * Name-keyed factory for load traces. A singleton holds the built-in
 * families; custom families can be registered at startup and become
 * available to every consumer (CLIs, sweeps, benches) at once.
 */
class TraceRegistry
{
  public:
    /** Builds a base trace from its (already split) argument list.
     * `duration` is the run length the trace should span; `seed`
     * feeds the stochastic families. */
    using Factory = std::function<std::shared_ptr<const LoadTrace>(
        const std::vector<std::string> &args, Seconds duration,
        std::uint64_t seed)>;

    /** Wraps an inner trace with a transform combinator. */
    using Transform = std::function<std::shared_ptr<const LoadTrace>(
        std::shared_ptr<const LoadTrace> inner,
        const std::vector<std::string> &args, std::uint64_t seed)>;

    /** The process-wide registry with the built-ins installed. */
    static TraceRegistry &instance();

    /** Register a family; FatalError on duplicate names. */
    void registerFamily(TraceFamilyInfo info, Factory factory);

    /** Register a transform; FatalError on duplicate names. */
    void registerTransform(TraceTransformInfo info, Transform transform);

    bool hasFamily(const std::string &name) const;
    bool hasTransform(const std::string &name) const;

    /** All registered families, in registration order. */
    const std::vector<TraceFamilyInfo> &families() const
    {
        return families_;
    }

    /** All registered transforms, in registration order. */
    const std::vector<TraceTransformInfo> &transforms() const
    {
        return transforms_;
    }

    /**
     * Build a trace from a full spec string (see the grammar above).
     * Stochastic stages derive their noise from `seed`; a fixed
     * (spec, duration, seed) triple always builds a bit-identical
     * trace. Throws FatalError on malformed specs, enumerating the
     * registered families when the head is unknown.
     */
    std::shared_ptr<const LoadTrace> make(const std::string &spec,
                                          Seconds duration,
                                          std::uint64_t seed) const;

    /** Human-readable catalog of every family and transform. */
    std::string catalogText() const;

    /** One-line enumeration used in unknown-name errors. */
    std::string knownSpecsSummary() const;

  private:
    TraceRegistry() = default;
    void registerBuiltins();

    std::shared_ptr<const LoadTrace>
    makePipeline(const std::string &pipeline, const std::string &spec,
                 Seconds duration, std::uint64_t seed) const;

    std::vector<TraceFamilyInfo> families_;
    std::vector<Factory> factories_;
    std::vector<TraceTransformInfo> transforms_;
    std::vector<Transform> transformFns_;
};

/** Build a trace from a spec via the global registry. */
std::shared_ptr<const LoadTrace> makeTrace(const std::string &spec,
                                           Seconds duration,
                                           std::uint64_t seed);

/**
 * Fail-fast spec validation: parses the spec and constructs the
 * trace, throwing the same FatalError `makeTrace` would (including
 * missing/malformed replay files), so campaigns reject bad cells
 * before any runs start. Pass the actual run `duration` when known —
 * splice lengths are checked against it (a spec whose segments
 * exceed the run would otherwise only fail once jobs launch);
 * `duration <= 0` falls back to a placeholder.
 */
void validateTraceSpec(const std::string &spec, Seconds duration = 0.0);

/** Non-throwing validateTraceSpec(). */
bool isTraceSpec(const std::string &spec);

/**
 * Splits a CLI trace list into specs. `;` always separates; a `,`
 * separates only when the text after it starts a new registered
 * family (so `mmpp:0.2,0.9,45,ramp` yields the mmpp spec and
 * `ramp`, keeping in-spec argument commas intact).
 */
std::vector<std::string> splitTraceList(const std::string &list);

} // namespace hipster

#endif // HIPSTER_LOADGEN_TRACE_REGISTRY_HH
