/**
 * @file
 * The reinforcement-learning lookup table R(w, c) of Section 3.1:
 * rows are quantized load buckets (MDP states), columns are
 * configurations (actions). The paper implements it as a hash table
 * with O(1) access; ours is a dense row-major array, which is the
 * same complexity with better locality — the decision-latency bench
 * (bench/micro_overhead) verifies the paper's <2 ms overhead claim
 * holds with orders of magnitude to spare.
 */

#ifndef HIPSTER_CORE_QTABLE_HH
#define HIPSTER_CORE_QTABLE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hipster
{

/** Dense R(w, c) table with the Algorithm 1 (line 16) update rule. */
class QTable
{
  public:
    /**
     * @param buckets Number of load buckets (states).
     * @param actions Number of configurations (actions).
     */
    QTable(int buckets, std::size_t actions);

    int buckets() const { return buckets_; }
    std::size_t actions() const { return actions_; }

    /** Estimated total discounted reward of (w, c). */
    double value(int w, std::size_t c) const;

    /** Number of updates applied to (w, c). */
    std::uint64_t visits(int w, std::size_t c) const;

    /** Greedy action for state w (first index on ties). */
    std::size_t bestAction(int w) const;

    /** max_d R(w, d). */
    double maxValue(int w) const;

    /**
     * Q-learning update (Algorithm 1, line 16):
     *   R(w,c) += alpha * (reward + gamma * max_d R(w',d) - R(w,c))
     */
    void update(int w, std::size_t c, double reward, int w_next,
                double alpha, double gamma);

    /** Whether state w has ever been updated. */
    bool visited(int w) const;

    /** Zero the table (fresh learning). */
    void clear();

    /** Total updates applied. */
    std::uint64_t totalUpdates() const { return totalUpdates_; }

  private:
    std::size_t index(int w, std::size_t c) const;

    int buckets_;
    std::size_t actions_;
    std::vector<double> values_;
    std::vector<std::uint64_t> visits_;
    std::uint64_t totalUpdates_ = 0;
};

} // namespace hipster

#endif // HIPSTER_CORE_QTABLE_HH
