/**
 * @file
 * Baseline task managers the paper evaluates against:
 *
 *  - StaticPolicy: a fixed configuration (all big cores at max DVFS,
 *    or all small cores);
 *  - OctopusManPolicy: the HPCA'15 state machine that maps the LC
 *    workload to exclusively big or exclusively small cores at the
 *    highest DVFS, climbing/descending on latency feedback;
 *  - HeuristicOnlyPolicy: Hipster's learning-phase heuristic used as
 *    a standalone manager (Figure 5 right-hand column).
 */

#ifndef HIPSTER_CORE_BASELINES_HH
#define HIPSTER_CORE_BASELINES_HH

#include <vector>

#include "core/heuristic_mapper.hh"
#include "core/policy.hh"
#include "platform/config_space.hh"
#include "platform/platform.hh"

namespace hipster
{

/** Fixed-configuration manager (Table 3's "Static" rows). */
class StaticPolicy : public TaskPolicy
{
  public:
    /**
     * @param config   The pinned configuration.
     * @param variant  Collocated runs batch on the spare cores at
     *                 the highest DVFS (Figure 11's static mapping).
     * @param platform Used only to resolve cluster max frequencies.
     */
    StaticPolicy(const Platform &platform, CoreConfig config,
                 PolicyVariant variant = PolicyVariant::Interactive,
                 std::string name = "");

    /** All big cores at the highest DVFS. */
    static StaticPolicy allBig(const Platform &platform,
                               PolicyVariant variant =
                                   PolicyVariant::Interactive);

    /** All small cores at the highest DVFS. */
    static StaticPolicy allSmall(const Platform &platform,
                                 PolicyVariant variant =
                                     PolicyVariant::Interactive);

    std::string name() const override { return name_; }
    Decision initialDecision() override;
    Decision decide(const IntervalMetrics &last) override;
    void reset() override {}

  private:
    Decision makeDecision() const;

    CoreConfig config_;
    PolicyVariant variant_;
    std::string name_;
    GHz bigMax_ = 0.0;
    GHz smallMax_ = 0.0;
};

/** Tunables for Octopus-Man (deployed with a threshold sweep). */
struct OctopusManParams
{
    ZoneParams zones{0.80, 0.30};
    PolicyVariant variant = PolicyVariant::Interactive;
};

/**
 * Octopus-Man (Petrucci et al., HPCA'15), the paper's prior-work
 * baseline: big-xor-small core mappings at the highest DVFS, driven
 * by the same danger/safe-zone feedback loop. Never mixes core
 * types and never scales frequency.
 */
class OctopusManPolicy : public TaskPolicy
{
  public:
    OctopusManPolicy(const Platform &platform, OctopusManParams params);

    std::string name() const override { return "Octopus-Man"; }
    Decision initialDecision() override;
    Decision decide(const IntervalMetrics &last) override;
    void reset() override;

    const HeuristicMapper &mapper() const { return mapper_; }

    /** The resolved tunables this instance runs with. */
    const OctopusManParams &params() const { return params_; }

  private:
    Decision decorate(CoreConfig config) const;

    OctopusManParams params_;
    HeuristicMapper mapper_;
    GHz bigMax_ = 0.0;
    GHz smallMax_ = 0.0;
};

/**
 * Hipster's heuristic mapper as a standalone policy (the paper
 * evaluates it separately in Figure 5 and Table 3 as "Hipster's
 * Heuristic"): full mixed-core + DVFS ladder, no learning.
 */
class HeuristicOnlyPolicy : public TaskPolicy
{
  public:
    /**
     * @param ladder Capability-ordered states (defaults to the
     *               paper's 13 Figure-2c states when empty).
     */
    HeuristicOnlyPolicy(const Platform &platform, ZoneParams zones,
                        PolicyVariant variant =
                            PolicyVariant::Interactive,
                        std::vector<CoreConfig> ladder = {});

    std::string name() const override { return "Hipster-Heuristic"; }
    Decision initialDecision() override;
    Decision decide(const IntervalMetrics &last) override;
    void reset() override;

    const HeuristicMapper &mapper() const { return mapper_; }

  private:
    Decision decorate(CoreConfig config) const;

    PolicyVariant variant_;
    HeuristicMapper mapper_;
    GHz bigMax_ = 0.0, bigMin_ = 0.0;
    GHz smallMax_ = 0.0, smallMin_ = 0.0;
};

} // namespace hipster

#endif // HIPSTER_CORE_BASELINES_HH
