#include "core/heuristic_mapper.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace hipster
{

HeuristicMapper::HeuristicMapper(std::vector<CoreConfig> ladder,
                                 ZoneParams zones, bool start_at_top)
    : ladder_(std::move(ladder)), zones_(zones)
{
    if (ladder_.empty())
        fatal("HeuristicMapper: ladder cannot be empty");
    if (zones_.danger <= 0.0 || zones_.danger >= 1.0)
        fatal("HeuristicMapper: QoS_D must lie in (0, 1)");
    if (zones_.safe < 0.0 || zones_.safe >= zones_.danger)
        fatal("HeuristicMapper: QoS_S must lie in [0, QoS_D)");
    start_ = start_at_top ? ladder_.size() - 1 : 0;
    index_ = start_;
}

const CoreConfig &
HeuristicMapper::step(Millis qos_curr, Millis qos_target)
{
    HIPSTER_ASSERT(qos_target > 0.0, "QoS target must be positive");
    lastMove_ = 0;
    if (qos_curr > qos_target * zones_.danger) {
        // Danger zone (or outright violation): climb.
        if (index_ + 1 < ladder_.size()) {
            ++index_;
            lastMove_ = 1;
        }
    } else if (qos_curr < qos_target * zones_.safe) {
        // Safe zone: descend to save power.
        if (index_ > 0) {
            --index_;
            lastMove_ = -1;
        }
    }
    return ladder_[index_];
}

void
HeuristicMapper::moveTo(std::size_t index)
{
    HIPSTER_ASSERT(index < ladder_.size(), "ladder index out of range");
    index_ = index;
    lastMove_ = 0;
}

void
HeuristicMapper::moveToNearest(const CoreConfig &config)
{
    // Prefer an exact match; otherwise the state with the closest
    // total core count and big-core count.
    long best_score = -1;
    std::size_t best = index_;
    for (std::size_t i = 0; i < ladder_.size(); ++i) {
        const CoreConfig &c = ladder_[i];
        if (c == config) {
            best = i;
            break;
        }
        const long score =
            -(std::labs(static_cast<long>(c.nBig) -
                        static_cast<long>(config.nBig)) *
                  4 +
              std::labs(static_cast<long>(c.nSmall) -
                        static_cast<long>(config.nSmall)));
        if (best_score == -1 || score > best_score) {
            best_score = score;
            best = i;
        }
    }
    index_ = best;
    lastMove_ = 0;
}

void
HeuristicMapper::reset()
{
    index_ = start_;
    lastMove_ = 0;
}

} // namespace hipster
