#include "core/baselines.hh"

#include "common/logging.hh"

namespace hipster
{

namespace
{

GHz
clusterMax(const Platform &platform, CoreType type)
{
    return platform.coreCount(type) > 0
               ? platform.cluster(type).spec().maxFrequency()
               : 0.0;
}

GHz
clusterMin(const Platform &platform, CoreType type)
{
    return platform.coreCount(type) > 0
               ? platform.cluster(type).spec().minFrequency()
               : 0.0;
}

} // namespace

StaticPolicy::StaticPolicy(const Platform &platform, CoreConfig config,
                           PolicyVariant variant, std::string name)
    : config_(config), variant_(variant), name_(std::move(name))
{
    if (!platform.isValidConfig(config))
        fatal("StaticPolicy: configuration ", config.label(),
              " is not realizable on ", platform.name());
    if (name_.empty())
        name_ = "Static(" + config.label() + ")";
    bigMax_ = clusterMax(platform, CoreType::Big);
    smallMax_ = clusterMax(platform, CoreType::Small);
}

StaticPolicy
StaticPolicy::allBig(const Platform &platform, PolicyVariant variant)
{
    CoreConfig config;
    config.nBig = platform.coreCount(CoreType::Big);
    config.bigFreq = clusterMax(platform, CoreType::Big);
    config.smallFreq = clusterMax(platform, CoreType::Small);
    return StaticPolicy(platform, config, variant, "Static(all-big)");
}

StaticPolicy
StaticPolicy::allSmall(const Platform &platform, PolicyVariant variant)
{
    CoreConfig config;
    config.nSmall = platform.coreCount(CoreType::Small);
    config.smallFreq = clusterMax(platform, CoreType::Small);
    config.bigFreq = clusterMax(platform, CoreType::Big);
    return StaticPolicy(platform, config, variant, "Static(all-small)");
}

Decision
StaticPolicy::makeDecision() const
{
    Decision decision;
    decision.config = config_;
    decision.runBatch = variant_ == PolicyVariant::Collocated;
    // Figure 11's static mapping leaves the batch cluster at the
    // highest DVFS; for the interactive variant the spare cluster is
    // idle so the setting is irrelevant but harmless.
    if (config_.nBig == 0 && bigMax_ > 0.0)
        decision.spareBigFreq = bigMax_;
    if (config_.nSmall == 0 && smallMax_ > 0.0)
        decision.spareSmallFreq = smallMax_;
    return decision;
}

Decision
StaticPolicy::initialDecision()
{
    return makeDecision();
}

Decision
StaticPolicy::decide(const IntervalMetrics &)
{
    return makeDecision();
}

OctopusManPolicy::OctopusManPolicy(const Platform &platform,
                                   OctopusManParams params)
    : params_(params),
      mapper_(ConfigSpace::octopusManStates(platform), params.zones,
              /*start_at_top=*/true)
{
    bigMax_ = clusterMax(platform, CoreType::Big);
    smallMax_ = clusterMax(platform, CoreType::Small);
}

Decision
OctopusManPolicy::decorate(CoreConfig config) const
{
    Decision decision;
    decision.config = config;
    decision.runBatch = params_.variant == PolicyVariant::Collocated;
    // Octopus-Man keeps every cluster at the highest DVFS.
    if (config.nBig == 0 && bigMax_ > 0.0)
        decision.spareBigFreq = bigMax_;
    if (config.nSmall == 0 && smallMax_ > 0.0)
        decision.spareSmallFreq = smallMax_;
    return decision;
}

Decision
OctopusManPolicy::initialDecision()
{
    return decorate(mapper_.current());
}

Decision
OctopusManPolicy::decide(const IntervalMetrics &last)
{
    return decorate(mapper_.step(last.tailLatency, last.qosTarget));
}

void
OctopusManPolicy::reset()
{
    mapper_.reset();
}

HeuristicOnlyPolicy::HeuristicOnlyPolicy(const Platform &platform,
                                         ZoneParams zones,
                                         PolicyVariant variant,
                                         std::vector<CoreConfig> ladder)
    : variant_(variant),
      mapper_(ladder.empty()
                  ? ConfigSpace::orderForHeuristic(
                        platform, ConfigSpace::defaultLadder(platform))
                  : std::move(ladder),
              zones, /*start_at_top=*/true)
{
    bigMax_ = clusterMax(platform, CoreType::Big);
    bigMin_ = clusterMin(platform, CoreType::Big);
    smallMax_ = clusterMax(platform, CoreType::Small);
    smallMin_ = clusterMin(platform, CoreType::Small);
}

Decision
HeuristicOnlyPolicy::decorate(CoreConfig config) const
{
    Decision decision;
    decision.config = config;
    decision.runBatch = variant_ == PolicyVariant::Collocated;
    const bool collocated = variant_ == PolicyVariant::Collocated;
    // Algorithm 2 lines 8-13 applied heuristically: spare clusters
    // run at max DVFS when accelerating batch work, min otherwise.
    if (config.nBig == 0 && bigMax_ > 0.0)
        decision.spareBigFreq = collocated ? bigMax_ : bigMin_;
    if (config.nSmall == 0 && smallMax_ > 0.0)
        decision.spareSmallFreq = collocated ? smallMax_ : smallMin_;
    return decision;
}

Decision
HeuristicOnlyPolicy::initialDecision()
{
    return decorate(mapper_.current());
}

Decision
HeuristicOnlyPolicy::decide(const IntervalMetrics &last)
{
    return decorate(mapper_.step(last.tailLatency, last.qosTarget));
}

void
HeuristicOnlyPolicy::reset()
{
    mapper_.reset();
}

} // namespace hipster
