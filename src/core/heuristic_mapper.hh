/**
 * @file
 * The heuristic mapper of Section 3.3: a state machine with a
 * feedback control loop over a ladder of core/DVFS configurations
 * ordered approximately from lowest to highest capability. When the
 * measured tail latency ends an interval in the danger zone the
 * machine climbs to the next-higher power state; in the safe zone it
 * descends. Octopus-Man uses the same machine over a ladder
 * restricted to single-cluster states at max DVFS.
 */

#ifndef HIPSTER_CORE_HEURISTIC_MAPPER_HH
#define HIPSTER_CORE_HEURISTIC_MAPPER_HH

#include <vector>

#include "common/units.hh"
#include "platform/core_config.hh"

namespace hipster
{

/** Danger/safe-zone thresholds (fractions of the QoS target). */
struct ZoneParams
{
    /** QoS_D: danger zone starts at target * danger. */
    double danger = 0.80;

    /** QoS_S: safe zone ends at target * safe (safe < danger). */
    double safe = 0.30;
};

/**
 * Ladder-climbing feedback controller. Pure decision logic: the
 * caller feeds measured tail latency once per interval and reads the
 * configuration for the next interval.
 */
class HeuristicMapper
{
  public:
    /**
     * @param ladder Configurations ordered from least to most
     *               capable (see ConfigSpace::orderForHeuristic).
     * @param zones  Danger/safe thresholds.
     * @param start_at_top Begin at the most capable state (safe
     *               bootstrap); otherwise begin at the bottom.
     */
    HeuristicMapper(std::vector<CoreConfig> ladder, ZoneParams zones,
                    bool start_at_top = true);

    const std::vector<CoreConfig> &ladder() const { return ladder_; }
    const ZoneParams &zones() const { return zones_; }

    /** Current ladder position. */
    std::size_t index() const { return index_; }

    /** Configuration at the current position. */
    const CoreConfig &current() const { return ladder_[index_]; }

    /**
     * Feed the interval's measured tail latency; the machine climbs
     * on danger, descends on safe, else holds. Returns the (possibly
     * new) configuration for the next interval.
     */
    const CoreConfig &step(Millis qos_curr, Millis qos_target);

    /** Whether the last step climbed (+1), descended (-1) or held
     * (0) — used by tests and the oscillation analysis. */
    int lastMove() const { return lastMove_; }

    /** Jump to a given ladder index. */
    void moveTo(std::size_t index);

    /** Jump to the ladder state nearest the given configuration
     * (used when re-entering the learning phase). */
    void moveToNearest(const CoreConfig &config);

    /** Restart from the initial position. */
    void reset();

  private:
    std::vector<CoreConfig> ladder_;
    ZoneParams zones_;
    std::size_t start_;
    std::size_t index_;
    int lastMove_ = 0;
};

} // namespace hipster

#endif // HIPSTER_CORE_HEURISTIC_MAPPER_HH
