/**
 * @file
 * TaskPolicy: the interface every task manager implements — Hipster,
 * its heuristic-only variant, Octopus-Man, and the static baselines.
 * Once per monitoring interval the experiment runner feeds the last
 * interval's metrics to the policy and receives the configuration to
 * apply for the next interval.
 */

#ifndef HIPSTER_CORE_POLICY_HH
#define HIPSTER_CORE_POLICY_HH

#include <optional>
#include <string>

#include "monitor/metrics.hh"
#include "platform/core_config.hh"

namespace hipster
{

/** Whether the manager optimizes for power or batch throughput. */
enum class PolicyVariant
{
    /** Latency-critical workload runs alone; minimize system power
     * (HipsterIn). */
    Interactive,

    /** Latency-critical + batch collocation; maximize batch
     * throughput (HipsterCo). */
    Collocated,
};

/**
 * A policy's decision for the next interval: the LC configuration
 * plus how to clock clusters that host no LC core (Algorithm 2,
 * lines 8-13) and whether batch jobs may run.
 */
struct Decision
{
    /** Core mapping + DVFS for the latency-critical workload. */
    CoreConfig config;

    /**
     * Frequency for the big cluster when it hosts no LC core
     * (unset = leave unchanged). HipsterIn sets the lowest OPP;
     * HipsterCo sets the highest to accelerate batch work.
     */
    std::optional<GHz> spareBigFreq;

    /** Same for the small cluster. */
    std::optional<GHz> spareSmallFreq;

    /** Whether batch jobs may run this interval (SIGCONT/SIGSTOP). */
    bool runBatch = false;
};

/** Abstract task manager. */
class TaskPolicy
{
  public:
    virtual ~TaskPolicy() = default;

    /** Display name used in reports ("HipsterIn", "Octopus-Man"...). */
    virtual std::string name() const = 0;

    /** Decision before any metrics exist (first interval). */
    virtual Decision initialDecision() = 0;

    /**
     * Decision for the next interval, given the metrics observed
     * during the interval that just ended.
     */
    virtual Decision decide(const IntervalMetrics &last) = 0;

    /** Forget all state (fresh run). */
    virtual void reset() = 0;
};

} // namespace hipster

#endif // HIPSTER_CORE_POLICY_HH
