/**
 * @file
 * HipsterPolicy: the paper's contribution. A hybrid manager that
 * bootstraps with the Section 3.3 heuristic mapper (learning phase),
 * populates the R(w, c) lookup table with Algorithm 1 rewards, then
 * switches to greedy exploitation (Algorithm 2) — continuing to
 * update the table and falling back to the learning phase if the
 * sliding-window QoS guarantee collapses (Algorithm 2, line 18).
 *
 * The two paper variants are selected with PolicyVariant:
 * Interactive (HipsterIn, power reward) and Collocated (HipsterCo,
 * batch-throughput reward + spare-cluster DVFS boost).
 */

#ifndef HIPSTER_CORE_HIPSTER_POLICY_HH
#define HIPSTER_CORE_HIPSTER_POLICY_HH

#include <memory>
#include <vector>

#include "core/heuristic_mapper.hh"
#include "core/policy.hh"
#include "core/qtable.hh"
#include "core/reward.hh"
#include "monitor/qos_monitor.hh"
#include "platform/config_space.hh"
#include "platform/platform.hh"

namespace hipster
{

/** All of Hipster's tunables, defaulting to the paper's values. */
struct HipsterParams
{
    /** HipsterIn or HipsterCo. */
    PolicyVariant variant = PolicyVariant::Interactive;

    /** Load-bucket width in percent of max load (Figure 10 sweeps
     * this; the paper tunes it per workload for >= 98% QoS). */
    double bucketPercent = 5.0;

    /** Danger/safe zones for the learning-phase heuristic and the
     * reward's stochastic region. */
    ZoneParams zones{0.80, 0.30};

    /** Learning-phase duration in seconds (paper: 500 s, 200 s for
     * the Figure 9 study). */
    Seconds learningPhase = 500.0;

    /** Q-learning rate alpha (paper: 0.6). */
    double alpha = 0.6;

    /** Discount factor gamma (paper: 0.9). */
    double gamma = 0.9;

    /** Threshold X on the sliding-window QoS guarantee below which
     * the manager re-enters the learning phase. */
    double relearnThreshold = 0.80;

    /** Sliding-window length (samples) for the QoS guarantee. */
    std::size_t guaranteeWindow = 100;

    /**
     * Migration-aware exploitation: each candidate action's table
     * value is discounted by this much per core that would have to
     * join/leave the LC allocation relative to the current
     * configuration. Damps core-mapping flapping between near-equal
     * actions when load noise hops across bucket boundaries — core
     * transitions are the expensive actuation (Section 2, Kasture et
     * al.). 0 = pure greedy (Algorithm 2 line 7 verbatim). The
     * default is sized against the table's value scale (discounted
     * sums, roughly reward/(1-gamma)).
     */
    double migrationPenalty = 0.5;

    /** Disable the heuristic bootstrap (pure-RL ablation: actions in
     * the learning phase are chosen greedily from the cold table). */
    bool useHeuristicBootstrap = true;

    /** Disable the stochastic danger-zone penalty (ablation). */
    bool stochasticReward = true;

    /** RNG seed (stochastic reward term). */
    std::uint64_t seed = 0x415254;
};

/** Phase indicator for logging/analysis. */
enum class HipsterPhase
{
    Learning,
    Exploitation,
};

/** The hybrid RL + heuristic task manager. */
class HipsterPolicy : public TaskPolicy
{
  public:
    /**
     * @param platform Platform managed (TDP, cluster OPPs, max IPS).
     * @param params   Tunables.
     * @param actions  Action space; empty = the paper's 13 states
     *                 ordered for the heuristic.
     */
    HipsterPolicy(const Platform &platform, HipsterParams params,
                  std::vector<CoreConfig> actions = {});

    std::string name() const override;
    Decision initialDecision() override;
    Decision decide(const IntervalMetrics &last) override;
    void reset() override;

    /** Current phase. */
    HipsterPhase phase() const { return phase_; }

    /** The resolved tunables this instance runs with. */
    const HipsterParams &params() const { return params_; }

    /** The lookup table (tests/analysis). */
    const QTable &qtable() const { return qtable_; }

    /** Action list indexed by the table's action dimension. */
    const std::vector<CoreConfig> &actions() const { return actions_; }

    /** Load quantizer in use. */
    const LoadBucketQuantizer &quantizer() const { return quantizer_; }

    /** Sliding-window QoS guarantee (Algorithm 2, line 18 input). */
    double windowGuarantee() const { return window_.guarantee(); }

    /** Number of times the policy re-entered the learning phase. */
    std::uint64_t relearnCount() const { return relearnCount_; }

  private:
    Decision decorate(CoreConfig config) const;
    std::size_t actionIndex(const CoreConfig &config) const;
    void enterLearning(Seconds now, const CoreConfig &resume_from);

    HipsterParams params_;
    std::vector<CoreConfig> actions_;
    LoadBucketQuantizer quantizer_;
    QTable qtable_;
    RewardCalculator reward_;
    HeuristicMapper heuristic_;
    QosGuaranteeWindow window_;

    GHz bigMax_ = 0.0, bigMin_ = 0.0;
    GHz smallMax_ = 0.0, smallMin_ = 0.0;
    Watts tdp_ = 0.0;
    Ips maxIpsSum_ = 0.0;

    HipsterPhase phase_ = HipsterPhase::Learning;
    Seconds learningUntil_ = 0.0;
    std::uint64_t relearnCount_ = 0;

    bool havePending_ = false;
    int pendingBucket_ = 0;
    std::size_t pendingAction_ = 0;
};

} // namespace hipster

#endif // HIPSTER_CORE_HIPSTER_POLICY_HH
