/**
 * @file
 * Policy registry: every task-manager family the CLIs, sweep engine
 * and bench binaries can name, plus a small key=value spec grammar
 * that makes the paper's tunables — bucket width (Fig. 10), learning
 * phase (Fig. 9), RL constants (Alg. 1), Octopus-Man QoS thresholds —
 * first-class sweep axes:
 *
 *   spec  := name [':' key '=' value (',' key '=' value)*]
 *
 * Examples:
 *   hipster-in:bucket=8,learn=600
 *   octopus-man:up=0.85,down=0.6
 *   heuristic:danger=0.9,safe=0.2
 *   hipster-co:alpha=0.2,gamma=0.5,stochastic=0
 *
 * Each registered policy declares a parameter schema (key, default,
 * valid range, doc string); overrides validate fail-fast — an unknown
 * key or out-of-range value enumerates the schema, an unknown policy
 * enumerates the catalog — and apply on top of the caller's base
 * parameters (workload-tuned defaults), so a bare name behaves
 * exactly as before. The registry is the single source of truth
 * consulted by experiments/scenario's makePolicy, the sweep engine's
 * fail-fast validation, both CLIs and the bench binaries, so a newly
 * registered policy is immediately sweepable everywhere.
 */

#ifndef HIPSTER_CORE_POLICY_REGISTRY_HH
#define HIPSTER_CORE_POLICY_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/baselines.hh"
#include "core/hipster_policy.hh"
#include "core/policy.hh"
#include "platform/platform.hh"

namespace hipster
{

/** Schema entry describing one tunable of a registered policy. */
struct PolicyParamInfo
{
    std::string key; ///< override key, e.g. "bucket"
    std::string doc; ///< one-line description for --list-policies

    /** The paper's default (before any workload tuning). */
    double defaultValue = 0.0;

    /** Valid range, inclusive on both ends. */
    double minValue = 0.0;
    double maxValue = 0.0;

    /** Value must be a non-negative integer (e.g. window sizes). */
    bool integer = false;

    /** Value must be 0 or 1. */
    bool boolean = false;
};

/** Catalog entry describing one registered policy family. */
struct PolicyInfo
{
    std::string name;                 ///< canonical spec head
    std::vector<std::string> aliases; ///< alternate heads, e.g. "octopus"
    std::string display;              ///< report name, e.g. "HipsterIn"
    std::string summary;              ///< one-line description
    std::string paperRef;             ///< e.g. "Table 3; Figures 6-7"

    /** Whether the policy is a row of the paper's Table 3 (the
     * catalog's registration order is the row order). */
    bool table3 = false;

    std::vector<PolicyParamInfo> params;
};

/**
 * The parsed key=value overrides of one policy spec. Only explicitly
 * written keys are present; factories fall back to their base
 * parameters (workload-tuned defaults) for everything else.
 */
class PolicyParamSet
{
  public:
    bool isSet(const std::string &key) const;

    /** The override for `key`, or `fallback` when not set. */
    double get(const std::string &key, double fallback) const;

    bool getBool(const std::string &key, bool fallback) const;

    /** Record an override (parser only; last write wins is a parse
     * error upstream, so keys are unique). */
    void set(const std::string &key, double value);

  private:
    std::vector<std::pair<std::string, double>> values_;
};

/**
 * Name-keyed factory for task-manager policies. A singleton holds the
 * built-ins; custom policies can be registered at startup and become
 * available to every consumer (CLIs, sweeps, benches) at once.
 */
class PolicyRegistry
{
  public:
    /** Everything a factory needs besides the parsed overrides: the
     * managed platform and the caller's base tunables (typically the
     * workload-tuned deployment defaults). */
    struct BuildContext
    {
        const Platform &platform;
        HipsterParams hipster;
        OctopusManParams octopus;
    };

    /** Builds a policy from the context and the parsed overrides. */
    using Factory = std::function<std::unique_ptr<TaskPolicy>(
        const BuildContext &ctx, const PolicyParamSet &params)>;

    /** Extra fail-fast validation across keys (e.g. safe < danger),
     * run at parse time; unset keys resolve to the schema defaults
     * of the policy being validated. */
    using CrossCheck = std::function<void(const PolicyInfo &info,
                                          const PolicyParamSet &params,
                                          const std::string &spec)>;

    /** The process-wide registry with the built-ins installed. */
    static PolicyRegistry &instance();

    /** Register a policy; FatalError on duplicate names/aliases or a
     * null factory. */
    void registerPolicy(PolicyInfo info, Factory factory,
                        CrossCheck crossCheck = {});

    /** Whether `name` heads a registered policy (canonical or
     * alias; spec arguments are not accepted here). */
    bool hasPolicy(const std::string &name) const;

    /** All registered policies, in registration order. */
    const std::vector<PolicyInfo> &policies() const
    {
        return policies_;
    }

    /** Catalog entry for a canonical name or alias; nullptr when
     * unknown. */
    const PolicyInfo *findPolicy(const std::string &name) const;

    /**
     * Parse and validate a spec against the schema without building
     * anything: resolves the head (canonical or alias), checks every
     * key, range and cross-key constraint. Throws FatalError with
     * the catalog (unknown policy) or the policy's schema (unknown
     * key / bad value).
     */
    const PolicyInfo &parseSpec(const std::string &spec,
                                PolicyParamSet &out) const;

    /**
     * Build a fully parameterized policy from a spec string.
     * Overrides apply on top of `ctx`'s base parameters, so a bare
     * name reproduces the legacy factory exactly.
     */
    std::unique_ptr<TaskPolicy> make(const std::string &spec,
                                     const BuildContext &ctx) const;

    /** Human-readable catalog: every policy with aliases, paper
     * reference and full parameter schema (for --list-policies). */
    std::string catalogText() const;

    /** Compact enumeration used in unknown-policy errors. */
    std::string knownPoliciesSummary() const;

    /** The Table 3 policy names, in registration (= row) order. */
    std::vector<std::string> table3Names() const;

  private:
    PolicyRegistry() = default;
    void registerBuiltins();

    std::vector<PolicyInfo> policies_;
    std::vector<Factory> factories_;
    std::vector<CrossCheck> crossChecks_;
};

/** Build a policy from a spec via the global registry. */
std::unique_ptr<TaskPolicy>
makePolicyFromSpec(const std::string &spec,
                   const PolicyRegistry::BuildContext &ctx);

/**
 * Fail-fast spec validation: parses the spec and checks every
 * override against the schema, throwing the same FatalError
 * PolicyRegistry::make would, so campaigns reject bad cells before
 * any runs start. Needs no platform — nothing is constructed.
 */
void validatePolicySpec(const std::string &spec);

/** Non-throwing validatePolicySpec(). */
bool isPolicySpec(const std::string &spec);

/**
 * Splits a CLI policy list into specs. `;` always separates; a `,`
 * separates only when the text after it heads a registered policy
 * (so `hipster-in:bucket=5,learn=600,static-big` yields the
 * parameterized hipster spec and `static-big`, keeping in-spec
 * key=value commas intact).
 */
std::vector<std::string> splitPolicyList(const std::string &list);

} // namespace hipster

#endif // HIPSTER_CORE_POLICY_REGISTRY_HH
