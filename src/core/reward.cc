#include "core/reward.hh"

#include "common/logging.hh"

namespace hipster
{

RewardCalculator::RewardCalculator(double qos_danger, std::uint64_t seed)
    : qosDanger_(qos_danger), rng_(seed)
{
    if (qos_danger <= 0.0 || qos_danger >= 1.0)
        fatal("RewardCalculator: QoS_D must lie in (0, 1), got ",
              qos_danger);
}

RewardBreakdown
RewardCalculator::evaluate(const RewardInputs &inputs)
{
    HIPSTER_ASSERT(inputs.qosTarget > 0.0, "QoS target must be positive");
    RewardBreakdown out;

    // Lines 4-11: QoS reward / tardiness penalty.
    const double qos_reward = inputs.qosCurr / inputs.qosTarget;
    if (inputs.qosCurr < inputs.qosTarget * qosDanger_) {
        // Below the danger zone: positive reward, larger when the
        // latency approaches (but does not cross) the target — that
        // is what pushes the table toward frugal configurations.
        out.qosComponent = qos_reward + 1.0;
    } else if (inputs.qosCurr < inputs.qosTarget) {
        // Inside the danger zone: same positive reward, minus a
        // stochastic penalty so the configuration keeps being
        // explored but with smaller probability (line 9).
        out.qosComponent = qos_reward + 1.0;
        out.stochasticPenalty = rng_.uniform();
    } else {
        // QoS violated: negative reward scaled by the tardiness.
        out.qosComponent = -qos_reward - 1.0;
    }

    // Lines 12-15: throughput reward (collocated) or power reward.
    if (inputs.batchPresent) {
        HIPSTER_ASSERT(inputs.maxIpsSum > 0.0,
                       "maxIpsSum must be positive");
        out.efficiencyComponent =
            (inputs.batchBigIps + inputs.batchSmallIps) /
            inputs.maxIpsSum;
    } else {
        HIPSTER_ASSERT(inputs.power > 0.0, "power must be positive");
        out.efficiencyComponent = inputs.tdp / inputs.power;
    }
    return out;
}

double
RewardCalculator::operator()(const RewardInputs &inputs)
{
    return evaluate(inputs).total();
}

} // namespace hipster
