#include "core/hipster_policy.hh"

#include "common/logging.hh"

namespace hipster
{

namespace
{

GHz
clusterMax(const Platform &platform, CoreType type)
{
    return platform.coreCount(type) > 0
               ? platform.cluster(type).spec().maxFrequency()
               : 0.0;
}

GHz
clusterMin(const Platform &platform, CoreType type)
{
    return platform.coreCount(type) > 0
               ? platform.cluster(type).spec().minFrequency()
               : 0.0;
}

std::vector<CoreConfig>
defaultActions(const Platform &platform)
{
    return ConfigSpace::orderForHeuristic(
        platform, ConfigSpace::defaultLadder(platform));
}

} // namespace

HipsterPolicy::HipsterPolicy(const Platform &platform,
                             HipsterParams params,
                             std::vector<CoreConfig> actions)
    : params_(params),
      actions_(actions.empty()
                   ? defaultActions(platform)
                   : ConfigSpace::orderForHeuristic(platform,
                                                    std::move(actions))),
      quantizer_(params.bucketPercent),
      qtable_(quantizer_.bucketCount(), actions_.size()),
      reward_(params.zones.danger, params.seed),
      heuristic_(actions_, params.zones, /*start_at_top=*/true),
      window_(params.guaranteeWindow)
{
    if (params_.learningPhase < 0.0)
        fatal("HipsterPolicy: learningPhase must be non-negative");
    if (params_.relearnThreshold < 0.0 || params_.relearnThreshold > 1.0)
        fatal("HipsterPolicy: relearnThreshold must lie in [0, 1]");
    for (const auto &config : actions_) {
        if (!platform.isValidConfig(config))
            fatal("HipsterPolicy: action ", config.label(),
                  " is not realizable on ", platform.name());
    }
    bigMax_ = clusterMax(platform, CoreType::Big);
    bigMin_ = clusterMin(platform, CoreType::Big);
    smallMax_ = clusterMax(platform, CoreType::Small);
    smallMin_ = clusterMin(platform, CoreType::Small);
    tdp_ = platform.tdp();
    // maxIPS(B) + maxIPS(S) at highest DVFS (Algorithm 1, line 13).
    for (const auto &cluster : platform.clusters()) {
        const auto &spec = cluster.spec();
        maxIpsSum_ +=
            spec.coreCount * spec.microbenchIpc * spec.maxFrequency() *
            1e9;
    }
    learningUntil_ = params_.learningPhase;
}

std::string
HipsterPolicy::name() const
{
    return params_.variant == PolicyVariant::Interactive ? "HipsterIn"
                                                         : "HipsterCo";
}

Decision
HipsterPolicy::decorate(CoreConfig config) const
{
    Decision decision;
    decision.config = config;
    decision.runBatch = params_.variant == PolicyVariant::Collocated;
    const bool collocated =
        params_.variant == PolicyVariant::Collocated;
    // Algorithm 2 lines 8-13: clusters hosting no LC core run at the
    // highest DVFS under HipsterCo (accelerate batch) and at the
    // lowest DVFS under HipsterIn (save power).
    if (config.nBig == 0 && bigMax_ > 0.0)
        decision.spareBigFreq = collocated ? bigMax_ : bigMin_;
    if (config.nSmall == 0 && smallMax_ > 0.0)
        decision.spareSmallFreq = collocated ? smallMax_ : smallMin_;
    return decision;
}

std::size_t
HipsterPolicy::actionIndex(const CoreConfig &config) const
{
    for (std::size_t i = 0; i < actions_.size(); ++i) {
        if (actions_[i] == config)
            return i;
    }
    HIPSTER_PANIC("heuristic produced a configuration outside the "
                  "action space: ",
                  config.label());
}

Decision
HipsterPolicy::initialDecision()
{
    // Bootstrap at the heuristic's starting state (most capable):
    // QoS-safe while the first measurements arrive.
    const CoreConfig &config = params_.useHeuristicBootstrap
                                   ? heuristic_.current()
                                   : actions_.back();
    havePending_ = true;
    pendingBucket_ = 0;
    pendingAction_ = actionIndex(config);
    return decorate(config);
}

Decision
HipsterPolicy::decide(const IntervalMetrics &last)
{
    const int w_now = quantizer_.bucket(last.offeredLoad);

    // --- Algorithm 1: reward for the interval that just ended, and
    // --- table update for the (state, action) that produced it.
    if (havePending_) {
        RewardInputs inputs;
        inputs.qosCurr = last.tailLatency;
        inputs.qosTarget = last.qosTarget;
        inputs.power = last.power;
        inputs.tdp = tdp_;
        inputs.batchPresent = last.batchPresent &&
                              params_.variant == PolicyVariant::Collocated;
        inputs.batchBigIps = last.batchBigIps;
        inputs.batchSmallIps = last.batchSmallIps;
        inputs.maxIpsSum = maxIpsSum_;

        RewardBreakdown breakdown = reward_.evaluate(inputs);
        if (!params_.stochasticReward)
            breakdown.stochasticPenalty = 0.0;
        qtable_.update(pendingBucket_, pendingAction_, breakdown.total(),
                       w_now, params_.alpha, params_.gamma);
    }

    // --- Algorithm 2 line 18: QoS-guarantee watchdog.
    window_.add(!last.qosViolated());
    if (phase_ == HipsterPhase::Exploitation &&
        window_.size() >= window_.window() &&
        window_.guarantee() <= params_.relearnThreshold) {
        enterLearning(last.end, last.config);
    }

    // --- Phase bookkeeping (prefixed time quantum, Section 3.2).
    if (phase_ == HipsterPhase::Learning && last.end >= learningUntil_) {
        phase_ = HipsterPhase::Exploitation;
        // Start the watchdog fresh: the exploitation phase must not
        // be blamed for violations the bootstrap heuristic caused.
        window_.clear();
    }

    // --- Choose the next action.
    CoreConfig next;
    const bool learning =
        phase_ == HipsterPhase::Learning && params_.useHeuristicBootstrap;
    if (learning || !qtable_.visited(w_now)) {
        // Learning phase — or a load bucket the table has never seen
        // (e.g. an unprecedented load level): let the feedback
        // heuristic pick a viable rung rather than trusting a cold
        // table row.
        next = heuristic_.step(last.tailLatency, last.qosTarget);
    } else {
        // Algorithm 2 line 7: greedy on the lookup table, made
        // migration-aware: candidates pay a per-core penalty for the
        // affinity churn they would cause, so near-ties resolve in
        // favour of staying put. Keep the heuristic tracking the
        // chosen state so a later re-entry resumes from a sensible
        // rung.
        const CoreConfig &current = actions_[pendingAction_];
        std::size_t chosen = 0;
        double best_score = -1e300;
        for (std::size_t c = 0; c < actions_.size(); ++c) {
            const auto delta = [](std::uint32_t a, std::uint32_t b) {
                return a > b ? a - b : b - a;
            };
            const double churn =
                delta(actions_[c].nBig, current.nBig) +
                delta(actions_[c].nSmall, current.nSmall);
            const double score = qtable_.value(w_now, c) -
                                 params_.migrationPenalty * churn;
            if (score > best_score) {
                best_score = score;
                chosen = c;
            }
        }
        next = actions_[chosen];
        heuristic_.moveToNearest(next);
    }

    havePending_ = true;
    pendingBucket_ = w_now;
    pendingAction_ = actionIndex(next);
    return decorate(next);
}

void
HipsterPolicy::enterLearning(Seconds now, const CoreConfig &resume_from)
{
    phase_ = HipsterPhase::Learning;
    learningUntil_ = now + params_.learningPhase;
    heuristic_.moveToNearest(resume_from);
    window_.clear();
    ++relearnCount_;
}

void
HipsterPolicy::reset()
{
    qtable_.clear();
    heuristic_.reset();
    window_.clear();
    phase_ = HipsterPhase::Learning;
    learningUntil_ = params_.learningPhase;
    relearnCount_ = 0;
    havePending_ = false;
    pendingBucket_ = 0;
    pendingAction_ = 0;
}

} // namespace hipster
