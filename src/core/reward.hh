/**
 * @file
 * Algorithm 1: the reward mechanism. Combines the QoS reward (how
 * close the tail latency came to the target, or how badly it
 * violated it), a stochastic penalty inside the danger zone, and
 * either the Power reward (HipsterIn: TDP / measured power) or the
 * Throughput reward (HipsterCo: normalized batch IPS).
 */

#ifndef HIPSTER_CORE_REWARD_HH
#define HIPSTER_CORE_REWARD_HH

#include "common/random.hh"
#include "common/units.hh"

namespace hipster
{

/** Inputs of one reward evaluation (end of interval t_n..t_n+1). */
struct RewardInputs
{
    /** Measured tail latency (ms). */
    Millis qosCurr = 0.0;

    /** QoS target (ms). */
    Millis qosTarget = 1.0;

    /** Measured mean system power over the interval (W). */
    Watts power = 1.0;

    /** Thermal design power of the platform (W). */
    Watts tdp = 1.0;

    /** Whether batch jobs exist (selects the throughput reward). */
    bool batchPresent = false;

    /** Aggregate batch IPS on the big cluster (BIPS). */
    Ips batchBigIps = 0.0;

    /** Aggregate batch IPS on the small cluster (SIPS). */
    Ips batchSmallIps = 0.0;

    /** maxIPS(B) + maxIPS(S): cluster peak IPS at highest DVFS. */
    Ips maxIpsSum = 1.0;
};

/** Decomposition of a computed reward, for logging and tests. */
struct RewardBreakdown
{
    double qosComponent = 0.0;
    double stochasticPenalty = 0.0;
    double efficiencyComponent = 0.0;

    double
    total() const
    {
        return qosComponent - stochasticPenalty + efficiencyComponent;
    }
};

/**
 * Computes Algorithm 1's reward lambda_n.
 *
 * @param qos_danger The danger-zone parameter QoS_D in (0, 1): the
 *                   stochastic penalty applies when the latency lies
 *                   between target*QoS_D and the target.
 */
class RewardCalculator
{
  public:
    explicit RewardCalculator(double qos_danger = 0.8,
                              std::uint64_t seed = 0x5eedF00dULL);

    double qosDanger() const { return qosDanger_; }

    /** Compute lambda_n with its decomposition. */
    RewardBreakdown evaluate(const RewardInputs &inputs);

    /** Convenience: just the scalar reward. */
    double operator()(const RewardInputs &inputs);

  private:
    double qosDanger_;
    Rng rng_;
};

} // namespace hipster

#endif // HIPSTER_CORE_REWARD_HH
