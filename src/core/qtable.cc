#include "core/qtable.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hipster
{

QTable::QTable(int buckets, std::size_t actions)
    : buckets_(buckets), actions_(actions)
{
    if (buckets <= 0)
        fatal("QTable: bucket count must be positive");
    if (actions == 0)
        fatal("QTable: action count must be positive");
    values_.assign(static_cast<std::size_t>(buckets) * actions, 0.0);
    visits_.assign(values_.size(), 0);
}

std::size_t
QTable::index(int w, std::size_t c) const
{
    HIPSTER_ASSERT(w >= 0 && w < buckets_, "bucket out of range: ", w);
    HIPSTER_ASSERT(c < actions_, "action out of range: ", c);
    return static_cast<std::size_t>(w) * actions_ + c;
}

double
QTable::value(int w, std::size_t c) const
{
    return values_[index(w, c)];
}

std::uint64_t
QTable::visits(int w, std::size_t c) const
{
    return visits_[index(w, c)];
}

std::size_t
QTable::bestAction(int w) const
{
    const std::size_t base = index(w, 0);
    std::size_t best = 0;
    double best_value = values_[base];
    for (std::size_t c = 1; c < actions_; ++c) {
        if (values_[base + c] > best_value) {
            best_value = values_[base + c];
            best = c;
        }
    }
    return best;
}

double
QTable::maxValue(int w) const
{
    const std::size_t base = index(w, 0);
    double best = values_[base];
    for (std::size_t c = 1; c < actions_; ++c)
        best = std::max(best, values_[base + c]);
    return best;
}

void
QTable::update(int w, std::size_t c, double reward, int w_next,
               double alpha, double gamma)
{
    HIPSTER_ASSERT(alpha >= 0.0 && alpha <= 1.0,
                   "alpha out of range: ", alpha);
    HIPSTER_ASSERT(gamma >= 0.0 && gamma < 1.0,
                   "gamma out of range: ", gamma);
    const std::size_t i = index(w, c);
    const double target = reward + gamma * maxValue(w_next);
    values_[i] += alpha * (target - values_[i]);
    ++visits_[i];
    ++totalUpdates_;
}

bool
QTable::visited(int w) const
{
    const std::size_t base = index(w, 0);
    for (std::size_t c = 0; c < actions_; ++c) {
        if (visits_[base + c] > 0)
            return true;
    }
    return false;
}

void
QTable::clear()
{
    std::fill(values_.begin(), values_.end(), 0.0);
    std::fill(visits_.begin(), visits_.end(), 0);
    totalUpdates_ = 0;
}

} // namespace hipster
