#include "core/policy_registry.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace hipster
{

namespace
{

/** Compact numeric rendering for schema text ("5", "0.85"). */
std::string
formatValue(double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%g", value);
    return buffer;
}

double
parseNumber(const std::string &text, const std::string &spec,
            const std::string &key)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || end == text.c_str() || *end != '\0')
        fatal("policy spec '", spec, "': value '", text, "' for '", key,
              "' is not a number");
    if (!std::isfinite(value))
        fatal("policy spec '", spec, "': value '", text, "' for '", key,
              "' must be finite");
    return value;
}

/** The policy-name token starting at `pos` ([a-z0-9_-]*), or "" when
 * the text there cannot start a policy head. */
std::string
headToken(const std::string &text, std::size_t pos)
{
    std::size_t end = pos;
    while (end < text.size() &&
           (std::islower(static_cast<unsigned char>(text[end])) ||
            std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '_' || text[end] == '-'))
        ++end;
    return text.substr(pos, end - pos);
}

/** One schema line: "bucket=5 in [0.1, 50] — doc". */
std::string
paramLine(const PolicyParamInfo &param)
{
    std::string line = param.key + "=" + formatValue(param.defaultValue);
    if (param.boolean)
        line += " (0|1)";
    else
        line += " in [" + formatValue(param.minValue) + ", " +
                formatValue(param.maxValue) + "]";
    if (param.integer)
        line += " (integer)";
    return line + " — " + param.doc;
}

std::string
schemaSummary(const PolicyInfo &info)
{
    if (info.params.empty())
        return "'" + info.name + "' takes no parameters";
    std::string out = "'" + info.name + "' parameters:";
    for (const PolicyParamInfo &param : info.params)
        out += "\n  " + paramLine(param);
    return out;
}

/** HipsterParams with every spec override applied on top. */
HipsterParams
applyHipsterOverrides(HipsterParams params, const PolicyParamSet &set)
{
    params.bucketPercent = set.get("bucket", params.bucketPercent);
    params.learningPhase = set.get("learn", params.learningPhase);
    params.zones.danger = set.get("danger", params.zones.danger);
    params.zones.safe = set.get("safe", params.zones.safe);
    params.alpha = set.get("alpha", params.alpha);
    params.gamma = set.get("gamma", params.gamma);
    params.relearnThreshold =
        set.get("relearn", params.relearnThreshold);
    params.guaranteeWindow = static_cast<std::size_t>(set.get(
        "window", static_cast<double>(params.guaranteeWindow)));
    params.migrationPenalty = set.get("migpen", params.migrationPenalty);
    params.useHeuristicBootstrap =
        set.getBool("bootstrap", params.useHeuristicBootstrap);
    params.stochasticReward =
        set.getBool("stochastic", params.stochasticReward);
    return params;
}

/** The tunables HipsterIn and HipsterCo share. */
std::vector<PolicyParamInfo>
hipsterSchema()
{
    return {
        {"bucket", "load-bucket width in % of max load (Figure 10)",
         5.0, 0.1, 50.0, false, false},
        {"learn", "learning-phase duration in seconds (Figure 9)",
         500.0, 0.0, 1e7, false, false},
        {"danger", "danger zone starts at target x this (QoS_D)", 0.80,
         0.01, 1.0, false, false},
        {"safe", "safe zone ends at target x this (QoS_S)", 0.30, 0.0,
         1.0, false, false},
        {"alpha", "Q-learning rate (Algorithm 1)", 0.6, 0.0, 1.0,
         false, false},
        {"gamma", "discount factor (Algorithm 1)", 0.9, 0.0, 1.0,
         false, false},
        {"relearn",
         "sliding-window QoS guarantee below which the manager "
         "re-enters learning (Algorithm 2 line 18)",
         0.80, 0.0, 1.0, false, false},
        {"window", "sliding-window length in samples", 100.0, 1.0, 1e6,
         true, false},
        {"migpen",
         "per-core migration discount on candidate actions (0 = pure "
         "greedy Algorithm 2 line 7)",
         0.5, 0.0, 1e3, false, false},
        {"bootstrap",
         "heuristic bootstrap during learning (0 = pure-RL ablation)",
         1.0, 0.0, 1.0, false, true},
        {"stochastic",
         "stochastic danger-zone reward penalty (Algorithm 1 line 9)",
         1.0, 0.0, 1.0, false, true},
    };
}

/** The schema default of `key` in `info` (panics on a key the
 * registration itself got wrong). */
double
schemaDefault(const PolicyInfo &info, const std::string &key)
{
    for (const PolicyParamInfo &param : info.params) {
        if (param.key == key)
            return param.defaultValue;
    }
    HIPSTER_PANIC("PolicyRegistry: cross-check references unknown "
                  "key '",
                  key, "' of '", info.name, "'");
}

/** Fail-fast zone sanity: the safe-zone end must sit below the
 * danger-zone start. Unset keys resolve to the schema defaults of
 * the policy under validation, so the fallbacks can never drift
 * from the registered schema. */
PolicyRegistry::CrossCheck
zonesBelowCheck(std::string dangerKey, std::string safeKey)
{
    return [=](const PolicyInfo &info, const PolicyParamSet &set,
               const std::string &spec) {
        const double danger =
            set.get(dangerKey, schemaDefault(info, dangerKey));
        const double safe =
            set.get(safeKey, schemaDefault(info, safeKey));
        if (safe >= danger)
            fatal("policy spec '", spec, "': ", safeKey, "=",
                  formatValue(safe), " must be below ", dangerKey, "=",
                  formatValue(danger));
    };
}

} // namespace

bool
PolicyParamSet::isSet(const std::string &key) const
{
    return std::any_of(values_.begin(), values_.end(),
                       [&](const auto &kv) { return kv.first == key; });
}

double
PolicyParamSet::get(const std::string &key, double fallback) const
{
    for (const auto &kv : values_) {
        if (kv.first == key)
            return kv.second;
    }
    return fallback;
}

bool
PolicyParamSet::getBool(const std::string &key, bool fallback) const
{
    return get(key, fallback ? 1.0 : 0.0) != 0.0;
}

void
PolicyParamSet::set(const std::string &key, double value)
{
    values_.emplace_back(key, value);
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry = [] {
        PolicyRegistry r;
        r.registerBuiltins();
        return r;
    }();
    return registry;
}

void
PolicyRegistry::registerPolicy(PolicyInfo info, Factory factory,
                               CrossCheck crossCheck)
{
    if (hasPolicy(info.name))
        fatal("PolicyRegistry: policy '", info.name,
              "' already registered");
    for (const std::string &alias : info.aliases) {
        if (hasPolicy(alias))
            fatal("PolicyRegistry: alias '", alias,
                  "' already registered");
    }
    if (!factory)
        fatal("PolicyRegistry: null factory for '", info.name, "'");
    policies_.push_back(std::move(info));
    factories_.push_back(std::move(factory));
    crossChecks_.push_back(std::move(crossCheck));
}

bool
PolicyRegistry::hasPolicy(const std::string &name) const
{
    return findPolicy(name) != nullptr;
}

const PolicyInfo *
PolicyRegistry::findPolicy(const std::string &name) const
{
    for (const PolicyInfo &policy : policies_) {
        if (policy.name == name)
            return &policy;
        for (const std::string &alias : policy.aliases) {
            if (alias == name)
                return &policy;
        }
    }
    return nullptr;
}

std::string
PolicyRegistry::knownPoliciesSummary() const
{
    std::string out = "registered policies:";
    for (const PolicyInfo &policy : policies_) {
        out += "\n  " + policy.name;
        for (const std::string &alias : policy.aliases)
            out += " (alias: " + alias + ")";
        if (!policy.params.empty()) {
            out += " — keys:";
            for (std::size_t i = 0; i < policy.params.size(); ++i)
                out += (i == 0 ? " " : ", ") + policy.params[i].key;
        }
    }
    out += "\nparameterize with ':key=value,...', e.g. "
           "hipster-in:bucket=8,learn=600; see --list-policies";
    return out;
}

std::string
PolicyRegistry::catalogText() const
{
    std::string out = "registered policies "
                      "(spec: name[:key=value,...]):\n";
    for (const PolicyInfo &policy : policies_) {
        out += "\n" + policy.name;
        for (const std::string &alias : policy.aliases)
            out += " (alias: " + alias + ")";
        out += " — " + policy.display + ": " + policy.summary;
        if (!policy.paperRef.empty())
            out += " [" + policy.paperRef + "]";
        out += "\n";
        if (policy.params.empty()) {
            out += "    (no parameters)\n";
            continue;
        }
        for (const PolicyParamInfo &param : policy.params)
            out += "    " + paramLine(param) + "\n";
    }
    out += "\nkey=value overrides apply on top of the workload-tuned "
           "deployment defaults;\nthe defaults shown are the paper's "
           "values.\n";
    return out;
}

std::vector<std::string>
PolicyRegistry::table3Names() const
{
    std::vector<std::string> names;
    for (const PolicyInfo &policy : policies_) {
        if (policy.table3)
            names.push_back(policy.name);
    }
    return names;
}

const PolicyInfo &
PolicyRegistry::parseSpec(const std::string &spec,
                          PolicyParamSet &out) const
{
    if (spec.empty())
        fatal("empty policy spec; ", knownPoliciesSummary());

    const std::size_t colon = spec.find(':');
    const std::string head =
        colon == std::string::npos ? spec : spec.substr(0, colon);
    const PolicyInfo *info = findPolicy(head);
    if (info == nullptr)
        fatal("unknown policy '", head, "' in spec '", spec, "'; ",
              knownPoliciesSummary());

    out = PolicyParamSet{};
    if (colon == std::string::npos)
        return *info;

    const std::string argText = spec.substr(colon + 1);
    if (argText.empty())
        fatal("policy spec '", spec, "': empty parameter list after "
              "':'; ", schemaSummary(*info));

    std::size_t pos = 0;
    while (pos <= argText.size()) {
        const std::size_t comma = argText.find(',', pos);
        const std::string pair =
            argText.substr(pos, comma == std::string::npos
                                    ? std::string::npos
                                    : comma - pos);
        pos = comma == std::string::npos ? argText.size() + 1
                                         : comma + 1;

        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == pair.size())
            fatal("policy spec '", spec, "': malformed override '",
                  pair, "' (expected key=value); ",
                  schemaSummary(*info));
        const std::string key = pair.substr(0, eq);
        const std::string valueText = pair.substr(eq + 1);

        const auto param_it = std::find_if(
            info->params.begin(), info->params.end(),
            [&](const PolicyParamInfo &p) { return p.key == key; });
        if (param_it == info->params.end())
            fatal("policy spec '", spec, "': unknown key '", key,
                  "' for '", info->name, "'; ", schemaSummary(*info));
        if (out.isSet(key))
            fatal("policy spec '", spec, "': duplicate key '", key,
                  "'");

        const double value = parseNumber(valueText, spec, key);
        if (param_it->boolean && value != 0.0 && value != 1.0)
            fatal("policy spec '", spec, "': '", key,
                  "' is a flag and takes 0 or 1, got ", valueText);
        if (param_it->integer && std::floor(value) != value)
            fatal("policy spec '", spec, "': '", key,
                  "' takes an integer, got ", valueText);
        if (value < param_it->minValue || value > param_it->maxValue)
            fatal("policy spec '", spec, "': ", key, "=", valueText,
                  " is out of range; ", paramLine(*param_it));
        out.set(key, value);
    }

    const std::size_t index =
        static_cast<std::size_t>(info - policies_.data());
    if (crossChecks_[index])
        crossChecks_[index](*info, out, spec);
    return *info;
}

std::unique_ptr<TaskPolicy>
PolicyRegistry::make(const std::string &spec,
                     const BuildContext &ctx) const
{
    PolicyParamSet params;
    const PolicyInfo &info = parseSpec(spec, params);
    const std::size_t index =
        static_cast<std::size_t>(&info - policies_.data());
    return factories_[index](ctx, params);
}

void
PolicyRegistry::registerBuiltins()
{
    registerPolicy(
        {"static-big", {}, "Static(all-big)",
         "pin the LC workload to all big cores at the highest DVFS",
         "Table 3 'Static Big'", true, {}},
        [](const BuildContext &ctx, const PolicyParamSet &) {
            return std::make_unique<StaticPolicy>(StaticPolicy::allBig(
                ctx.platform, ctx.hipster.variant));
        });

    registerPolicy(
        {"static-small", {}, "Static(all-small)",
         "pin the LC workload to all small cores at the highest DVFS",
         "Table 3 'Static Small'", true, {}},
        [](const BuildContext &ctx, const PolicyParamSet &) {
            return std::make_unique<StaticPolicy>(
                StaticPolicy::allSmall(ctx.platform,
                                       ctx.hipster.variant));
        });

    registerPolicy(
        {"heuristic", {}, "Hipster-Heuristic",
         "Hipster's feedback heuristic as a standalone manager (mixed "
         "cores + DVFS ladder, no learning)",
         "Section 3.3; Figure 5; Table 3", true,
         {
             {"danger", "danger zone starts at target x this (QoS_D)",
              0.80, 0.01, 1.0, false, false},
             {"safe", "safe zone ends at target x this (QoS_S)", 0.30,
              0.0, 1.0, false, false},
         }},
        [](const BuildContext &ctx, const PolicyParamSet &set) {
            ZoneParams zones = ctx.hipster.zones;
            zones.danger = set.get("danger", zones.danger);
            zones.safe = set.get("safe", zones.safe);
            return std::make_unique<HeuristicOnlyPolicy>(
                ctx.platform, zones, ctx.hipster.variant);
        },
        zonesBelowCheck("danger", "safe"));

    registerPolicy(
        {"octopus-man", {"octopus"}, "Octopus-Man",
         "the HPCA'15 big-xor-small state machine at the highest DVFS "
         "(prior-work baseline)",
         "Petrucci et al., HPCA'15; Table 3", true,
         {
             {"up",
              "climb threshold: danger zone starts at target x this "
              "(QoS_D)",
              0.80, 0.01, 1.0, false, false},
             {"down",
              "descend threshold: safe zone ends at target x this "
              "(QoS_S)",
              0.30, 0.0, 1.0, false, false},
         }},
        [](const BuildContext &ctx, const PolicyParamSet &set) {
            OctopusManParams params = ctx.octopus;
            params.variant = ctx.hipster.variant;
            params.zones.danger = set.get("up", params.zones.danger);
            params.zones.safe = set.get("down", params.zones.safe);
            return std::make_unique<OctopusManPolicy>(ctx.platform,
                                                      params);
        },
        zonesBelowCheck("up", "down"));

    registerPolicy(
        {"hipster-in", {"hipster"}, "HipsterIn",
         "the paper's hybrid manager, interactive variant (heuristic "
         "learning phase, then greedy exploitation of the power-reward "
         "table)",
         "Algorithm 2; Figures 6-10; Table 3", true, hipsterSchema()},
        [](const BuildContext &ctx, const PolicyParamSet &set) {
            HipsterParams params =
                applyHipsterOverrides(ctx.hipster, set);
            params.variant = PolicyVariant::Interactive;
            return std::make_unique<HipsterPolicy>(ctx.platform,
                                                   params);
        },
        zonesBelowCheck("danger", "safe"));

    registerPolicy(
        {"hipster-co", {}, "HipsterCo",
         "the collocated variant: batch-throughput reward + "
         "spare-cluster DVFS boost",
         "Section 3.4; Figure 11", false, hipsterSchema()},
        [](const BuildContext &ctx, const PolicyParamSet &set) {
            HipsterParams params =
                applyHipsterOverrides(ctx.hipster, set);
            params.variant = PolicyVariant::Collocated;
            return std::make_unique<HipsterPolicy>(ctx.platform,
                                                   params);
        },
        zonesBelowCheck("danger", "safe"));
}

std::unique_ptr<TaskPolicy>
makePolicyFromSpec(const std::string &spec,
                   const PolicyRegistry::BuildContext &ctx)
{
    return PolicyRegistry::instance().make(spec, ctx);
}

void
validatePolicySpec(const std::string &spec)
{
    PolicyParamSet params;
    PolicyRegistry::instance().parseSpec(spec, params);
}

bool
isPolicySpec(const std::string &spec)
{
    try {
        validatePolicySpec(spec);
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

std::vector<std::string>
splitPolicyList(const std::string &list)
{
    const PolicyRegistry &registry = PolicyRegistry::instance();
    std::vector<std::string> specs;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= list.size(); ++i) {
        const bool hard_break = i == list.size() || list[i] == ';';
        const bool policy_comma =
            !hard_break && list[i] == ',' &&
            registry.hasPolicy(headToken(list, i + 1));
        if (!hard_break && !policy_comma)
            continue;
        specs.push_back(list.substr(start, i - start));
        start = i + 1;
    }
    return specs;
}

} // namespace hipster
