/**
 * @file
 * Power-model tests, including the Table 2 calibration anchors: the
 * simulated Juno must reproduce the measured power of the big/small
 * clusters and single cores within a few percent, and the derived
 * power-efficiency relations the paper reports in Section 4.1.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "platform/config_space.hh"
#include "platform/platform.hh"
#include "platform/power_model.hh"

namespace hipster
{
namespace
{

class JunoPower : public ::testing::Test
{
  protected:
    JunoPower() : platform(Platform::junoR1()) {}

    /** System power with n cores of `type` at 100% and the other
     * cluster power-gated. */
    Watts
    systemPowerWith(CoreType type, std::uint32_t n, GHz freq)
    {
        const auto &cluster = platform.cluster(type);
        const auto &model = platform.powerModel();
        const Opp opp{freq, cluster.spec().voltageAt(freq)};
        return model.restOfSystem() +
               model.clusterPower(cluster.spec(),
                                  model.params(cluster.id()), opp,
                                  {n, 1.0});
    }

    Platform platform;
};

// --- Table 2 anchors (absolute power, +/- 8%). ---

TEST_F(JunoPower, Table2BigClusterFullLoad)
{
    EXPECT_NEAR(systemPowerWith(CoreType::Big, 2, 1.15), 2.30,
                2.30 * 0.08);
}

TEST_F(JunoPower, Table2OneBigCoreFullLoad)
{
    EXPECT_NEAR(systemPowerWith(CoreType::Big, 1, 1.15), 1.62,
                1.62 * 0.08);
}

TEST_F(JunoPower, Table2SmallClusterFullLoad)
{
    EXPECT_NEAR(systemPowerWith(CoreType::Small, 4, 0.65), 1.43,
                1.43 * 0.08);
}

TEST_F(JunoPower, Table2OneSmallCoreFullLoad)
{
    EXPECT_NEAR(systemPowerWith(CoreType::Small, 1, 0.65), 0.95,
                0.95 * 0.08);
}

// --- Derived Section 4.1 relations. ---

TEST_F(JunoPower, BigCoreMorePowerEfficientThanSmallAtSystemLevel)
{
    // "a single big core is 52% more power-efficient than a single
    // small core, in terms of IPS per watt" (system power).
    const double big_eff =
        2138e6 / systemPowerWith(CoreType::Big, 1, 1.15);
    const double small_eff =
        826e6 / systemPowerWith(CoreType::Small, 1, 0.65);
    EXPECT_NEAR(big_eff / small_eff, 1.52, 0.15);
}

TEST_F(JunoPower, SmallClusterMorePowerEfficientThanBigCluster)
{
    // "a small cluster is 25% more power-efficient than a big
    // cluster" at full utilization.
    const double big_eff =
        4260e6 / systemPowerWith(CoreType::Big, 2, 1.15);
    const double small_eff =
        3298e6 / systemPowerWith(CoreType::Small, 4, 0.65);
    EXPECT_NEAR(small_eff / big_eff, 1.25, 0.12);
}

// --- Structural properties. ---

TEST_F(JunoPower, PowerGatedClusterDrawsNothing)
{
    const auto &model = platform.powerModel();
    const auto &big = platform.cluster(CoreType::Big);
    EXPECT_DOUBLE_EQ(model.clusterPower(big, {0, 0.0}), 0.0);
}

TEST_F(JunoPower, PowerIncreasesWithUtilization)
{
    const auto &model = platform.powerModel();
    const auto &big = platform.cluster(CoreType::Big);
    const Watts idle = model.clusterPower(big, {2, 0.0});
    const Watts half = model.clusterPower(big, {2, 0.5});
    const Watts full = model.clusterPower(big, {2, 1.0});
    EXPECT_LT(idle, half);
    EXPECT_LT(half, full);
    EXPECT_GT(idle, 0.0); // static power remains
}

TEST_F(JunoPower, PowerIncreasesWithFrequency)
{
    const auto &model = platform.powerModel();
    const auto &spec = platform.cluster(CoreType::Big).spec();
    const auto &params = model.params(platform.cluster(CoreType::Big).id());
    Watts prev = 0.0;
    for (const auto &opp : spec.opps) {
        const Watts p = model.clusterPower(spec, params, opp, {2, 1.0});
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST_F(JunoPower, TdpIsMaxConfiguration)
{
    const Watts tdp = platform.tdp();
    // TDP = rest + both clusters at max OPP and full utilization.
    const Watts expect = systemPowerWith(CoreType::Big, 2, 1.15) +
                         systemPowerWith(CoreType::Small, 4, 0.65) -
                         platform.powerModel().restOfSystem();
    EXPECT_NEAR(tdp, expect, 1e-9);
    // Rest + 1.54 W big cluster + 0.67 W small cluster ~= 2.97 W.
    EXPECT_GT(tdp, 2.7);
    EXPECT_LT(tdp, 3.3);
}

TEST_F(JunoPower, SystemPowerAddsRestOfSystem)
{
    const auto &model = platform.powerModel();
    std::vector<ClusterActivity> idle_all = {{0, 0.0}, {0, 0.0}};
    EXPECT_DOUBLE_EQ(model.systemPower(platform.clusters(), idle_all),
                     model.restOfSystem());
}

TEST(PowerModelValidation, RejectsBadParameters)
{
    ClusterPowerParams params;
    params.core.dynCoeff = -1.0;
    EXPECT_THROW(PowerModel({params}, 0.5), FatalError);

    params = ClusterPowerParams{};
    params.core.idleActivity = 1.5;
    EXPECT_THROW(PowerModel({params}, 0.5), FatalError);

    EXPECT_THROW(PowerModel({}, 0.5), FatalError);
    EXPECT_THROW(PowerModel({ClusterPowerParams{}}, -0.1), FatalError);
}

} // namespace
} // namespace hipster
