/**
 * @file
 * Tests for the platform registry and its key=value spec grammar:
 * the bare "juno" reproduces Platform::junoR1() exactly, aliases
 * resolve, shape overrides apply (and still validate), the hetero
 * server family constructs with derived OPP ladders, and malformed
 * specs fail fast with the schema or catalog enumerated.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "platform/config_space.hh"
#include "platform/platform_registry.hh"

namespace hipster
{
namespace
{

void
expectSameSpec(const PlatformSpec &a, const PlatformSpec &b)
{
    EXPECT_EQ(a.name, b.name);
    ASSERT_EQ(a.clusters.size(), b.clusters.size());
    for (std::size_t i = 0; i < a.clusters.size(); ++i) {
        SCOPED_TRACE("cluster " + std::to_string(i));
        EXPECT_EQ(a.clusters[i].type, b.clusters[i].type);
        EXPECT_EQ(a.clusters[i].coreCount, b.clusters[i].coreCount);
        EXPECT_EQ(a.clusters[i].microbenchIpc,
                  b.clusters[i].microbenchIpc);
        EXPECT_EQ(a.clusters[i].l2Bytes, b.clusters[i].l2Bytes);
        ASSERT_EQ(a.clusters[i].opps.size(), b.clusters[i].opps.size());
        for (std::size_t k = 0; k < a.clusters[i].opps.size(); ++k) {
            EXPECT_EQ(a.clusters[i].opps[k].frequency,
                      b.clusters[i].opps[k].frequency);
            EXPECT_EQ(a.clusters[i].opps[k].voltage,
                      b.clusters[i].opps[k].voltage);
        }
    }
    EXPECT_EQ(a.restOfSystem, b.restOfSystem);
    EXPECT_EQ(a.emulatePerfErrata, b.emulatePerfErrata);
}

TEST(PlatformRegistry, BareJunoReproducesJunoR1Exactly)
{
    expectSameSpec(makePlatformFromSpec("juno"), Platform::junoR1());
}

TEST(PlatformRegistry, AliasesResolveToTheCanonicalPlatform)
{
    expectSameSpec(makePlatformFromSpec("juno-r1"),
                   makePlatformFromSpec("juno"));
    expectSameSpec(makePlatformFromSpec("server"),
                   makePlatformFromSpec("hetero"));
    const auto &registry = PlatformRegistry::instance();
    EXPECT_EQ(registry.findPlatform("juno-r1"),
              registry.findPlatform("juno"));
    EXPECT_TRUE(registry.hasPlatform("server"));
    EXPECT_FALSE(registry.hasPlatform("juno:big=4"));
}

TEST(PlatformRegistry, JunoShapeOverridesApply)
{
    const PlatformSpec wide =
        makePlatformFromSpec("juno:big=4,little=8");
    EXPECT_EQ(wide.clusters[0].coreCount, 4u);
    EXPECT_EQ(wide.clusters[1].coreCount, 8u);
    // Everything else keeps the Juno calibration.
    const PlatformSpec base = Platform::junoR1();
    EXPECT_EQ(wide.clusters[0].opps.size(),
              base.clusters[0].opps.size());
    EXPECT_EQ(wide.restOfSystem, base.restOfSystem);
    EXPECT_EQ(wide.emulatePerfErrata, base.emulatePerfErrata);
    // The widened board still builds and boots.
    Platform platform(wide);
    EXPECT_EQ(platform.totalCores(), 12u);
    EXPECT_EQ(platform.coreCount(CoreType::Big), 4u);
    // The canonical Figure 2c ladder is still realizable on a
    // widened Juno (it needs at most 2B/4S at the Juno OPPs).
    EXPECT_EQ(ConfigSpace::defaultLadder(platform).size(), 13u);
}

TEST(PlatformRegistry, HeteroServerConstructsWithDerivedLadder)
{
    const PlatformSpec spec = makePlatformFromSpec(
        "hetero:big=2,little=4,bigfreq=2.0,bigopps=3");
    EXPECT_EQ(spec.clusters[0].coreCount, 2u);
    EXPECT_EQ(spec.clusters[1].coreCount, 4u);
    ASSERT_EQ(spec.clusters[0].opps.size(), 3u);
    // Ladder spans 40%..100% of the top frequency, ascending.
    EXPECT_DOUBLE_EQ(spec.clusters[0].opps.front().frequency,
                     2.0 * 0.4);
    EXPECT_DOUBLE_EQ(spec.clusters[0].opps.back().frequency, 2.0);
    EXPECT_FALSE(spec.emulatePerfErrata);

    // A non-Juno shape cannot realize the paper states; the default
    // ladder must fall back to the derived Pareto front and every
    // rung must be realizable.
    Platform platform(spec);
    const auto ladder = ConfigSpace::defaultLadder(platform);
    ASSERT_FALSE(ladder.empty());
    for (const auto &config : ladder)
        EXPECT_TRUE(platform.isValidConfig(config));
}

TEST(PlatformRegistry, ProducedSpecsAreAPureFunctionOfTheSpec)
{
    expectSameSpec(makePlatformFromSpec("hetero:big=16,little=32"),
                   makePlatformFromSpec("hetero:big=16,little=32"));
    expectSameSpec(makePlatformFromSpec("juno:big=4"),
                   makePlatformFromSpec("juno:big=4"));
}

TEST(PlatformRegistry, RejectsUnknownKeysWithTheSchemaEnumerated)
{
    try {
        makePlatformFromSpec("juno:cores=4");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown key 'cores'"), std::string::npos);
        EXPECT_NE(msg.find("'juno' parameters:"), std::string::npos);
        EXPECT_NE(msg.find("big="), std::string::npos);
        EXPECT_NE(msg.find("little="), std::string::npos);
    }
}

TEST(PlatformRegistry, RejectsUnknownPlatformsWithTheCatalog)
{
    try {
        makePlatformFromSpec("odroid");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown platform 'odroid'"),
                  std::string::npos);
        EXPECT_NE(msg.find("registered platforms"), std::string::npos);
        EXPECT_NE(msg.find("juno"), std::string::npos);
        EXPECT_NE(msg.find("hetero"), std::string::npos);
    }
}

TEST(PlatformRegistry, RejectsMalformedAndOutOfRangeValues)
{
    EXPECT_THROW(makePlatformFromSpec(""), FatalError);
    EXPECT_THROW(makePlatformFromSpec("juno:"), FatalError);
    EXPECT_THROW(makePlatformFromSpec("juno:big"), FatalError);
    EXPECT_THROW(makePlatformFromSpec("juno:big=0"), FatalError);
    EXPECT_THROW(makePlatformFromSpec("juno:big=2.5"), FatalError);
    EXPECT_THROW(makePlatformFromSpec("juno:big=999"), FatalError);
    EXPECT_THROW(makePlatformFromSpec("juno:big=2,big=4"), FatalError);
    EXPECT_THROW(makePlatformFromSpec("hetero:bigfreq=99"),
                 FatalError);
    EXPECT_TRUE(isPlatformSpec("juno:big=4,little=8"));
    EXPECT_TRUE(isPlatformSpec("hetero"));
    EXPECT_FALSE(isPlatformSpec("juno:big=banana"));
    EXPECT_FALSE(isPlatformSpec("odroid"));
}

TEST(PlatformRegistry, CatalogTextListsEverything)
{
    const std::string catalog =
        PlatformRegistry::instance().catalogText();
    EXPECT_NE(catalog.find("juno"), std::string::npos);
    EXPECT_NE(catalog.find("hetero"), std::string::npos);
    EXPECT_NE(catalog.find("alias: juno-r1"), std::string::npos);
    EXPECT_NE(catalog.find("big="), std::string::npos);
    EXPECT_NE(catalog.find("bigfreq="), std::string::npos);
}

TEST(PlatformRegistry, SplitPlatformListKeepsInSpecCommas)
{
    const auto specs =
        splitPlatformList("juno:big=4,little=8,hetero;juno");
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0], "juno:big=4,little=8");
    EXPECT_EQ(specs[1], "hetero");
    EXPECT_EQ(specs[2], "juno");
}

} // namespace
} // namespace hipster
