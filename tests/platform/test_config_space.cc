/**
 * @file
 * Tests for configuration-space enumeration, the paper's 13 states,
 * the heuristic ordering and the Octopus-Man subset.
 */

#include <gtest/gtest.h>

#include <set>

#include "platform/config_space.hh"

namespace hipster
{
namespace
{

class ConfigSpaceTest : public ::testing::Test
{
  protected:
    ConfigSpaceTest() : platform(Platform::junoR1()) {}
    Platform platform;
};

TEST_F(ConfigSpaceTest, EnumerateCoversJunoSpace)
{
    const auto configs = ConfigSpace::enumerate(platform);
    // nBig=0: nSmall 1..4 -> 4 configs (small cluster has 1 OPP).
    // nBig=1,2: nSmall 0..4, 3 big OPPs -> 2*5*3 = 30.
    EXPECT_EQ(configs.size(), 34u);
    for (const auto &config : configs) {
        EXPECT_TRUE(platform.isValidConfig(config)) << config.label();
        EXPECT_FALSE(config.empty());
    }
}

TEST_F(ConfigSpaceTest, EnumerateHasNoDuplicates)
{
    const auto configs = ConfigSpace::enumerate(platform);
    std::set<std::string> labels;
    for (const auto &config : configs)
        labels.insert(config.label());
    EXPECT_EQ(labels.size(), configs.size());
}

TEST_F(ConfigSpaceTest, PaperStatesAreThe13OfFigure2c)
{
    const auto states = ConfigSpace::paperStates(platform);
    ASSERT_EQ(states.size(), 13u);
    EXPECT_EQ(states.front().label(), "1S-0.65");
    EXPECT_EQ(states.back().label(), "2B-1.15");
    for (const auto &config : states)
        EXPECT_TRUE(platform.isValidConfig(config)) << config.label();
}

TEST_F(ConfigSpaceTest, PeakIpsMatchesTable2)
{
    // 2B at 1.15 GHz: Table 2's 4260 MIPS.
    EXPECT_NEAR(ConfigSpace::peakIps(platform, {2, 0, 1.15, 0.65}),
                4260e6, 4260e6 * 0.02);
    // 4S at 0.65 GHz: Table 2's 3298 MIPS.
    EXPECT_NEAR(ConfigSpace::peakIps(platform, {0, 4, 1.15, 0.65}),
                3298e6, 3298e6 * 0.02);
}

TEST_F(ConfigSpaceTest, PeakIpsAdditiveOverClusters)
{
    const Ips mixed = ConfigSpace::peakIps(platform, {1, 2, 0.9, 0.65});
    const Ips big = ConfigSpace::peakIps(platform, {1, 0, 0.9, 0.65});
    const Ips small = ConfigSpace::peakIps(platform, {0, 2, 0.9, 0.65});
    EXPECT_NEAR(mixed, big + small, 1.0);
}

TEST_F(ConfigSpaceTest, FullLoadPowerMatchesTable2Anchors)
{
    EXPECT_NEAR(ConfigSpace::fullLoadPower(platform, {2, 0, 1.15, 0.65}),
                2.30, 2.30 * 0.08);
    EXPECT_NEAR(ConfigSpace::fullLoadPower(platform, {0, 4, 0.60, 0.65}),
                1.43, 1.43 * 0.08);
}

TEST_F(ConfigSpaceTest, HeuristicOrderIsMonotoneInPeakIps)
{
    const auto ordered = ConfigSpace::orderForHeuristic(
        platform, ConfigSpace::enumerate(platform));
    for (std::size_t i = 1; i < ordered.size(); ++i) {
        const Ips prev = ConfigSpace::peakIps(platform, ordered[i - 1]);
        const Ips curr = ConfigSpace::peakIps(platform, ordered[i]);
        EXPECT_LE(prev, curr * (1.0 + 1e-6))
            << ordered[i - 1].label() << " vs " << ordered[i].label();
    }
}

TEST_F(ConfigSpaceTest, HeuristicOrderEndsAtMostCapable)
{
    const auto ordered = ConfigSpace::orderForHeuristic(
        platform, ConfigSpace::paperStates(platform));
    ASSERT_FALSE(ordered.empty());
    // The most capable paper state is 2B2S-1.15 by raw IPS.
    EXPECT_EQ(ordered.back().label(), "2B2S-1.15");
    EXPECT_EQ(ordered.front().label(), "1S-0.65");
}

TEST_F(ConfigSpaceTest, ParetoPruneKeepsCheapestPerIpsLevel)
{
    const auto pruned = ConfigSpace::paretoPrune(
        platform, ConfigSpace::enumerate(platform));
    EXPECT_LT(pruned.size(), 34u);
    EXPECT_GE(pruned.size(), 8u);
    // Still monotone in IPS.
    for (std::size_t i = 1; i < pruned.size(); ++i) {
        EXPECT_LT(ConfigSpace::peakIps(platform, pruned[i - 1]),
                  ConfigSpace::peakIps(platform, pruned[i]) *
                      (1.0 + 1e-6));
    }
}

TEST_F(ConfigSpaceTest, OctopusManStatesAreSingleClusterMaxDvfs)
{
    const auto states = ConfigSpace::octopusManStates(platform);
    ASSERT_EQ(states.size(), 6u); // 1S..4S, 1B..2B
    for (const auto &config : states) {
        EXPECT_TRUE(config.singleCoreType()) << config.label();
        if (config.nBig > 0) {
            EXPECT_DOUBLE_EQ(config.bigFreq, 1.15);
        } else {
            EXPECT_DOUBLE_EQ(config.smallFreq, 0.65);
        }
    }
    // Ordered least -> most capable: ends with 2B at max DVFS.
    EXPECT_EQ(states.back().label(), "2B-1.15");
}

} // namespace
} // namespace hipster
