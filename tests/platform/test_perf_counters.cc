/**
 * @file
 * Tests for the perf-counter bank, including the Juno idle-state
 * erratum emulation and the paper's cpuidle workaround (Sec. 3.7).
 */

#include <gtest/gtest.h>

#include "platform/perf_counters.hh"

namespace hipster
{
namespace
{

TEST(CpuIdleControl, DefaultsEnabledWithPaperLatency)
{
    CpuIdleControl cpuidle;
    EXPECT_TRUE(cpuidle.enabled());
    EXPECT_DOUBLE_EQ(cpuidle.idleLatency(), 3500e-6);
}

TEST(CpuIdleControl, EntersIdleOnlyBeyondLatency)
{
    CpuIdleControl cpuidle;
    EXPECT_FALSE(cpuidle.wouldEnterIdle(1000e-6));
    EXPECT_TRUE(cpuidle.wouldEnterIdle(5000e-6));
}

TEST(CpuIdleControl, DisabledNeverIdles)
{
    CpuIdleControl cpuidle;
    cpuidle.setEnabled(false);
    EXPECT_FALSE(cpuidle.wouldEnterIdle(1.0));
}

TEST(PerfCounterBank, RecordsAndReads)
{
    PerfCounterBank bank(4, /*emulate_errata=*/true);
    bank.beginInterval();
    bank.record(2, 1e9, 2e9, 0.5);
    const auto counters = bank.read(2);
    ASSERT_TRUE(counters.has_value());
    EXPECT_DOUBLE_EQ(counters->instructions, 1e9);
    EXPECT_DOUBLE_EQ(counters->cycles, 2e9);
    EXPECT_DOUBLE_EQ(counters->utilization, 0.5);
}

TEST(PerfCounterBank, RecordAccumulatesWithinInterval)
{
    PerfCounterBank bank(1, false);
    bank.beginInterval();
    bank.record(0, 100, 200, 0.1);
    bank.record(0, 50, 100, 0.2);
    EXPECT_DOUBLE_EQ(bank.read(0)->instructions, 150);
}

TEST(PerfCounterBank, BeginIntervalClears)
{
    PerfCounterBank bank(1, false);
    bank.beginInterval();
    bank.record(0, 100, 200, 1.0);
    bank.beginInterval();
    EXPECT_DOUBLE_EQ(bank.read(0)->instructions, 0);
}

TEST(PerfCounterBank, IdleCorePoisonsWholeBank)
{
    // The erratum: any core entering an idle state garbles *all*
    // cores' readings for the interval.
    PerfCounterBank bank(4, /*emulate_errata=*/true);
    CpuIdleControl cpuidle; // enabled
    bank.beginInterval();
    bank.record(0, 1e9, 1e9, 1.0);
    bank.noteIdle(3, /*idle_time=*/0.5, cpuidle);
    EXPECT_TRUE(bank.poisoned());
    EXPECT_FALSE(bank.read(0).has_value());
    EXPECT_FALSE(bank.read(3).has_value());
}

TEST(PerfCounterBank, DisablingCpuIdlePreventsPoisoning)
{
    // The paper's workaround: disable cpuidle so cores never enter
    // idle states and perf stays trustworthy.
    PerfCounterBank bank(4, /*emulate_errata=*/true);
    CpuIdleControl cpuidle;
    cpuidle.setEnabled(false);
    bank.beginInterval();
    bank.record(1, 5e8, 1e9, 1.0);
    bank.noteIdle(3, /*idle_time=*/0.9, cpuidle);
    EXPECT_FALSE(bank.poisoned());
    ASSERT_TRUE(bank.read(1).has_value());
    EXPECT_DOUBLE_EQ(bank.read(1)->instructions, 5e8);
}

TEST(PerfCounterBank, ShortIdleDoesNotPoison)
{
    PerfCounterBank bank(2, true);
    CpuIdleControl cpuidle; // 3500us threshold
    bank.beginInterval();
    bank.noteIdle(0, 1e-3, cpuidle);
    EXPECT_FALSE(bank.poisoned());
}

TEST(PerfCounterBank, ErrataEmulationCanBeDisabled)
{
    PerfCounterBank bank(2, /*emulate_errata=*/false);
    CpuIdleControl cpuidle;
    bank.beginInterval();
    bank.noteIdle(0, 1.0, cpuidle);
    EXPECT_FALSE(bank.poisoned());
    EXPECT_TRUE(bank.read(0).has_value());
}

TEST(PerfCounterBank, RawReadReturnsGarbageWhenPoisoned)
{
    PerfCounterBank bank(2, true);
    CpuIdleControl cpuidle;
    bank.beginInterval();
    bank.record(0, 100.0, 100.0, 1.0);
    bank.noteIdle(1, 1.0, cpuidle);
    // Raw reads "succeed" but produce implausible values — this is
    // what a naive consumer of perf would observe on the Juno.
    const CoreCounters garbage = bank.readRaw(0);
    EXPECT_NE(garbage.instructions, 100.0);
}

TEST(PerfCounterBank, PoisonClearsAtNextInterval)
{
    PerfCounterBank bank(2, true);
    CpuIdleControl cpuidle;
    bank.beginInterval();
    bank.noteIdle(0, 1.0, cpuidle);
    EXPECT_TRUE(bank.poisoned());
    bank.beginInterval();
    EXPECT_FALSE(bank.poisoned());
}

TEST(PerfCounterBankDeath, RejectsOutOfRangeCore)
{
    PerfCounterBank bank(2, false);
    bank.beginInterval();
    EXPECT_DEATH(bank.record(5, 1, 1, 1), "out of range");
}

} // namespace
} // namespace hipster
