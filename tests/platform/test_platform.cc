/**
 * @file
 * Tests for the Platform runtime: topology, configuration actuation,
 * core sets, actuation costs and energy accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "platform/platform.hh"

namespace hipster
{
namespace
{

class JunoPlatform : public ::testing::Test
{
  protected:
    JunoPlatform() : platform(Platform::junoR1()) {}
    Platform platform;
};

TEST_F(JunoPlatform, Topology)
{
    EXPECT_EQ(platform.totalCores(), 6u);
    EXPECT_EQ(platform.coreCount(CoreType::Big), 2u);
    EXPECT_EQ(platform.coreCount(CoreType::Small), 4u);
    // Cluster-major numbering: big cores first.
    EXPECT_EQ(platform.coreType(0), CoreType::Big);
    EXPECT_EQ(platform.coreType(1), CoreType::Big);
    for (CoreId core = 2; core < 6; ++core)
        EXPECT_EQ(platform.coreType(core), CoreType::Small);
    EXPECT_EQ(platform.clusterOf(0), 0u);
    EXPECT_EQ(platform.clusterOf(5), 1u);
}

TEST_F(JunoPlatform, CoresOfType)
{
    const auto big = platform.coresOf(CoreType::Big);
    ASSERT_EQ(big.size(), 2u);
    EXPECT_EQ(big[0], 0u);
    const auto small = platform.coresOf(CoreType::Small);
    ASSERT_EQ(small.size(), 4u);
    EXPECT_EQ(small[0], 2u);
}

TEST_F(JunoPlatform, BootConfigIsAllBigMaxDvfs)
{
    EXPECT_EQ(platform.currentConfig().nBig, 2u);
    EXPECT_EQ(platform.currentConfig().nSmall, 0u);
    EXPECT_DOUBLE_EQ(platform.currentConfig().bigFreq, 1.15);
}

TEST_F(JunoPlatform, ValidConfigChecks)
{
    EXPECT_TRUE(platform.isValidConfig({2, 2, 0.90, 0.65}));
    EXPECT_TRUE(platform.isValidConfig({0, 4, 0.60, 0.65}));
    EXPECT_FALSE(platform.isValidConfig({3, 0, 1.15, 0.65})); // >2 big
    EXPECT_FALSE(platform.isValidConfig({0, 5, 0.60, 0.65})); // >4 small
    EXPECT_FALSE(platform.isValidConfig({2, 0, 1.00, 0.65})); // bad OPP
    EXPECT_FALSE(platform.isValidConfig({0, 2, 0.60, 0.70})); // bad OPP
    EXPECT_FALSE(platform.isValidConfig({0, 0, 0.60, 0.65})); // empty
}

TEST_F(JunoPlatform, ApplyConfigPinsLcCores)
{
    platform.applyConfig({1, 3, 0.90, 0.65});
    const auto &lc = platform.lcCores();
    ASSERT_EQ(lc.size(), 4u);
    EXPECT_EQ(lc[0], 0u); // first big core
    EXPECT_EQ(lc[1], 2u); // first three small cores
    EXPECT_EQ(lc[2], 3u);
    EXPECT_EQ(lc[3], 4u);
    const auto &spare = platform.spareCores();
    ASSERT_EQ(spare.size(), 2u);
    EXPECT_EQ(spare[0], 1u);
    EXPECT_EQ(spare[1], 5u);
}

TEST_F(JunoPlatform, ApplyConfigSetsClusterFrequencies)
{
    platform.applyConfig({2, 2, 0.60, 0.65});
    EXPECT_DOUBLE_EQ(platform.cluster(CoreType::Big).frequency(), 0.60);
    EXPECT_DOUBLE_EQ(platform.coreFrequency(0), 0.60);
    EXPECT_DOUBLE_EQ(platform.coreFrequency(5), 0.65);
}

TEST_F(JunoPlatform, ActuationCountsMigrationsAndDvfs)
{
    platform.applyConfig({2, 0, 1.15, 0.65}); // boot state, no-op
    auto result = platform.applyConfig({2, 0, 1.15, 0.65});
    EXPECT_EQ(result.migratedCores, 0u);
    EXPECT_EQ(result.dvfsTransitions, 0u);
    EXPECT_FALSE(result.changedAnything());
    EXPECT_DOUBLE_EQ(result.latency, 0.0);

    result = platform.applyConfig({2, 2, 0.90, 0.65});
    EXPECT_EQ(result.migratedCores, 2u); // two small cores joined
    EXPECT_EQ(result.dvfsTransitions, 1u); // big 1.15 -> 0.90
    EXPECT_GT(result.latency, 0.0);

    result = platform.applyConfig({0, 4, 0.90, 0.65});
    EXPECT_EQ(result.migratedCores, 4u); // -2 big, +2 small
}

TEST_F(JunoPlatform, MigrationCostsDominateDvfs)
{
    const ActuationCosts costs = platform.spec().costs;
    EXPECT_GT(costs.coreMigration, 10 * costs.dvfsTransition);
}

TEST_F(JunoPlatform, CumulativeCountersTrack)
{
    const auto migrations_before = platform.totalMigrations();
    // Boot state is 2B: each switch moves 2 big out/in and 4 small
    // in/out = 6 migrations per transition.
    platform.applyConfig({0, 4, 1.15, 0.65});
    platform.applyConfig({2, 0, 1.15, 0.65});
    EXPECT_EQ(platform.totalMigrations(), migrations_before + 12);
}

TEST_F(JunoPlatform, ApplyInvalidConfigThrows)
{
    EXPECT_THROW(platform.applyConfig({3, 0, 1.15, 0.65}), FatalError);
}

TEST_F(JunoPlatform, SetClusterFrequencyDirect)
{
    EXPECT_TRUE(platform.setClusterFrequency(CoreType::Big, 0.60));
    EXPECT_FALSE(platform.setClusterFrequency(CoreType::Big, 0.60));
    EXPECT_DOUBLE_EQ(platform.cluster(CoreType::Big).frequency(), 0.60);
}

TEST_F(JunoPlatform, AccountEnergyFlowsIntoMeter)
{
    platform.energyMeter().reset();
    std::vector<ClusterActivity> activity = {{2, 1.0}, {0, 0.0}};
    const Watts power = platform.accountEnergy(activity, 2.0);
    EXPECT_GT(power, 0.0);
    EXPECT_NEAR(platform.energyMeter().totalEnergy(), power * 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(platform.energyMeter().elapsed(), 2.0);
}

TEST(PlatformSpecValidation, RejectsTwoClustersOfSameType)
{
    PlatformSpec spec = Platform::junoR1();
    spec.clusters.push_back(spec.clusters[0]);
    spec.power.push_back(spec.power[0]);
    EXPECT_THROW(Platform{spec}, FatalError);
}

TEST(PlatformSpecValidation, RejectsPowerParamMismatch)
{
    PlatformSpec spec = Platform::junoR1();
    spec.power.pop_back();
    EXPECT_THROW(Platform{spec}, FatalError);
}

TEST(PlatformCustom, SmallOnlyPlatformWorks)
{
    PlatformSpec spec = Platform::junoR1();
    spec.clusters.erase(spec.clusters.begin());
    spec.power.erase(spec.power.begin());
    Platform platform(spec);
    EXPECT_EQ(platform.coreCount(CoreType::Big), 0u);
    EXPECT_EQ(platform.currentConfig().nSmall, 4u);
    EXPECT_THROW(platform.cluster(CoreType::Big), FatalError);
}

} // namespace
} // namespace hipster
