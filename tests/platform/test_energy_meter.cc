/**
 * @file
 * Tests for the energy meter (Juno energy-register model).
 */

#include <gtest/gtest.h>

#include "platform/energy_meter.hh"

namespace hipster
{
namespace
{

TEST(EnergyMeter, AccumulatesPerDomain)
{
    EnergyMeter meter(2);
    meter.accumulate({1.0, 2.0}, 0.5, 10.0);
    EXPECT_DOUBLE_EQ(meter.clusterEnergy(0), 10.0);
    EXPECT_DOUBLE_EQ(meter.clusterEnergy(1), 20.0);
    EXPECT_DOUBLE_EQ(meter.restEnergy(), 5.0);
    EXPECT_DOUBLE_EQ(meter.totalEnergy(), 35.0);
    EXPECT_DOUBLE_EQ(meter.elapsed(), 10.0);
}

TEST(EnergyMeter, MeanPower)
{
    EnergyMeter meter(1);
    meter.accumulate({2.0}, 1.0, 5.0);
    meter.accumulate({4.0}, 1.0, 5.0);
    EXPECT_DOUBLE_EQ(meter.meanPower(), 4.0);
}

TEST(EnergyMeter, MeanPowerZeroWhenEmpty)
{
    EnergyMeter meter(1);
    EXPECT_DOUBLE_EQ(meter.meanPower(), 0.0);
}

TEST(EnergyMeter, ResetClearsEverything)
{
    EnergyMeter meter(2);
    meter.accumulate({1.0, 1.0}, 1.0, 1.0);
    meter.reset();
    EXPECT_DOUBLE_EQ(meter.totalEnergy(), 0.0);
    EXPECT_DOUBLE_EQ(meter.elapsed(), 0.0);
}

TEST(EnergyMeterDeath, RejectsSizeMismatch)
{
    EnergyMeter meter(2);
    EXPECT_DEATH(meter.accumulate({1.0}, 0.5, 1.0), "size mismatch");
}

TEST(EnergyMeterDeath, RejectsNegativeDuration)
{
    EnergyMeter meter(1);
    EXPECT_DEATH(meter.accumulate({1.0}, 0.5, -1.0), "negative");
}

TEST(EnergyMeterDeath, RejectsOutOfRangeDomain)
{
    EnergyMeter meter(1);
    EXPECT_DEATH(meter.clusterEnergy(3), "out of range");
}

} // namespace
} // namespace hipster
