/**
 * @file
 * Tests for ClusterSpec validation and Cluster runtime state.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "platform/cluster.hh"

namespace hipster
{
namespace
{

ClusterSpec
bigSpec()
{
    ClusterSpec spec;
    spec.name = "Cortex-A57";
    spec.type = CoreType::Big;
    spec.coreCount = 2;
    spec.microbenchIpc = 1.86;
    spec.opps = {{0.60, 0.82}, {0.90, 0.95}, {1.15, 1.09}};
    return spec;
}

TEST(ClusterSpec, FrequencyBounds)
{
    const ClusterSpec spec = bigSpec();
    EXPECT_DOUBLE_EQ(spec.minFrequency(), 0.60);
    EXPECT_DOUBLE_EQ(spec.maxFrequency(), 1.15);
}

TEST(ClusterSpec, OppLookup)
{
    const ClusterSpec spec = bigSpec();
    EXPECT_EQ(spec.oppIndex(0.90), 1u);
    EXPECT_DOUBLE_EQ(spec.voltageAt(1.15), 1.09);
    EXPECT_THROW(spec.oppIndex(0.75), FatalError);
}

TEST(ClusterSpec, ValidationRejectsBadSpecs)
{
    ClusterSpec spec = bigSpec();
    spec.coreCount = 0;
    EXPECT_THROW(spec.validate(), FatalError);

    spec = bigSpec();
    spec.opps.clear();
    EXPECT_THROW(spec.validate(), FatalError);

    spec = bigSpec();
    spec.microbenchIpc = 0.0;
    EXPECT_THROW(spec.validate(), FatalError);

    spec = bigSpec();
    spec.opps = {{0.90, 0.95}, {0.60, 0.82}}; // unsorted
    EXPECT_THROW(spec.validate(), FatalError);

    spec = bigSpec();
    spec.opps = {{0.60, 0.95}, {0.90, 0.82}}; // voltage decreasing
    EXPECT_THROW(spec.validate(), FatalError);

    spec = bigSpec();
    spec.opps = {{0.0, 0.8}};
    EXPECT_THROW(spec.validate(), FatalError);
}

TEST(Cluster, BootsAtHighestOpp)
{
    Cluster cluster(0, bigSpec());
    EXPECT_DOUBLE_EQ(cluster.frequency(), 1.15);
    EXPECT_DOUBLE_EQ(cluster.voltage(), 1.09);
}

TEST(Cluster, SetFrequencyReportsChange)
{
    Cluster cluster(0, bigSpec());
    EXPECT_TRUE(cluster.setFrequency(0.60));
    EXPECT_DOUBLE_EQ(cluster.frequency(), 0.60);
    EXPECT_FALSE(cluster.setFrequency(0.60)); // no-op
    EXPECT_TRUE(cluster.setFrequency(0.90));
}

TEST(Cluster, SetFrequencyRejectsUnknownOpp)
{
    Cluster cluster(0, bigSpec());
    EXPECT_THROW(cluster.setFrequency(1.0), FatalError);
}

TEST(Cluster, SingleOppClusterIsFixed)
{
    ClusterSpec spec;
    spec.name = "Cortex-A53";
    spec.type = CoreType::Small;
    spec.coreCount = 4;
    spec.microbenchIpc = 1.27;
    spec.opps = {{0.65, 0.82}};
    Cluster cluster(1, spec);
    EXPECT_DOUBLE_EQ(cluster.frequency(), 0.65);
    EXPECT_FALSE(cluster.setFrequency(0.65));
}

} // namespace
} // namespace hipster
