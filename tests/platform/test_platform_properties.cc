/**
 * @file
 * Parameterized property tests over the platform layer: every
 * enumerable configuration must be applicable, actuation must be
 * reversible and idempotent, and the power model must be monotone in
 * utilization and frequency for every configuration.
 */

#include <gtest/gtest.h>

#include "platform/config_space.hh"
#include "platform/platform.hh"

namespace hipster
{
namespace
{

/** All 34 Juno configurations, as test parameters. */
std::vector<CoreConfig>
allJunoConfigs()
{
    Platform platform(Platform::junoR1());
    return ConfigSpace::enumerate(platform);
}

class ConfigProperties : public ::testing::TestWithParam<CoreConfig>
{
  protected:
    ConfigProperties() : platform(Platform::junoR1()) {}
    Platform platform;
};

TEST_P(ConfigProperties, ApplyThenReadBack)
{
    const CoreConfig config = GetParam();
    ASSERT_TRUE(platform.isValidConfig(config)) << config.label();
    platform.applyConfig(config);
    EXPECT_EQ(platform.currentConfig(), config);
    EXPECT_EQ(platform.lcCores().size(), config.totalCores());
    EXPECT_EQ(platform.lcCores().size() + platform.spareCores().size(),
              platform.totalCores());
}

TEST_P(ConfigProperties, ApplyIsIdempotent)
{
    const CoreConfig config = GetParam();
    platform.applyConfig(config);
    const ActuationResult again = platform.applyConfig(config);
    EXPECT_FALSE(again.changedAnything()) << config.label();
    EXPECT_DOUBLE_EQ(again.latency, 0.0);
}

TEST_P(ConfigProperties, LcCoresMatchRequestedTypes)
{
    const CoreConfig config = GetParam();
    platform.applyConfig(config);
    std::uint32_t big = 0, small = 0;
    for (CoreId core : platform.lcCores()) {
        if (platform.coreType(core) == CoreType::Big) {
            ++big;
        } else {
            ++small;
        }
    }
    EXPECT_EQ(big, config.nBig) << config.label();
    EXPECT_EQ(small, config.nSmall) << config.label();
}

TEST_P(ConfigProperties, ClusterFrequenciesProgrammed)
{
    const CoreConfig config = GetParam();
    platform.applyConfig(config);
    if (config.nBig > 0) {
        EXPECT_DOUBLE_EQ(platform.cluster(CoreType::Big).frequency(),
                         config.bigFreq);
    }
    if (config.nSmall > 0) {
        EXPECT_DOUBLE_EQ(platform.cluster(CoreType::Small).frequency(),
                         config.smallFreq);
    }
}

TEST_P(ConfigProperties, LabelRoundTrips)
{
    const CoreConfig config = GetParam();
    const CoreConfig parsed =
        parseCoreConfig(config.label(), config.smallFreq);
    // label() omits the small frequency when big cores are present,
    // so compare through the platform realizability + label again.
    EXPECT_EQ(parsed.label(), config.label());
    EXPECT_EQ(parsed.nBig, config.nBig);
    EXPECT_EQ(parsed.nSmall, config.nSmall);
}

TEST_P(ConfigProperties, FullLoadPowerWithinTdp)
{
    const CoreConfig config = GetParam();
    const Watts power = ConfigSpace::fullLoadPower(platform, config);
    EXPECT_GT(power, platform.powerModel().restOfSystem());
    EXPECT_LE(power, platform.tdp() + 1e-9) << config.label();
}

TEST_P(ConfigProperties, PowerMonotoneInUtilization)
{
    const CoreConfig config = GetParam();
    platform.applyConfig(config);
    const auto &model = platform.powerModel();
    for (const auto &cluster : platform.clusters()) {
        const std::uint32_t active =
            cluster.spec().type == CoreType::Big ? config.nBig
                                                 : config.nSmall;
        if (active == 0)
            continue;
        Watts prev = -1.0;
        for (double util : {0.0, 0.25, 0.5, 0.75, 1.0}) {
            const Watts p =
                model.clusterPower(cluster, {active, util});
            EXPECT_GT(p, prev) << config.label() << " util " << util;
            prev = p;
        }
    }
}

TEST_P(ConfigProperties, MoreCoresNeverCheaperAtFullLoad)
{
    const CoreConfig config = GetParam();
    // Adding one small core (when possible) cannot reduce full-load
    // power.
    if (config.nSmall < 4) {
        CoreConfig bigger = config;
        bigger.nSmall += 1;
        if (bigger.nSmall > 0 && bigger.smallFreq == 0.0)
            bigger.smallFreq = 0.65;
        EXPECT_GE(ConfigSpace::fullLoadPower(Platform(Platform::junoR1()),
                                             bigger) +
                      1e-9,
                  ConfigSpace::fullLoadPower(
                      Platform(Platform::junoR1()), config))
            << config.label();
    }
}

INSTANTIATE_TEST_SUITE_P(AllJunoConfigs, ConfigProperties,
                         ::testing::ValuesIn(allJunoConfigs()),
                         [](const auto &info) {
                             std::string name = info.param.fullLabel();
                             for (char &c : name) {
                                 if (!std::isalnum(
                                         static_cast<unsigned char>(c)))
                                     c = '_';
                             }
                             return name;
                         });

/** DVFS sweep: big-cluster OPP transitions in both directions. */
class DvfsSweep : public ::testing::TestWithParam<std::pair<GHz, GHz>>
{
};

TEST_P(DvfsSweep, TransitionCountsAndLatency)
{
    Platform platform(Platform::junoR1());
    const auto [from, to] = GetParam();
    platform.applyConfig({2, 0, from, 0.65});
    const auto result = platform.applyConfig({2, 0, to, 0.65});
    if (from == to) {
        EXPECT_EQ(result.dvfsTransitions, 0u);
    } else {
        EXPECT_EQ(result.dvfsTransitions, 1u);
        EXPECT_EQ(result.migratedCores, 0u);
        EXPECT_NEAR(result.latency,
                    platform.spec().costs.dvfsTransition, 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, DvfsSweep,
    ::testing::Values(std::make_pair(0.60, 0.60),
                      std::make_pair(0.60, 0.90),
                      std::make_pair(0.60, 1.15),
                      std::make_pair(0.90, 0.60),
                      std::make_pair(0.90, 1.15),
                      std::make_pair(1.15, 0.60),
                      std::make_pair(1.15, 0.90)));

} // namespace
} // namespace hipster
