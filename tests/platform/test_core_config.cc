/**
 * @file
 * Tests for CoreConfig labels, parsing, ordering and hashing.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/logging.hh"
#include "platform/core_config.hh"

namespace hipster
{
namespace
{

TEST(CoreConfig, LabelMatchesPaperFormat)
{
    EXPECT_EQ((CoreConfig{2, 2, 0.90, 0.65}).label(), "2B2S-0.90");
    EXPECT_EQ((CoreConfig{0, 4, 0.0, 0.65}).label(), "4S-0.65");
    EXPECT_EQ((CoreConfig{2, 0, 1.15, 0.65}).label(), "2B-1.15");
    EXPECT_EQ((CoreConfig{1, 3, 0.60, 0.65}).label(), "1B3S-0.60");
}

TEST(CoreConfig, ParseRoundTripsAllPaperStates)
{
    const char *labels[] = {
        "1S-0.65",   "2S-0.65",   "3S-0.65",  "2B-0.60",  "1B3S-0.60",
        "4S-0.65",   "2B2S-0.60", "1B3S-0.90", "2B-0.90", "2B2S-0.90",
        "1B3S-1.15", "2B2S-1.15", "2B-1.15",
    };
    for (const char *label : labels) {
        const CoreConfig config = parseCoreConfig(label, 0.65);
        EXPECT_EQ(config.label(), label) << label;
    }
}

TEST(CoreConfig, ParsePopulatesFields)
{
    const CoreConfig config = parseCoreConfig("1B3S-0.90", 0.65);
    EXPECT_EQ(config.nBig, 1u);
    EXPECT_EQ(config.nSmall, 3u);
    EXPECT_DOUBLE_EQ(config.bigFreq, 0.90);
    EXPECT_DOUBLE_EQ(config.smallFreq, 0.65);
}

TEST(CoreConfig, ParseSmallOnlyTakesFrequencyAsSmall)
{
    const CoreConfig config = parseCoreConfig("3S-0.65", 0.65);
    EXPECT_EQ(config.nBig, 0u);
    EXPECT_DOUBLE_EQ(config.smallFreq, 0.65);
}

TEST(CoreConfig, ParseRejectsMalformedLabels)
{
    EXPECT_THROW(parseCoreConfig("", 0.65), FatalError);
    EXPECT_THROW(parseCoreConfig("2X-0.6", 0.65), FatalError);
    EXPECT_THROW(parseCoreConfig("2B", 0.65), FatalError);
    EXPECT_THROW(parseCoreConfig("B-0.6", 0.65), FatalError);
    EXPECT_THROW(parseCoreConfig("-0.6", 0.65), FatalError);
    EXPECT_THROW(parseCoreConfig("2B-0", 0.65), FatalError);
}

TEST(CoreConfig, Helpers)
{
    const CoreConfig mixed{1, 3, 0.9, 0.65};
    EXPECT_EQ(mixed.totalCores(), 4u);
    EXPECT_FALSE(mixed.singleCoreType());
    EXPECT_FALSE(mixed.empty());

    const CoreConfig big_only{2, 0, 1.15, 0.65};
    EXPECT_TRUE(big_only.singleCoreType());

    const CoreConfig none{0, 0, 0.0, 0.0};
    EXPECT_TRUE(none.empty());
}

TEST(CoreConfig, EqualityAndOrdering)
{
    const CoreConfig a{1, 2, 0.9, 0.65};
    const CoreConfig b{1, 2, 0.9, 0.65};
    const CoreConfig c{2, 2, 0.9, 0.65};
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
    EXPECT_TRUE(a < c);
    EXPECT_FALSE(c < a);
}

TEST(CoreConfig, HashDistinguishesConfigs)
{
    CoreConfigHash hash;
    std::unordered_set<std::size_t> seen;
    for (std::uint32_t nb = 0; nb <= 2; ++nb) {
        for (std::uint32_t ns = 0; ns <= 4; ++ns) {
            for (GHz f : {0.60, 0.90, 1.15}) {
                if (nb + ns == 0)
                    continue;
                seen.insert(hash(CoreConfig{nb, ns, f, 0.65}));
            }
        }
    }
    // All 42 combinations should hash distinctly (tiny space).
    EXPECT_EQ(seen.size(), 42u);
}

TEST(CoreConfig, HashEqualForEqualConfigs)
{
    CoreConfigHash hash;
    EXPECT_EQ(hash(CoreConfig{1, 1, 0.9, 0.65}),
              hash(CoreConfig{1, 1, 0.9, 0.65}));
}

} // namespace
} // namespace hipster
